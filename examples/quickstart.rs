//! Quickstart: simulate a managed-memory kernel and inspect the UVM
//! driver's fault batches.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use uvm_core::{SystemConfig, UvmSystem};
use uvm_workloads::cpu_init::CpuInitPolicy;
use uvm_workloads::stream::{self, StreamParams};

fn main() {
    // A BabelStream-style triad over three vectors, initialized by one CPU
    // thread, on a small simulated GPU (64 MiB of device memory).
    let workload = stream::build(StreamParams {
        warps: 64,
        pages_per_warp: 16,
        iters: 1,
        warps_per_page: 1,
        cpu_init: Some(CpuInitPolicy::SingleThread),
    });
    println!(
        "workload: {} ({} warps, {:.1} MiB managed)",
        workload.name,
        workload.num_warps(),
        workload.footprint_bytes() as f64 / (1024.0 * 1024.0)
    );

    let config = SystemConfig::test_small(64 * 1024 * 1024);
    let result = UvmSystem::new(config).run(&workload);

    println!("\nkernel time      {}", result.kernel_time);
    println!("batch time       {}", result.total_batch_time);
    println!("batches          {}", result.num_batches);
    println!("faults inserted  {}", result.total_faults_inserted);
    println!("replays          {}", result.replays);
    println!("bytes migrated   {:.1} MiB", result.total_bytes_migrated() as f64 / (1024.0 * 1024.0));

    println!("\nfirst batches (the fault-servicing log the paper's instrumented driver records):");
    println!("{:>4} {:>6} {:>7} {:>7} {:>8} {:>10} {:>10}", "seq", "faults", "unique", "blocks", "pages", "service", "transfer%");
    for r in result.records.iter().take(10) {
        println!(
            "{:>4} {:>6} {:>7} {:>7} {:>8} {:>10} {:>9.1}%",
            r.seq,
            r.raw_faults,
            r.unique_pages,
            r.num_va_blocks,
            r.pages_migrated,
            format!("{}", r.service_time()),
            r.transfer_fraction() * 100.0
        );
    }
}
