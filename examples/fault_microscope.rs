//! Fault microscope: reproduce the paper's Listing 1 / Figs. 3–4 analysis.
//!
//! Runs the page-strided vector-addition microbenchmark with per-fault
//! metadata logging and prints every fault in arrival order, grouped by
//! batch — showing the 56-entry μTLB limit filling, the scoreboard gating
//! writes behind reads, and the tight intra-batch arrival clustering.
//!
//! ```text
//! cargo run --release --example fault_microscope
//! ```

use uvm_core::experiments::fig03_vecadd;

fn main() {
    let result = fig03_vecadd::run(0x5C21);
    println!("{}", result.render());

    println!("\nper-fault arrival log (first three batches):");
    println!("{:>5} {:>8} {:>10} {:>12}", "batch", "page", "kind", "arrival(us)");
    for f in result.faults.iter().filter(|f| f.batch < 3) {
        println!(
            "{:>5} {:>8} {:>10} {:>12.3}",
            f.batch,
            f.page,
            format!("{:?}", f.kind),
            f.arrival_ns as f64 / 1e3
        );
    }

    println!(
        "\nFig. 4's claim: faults of a batch cluster tightly ({:.1} us spread) versus the",
        result.mean_intra_batch_spread_ns / 1e3
    );
    println!(
        "inter-batch servicing gap ({:.1} us) — the GPU stalls while the driver works.",
        result.mean_inter_batch_gap_ns / 1e3
    );
}
