//! Memory-usage hints: compare fault-driven UVM against `cudaMemAdvise`
//! and `cudaMemPrefetchAsync` managements of the same workload, plus the
//! thrashing-mitigation extension on an irregular oversubscribed run.
//!
//! ```text
//! cargo run --release --example memory_hints
//! ```

use uvm_core::experiments::{ext_hints, ext_thrashing};

fn main() {
    println!("{}\n", ext_hints::run(0x5C21).render());
    println!("The hints trade the paper's fault-path costs explicitly:");
    println!("  - prefetch-async pays the compulsory costs once, up front;");
    println!("  - read-mostly removes the fault-path unmap (and eviction writeback);");
    println!("  - preferred-host removes migration entirely at the price of");
    println!("    every access crossing the interconnect.\n");

    println!("{}\n", ext_thrashing::run(0x5C21).render());
    println!("Pinning re-faulted blocks host-side converts the eviction ping-pong");
    println!("the paper's LRU analysis predicts for irregular access into remote");
    println!("reads — the strategy of the production driver's uvm_perf_thrashing.");
}
