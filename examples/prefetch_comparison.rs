//! Prefetch comparison: the same tiled-GEMM workload with the tree-based
//! density prefetcher off and on (paper Figs. 7 vs 14, Table 4).
//!
//! ```text
//! cargo run --release --example prefetch_comparison
//! ```

use uvm_core::experiments::suite::{experiment_config, Bench};
use uvm_core::UvmSystem;
use uvm_driver::policy::DriverPolicy;

fn main() {
    let workload = Bench::Sgemm.build();
    println!(
        "workload: {} ({} warps, {:.0} MiB managed)",
        workload.name,
        workload.num_warps(),
        workload.footprint_bytes() as f64 / (1024.0 * 1024.0)
    );

    let base = UvmSystem::new(experiment_config(768)).run(&workload);
    let pf = UvmSystem::new(experiment_config(768).with_policy(DriverPolicy::with_prefetch()))
        .run(&workload);

    println!("\n{:<26} {:>14} {:>14}", "", "no prefetch", "prefetch");
    let row = |name: &str, a: String, b: String| println!("{name:<26} {a:>14} {b:>14}");
    row("kernel time", format!("{}", base.kernel_time), format!("{}", pf.kernel_time));
    row("batch time", format!("{}", base.total_batch_time), format!("{}", pf.total_batch_time));
    row("batches", base.num_batches.to_string(), pf.num_batches.to_string());
    row(
        "pages migrated",
        base.records.iter().map(|r| r.pages_migrated).sum::<u64>().to_string(),
        pf.records.iter().map(|r| r.pages_migrated).sum::<u64>().to_string(),
    );
    row(
        "prefetched pages",
        "0".into(),
        pf.records.iter().map(|r| r.prefetched_pages).sum::<u64>().to_string(),
    );
    row(
        "max DMA-setup share",
        format!("{:.0}%", base.records.iter().map(|r| r.dma_fraction()).fold(0.0, f64::max) * 100.0),
        format!("{:.0}%", pf.records.iter().map(|r| r.dma_fraction()).fold(0.0, f64::max) * 100.0),
    );

    let speedup = base.kernel_time.as_nanos() as f64 / pf.kernel_time.as_nanos().max(1) as f64;
    let reduction = 1.0 - pf.num_batches as f64 / base.num_batches.max(1) as f64;
    println!(
        "\nprefetching removed {:.0}% of batches and sped the kernel up {:.2}x;",
        reduction * 100.0,
        speedup
    );
    println!("what remains is dominated by the compulsory first-touch costs (DMA-map");
    println!("creation and CPU unmapping) that prefetching cannot eliminate.");
}
