//! Regenerate the paper's Tables 2, 3, and 4 and print them side by side
//! with the published values for comparison.
//!
//! ```text
//! cargo run --release --example paper_tables
//! ```

use uvm_core::experiments::{table2_per_sm, table3_vablocks, table4_speedup};

fn main() {
    let seed = 0x5C21;

    println!("{}\n", table2_per_sm::run(seed).render());
    println!("paper (Titan V): Regular 3.06, Random 3.03, sgemm 0.85, stream 0.75,");
    println!("                 cufft 0.91, gauss-seidel 0.65, hpgmg 0.41; max 3.20\n");

    println!("{}\n", table3_vablocks::run(seed).render());
    println!("paper: Random 233.09 blk/batch @ 1.04 faults/blk; gauss-seidel 2.31 @ 22.44;");
    println!("       sgemm 6.96 @ 9.81; stream 3.93 @ 15.37; cufft 25.14 @ 2.89\n");

    println!("{}\n", table4_speedup::run(seed).render());
    println!("paper: gauss-seidel 60.477s -> 15.340s batch (kernel 3.39x);");
    println!("       hpgmg 32.384s -> 7.261s batch (kernel 2.72x)");
}
