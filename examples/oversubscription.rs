//! Oversubscription: run an iterated stream triad whose footprint exceeds
//! device memory and watch LRU VABlock eviction, the eviction cost levels
//! (Fig. 13), and the unmap/eviction interplay.
//!
//! ```text
//! cargo run --release --example oversubscription
//! ```

use uvm_core::{SystemConfig, UvmSystem};
use uvm_gpu::spec::GpuSpec;
use uvm_workloads::cpu_init::CpuInitPolicy;
use uvm_workloads::stream::{self, StreamParams};

fn main() {
    let workload = stream::build(StreamParams {
        warps: 2048,
        pages_per_warp: 1,
        iters: 2,
        warps_per_page: 1,
        cpu_init: Some(CpuInitPolicy::SingleThread),
    });
    let footprint = workload.footprint_bytes();
    // Device memory at 80% of the footprint: ~125% oversubscription.
    let memory = footprint * 4 / 5;
    println!(
        "footprint {:.1} MiB, device memory {:.1} MiB ({:.0}% oversubscription)",
        footprint as f64 / (1024.0 * 1024.0),
        memory as f64 / (1024.0 * 1024.0),
        footprint as f64 / memory as f64 * 100.0
    );

    let config = SystemConfig {
        gpu: GpuSpec {
            memory_bytes: memory,
            ..GpuSpec::titan_v()
        },
        ..SystemConfig::titan_v()
    };
    let result = UvmSystem::new(config).run(&workload);

    println!("\nkernel time  {}", result.kernel_time);
    println!("evictions    {}", result.evictions);
    println!("unmap calls  {}", result.unmap_calls);

    let evicting: Vec<_> = result.records.iter().filter(|r| r.evictions > 0).collect();
    let (upper, lower): (Vec<_>, Vec<_>) =
        evicting.iter().partition(|r| r.t_unmap.as_nanos() > 0);
    let mean_ms = |rs: &[&&uvm_driver::BatchRecord]| {
        if rs.is_empty() {
            0.0
        } else {
            rs.iter().map(|r| r.service_time().as_nanos() as f64).sum::<f64>() / rs.len() as f64 / 1e6
        }
    };
    println!("\nFig. 13's eviction cost levels:");
    println!(
        "  upper level (first touch: eviction + CPU unmap): {:>4} batches, mean {:.3} ms",
        upper.len(),
        mean_ms(&upper)
    );
    println!(
        "  lower level (re-migration of evicted blocks):    {:>4} batches, mean {:.3} ms",
        lower.len(),
        mean_ms(&lower)
    );
}
