//! Dependency-free `#[derive(Serialize, Deserialize)]` for the vendored
//! `serde` facade.
//!
//! The build environment has no access to crates.io, so this proc-macro
//! re-implements the subset of `serde_derive` the workspace actually uses:
//!
//! * structs with named fields (externally represented as a JSON object in
//!   declaration order),
//! * newtype tuple structs (transparent — serialized as the inner value),
//! * enums with unit, newtype, and struct variants (externally tagged, the
//!   classic serde representation).
//!
//! Generics and `#[serde(...)]` attributes are deliberately unsupported; the
//! macro fails loudly if it meets a shape it cannot handle, so silent data
//! corruption is impossible.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of a struct body or an enum variant body.
enum Shape {
    /// `{ a: T, b: U }` — we only need the field names; the generated code
    /// lets type inference find the field types.
    Named(Vec<String>),
    /// `(T)` — a single unnamed field, serialized transparently.
    Newtype,
    /// No payload at all.
    Unit,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct { name: String, shape: Shape },
    Enum { name: String, variants: Vec<Variant> },
}

// ---------------------------------------------------------------------------
// Token-level parsing (no `syn`)
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`, including doc comments) and the
    // visibility qualifier until we reach the `struct` / `enum` keyword.
    let kind = loop {
        match toks.next().expect("derive input ended before struct/enum keyword") {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                toks.next(); // the `[...]` attribute body
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `pub` or another modifier; a following `(crate)` group is
                // skipped by the Group arm below.
            }
            TokenTree::Group(_) => {} // `(crate)` of `pub(crate)`
            other => panic!("unexpected token before item keyword: {other}"),
        }
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    let body = loop {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                // Tuple struct. Only the transparent newtype form is supported.
                let fields = split_top_level_commas(g.stream());
                assert!(
                    kind == "struct" && fields.len() == 1,
                    "derive shim supports tuple structs with exactly one field ({name})"
                );
                return Item::Struct { name, shape: Shape::Newtype };
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("derive shim does not support generic type {name}")
            }
            Some(_) => continue,
            None => panic!("derive input for {name} has no body"),
        }
    };
    if kind == "struct" {
        Item::Struct { name, shape: Shape::Named(parse_named_fields(body.stream())) }
    } else {
        let variants = split_top_level_commas(body.stream())
            .into_iter()
            .map(|chunk| parse_variant(&chunk))
            .collect();
        Item::Enum { name, variants }
    }
}

/// Split a body's tokens on commas, ignoring commas nested in groups or in
/// `<...>` generic argument lists (proc-macro groups do not cover angle
/// brackets, so their depth is tracked by hand). Field types here never
/// contain `->`, so a bare `>` always closes an angle bracket.
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Extract field names from a `{ a: T, b: U }` body: for each comma-separated
/// chunk, the field name is the identifier immediately preceding the first
/// top-level `:`.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|chunk| {
            let mut prev_ident: Option<String> = None;
            let mut skip_next_group = false;
            for tt in &chunk {
                match tt {
                    TokenTree::Punct(p) if p.as_char() == '#' => skip_next_group = true,
                    TokenTree::Group(_) if skip_next_group => skip_next_group = false,
                    TokenTree::Punct(p) if p.as_char() == ':' => {
                        return prev_ident.expect("field name before `:`");
                    }
                    TokenTree::Ident(id) => prev_ident = Some(id.to_string()),
                    _ => {}
                }
            }
            panic!("struct field without `:` — unsupported shape")
        })
        .collect()
}

fn parse_variant(chunk: &[TokenTree]) -> Variant {
    let mut iter = chunk.iter().peekable();
    let name = loop {
        match iter.next().expect("empty enum variant") {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next(); // attribute body
            }
            TokenTree::Ident(id) => break id.to_string(),
            other => panic!("unexpected token in enum variant: {other}"),
        }
    };
    let shape = match iter.next() {
        None => Shape::Unit,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let fields = split_top_level_commas(g.stream());
            assert!(fields.len() == 1, "derive shim supports only newtype tuple variants ({name})");
            Shape::Newtype
        }
        Some(other) => panic!("unexpected token after variant {name}: {other}"),
    };
    Variant { name, shape }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn object_literal(fields: &[String], access: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({}))",
                access(f)
            )
        })
        .collect();
    format!("::serde::Value::Object(::std::vec::Vec::from([{}]))", entries.join(", "))
}

fn expand_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => object_literal(fields, |f| format!("&self.{f}")),
                Shape::Newtype => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        Shape::Newtype => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(::std::vec::Vec::from([\
                             (::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(__f0))])),"
                        ),
                        Shape::Named(fields) => {
                            let pat = fields.join(", ");
                            let inner = object_literal(fields, |f| f.to_string());
                            format!(
                                "{name}::{vn} {{ {pat} }} => ::serde::Value::Object(::std::vec::Vec::from([\
                                 (::std::string::String::from(\"{vn}\"), {inner})])),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn named_constructor(path: &str, fields: &[String], source: &str, ty_label: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::__field(__fields, \"{f}\")?,"))
        .collect();
    format!(
        "{{ let __fields = ::serde::__object_fields({source}, \"{ty_label}\")?;\n\
           ::std::result::Result::Ok({path} {{ {} }}) }}",
        inits.join(" ")
    )
}

fn expand_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => named_constructor(name, fields, "__v", name),
                Shape::Newtype => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit: Vec<&Variant> =
                variants.iter().filter(|v| matches!(v.shape, Shape::Unit)).collect();
            let tagged: Vec<&Variant> =
                variants.iter().filter(|v| !matches!(v.shape, Shape::Unit)).collect();

            let mut match_arms = Vec::new();
            if !unit.is_empty() {
                let arms: Vec<String> = unit
                    .iter()
                    .map(|v| {
                        format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                            vn = v.name
                        )
                    })
                    .collect();
                match_arms.push(format!(
                    "::serde::Value::Str(__s) => match __s.as_str() {{\n{}\n\
                     __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(__other, \"{name}\")),\n}},",
                    arms.join("\n")
                ));
            }
            if !tagged.is_empty() {
                let arms: Vec<String> = tagged
                    .iter()
                    .map(|v| {
                        let vn = &v.name;
                        let build = match &v.shape {
                            Shape::Newtype => format!(
                                "::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?))"
                            ),
                            Shape::Named(fields) => named_constructor(
                                &format!("{name}::{vn}"),
                                fields,
                                "__inner",
                                &format!("{name}::{vn}"),
                            ),
                            Shape::Unit => unreachable!(),
                        };
                        format!("\"{vn}\" => {build},")
                    })
                    .collect();
                match_arms.push(format!(
                    "::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &__entries[0];\n\
                         match __tag.as_str() {{\n{}\n\
                         __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(__other, \"{name}\")),\n}}\n\
                     }},",
                    arms.join("\n")
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n{}\n\
                         _ => ::std::result::Result::Err(::serde::DeError::invalid_type(\"{name}\", __v)),\n}}\n\
                     }}\n\
                 }}",
                match_arms.join("\n")
            )
        }
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    expand_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    expand_deserialize(&item).parse().expect("generated Deserialize impl parses")
}
