//! Offline `criterion` shim.
//!
//! The sandboxed build cannot fetch the real criterion, so this crate keeps
//! the `benches/` targets compiling and gives them smoke-test semantics:
//! every registered benchmark body runs exactly once and its wall time is
//! printed. There is no statistical analysis — `cargo bench` here verifies
//! that the benchmarked pipelines still execute, not their timing
//! distribution.

use std::fmt::Display;
use std::time::Instant;

/// Opaque value barrier — defers to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Shim of criterion's driver. Configuration methods are accepted and
/// ignored (each bench body runs exactly once regardless).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn measurement_time(self, _d: std::time::Duration) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        run_once(&id.to_string(), f);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        run_once(&format!("{}/{}", self.name, id), f);
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let mut b = Bencher::default();
        let label = format!("{}/{}", self.name, id);
        let start = Instant::now();
        f(&mut b, input);
        report(&label, start);
    }

    pub fn finish(self) {}
}

/// Benchmark identifier: a function name plus a parameter rendering.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Runs the routine under test. `iter` executes its closure exactly once.
#[derive(Debug, Default)]
pub struct Bencher {
    _private: (),
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine());
    }
}

fn run_once(label: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher::default();
    let start = Instant::now();
    f(&mut b);
    report(label, start);
}

fn report(label: &str, start: Instant) {
    println!("bench {label}: ok ({:?})", start.elapsed());
}

/// Both classic invocation forms of criterion's group macro:
/// `criterion_group!(name, target, ...)` and the struct-ish
/// `criterion_group! { name = n; config = expr; targets = t, ... }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut __criterion = $config;
            $($target(&mut __criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut __criterion = $crate::Criterion::default();
            $($target(&mut __criterion);)+
        }
    };
}

/// Entry point for `harness = false` bench binaries.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
