//! Offline `serde_json` shim over the vendored [`serde`] facade.
//!
//! Provides the call-compatible subset the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`to_value`], [`from_str`], and [`Value`]. Output
//! formatting matches real `serde_json`: compact form has no whitespace,
//! pretty form indents by two spaces, floats always carry a decimal point or
//! exponent, and object fields keep declaration order.

use serde::{Deserialize, Serialize};

pub use serde::Value;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Serialize to a compact JSON string (no whitespace).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to a human-readable JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some("  "), 0);
    Ok(out)
}

/// Deserialize any `Deserialize` type from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::NumU(n) => out.push_str(&n.to_string()),
        Value::NumI(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        // Real serde_json refuses non-finite floats; emitting null matches
        // its Value-level behavior and keeps the writer infallible.
        out.push_str("null");
        return;
    }
    let s = f.to_string(); // shortest round-trippable form
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a JSON document into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != b {
            return Err(Error::new(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character '{}' at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' in array, found '{}'",
                        other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' in object, found '{}'",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let b = *rest.first().ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc =
                        *rest.get(1).ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "unknown escape '\\{}'",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Copy the whole contiguous run of unescaped bytes at
                    // once. Validating per-character with `from_utf8(rest)`
                    // would rescan the remaining input for every character,
                    // turning string parsing quadratic — ruinous on
                    // multi-megabyte snapshot files. UTF-8 continuation
                    // bytes are 0x80..=0xBF, so scanning for the raw quote
                    // and backslash bytes cannot split a multi-byte char.
                    let run = rest
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\')
                        .ok_or_else(|| Error::new("unterminated string"))?;
                    let s = std::str::from_utf8(&rest[..run])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos += run;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid float `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<i64>()
                .map(|n| Value::NumI(-n))
                .map_err(|_| Error::new(format!("invalid integer `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::NumU)
                .map_err(|_| Error::new(format!("invalid integer `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_matches_serde_json_format() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::NumU(256)),
            ("b".to_string(), Value::Float(1.0)),
            ("c".to_string(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("d".to_string(), Value::Str("x\"y".to_string())),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":256,"b":1.0,"c":[true,null],"d":"x\"y"}"#);
    }

    #[test]
    fn pretty_indents_two_spaces() {
        let v = Value::Object(vec![("a".to_string(), Value::Array(vec![Value::NumU(1)]))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn parse_round_trips() {
        let text = r#"{"x":-5,"y":[1,2.5,"s"],"z":{"nested":false},"w":null}"#;
        let v = parse(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn float_always_has_decimal_marker() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        let big = to_string(&1e300f64).unwrap();
        let back: f64 = from_str(&big).unwrap();
        assert_eq!(back, 1e300);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nquote\"back\\slash\ttab".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\":}").is_err());
    }
}
