//! Offline `proptest` shim.
//!
//! The build environment cannot fetch crates.io, so this crate provides the
//! subset of proptest the workspace's property tests use: the [`proptest!`]
//! macro, `prop_assert!`/`prop_assert_eq!`, [`prop_oneof!`], integer-range
//! and tuple strategies, [`collection::vec`], `any::<T>()`, and `Just`.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its case number and seed; with
//!   deterministic per-case seeding the failure replays exactly.
//! * **Deterministic runs.** Case `i` of test `t` always samples from
//!   `TestRng::for_case(t, i)`, so CI failures reproduce locally without a
//!   persisted regressions file.

pub mod strategy;

pub mod collection;

pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run each property function for `config.cases` deterministic cases.
///
/// Supports an optional leading `#![proptest_config(expr)]`, any number of
/// `fn name(arg in strategy, ...) { body }` items, and outer attributes
/// (`#[test]`, doc comments) on each function.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body; ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name), __case, __config.cases, __msg
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body, failing the case (not the
/// process) with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if __left != __right {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __left, __right));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = $left;
        let __right = $right;
        if __left != __right {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), __left, __right));
        }
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if __left == __right {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), __left));
        }
    }};
}

/// Pick uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::__box_strategy($strategy)),+
        ])
    };
}
