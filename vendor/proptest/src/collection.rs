//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length bound for collection strategies: `[min, max)`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max_exclusive: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max_exclusive: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { min: *r.start(), max_exclusive: *r.end() + 1 }
    }
}

/// Generate a `Vec` whose length is drawn from `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_length_within_bounds() {
        let strat = vec(0u8..10, 2..6);
        let mut rng = TestRng::for_case("vec_len", 0);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn fixed_size_from_usize() {
        let strat = vec(0u8..10, 4usize);
        let mut rng = TestRng::for_case("vec_fixed", 0);
        assert_eq!(strat.sample(&mut rng).len(), 4);
    }
}
