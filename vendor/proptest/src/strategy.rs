//! Value-generation strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value` from a [`TestRng`].
///
/// Unlike real proptest there is no value tree and no shrinking — `sample`
/// draws a single concrete value.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Box a strategy as a trait object; used by `prop_oneof!` so all branches
/// unify to one element type without type ascription.
pub fn __box_strategy<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// A strategy that always yields a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (the engine behind `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize);

/// Full-range generation for types with an `Arbitrary` impl (`any::<T>()`).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub struct AnyStrategy<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = (5u32..17).sample(&mut rng);
            assert!((5..17).contains(&v));
            let w = (3u8..=9).sample(&mut rng);
            assert!((3..=9).contains(&w));
        }
    }

    #[test]
    fn union_draws_every_branch() {
        let u = Union::new(vec![__box_strategy(Just(1u8)), __box_strategy(Just(2u8))]);
        let mut rng = TestRng::for_case("union", 0);
        let draws: Vec<u8> = (0..100).map(|_| u.sample(&mut rng)).collect();
        assert!(draws.contains(&1) && draws.contains(&2));
    }

    #[test]
    fn sampling_is_deterministic_per_case() {
        let strat = (0u64..1000, 0u32..7);
        let mut a = TestRng::for_case("det", 3);
        let mut b = TestRng::for_case("det", 3);
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        let mut c = TestRng::for_case("det", 4);
        let differs = (0..16).any(|_| strat.sample(&mut a) != strat.sample(&mut c));
        assert!(differs, "different cases should sample different values");
    }
}
