//! Per-case deterministic RNG and run configuration.

/// How many cases `proptest!` runs per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps debug-mode `cargo test`
        // latency reasonable while still covering the state space well.
        ProptestConfig { cases: 64 }
    }
}

/// xoshiro256++ seeded from an FNV-1a hash of the test's full path and the
/// case index, so every (test, case) pair replays identically on any host.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3); // FNV prime
        }
        h ^= (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // SplitMix64 expansion of the hash into four non-zero state words.
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { state: [next(), next(), next(), next()] }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)`; 0 when `n == 0`. Lemire's multiply-shift
    /// reduction (bias negligible for test-sized ranges, and determinism is
    /// what matters here).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_case_same_stream() {
        let mut a = TestRng::for_case("x::y", 5);
        let mut b = TestRng::for_case("x::y", 5);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn cases_diverge() {
        let mut a = TestRng::for_case("x::y", 0);
        let mut b = TestRng::for_case("x::y", 1);
        assert!((0..8).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn below_bounds() {
        let mut r = TestRng::for_case("below", 0);
        assert_eq!(r.below(0), 0);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }
}
