//! Offline `serde` facade.
//!
//! The container that builds this workspace has no network access and no
//! crates.io mirror, so the real `serde` cannot be fetched. This crate keeps
//! the workspace's source files unchanged by providing the same names —
//! `serde::Serialize`, `serde::Deserialize`, `#[derive(Serialize)]` — backed
//! by a much simpler mechanism: every serializable type converts to and from
//! a [`Value`] tree, and `serde_json` (also vendored) renders that tree.
//!
//! Field order is preserved (objects are `Vec<(String, Value)>`, not maps),
//! so JSON output matches the declaration order exactly as real
//! `serde_json` output would.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree — the intermediate representation every
/// `Serialize` type lowers to.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integer.
    NumU(u64),
    /// Negative integer (always < 0; non-negative integers use [`Value::NumU`]).
    NumI(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Key/value pairs in insertion (declaration) order.
    Object(Vec<(String, Value)>),
}

/// Serialization: lower `self` to a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialization: rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Structured deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    pub fn missing_field(name: &str) -> Self {
        DeError { msg: format!("missing field `{name}`") }
    }

    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        DeError { msg: format!("unknown variant `{variant}` for {ty}") }
    }

    pub fn invalid_type(expected: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::NumU(_) | Value::NumI(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        DeError { msg: format!("invalid type: expected {expected}, found {kind}") }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

// ---------------------------------------------------------------------------
// Support functions used by derive-generated code
// ---------------------------------------------------------------------------

/// Derive support: view `v` as an object's field list.
pub fn __object_fields<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], DeError> {
    match v {
        Value::Object(fields) => Ok(fields),
        other => Err(DeError::invalid_type(ty, other)),
    }
}

/// Derive support: deserialize one named field; a missing field behaves as
/// `null` (so `Option<T>` fields may be absent) and otherwise reports a
/// missing-field error.
pub fn __field<T: Deserialize>(fields: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match fields.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => T::from_value(&Value::Null).map_err(|_| DeError::missing_field(name)),
    }
}

// ---------------------------------------------------------------------------
// Primitive and container impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::NumU(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::NumU(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t)))),
                    Value::NumI(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::invalid_type(stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 { Value::NumU(*self as u64) } else { Value::NumI(*self as i64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::NumU(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t)))),
                    Value::NumI(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::invalid_type(stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::NumU(n) => Ok(*n as f64),
            Value::NumI(n) => Ok(*n as f64),
            other => Err(DeError::invalid_type("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::invalid_type("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::invalid_type("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::invalid_type("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::invalid_type("2-tuple", other)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(DeError::invalid_type("3-tuple", other)),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::invalid_type("array", other)),
        }
    }
}

// Maps and sets serialize in ascending key order so that two structurally
// equal containers always produce the same Value tree regardless of hash
// iteration order — a requirement for snapshot digests and byte-identical
// JSON dumps. Keys are arbitrary serializable types, so a map is encoded as
// an array of `[key, value]` pairs rather than a JSON object.

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Array(
            entries
                .into_iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let pairs: Vec<(K, V)> = Vec::from_value(v)?;
        Ok(pairs.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let pairs: Vec<(K, V)> = Vec::from_value(v)?;
        Ok(pairs.into_iter().collect())
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Array(items.into_iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        Ok(items.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        Ok(items.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_round_trip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(7u32).to_value(), Value::NumU(7));
    }

    #[test]
    fn array_round_trip() {
        let a = [1u64, 2, 3];
        let v = a.to_value();
        let back: [u64; 3] = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, a);
        assert!(<[u64; 2]>::from_value(&v).is_err());
    }

    #[test]
    fn hash_containers_serialize_in_sorted_order() {
        let m: std::collections::HashMap<u32, &str> =
            [(3, "c"), (1, "a"), (2, "b")].into_iter().collect();
        let v = m.to_value();
        assert_eq!(
            v,
            Value::Array(vec![
                Value::Array(vec![Value::NumU(1), Value::Str("a".into())]),
                Value::Array(vec![Value::NumU(2), Value::Str("b".into())]),
                Value::Array(vec![Value::NumU(3), Value::Str("c".into())]),
            ])
        );
        let back: std::collections::HashMap<u32, String> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[&2], "b");

        let s: std::collections::HashSet<i64> = [5, -1, 2].into_iter().collect();
        assert_eq!(
            s.to_value(),
            Value::Array(vec![Value::NumI(-1), Value::NumU(2), Value::NumU(5)])
        );
    }

    #[test]
    fn vecdeque_round_trip() {
        let d: std::collections::VecDeque<u8> = [9, 8, 7].into_iter().collect();
        let back: std::collections::VecDeque<u8> = Deserialize::from_value(&d.to_value()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn signed_encoding_splits_on_sign() {
        assert_eq!((-3i64).to_value(), Value::NumI(-3));
        assert_eq!(3i64.to_value(), Value::NumU(3));
        assert_eq!(i64::from_value(&Value::NumU(9)).unwrap(), 9);
    }
}
