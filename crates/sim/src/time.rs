//! Simulated time.
//!
//! All timing in the simulator is expressed in integer nanoseconds on a
//! monotonic simulated clock. Using integers (rather than `f64` seconds)
//! keeps event ordering exact and platform-independent, which is a
//! prerequisite for the deterministic replay the experiment harness relies
//! on.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since simulation start.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed time since `earlier`. Saturates at zero if `earlier` is later,
    /// which cannot happen on a monotonic clock but keeps arithmetic total.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from (float) seconds, rounding to the nearest nanosecond.
    /// Negative inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs.max(0.0) * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds in this duration (as float, for reporting).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds in this duration (as float, for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Scale by a float factor, rounding to the nearest nanosecond.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> Self {
        SimDuration((self.0 as f64 * factor.max(0.0)).round() as u64)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> Self {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_micros(5);
        assert_eq!(t1.as_nanos(), 5_000);
        assert_eq!((t1 - t0).as_nanos(), 5_000);
        assert_eq!(t1.since(t0), SimDuration::from_micros(5));
    }

    #[test]
    fn subtraction_saturates() {
        let t0 = SimTime(100);
        let t1 = SimTime(50);
        assert_eq!((t1 - t0).as_nanos(), 0);
        assert_eq!(SimDuration(5).saturating_sub(SimDuration(10)), SimDuration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d.mul_f64(2.5), SimDuration::from_micros(25));
        assert_eq!(d * 3, SimDuration::from_micros(30));
        assert_eq!(d / 2, SimDuration::from_micros(5));
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration(500)), "500ns");
        assert_eq!(format!("{}", SimDuration::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimDuration::from_millis(2500)), "2.500s");
    }
}
