//! Typed errors for the UVM servicing pipeline.
//!
//! The servicing path historically panicked (or `debug_assert!`ed) on
//! conditions a real driver survives: a DMA mapping that cannot be built, a
//! copy-engine fault mid-migration, a host page-table operation that fails
//! transiently under memory pressure. [`UvmError`] gives every such
//! condition a typed, matchable representation so the driver can apply a
//! recovery *policy* (bounded retry, degradation to a remote mapping,
//! flush-and-replay) instead of tearing the process down, and so callers of
//! the simulation can observe exactly which stage of the pipeline gave up.
//!
//! Errors carry the smallest useful identity (a block or batch number) so a
//! failed run can be correlated against the fault log and batch records.

use core::fmt;

/// An error surfaced by the UVM servicing pipeline.
///
/// The first four variants correspond one-to-one to the named fault
/// [injection points](crate::inject::InjectionPoint); they are produced only
/// after the driver's bounded-retry recovery is exhausted (or, for
/// [`UvmError::CopyEngineFault`], when degradation to a remote mapping is
/// not possible). The remaining variants are structural: they replace
/// panics and debug asserts on driver-internal invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UvmError {
    /// Building the IOMMU/DMA mapping for a block failed (models radix-tree
    /// node allocation failure in `dma_map_sgt`), and retries were exhausted.
    DmaMapFailed {
        /// The 2 MiB VABlock whose mapping could not be built.
        block: u64,
    },
    /// The copy engine faulted while migrating a block's pages, retries were
    /// exhausted, and the block could not be degraded to a remote mapping.
    CopyEngineFault {
        /// The VABlock whose migration failed.
        block: u64,
    },
    /// A host page-table populate/teardown operation failed (models
    /// allocation failure inside the kernel's page-table walk), and retries
    /// were exhausted.
    HostPopulateFailed {
        /// The VABlock whose host page-table operation failed.
        block: u64,
    },
    /// The driver worker could not fetch the fault batch from the buffer
    /// (persistent stall), and retries were exhausted.
    BatchFetchStall {
        /// Sequence number of the batch that could not be fetched.
        batch: u64,
    },
    /// A fault referenced a page outside every managed allocation.
    UnmanagedAccess {
        /// The VABlock of the offending address.
        block: u64,
    },
    /// The cross-subsystem invariant audit found disagreeing state.
    InvariantViolation {
        /// Which subsystem pair disagreed (e.g. `"va-space/gpu"`).
        subsystem: &'static str,
        /// The VABlock exhibiting the violation.
        block: u64,
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// A checkpoint could not be restored: wrong format version, a
    /// different workload or configuration than the one it was taken
    /// against, or a malformed state tree.
    SnapshotInvalid {
        /// Human-readable description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for UvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UvmError::DmaMapFailed { block } => {
                write!(f, "DMA mapping failed for block {block} (retries exhausted)")
            }
            UvmError::CopyEngineFault { block } => {
                write!(f, "copy-engine fault migrating block {block} (retries exhausted)")
            }
            UvmError::HostPopulateFailed { block } => {
                write!(f, "host page-table populate failed for block {block} (retries exhausted)")
            }
            UvmError::BatchFetchStall { batch } => {
                write!(f, "fault batch {batch} fetch stalled (retries exhausted)")
            }
            UvmError::UnmanagedAccess { block } => {
                write!(f, "fault outside managed memory: block {block}")
            }
            UvmError::InvariantViolation { subsystem, block, detail } => {
                write!(f, "invariant violation [{subsystem}] block {block}: {detail}")
            }
            UvmError::SnapshotInvalid { detail } => {
                write!(f, "snapshot cannot be restored: {detail}")
            }
        }
    }
}

impl std::error::Error for UvmError {}

/// Convenience alias for pipeline results.
pub type UvmResult<T> = Result<T, UvmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_stage() {
        let msgs = [
            UvmError::DmaMapFailed { block: 3 }.to_string(),
            UvmError::CopyEngineFault { block: 4 }.to_string(),
            UvmError::HostPopulateFailed { block: 5 }.to_string(),
            UvmError::BatchFetchStall { batch: 6 }.to_string(),
            UvmError::UnmanagedAccess { block: 7 }.to_string(),
        ];
        assert!(msgs[0].contains("DMA") && msgs[0].contains('3'));
        assert!(msgs[1].contains("copy-engine") && msgs[1].contains('4'));
        assert!(msgs[2].contains("page-table") && msgs[2].contains('5'));
        assert!(msgs[3].contains("stalled") && msgs[3].contains('6'));
        assert!(msgs[4].contains("outside managed") && msgs[4].contains('7'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            UvmError::DmaMapFailed { block: 1 },
            UvmError::DmaMapFailed { block: 1 }
        );
        assert_ne!(
            UvmError::DmaMapFailed { block: 1 },
            UvmError::CopyEngineFault { block: 1 }
        );
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(UvmError::BatchFetchStall { batch: 9 });
        assert!(e.to_string().contains("batch 9"));
    }
}
