//! Snapshot support shared by every stateful crate.
//!
//! A system snapshot is assembled from per-subsystem [`serde::Value`] trees
//! (the vendored serde facade's self-describing intermediate form). This
//! module provides the two pieces that must be common across crates:
//!
//! * [`SNAPSHOT_VERSION`] — the on-disk format version. A snapshot written
//!   by one version of the simulator refuses to load into another, because
//!   replaying it would silently diverge.
//! * [`digest_value`] — a stable 64-bit digest of a `Value` tree. Subsystem
//!   digests are the currency of divergence detection: two runs agree on a
//!   batch exactly when all their subsystem digests agree, and the first
//!   digest that differs names the subsystem that broke determinism.
//!
//! The digest is FNV-1a over a type-tagged preorder walk of the tree. It is
//! a pure function of the tree's structure — independent of JSON rendering,
//! whitespace, or float formatting — and because the serde facade serializes
//! hash maps and sets in sorted key order, it is also independent of hash
//! iteration order.

use serde::Value;

/// Version of the snapshot format. Bump whenever the shape of any
/// subsystem's serialized state changes; restore rejects mismatches.
///
/// History: v1 — initial format; v2 — sustained failure domains (driver
/// health machine, memory-pressure reservation, GPU reset counters).
pub const SNAPSHOT_VERSION: u32 = 2;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

#[inline]
fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn walk(h: u64, v: &Value) -> u64 {
    // Each variant contributes a distinct tag byte so that structurally
    // different trees with equal leaf bytes (e.g. `"1"` vs `1`, `[1]` vs `1`)
    // cannot collide trivially.
    match v {
        Value::Null => fnv(h, &[0x00]),
        Value::Bool(b) => fnv(fnv(h, &[0x01]), &[u8::from(*b)]),
        Value::NumU(n) => fnv(fnv(h, &[0x02]), &n.to_le_bytes()),
        Value::NumI(n) => fnv(fnv(h, &[0x03]), &n.to_le_bytes()),
        Value::Float(f) => fnv(fnv(h, &[0x04]), &f.to_bits().to_le_bytes()),
        Value::Str(s) => {
            let h = fnv(fnv(h, &[0x05]), &(s.len() as u64).to_le_bytes());
            fnv(h, s.as_bytes())
        }
        Value::Array(items) => {
            let mut h = fnv(fnv(h, &[0x06]), &(items.len() as u64).to_le_bytes());
            for item in items {
                h = walk(h, item);
            }
            h
        }
        Value::Object(fields) => {
            let mut h = fnv(fnv(h, &[0x07]), &(fields.len() as u64).to_le_bytes());
            for (k, v) in fields {
                h = fnv(h, &(k.len() as u64).to_le_bytes());
                h = fnv(h, k.as_bytes());
                h = walk(h, v);
            }
            h
        }
    }
}

/// Stable FNV-1a digest of a serialized state tree.
///
/// Equal trees always digest equally; the digest depends only on the tree
/// (not on any textual rendering of it), so it can be compared across
/// processes, machines, and — as long as [`SNAPSHOT_VERSION`] matches —
/// simulator builds.
pub fn digest_value(v: &Value) -> u64 {
    walk(FNV_OFFSET, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_trees_digest_equal() {
        let a = Value::Object(vec![
            ("x".into(), Value::NumU(3)),
            ("y".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(digest_value(&a), digest_value(&a.clone()));
    }

    #[test]
    fn structural_differences_change_the_digest() {
        let cases = [
            Value::NumU(1),
            Value::NumI(-1),
            Value::Str("1".into()),
            Value::Array(vec![Value::NumU(1)]),
            Value::Float(1.0),
            Value::Bool(true),
            Value::Null,
            Value::Object(vec![("1".into(), Value::Null)]),
        ];
        let digests: Vec<u64> = cases.iter().map(digest_value).collect();
        for i in 0..digests.len() {
            for j in (i + 1)..digests.len() {
                assert_ne!(digests[i], digests[j], "cases {i} and {j} collided");
            }
        }
    }

    #[test]
    fn field_names_are_digested() {
        let a = Value::Object(vec![("a".into(), Value::NumU(1))]);
        let b = Value::Object(vec![("b".into(), Value::NumU(1))]);
        assert_ne!(digest_value(&a), digest_value(&b));
    }
}
