//! Analytic cost model.
//!
//! The simulator *counts* work (faults fetched, pages migrated, PTEs torn
//! down, radix-tree nodes allocated, IPIs sent) and the [`CostModel`] converts
//! those counts into simulated time. Keeping every constant in one struct
//! makes the calibration auditable and lets benchmarks sweep individual
//! costs (e.g. "what if the interconnect were 4× faster?") as ablations.
//!
//! The [`CostModel::titan_v`] preset is calibrated against the magnitudes
//! reported by Allen & Ge (SC '21) for a Titan V + PCIe 3.0 x16 + AMD Epyc
//! 7551P testbed: batch service times in the 10 µs – 10 ms range, data
//! transfer under 25 % of batch time, `unmap_mapping_range` and DMA-map
//! setup as the dominant management costs.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// All tunable cost constants, grouped by subsystem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    // ---- GPU fault generation ----
    /// Issue-to-issue latency between consecutive warp instructions.
    pub warp_instr_latency: SimDuration,
    /// Time for a fault to propagate from a μTLB to the GPU fault buffer.
    pub fault_insert_latency: SimDuration,
    /// Minimum spacing between consecutive fault-buffer insertions from the
    /// same μTLB (serialization at the GMMU write port).
    pub fault_insert_gap: SimDuration,
    /// Host-to-GPU latency of a fault replay (push-buffer method invocation
    /// plus μTLB wake).
    pub replay_latency: SimDuration,
    /// Maximum per-warp spread in replay wake-up (μTLB replay processing
    /// and warp re-scheduling are not instantaneous; warps resume staggered
    /// over this window, desynchronizing fault generation the way real
    /// hardware does).
    pub replay_wake_spread: SimDuration,

    // ---- Interrupt and worker wake ----
    /// GPU-to-host interrupt delivery latency.
    pub interrupt_latency: SimDuration,
    /// Time for a sleeping UVM worker thread to wake and reach the fault
    /// servicing loop after the interrupt.
    pub worker_wake_latency: SimDuration,

    // ---- Driver batch processing ----
    /// Per-fault cost of fetching an entry from the GPU fault buffer into the
    /// host-side cache (PCIe read of the fault record).
    pub fetch_per_fault: SimDuration,
    /// Per-fault cost of preprocessing: parsing, sorting into VABlock order,
    /// duplicate detection.
    pub preprocess_per_fault: SimDuration,
    /// Fixed cost per batch (locking, bookkeeping, replay issue, buffer
    /// flush).
    pub per_batch_fixed: SimDuration,
    /// Fixed cost per distinct VABlock serviced in a batch (block lookup,
    /// state machine entry/exit, per-block locking).
    pub per_vablock_fixed: SimDuration,
    /// Per-page cost of GPU page-table updates (PTE writes + TLB
    /// invalidates pushed through the push-buffer).
    pub pte_update_per_page: SimDuration,
    /// Per-page cost of population (zero-fill of freshly allocated GPU
    /// pages before migration).
    pub populate_per_page: SimDuration,

    // ---- DMA mapping setup (first GPU touch of a VABlock) ----
    /// Per-page cost of creating a host DMA mapping (IOMMU programming).
    pub dma_map_per_page: SimDuration,
    /// Cost of allocating one radix-tree node while storing reverse DMA
    /// mappings.
    pub radix_node_alloc: SimDuration,
    /// Per-insert base cost of the reverse-mapping radix tree.
    pub radix_insert: SimDuration,
    /// Probability that a DMA-setup episode hits the slow path (allocator
    /// pressure / tree growth), multiplying its cost by up to
    /// `dma_tail_max_factor`.
    pub dma_tail_prob: f64,
    /// Maximum heavy-tail multiplier for a slow DMA-setup episode.
    pub dma_tail_max_factor: f64,

    // ---- Host OS: unmap_mapping_range ----
    /// Base per-page cost of unmapping a CPU-resident page (PTE clear, rmap
    /// walk, dirty-page handling).
    pub unmap_per_page: SimDuration,
    /// Additional fraction of `unmap_per_page` added per *extra* CPU core
    /// that has the page mapped (cache-line bouncing, per-core PTE state).
    pub unmap_extra_mapper_factor: f64,
    /// Cost of one TLB-shootdown IPI round to one target core.
    pub tlb_shootdown_ipi: SimDuration,
    /// Fixed cost of entering `unmap_mapping_range` for a VABlock.
    pub unmap_fixed: SimDuration,

    // ---- Data movement ----
    /// Host-to-device bandwidth in bytes per simulated second.
    pub h2d_bandwidth: f64,
    /// Device-to-host bandwidth in bytes per simulated second.
    pub d2h_bandwidth: f64,
    /// Fixed latency of one copy-engine operation (descriptor setup + DMA
    /// launch + completion interrupt).
    pub copy_latency: SimDuration,

    // ---- Eviction ----
    /// Cost of a failed GPU memory allocation attempt (discovering the need
    /// to evict).
    pub alloc_fail: SimDuration,
    /// Fixed cost of evicting one VABlock (choosing the victim, state
    /// transitions), excluding the data transfer itself.
    pub evict_fixed: SimDuration,
    /// Cost of restarting a block's servicing step after an eviction.
    pub service_restart: SimDuration,

    // ---- Variance ----
    /// Multiplicative jitter spread applied to each batch's management time,
    /// reproducing scheduling noise on the host.
    pub service_jitter: f64,
}

impl CostModel {
    /// Calibration preset for the paper's testbed (Titan V, PCIe 3.0 x16,
    /// AMD Epyc 7551P, Fedora 33).
    pub fn titan_v() -> Self {
        CostModel {
            warp_instr_latency: SimDuration::from_nanos(8),
            fault_insert_latency: SimDuration::from_nanos(700),
            fault_insert_gap: SimDuration::from_nanos(60),
            replay_latency: SimDuration::from_micros(5),
            replay_wake_spread: SimDuration::from_micros(3),

            interrupt_latency: SimDuration::from_micros(3),
            worker_wake_latency: SimDuration::from_micros(6),

            // Cached BAR reads of fault entries are faster than the GMMU's
            // insertion gap (60 ns), so the driver's read loop always
            // catches up and the batch is bounded by the accumulation
            // window, not by racing the writer.
            fetch_per_fault: SimDuration::from_nanos(50),
            preprocess_per_fault: SimDuration::from_nanos(120),
            per_batch_fixed: SimDuration::from_micros(14),
            per_vablock_fixed: SimDuration::from_micros(16),
            pte_update_per_page: SimDuration::from_nanos(180),
            populate_per_page: SimDuration::from_nanos(380),

            dma_map_per_page: SimDuration::from_nanos(420),
            radix_node_alloc: SimDuration::from_nanos(900),
            radix_insert: SimDuration::from_nanos(90),
            dma_tail_prob: 0.06,
            dma_tail_max_factor: 14.0,

            unmap_per_page: SimDuration::from_nanos(650),
            unmap_extra_mapper_factor: 0.09,
            tlb_shootdown_ipi: SimDuration::from_micros(2),
            unmap_fixed: SimDuration::from_micros(4),

            h2d_bandwidth: 12.0e9,
            d2h_bandwidth: 12.0e9,
            copy_latency: SimDuration::from_micros(8),

            alloc_fail: SimDuration::from_micros(5),
            evict_fixed: SimDuration::from_micros(28),
            service_restart: SimDuration::from_micros(9),

            service_jitter: 0.18,
        }
    }

    /// Host-to-device transfer time for `bytes` in one copy-engine operation.
    pub fn h2d_time(&self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        self.copy_latency + SimDuration::from_secs_f64(bytes as f64 / self.h2d_bandwidth)
    }

    /// Device-to-host transfer time for `bytes` in one copy-engine operation.
    pub fn d2h_time(&self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        self.copy_latency + SimDuration::from_secs_f64(bytes as f64 / self.d2h_bandwidth)
    }

    /// Cost of unmapping `pages` CPU-resident pages that are mapped by
    /// `mapper_cores` distinct CPU cores (at least 1), including the TLB
    /// shootdown round. This is the model of `unmap_mapping_range()`:
    /// per-page work inflated by cross-core mapping state, plus one IPI per
    /// core that has live TLB entries.
    pub fn unmap_time(&self, pages: u64, mapper_cores: u32) -> SimDuration {
        if pages == 0 {
            return SimDuration::ZERO;
        }
        let mapper_cores = mapper_cores.max(1);
        let per_page = self
            .unmap_per_page
            .mul_f64(1.0 + self.unmap_extra_mapper_factor * f64::from(mapper_cores - 1));
        self.unmap_fixed + per_page * pages + self.tlb_shootdown_ipi * u64::from(mapper_cores)
    }

    /// Cost of populating (zero-filling) `pages` freshly allocated GPU pages.
    pub fn populate_time(&self, pages: u64) -> SimDuration {
        self.populate_per_page * pages
    }

    /// Cost of GPU page-table updates for `pages` pages.
    pub fn pte_time(&self, pages: u64) -> SimDuration {
        self.pte_update_per_page * pages
    }

    /// Cost of creating DMA mappings for `pages` pages whose reverse-mapping
    /// inserts allocated `radix_nodes` new radix-tree nodes.
    pub fn dma_setup_time(&self, pages: u64, radix_nodes: u64) -> SimDuration {
        self.dma_map_per_page * pages
            + self.radix_insert * pages
            + self.radix_node_alloc * radix_nodes
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::titan_v()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let cm = CostModel::titan_v();
        let one_mb = cm.h2d_time(1 << 20);
        let two_mb = cm.h2d_time(2 << 20);
        // Doubling bytes should roughly double the bandwidth-bound part.
        let bw_1 = one_mb - cm.copy_latency;
        let bw_2 = two_mb - cm.copy_latency;
        assert!(bw_2.as_nanos() >= 2 * bw_1.as_nanos() - 2);
        assert!(bw_2.as_nanos() <= 2 * bw_1.as_nanos() + 2);
        // 1 MiB at 12 GB/s is ~87 µs.
        assert!(bw_1 > SimDuration::from_micros(80), "{bw_1}");
        assert!(bw_1 < SimDuration::from_micros(95), "{bw_1}");
    }

    #[test]
    fn zero_bytes_costs_nothing() {
        let cm = CostModel::titan_v();
        assert_eq!(cm.h2d_time(0), SimDuration::ZERO);
        assert_eq!(cm.d2h_time(0), SimDuration::ZERO);
        assert_eq!(cm.unmap_time(0, 8), SimDuration::ZERO);
    }

    #[test]
    fn unmap_cost_grows_with_mapper_cores() {
        let cm = CostModel::titan_v();
        let single = cm.unmap_time(512, 1);
        let multi = cm.unmap_time(512, 32);
        assert!(multi > single * 2, "32-core unmap should be >2x 1-core: {single} vs {multi}");
        assert!(multi < single * 8, "but not absurdly larger: {single} vs {multi}");
    }

    #[test]
    fn unmap_clamps_mapper_cores_to_one() {
        let cm = CostModel::titan_v();
        assert_eq!(cm.unmap_time(16, 0), cm.unmap_time(16, 1));
    }

    #[test]
    fn dma_setup_accounts_nodes_and_pages() {
        let cm = CostModel::titan_v();
        let no_nodes = cm.dma_setup_time(512, 0);
        let with_nodes = cm.dma_setup_time(512, 10);
        assert_eq!(with_nodes - no_nodes, cm.radix_node_alloc * 10);
    }

    #[test]
    fn titan_v_magnitudes_are_sane() {
        let cm = CostModel::titan_v();
        // Full-VABlock unmap (512 pages, single core) should sit in the
        // hundreds of microseconds, comparable to a 2 MiB transfer — the
        // regime where unmap is a "significant portion" of batch time.
        let unmap = cm.unmap_time(512, 1);
        assert!(unmap > SimDuration::from_micros(150), "{unmap}");
        assert!(unmap < SimDuration::from_millis(2), "{unmap}");
        // DMA setup of a full block likewise.
        let dma = cm.dma_setup_time(512, 12);
        assert!(dma > SimDuration::from_micros(150), "{dma}");
        assert!(dma < SimDuration::from_millis(2), "{dma}");
    }

    #[test]
    fn cost_model_serde_round_trip() {
        let cm = CostModel::titan_v();
        let json = serde_json::to_string(&cm).unwrap();
        let back: CostModel = serde_json::from_str(&json).unwrap();
        assert_eq!(cm, back);
    }
}
