//! Shared memory-layout vocabulary.
//!
//! The UVM driver manages memory at three granularities, all of which appear
//! throughout the paper and therefore throughout this workspace:
//!
//! * **4 KiB pages** — the x86 host OS page size, the granularity at which
//!   GPU faults are reported and pages are tracked ([`PageNum`]).
//! * **64 KiB "big pages"** — the granularity the driver upgrades 4 KiB pages
//!   to during prefetching (emulating the Power9 page size); sixteen 4 KiB
//!   pages per big page.
//! * **2 MiB VABlocks** — the driver's logical management unit
//!   ([`VaBlockId`]); every allocation is split into VABlocks and each batch
//!   is serviced one VABlock at a time.

use serde::{Deserialize, Serialize};

/// Size of a host (x86) page in bytes: 4 KiB.
pub const PAGE_SIZE: u64 = 4096;

/// Size of a UVM "big page" in bytes: 64 KiB (the prefetcher's leaf region).
pub const BIG_PAGE_SIZE: u64 = 64 * 1024;

/// Number of 4 KiB pages per 64 KiB big page.
pub const PAGES_PER_BIG_PAGE: u64 = BIG_PAGE_SIZE / PAGE_SIZE;

/// Size of a VABlock in bytes: 2 MiB.
pub const VABLOCK_SIZE: u64 = 2 * 1024 * 1024;

/// Number of 4 KiB pages per 2 MiB VABlock (512).
pub const PAGES_PER_VABLOCK: u64 = VABLOCK_SIZE / PAGE_SIZE;

/// Number of 64 KiB big pages per VABlock (32).
pub const BIG_PAGES_PER_VABLOCK: u64 = VABLOCK_SIZE / BIG_PAGE_SIZE;

/// A virtual address within the unified (managed) address space.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtAddr(pub u64);

/// A 4 KiB virtual page number: `addr / PAGE_SIZE`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PageNum(pub u64);

/// A 2 MiB VABlock index: `addr / VABLOCK_SIZE`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VaBlockId(pub u64);

impl VirtAddr {
    /// The page containing this address.
    #[inline]
    pub fn page(self) -> PageNum {
        PageNum(self.0 / PAGE_SIZE)
    }

    /// The VABlock containing this address.
    #[inline]
    pub fn va_block(self) -> VaBlockId {
        VaBlockId(self.0 / VABLOCK_SIZE)
    }

    /// Byte offset within the containing page.
    #[inline]
    pub fn page_offset(self) -> u64 {
        self.0 % PAGE_SIZE
    }
}

impl PageNum {
    /// First byte address of this page.
    #[inline]
    pub fn base_addr(self) -> VirtAddr {
        VirtAddr(self.0 * PAGE_SIZE)
    }

    /// The VABlock containing this page.
    #[inline]
    pub fn va_block(self) -> VaBlockId {
        VaBlockId(self.0 / PAGES_PER_VABLOCK)
    }

    /// Index of this page within its VABlock, in `0..PAGES_PER_VABLOCK`.
    #[inline]
    pub fn index_in_block(self) -> usize {
        (self.0 % PAGES_PER_VABLOCK) as usize
    }

    /// Index of the 64 KiB big page containing this page within its VABlock,
    /// in `0..BIG_PAGES_PER_VABLOCK`.
    #[inline]
    pub fn big_page_in_block(self) -> usize {
        self.index_in_block() / PAGES_PER_BIG_PAGE as usize
    }

    /// The page `n` positions after this one.
    #[inline]
    pub fn offset(self, n: u64) -> PageNum {
        PageNum(self.0 + n)
    }
}

impl VaBlockId {
    /// First byte address of this VABlock.
    #[inline]
    pub fn base_addr(self) -> VirtAddr {
        VirtAddr(self.0 * VABLOCK_SIZE)
    }

    /// First page of this VABlock.
    #[inline]
    pub fn first_page(self) -> PageNum {
        PageNum(self.0 * PAGES_PER_VABLOCK)
    }

    /// The page at `index` (in `0..PAGES_PER_VABLOCK`) within this VABlock.
    #[inline]
    pub fn page_at(self, index: usize) -> PageNum {
        debug_assert!((index as u64) < PAGES_PER_VABLOCK);
        PageNum(self.0 * PAGES_PER_VABLOCK + index as u64)
    }

    /// Iterate over all 512 pages of this VABlock.
    pub fn pages(self) -> impl Iterator<Item = PageNum> {
        let first = self.first_page().0;
        (first..first + PAGES_PER_VABLOCK).map(PageNum)
    }
}

/// A contiguous managed allocation, aligned to VABlock boundaries the way the
/// UVM runtime aligns `cudaMallocManaged` regions for its internal tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Allocation {
    /// First address (VABlock-aligned).
    pub base: VirtAddr,
    /// Length in bytes (multiple of `PAGE_SIZE`).
    pub len: u64,
}

impl Allocation {
    /// Construct an allocation; `base` must be VABlock-aligned and `len`
    /// page-aligned.
    pub fn new(base: VirtAddr, len: u64) -> Self {
        assert_eq!(base.0 % VABLOCK_SIZE, 0, "allocation base must be VABlock-aligned");
        assert_eq!(len % PAGE_SIZE, 0, "allocation length must be page-aligned");
        Allocation { base, len }
    }

    /// One-past-the-end address.
    #[inline]
    pub fn end(&self) -> VirtAddr {
        VirtAddr(self.base.0 + self.len)
    }

    /// Whether `addr` falls inside this allocation.
    #[inline]
    pub fn contains(&self, addr: VirtAddr) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Number of 4 KiB pages spanned.
    #[inline]
    pub fn num_pages(&self) -> u64 {
        self.len / PAGE_SIZE
    }

    /// Number of VABlocks spanned (the final block may be partial).
    #[inline]
    pub fn num_va_blocks(&self) -> u64 {
        self.len.div_ceil(VABLOCK_SIZE)
    }

    /// Iterate over the VABlocks this allocation spans.
    pub fn va_blocks(&self) -> impl Iterator<Item = VaBlockId> {
        let first = self.base.va_block().0;
        let n = self.num_va_blocks();
        (first..first + n).map(VaBlockId)
    }

    /// The address of byte `offset` into the allocation.
    #[inline]
    pub fn addr(&self, offset: u64) -> VirtAddr {
        debug_assert!(offset < self.len, "offset {offset} out of bounds");
        VirtAddr(self.base.0 + offset)
    }

    /// The `i`-th page of the allocation.
    #[inline]
    pub fn page(&self, i: u64) -> PageNum {
        debug_assert!(i < self.num_pages());
        PageNum(self.base.page().0 + i)
    }
}

/// Hands out VABlock-aligned, non-overlapping allocations from a growing
/// virtual address space, mimicking the managed-memory allocator's address
/// assignment. Address zero is never handed out (kept as a null guard).
#[derive(Debug, Clone)]
pub struct AddressSpaceAllocator {
    next_block: u64,
}

impl Default for AddressSpaceAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpaceAllocator {
    /// A fresh address space. The first VABlock is reserved as a guard.
    pub fn new() -> Self {
        AddressSpaceAllocator { next_block: 1 }
    }

    /// Allocate `len` bytes (rounded up to whole pages), VABlock-aligned.
    pub fn alloc(&mut self, len: u64) -> Allocation {
        let len = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let base = VirtAddr(self.next_block * VABLOCK_SIZE);
        let blocks = len.div_ceil(VABLOCK_SIZE);
        self.next_block += blocks;
        Allocation::new(base, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_constants_are_consistent() {
        assert_eq!(PAGES_PER_VABLOCK, 512);
        assert_eq!(BIG_PAGES_PER_VABLOCK, 32);
        assert_eq!(PAGES_PER_BIG_PAGE, 16);
        assert_eq!(PAGES_PER_BIG_PAGE * BIG_PAGES_PER_VABLOCK, PAGES_PER_VABLOCK);
    }

    #[test]
    fn address_to_page_to_block_conversions() {
        let a = VirtAddr(VABLOCK_SIZE + 3 * PAGE_SIZE + 17);
        assert_eq!(a.page(), PageNum(512 + 3));
        assert_eq!(a.va_block(), VaBlockId(1));
        assert_eq!(a.page_offset(), 17);
        assert_eq!(a.page().va_block(), VaBlockId(1));
        assert_eq!(a.page().index_in_block(), 3);
        assert_eq!(a.page().big_page_in_block(), 0);
        assert_eq!(PageNum(512 + 16).big_page_in_block(), 1);
    }

    #[test]
    fn vablock_pages_iterates_all_512() {
        let blk = VaBlockId(7);
        let pages: Vec<PageNum> = blk.pages().collect();
        assert_eq!(pages.len(), 512);
        assert_eq!(pages[0], blk.first_page());
        assert_eq!(pages[511], blk.page_at(511));
        assert!(pages.iter().all(|p| p.va_block() == blk));
    }

    #[test]
    fn allocation_geometry() {
        let alloc = Allocation::new(VirtAddr(VABLOCK_SIZE), 3 * VABLOCK_SIZE + PAGE_SIZE);
        assert_eq!(alloc.num_pages(), 3 * 512 + 1);
        assert_eq!(alloc.num_va_blocks(), 4);
        let blocks: Vec<VaBlockId> = alloc.va_blocks().collect();
        assert_eq!(blocks, vec![VaBlockId(1), VaBlockId(2), VaBlockId(3), VaBlockId(4)]);
        assert!(alloc.contains(alloc.base));
        assert!(!alloc.contains(alloc.end()));
    }

    #[test]
    #[should_panic(expected = "VABlock-aligned")]
    fn misaligned_allocation_rejected() {
        let _ = Allocation::new(VirtAddr(PAGE_SIZE), PAGE_SIZE);
    }

    #[test]
    fn allocator_hands_out_disjoint_blocks() {
        let mut asa = AddressSpaceAllocator::new();
        let a = asa.alloc(VABLOCK_SIZE / 2);
        let b = asa.alloc(3 * VABLOCK_SIZE);
        let c = asa.alloc(1); // rounds up to one page
        assert_eq!(a.base, VirtAddr(VABLOCK_SIZE));
        assert_eq!(b.base, VirtAddr(2 * VABLOCK_SIZE));
        assert_eq!(c.base, VirtAddr(5 * VABLOCK_SIZE));
        assert_eq!(c.len, PAGE_SIZE);
        assert!(!a.contains(b.base));
    }
}
