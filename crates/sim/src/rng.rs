//! Deterministic random source.
//!
//! All stochastic elements of the simulation (service-time jitter, spurious
//! μTLB wake-ups, random-access workloads) draw from a [`DetRng`] derived
//! from the experiment seed, so a run is a pure function of its
//! configuration.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// A seeded random source with simulation-oriented helpers.
///
/// The generator is a self-contained xoshiro256++ (the same family rand's
/// `SmallRng` uses) seeded through SplitMix64, so the simulation has no
/// external RNG dependency and every stream is a pure function of its seed
/// across toolchain upgrades.
///
/// The full generator state is its four 64-bit words, so `DetRng` is
/// serializable: a restored stream continues exactly where the snapshotted
/// one left off.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetRng {
    state: [u64; 4],
}

impl DetRng {
    /// Create from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion: guarantees a non-zero, well-mixed state even
        // for small consecutive seeds like 0, 1, 2.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        DetRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit draw (xoshiro256++).
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derive an independent child stream. Used to give each subsystem its
    /// own stream so adding draws in one subsystem does not perturb another.
    pub fn fork(&mut self, salt: u64) -> DetRng {
        let seed = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::new(seed)
    }

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Returns 0 when `n == 0`.
    ///
    /// Lemire multiply-shift reduction; the modulo bias is at most `n / 2^64`
    /// and irrelevant for simulation-sized ranges.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Multiplicative jitter: a factor uniform in `[1 - spread, 1 + spread]`.
    ///
    /// Applied to cost-model durations to reproduce the run-to-run variance
    /// the paper's batch scatter plots show without destroying determinism.
    #[inline]
    pub fn jitter_factor(&mut self, spread: f64) -> f64 {
        1.0 + (self.unit() * 2.0 - 1.0) * spread
    }

    /// Apply multiplicative jitter to a duration.
    #[inline]
    pub fn jitter(&mut self, d: SimDuration, spread: f64) -> SimDuration {
        d.mul_f64(self.jitter_factor(spread))
    }

    /// A heavy-tailed (bounded Pareto-like) factor `>= 1`, occasionally much
    /// larger. Models intermittent high-cost kernel operations such as
    /// radix-tree growth: most draws are ~1, a small fraction are up to
    /// `max_factor`.
    pub fn heavy_tail(&mut self, tail_prob: f64, max_factor: f64) -> f64 {
        if self.chance(tail_prob) {
            // Uniform in log-space between 2x and max_factor.
            let lo = 2.0f64.ln();
            let hi = max_factor.max(2.0).ln();
            (lo + self.unit() * (hi - lo)).exp()
        } else {
            1.0
        }
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        if xs.len() < 2 {
            return;
        }
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.below(1 << 30) == b.below(1 << 30)).count();
        assert!(same < 4, "streams should diverge, {same} collisions");
    }

    #[test]
    fn forked_streams_are_independent_of_later_draws() {
        let mut a = DetRng::new(7);
        let mut fork1 = a.fork(1);
        let v1: Vec<u64> = (0..10).map(|_| fork1.below(1000)).collect();

        let mut b = DetRng::new(7);
        let mut fork2 = b.fork(1);
        // Drawing extra values from the parent after forking must not change
        // the child's stream.
        let _ = b.below(10);
        let v2: Vec<u64> = (0..10).map(|_| fork2.below(1000)).collect();
        assert_eq!(v1, v2);
    }

    #[test]
    fn below_zero_is_zero() {
        let mut r = DetRng::new(3);
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn jitter_stays_within_spread() {
        let mut r = DetRng::new(9);
        let d = SimDuration::from_micros(100);
        for _ in 0..1000 {
            let j = r.jitter(d, 0.25);
            assert!(j >= SimDuration::from_micros(75), "{j:?}");
            assert!(j <= SimDuration::from_micros(125), "{j:?}");
        }
    }

    #[test]
    fn heavy_tail_is_mostly_one() {
        let mut r = DetRng::new(11);
        let draws: Vec<f64> = (0..10_000).map(|_| r.heavy_tail(0.02, 50.0)).collect();
        let ones = draws.iter().filter(|&&f| f == 1.0).count();
        let tail = draws.iter().filter(|&&f| f > 1.0).count();
        assert!(ones > 9_500, "expected mostly unit draws, got {ones}");
        assert!(tail > 100, "expected some tail draws, got {tail}");
        assert!(draws.iter().all(|&f| f <= 50.0 + 1e-9));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::new(5);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "shuffle left input unchanged");
    }
}
