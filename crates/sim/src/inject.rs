//! Deterministic fault injection.
//!
//! A [`FaultPlan`] names *where* the pipeline should fail and *how often*;
//! an [`Injector`] turns the plan into per-point [`PointInjector`]s that the
//! owning subsystems consult at their injection sites. Failures trigger
//! either probabilistically (an independent [`DetRng`] stream per point,
//! forked from the experiment seed) or at scheduled [`SimTime`]s, optionally
//! in bursts — a scheduled overflow trigger with `burst = 32` models a
//! fault-buffer overflow *storm*, not a single dropped entry.
//!
//! Determinism properties:
//!
//! * Each point draws from its own forked stream, so enabling injection at
//!   one point never perturbs the draw sequence of another, and two runs of
//!   the same plan and seed produce byte-identical traces.
//! * A disabled point ([`PointPlan::default`]) performs **zero** RNG draws,
//!   so a run with an empty plan is bit-for-bit identical to a run built
//!   before this module existed.
//!
//! The first five injection points are *transient*: they mirror the
//! one-shot failure modes the paper's pipeline is exposed to in a real
//! driver — replayable-buffer overflow storms, DMA-map (IOMMU) failures,
//! copy-engine faults during migration, host page-table populate failures,
//! and batch-fetch stalls of the driver worker. The last two are
//! *sustained failure domains*: device memory pressure (capacity shrinks
//! while the point keeps firing, forcing emergency eviction) and GPU reset
//! (fault buffer and μTLB state lost; the driver re-attaches and replays).
//! The driver consults a sustained point once per batch, so a trigger with
//! `burst = N` models N consecutive batches inside the failure window.

use serde::{Deserialize, Serialize};

use crate::rng::DetRng;
use crate::time::SimTime;

/// A named site in the servicing pipeline where failures can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InjectionPoint {
    /// The GPU's replayable fault buffer drops incoming faults as if it
    /// overflowed (an overflow storm when triggered with a burst).
    FaultBufferOverflow,
    /// Building a block's DMA/IOMMU mapping fails.
    DmaMapFailure,
    /// The copy engine faults while migrating a block.
    CopyEngineFault,
    /// A host page-table populate/teardown operation fails.
    HostPopulateFailure,
    /// The driver worker stalls fetching a fault batch.
    BatchFetchStall,
    /// Sustained device memory pressure: while the point fires (once per
    /// batch), part of device memory is reserved away from UVM and the
    /// driver must emergency-evict down to the shrunken capacity.
    DeviceMemoryPressure,
    /// GPU reset: the fault buffer, GMMU arbitration queues, and μTLB
    /// tracking state are lost; the driver pays a re-attach cost and the
    /// lost faults regenerate after the next replay.
    GpuReset,
}

impl InjectionPoint {
    /// All points, in a fixed order (used for seed derivation). New points
    /// are appended, never inserted: each fork consumes one draw from the
    /// injector root stream, so append-only ordering keeps the streams of
    /// pre-existing points bit-identical across simulator versions.
    pub const ALL: [InjectionPoint; 7] = [
        InjectionPoint::FaultBufferOverflow,
        InjectionPoint::DmaMapFailure,
        InjectionPoint::CopyEngineFault,
        InjectionPoint::HostPopulateFailure,
        InjectionPoint::BatchFetchStall,
        InjectionPoint::DeviceMemoryPressure,
        InjectionPoint::GpuReset,
    ];

    /// The five transient (one-shot operation failure) points — the
    /// original PR 1 failure model, excluding the sustained domains.
    pub const TRANSIENT: [InjectionPoint; 5] = [
        InjectionPoint::FaultBufferOverflow,
        InjectionPoint::DmaMapFailure,
        InjectionPoint::CopyEngineFault,
        InjectionPoint::HostPopulateFailure,
        InjectionPoint::BatchFetchStall,
    ];

    /// Stable short name (used in reports).
    pub fn name(self) -> &'static str {
        match self {
            InjectionPoint::FaultBufferOverflow => "overflow",
            InjectionPoint::DmaMapFailure => "dma-map",
            InjectionPoint::CopyEngineFault => "copy-engine",
            InjectionPoint::HostPopulateFailure => "host-populate",
            InjectionPoint::BatchFetchStall => "fetch-stall",
            InjectionPoint::DeviceMemoryPressure => "mem-pressure",
            InjectionPoint::GpuReset => "gpu-reset",
        }
    }

    fn salt(self) -> u64 {
        // Distinct odd salts so forked streams are unrelated.
        match self {
            InjectionPoint::FaultBufferOverflow => 0x1_0F1,
            InjectionPoint::DmaMapFailure => 0x3_0D3,
            InjectionPoint::CopyEngineFault => 0x5_0C5,
            InjectionPoint::HostPopulateFailure => 0x7_0B7,
            InjectionPoint::BatchFetchStall => 0x9_0A9,
            InjectionPoint::DeviceMemoryPressure => 0xB_093,
            InjectionPoint::GpuReset => 0xD_087,
        }
    }
}

/// Failure configuration for a single injection point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointPlan {
    /// Per-operation failure probability in `[0, 1]`. `0.0` disables the
    /// probabilistic trigger (and performs no RNG draws).
    pub probability: f64,
    /// Scheduled one-shot triggers: the point fails on the first operation
    /// at or after each listed time. Unsorted input is accepted.
    pub at: Vec<SimTime>,
    /// Consecutive operations failed per trigger (`>= 1`). A burst models a
    /// storm: e.g. an overflow trigger with `burst = 32` drops the next 32
    /// faults arriving at the buffer.
    pub burst: u32,
}

impl Default for PointPlan {
    fn default() -> Self {
        PointPlan { probability: 0.0, at: Vec::new(), burst: 1 }
    }
}

impl PointPlan {
    /// A plan that fails each operation independently with probability `p`.
    pub fn with_probability(p: f64) -> Self {
        PointPlan { probability: p, ..PointPlan::default() }
    }

    /// A plan with one scheduled trigger at `t` failing `burst` operations.
    pub fn scheduled(t: SimTime, burst: u32) -> Self {
        PointPlan { at: vec![t], burst: burst.max(1), ..PointPlan::default() }
    }

    /// Whether this plan can ever fire.
    pub fn is_enabled(&self) -> bool {
        self.probability > 0.0 || !self.at.is_empty()
    }
}

/// A complete fault plan: one [`PointPlan`] per injection point.
///
/// The default plan is empty (injection fully disabled); it is what every
/// paper-figure experiment runs with.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Replayable fault-buffer overflow storms.
    pub overflow: PointPlan,
    /// DMA/IOMMU map failures.
    pub dma_map: PointPlan,
    /// Copy-engine faults during migration.
    pub copy_engine: PointPlan,
    /// Host page-table populate failures.
    pub host_populate: PointPlan,
    /// Driver batch-fetch stalls.
    pub fetch_stall: PointPlan,
    /// Sustained device memory pressure windows.
    pub mem_pressure: PointPlan,
    /// GPU resets (fault buffer + μTLB state lost).
    pub gpu_reset: PointPlan,
}

impl FaultPlan {
    /// The empty plan: injection disabled everywhere.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan failing every **transient** point independently with
    /// probability `p` (the shape the `ext_inject` sweep uses). The
    /// sustained domains (memory pressure, GPU reset) stay disabled; they
    /// are batch-scoped regimes, not per-operation failures, and are
    /// composed explicitly (e.g. by the chaos fuzzer).
    pub fn uniform(p: f64) -> Self {
        let mut plan = FaultPlan::none();
        for point in InjectionPoint::TRANSIENT {
            plan.point_mut(point).probability = p;
        }
        plan
    }

    /// The configuration of one point.
    pub fn point(&self, p: InjectionPoint) -> &PointPlan {
        match p {
            InjectionPoint::FaultBufferOverflow => &self.overflow,
            InjectionPoint::DmaMapFailure => &self.dma_map,
            InjectionPoint::CopyEngineFault => &self.copy_engine,
            InjectionPoint::HostPopulateFailure => &self.host_populate,
            InjectionPoint::BatchFetchStall => &self.fetch_stall,
            InjectionPoint::DeviceMemoryPressure => &self.mem_pressure,
            InjectionPoint::GpuReset => &self.gpu_reset,
        }
    }

    /// Mutable access to the configuration of one point.
    pub fn point_mut(&mut self, p: InjectionPoint) -> &mut PointPlan {
        match p {
            InjectionPoint::FaultBufferOverflow => &mut self.overflow,
            InjectionPoint::DmaMapFailure => &mut self.dma_map,
            InjectionPoint::CopyEngineFault => &mut self.copy_engine,
            InjectionPoint::HostPopulateFailure => &mut self.host_populate,
            InjectionPoint::BatchFetchStall => &mut self.fetch_stall,
            InjectionPoint::DeviceMemoryPressure => &mut self.mem_pressure,
            InjectionPoint::GpuReset => &mut self.gpu_reset,
        }
    }

    /// Builder: set one point's plan.
    pub fn with(mut self, p: InjectionPoint, plan: PointPlan) -> Self {
        *self.point_mut(p) = plan;
        self
    }

    /// Whether any point can fire.
    pub fn is_enabled(&self) -> bool {
        InjectionPoint::ALL.iter().any(|&p| self.point(p).is_enabled())
    }
}

/// The runtime state of one injection point, owned by the subsystem that
/// hosts the site (the fault buffer, the DMA space, the host OS, or the
/// driver itself).
///
/// Serializable in full — schedule cursor, active burst, RNG stream, and
/// draw/fire counters — so a restored run replays the exact remaining
/// failure pattern of the snapshotted one.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PointInjector {
    probability: f64,
    /// Sorted schedule of one-shot triggers; `next_at` indexes the first
    /// unconsumed entry.
    schedule: Vec<SimTime>,
    next_at: usize,
    /// Remaining operations to fail from an active burst.
    burst_left: u32,
    burst: u32,
    rng: DetRng,
    fired: u64,
    /// Which site this injector serves, for trace attribution. `None` for
    /// the disabled placeholder (and for pre-tracing snapshots, which
    /// lack the field).
    point: Option<InjectionPoint>,
}

impl Default for PointInjector {
    fn default() -> Self {
        PointInjector::disabled()
    }
}

impl PointInjector {
    /// An injector that never fires and never draws.
    pub fn disabled() -> Self {
        PointInjector {
            probability: 0.0,
            schedule: Vec::new(),
            next_at: 0,
            burst_left: 0,
            burst: 1,
            rng: DetRng::new(0),
            fired: 0,
            point: None,
        }
    }

    /// Build from a plan with a dedicated RNG stream.
    pub fn new(plan: &PointPlan, rng: DetRng) -> Self {
        PointInjector::for_point(plan, rng, None)
    }

    fn for_point(plan: &PointPlan, rng: DetRng, point: Option<InjectionPoint>) -> Self {
        let mut schedule = plan.at.clone();
        schedule.sort_unstable();
        PointInjector {
            probability: plan.probability.clamp(0.0, 1.0),
            schedule,
            next_at: 0,
            burst_left: 0,
            burst: plan.burst.max(1),
            rng,
            fired: 0,
            point,
        }
    }

    /// Whether this injector can still fire.
    pub fn is_enabled(&self) -> bool {
        self.probability > 0.0 || self.next_at < self.schedule.len() || self.burst_left > 0
    }

    /// Consult the injector at an injection site. Returns `true` if the
    /// operation at simulated time `now` must fail.
    ///
    /// Disabled injectors return `false` without drawing from the RNG, so an
    /// empty [`FaultPlan`] leaves every other random stream untouched.
    pub fn should_fail(&mut self, now: SimTime) -> bool {
        if self.burst_left > 0 {
            self.burst_left -= 1;
            self.fire(now);
            return true;
        }
        if self.next_at < self.schedule.len() && now >= self.schedule[self.next_at] {
            self.next_at += 1;
            self.burst_left = self.burst - 1;
            self.fire(now);
            return true;
        }
        if self.probability > 0.0 && self.rng.chance(self.probability) {
            self.burst_left = self.burst - 1;
            self.fire(now);
            return true;
        }
        false
    }

    fn fire(&mut self, now: SimTime) {
        self.fired += 1;
        uvm_trace::emit_instant(now.0, || uvm_trace::TraceEvent::InjectionFired {
            point: self.point.map(InjectionPoint::name).unwrap_or("unattributed").to_string(),
        });
    }

    /// Total failures produced so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }
}

/// Factory distributing [`PointInjector`]s to the subsystems that own the
/// injection sites.
///
/// The injector root stream is derived from the experiment seed with a salt
/// unrelated to the driver and GPU streams, and each point forks its own
/// child, so draw counts at one site never shift another site's sequence.
#[derive(Debug)]
pub struct Injector {
    points: [PointInjector; 7],
}

impl Injector {
    /// Build all point injectors for `plan` under `seed`.
    pub fn new(plan: &FaultPlan, seed: u64) -> Self {
        let mut root = DetRng::new(seed ^ 0x001A_F1EC_7ED0_u64);
        let points = InjectionPoint::ALL
            .map(|p| PointInjector::for_point(plan.point(p), root.fork(p.salt()), Some(p)));
        Injector { points }
    }

    /// Take ownership of one point's injector (replacing it with a disabled
    /// one). Call once per point while wiring a system.
    pub fn take(&mut self, p: InjectionPoint) -> PointInjector {
        let idx = InjectionPoint::ALL.iter().position(|&q| q == p).expect("point in ALL");
        std::mem::take(&mut self.points[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires_and_never_draws() {
        let mut inj = Injector::new(&FaultPlan::none(), 42);
        for p in InjectionPoint::ALL {
            let mut pi = inj.take(p);
            assert!(!pi.is_enabled());
            for t in 0..1000 {
                assert!(!pi.should_fail(SimTime(t)));
            }
            assert_eq!(pi.fired(), 0);
        }
    }

    #[test]
    fn probability_one_always_fires() {
        let plan = FaultPlan::none()
            .with(InjectionPoint::DmaMapFailure, PointPlan::with_probability(1.0));
        let mut inj = Injector::new(&plan, 7);
        let mut pi = inj.take(InjectionPoint::DmaMapFailure);
        for t in 0..100 {
            assert!(pi.should_fail(SimTime(t)));
        }
        assert_eq!(pi.fired(), 100);
    }

    #[test]
    fn probabilistic_rate_is_roughly_honored() {
        let plan =
            FaultPlan::none().with(InjectionPoint::CopyEngineFault, PointPlan::with_probability(0.1));
        let mut inj = Injector::new(&plan, 11);
        let mut pi = inj.take(InjectionPoint::CopyEngineFault);
        let fires = (0..10_000).filter(|&t| pi.should_fail(SimTime(t))).count();
        assert!((800..1200).contains(&fires), "expected ~1000 fires, got {fires}");
    }

    #[test]
    fn scheduled_trigger_fires_once_at_or_after_deadline() {
        let plan = FaultPlan::none()
            .with(InjectionPoint::BatchFetchStall, PointPlan::scheduled(SimTime(500), 1));
        let mut inj = Injector::new(&plan, 3);
        let mut pi = inj.take(InjectionPoint::BatchFetchStall);
        assert!(!pi.should_fail(SimTime(0)));
        assert!(!pi.should_fail(SimTime(499)));
        assert!(pi.should_fail(SimTime(500)));
        assert!(!pi.should_fail(SimTime(501)));
        assert_eq!(pi.fired(), 1);
    }

    #[test]
    fn burst_fails_consecutive_operations() {
        let plan = FaultPlan::none()
            .with(InjectionPoint::FaultBufferOverflow, PointPlan::scheduled(SimTime(10), 4));
        let mut inj = Injector::new(&plan, 5);
        let mut pi = inj.take(InjectionPoint::FaultBufferOverflow);
        assert!(!pi.should_fail(SimTime(0)));
        // Trigger + 3 more from the burst.
        assert!(pi.should_fail(SimTime(10)));
        assert!(pi.should_fail(SimTime(10)));
        assert!(pi.should_fail(SimTime(11)));
        assert!(pi.should_fail(SimTime(12)));
        assert!(!pi.should_fail(SimTime(13)));
        assert_eq!(pi.fired(), 4);
    }

    #[test]
    fn same_seed_same_fire_pattern() {
        let plan = FaultPlan::uniform(0.05);
        let pattern = |seed: u64| -> Vec<bool> {
            let mut inj = Injector::new(&plan, seed);
            let mut pi = inj.take(InjectionPoint::HostPopulateFailure);
            (0..500).map(|t| pi.should_fail(SimTime(t))).collect()
        };
        assert_eq!(pattern(99), pattern(99));
        assert_ne!(pattern(99), pattern(100), "different seeds should diverge");
    }

    #[test]
    fn points_draw_from_independent_streams() {
        // The dma-map pattern must not depend on whether another point is
        // enabled or how often it is consulted.
        let solo = FaultPlan::none()
            .with(InjectionPoint::DmaMapFailure, PointPlan::with_probability(0.2));
        let both = solo
            .clone()
            .with(InjectionPoint::CopyEngineFault, PointPlan::with_probability(0.5));

        let run = |plan: &FaultPlan, consult_other: bool| -> Vec<bool> {
            let mut inj = Injector::new(plan, 123);
            let mut dma = inj.take(InjectionPoint::DmaMapFailure);
            let mut ce = inj.take(InjectionPoint::CopyEngineFault);
            (0..200)
                .map(|t| {
                    if consult_other {
                        let _ = ce.should_fail(SimTime(t));
                    }
                    dma.should_fail(SimTime(t))
                })
                .collect()
        };
        assert_eq!(run(&solo, false), run(&both, true));
    }

    #[test]
    fn uniform_plan_enables_every_transient_point() {
        let plan = FaultPlan::uniform(0.3);
        assert!(plan.is_enabled());
        for p in InjectionPoint::TRANSIENT {
            assert!(plan.point(p).is_enabled(), "{} should be enabled", p.name());
            assert_eq!(plan.point(p).probability, 0.3);
        }
        // The sustained domains are regimes, not per-op failures: uniform
        // leaves them disabled.
        assert!(!plan.point(InjectionPoint::DeviceMemoryPressure).is_enabled());
        assert!(!plan.point(InjectionPoint::GpuReset).is_enabled());
        assert!(!FaultPlan::none().is_enabled());
    }

    #[test]
    fn sustained_points_compose_like_any_other() {
        // A pressure window of 3 batches starting at t=100, plus one
        // scheduled reset: both fire on their own streams without touching
        // the transient points.
        let plan = FaultPlan::none()
            .with(InjectionPoint::DeviceMemoryPressure, PointPlan::scheduled(SimTime(100), 3))
            .with(InjectionPoint::GpuReset, PointPlan::scheduled(SimTime(500), 1));
        assert!(plan.is_enabled());
        let mut inj = Injector::new(&plan, 17);
        let mut pressure = inj.take(InjectionPoint::DeviceMemoryPressure);
        let mut reset = inj.take(InjectionPoint::GpuReset);
        // Consulted once per batch: three consecutive pressured batches.
        assert!(!pressure.should_fail(SimTime(0)));
        assert!(pressure.should_fail(SimTime(100)));
        assert!(pressure.should_fail(SimTime(200)));
        assert!(pressure.should_fail(SimTime(300)));
        assert!(!pressure.should_fail(SimTime(400)));
        assert!(!reset.should_fail(SimTime(400)));
        assert!(reset.should_fail(SimTime(500)));
        assert!(!reset.should_fail(SimTime(600)));
    }

    #[test]
    fn appending_sustained_points_preserved_transient_streams() {
        // Regression pin: the per-point fire patterns of the original five
        // transient points under seed 123 / p = 0.2 must never change —
        // new injection points are appended to `ALL`, so earlier forks of
        // the root stream are unaffected.
        let plan = FaultPlan::none()
            .with(InjectionPoint::DmaMapFailure, PointPlan::with_probability(0.2));
        let mut inj = Injector::new(&plan, 123);
        let mut dma = inj.take(InjectionPoint::DmaMapFailure);
        let fires: Vec<u64> =
            (0..64).filter(|&t| dma.should_fail(SimTime(t))).collect();
        // Pattern captured from the five-point injector before the
        // sustained domains were appended.
        assert_eq!(fires, vec![3, 5, 7, 14, 21, 32, 33, 34, 35, 44, 47, 48, 57, 58, 60]);
    }

    #[test]
    fn plan_serde_round_trips() {
        let plan = FaultPlan::uniform(0.125)
            .with(InjectionPoint::FaultBufferOverflow, PointPlan::scheduled(SimTime(777), 32));
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
