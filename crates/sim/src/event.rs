//! Deterministic discrete-event queue.
//!
//! A thin priority queue keyed by [`SimTime`] with a monotonically increasing
//! sequence number breaking ties, so that events scheduled for the same
//! instant pop in FIFO order. This is what makes whole-system runs exactly
//! reproducible across machines and runs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event queue over an arbitrary payload type `E`.
///
/// ```
/// use uvm_sim::{EventQueue, SimTime};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule(SimTime(10), "b");
/// q.schedule(SimTime(5), "a");
/// q.schedule(SimTime(10), "c"); // same instant as "b": FIFO order
/// assert_eq!(q.pop(), Some((SimTime(5), "a")));
/// assert_eq!(q.pop(), Some((SimTime(10), "b")));
/// assert_eq!(q.pop(), Some((SimTime(10), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Create an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the most recently popped
    /// event (zero before any pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock — scheduling into the
    /// past is always a simulator bug and silently reordering it would
    /// corrupt causality.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "scheduled event at {at} before current time {now}",
            at = at.as_nanos(),
            now = self.now.as_nanos()
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "event queue went back in time");
        self.now = entry.at;
        Some((entry.at, entry.payload))
    }

    /// Peek at the timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// The next sequence number this queue would assign.
    ///
    /// Part of a queue's snapshot state: restoring it keeps FIFO tie-breaking
    /// of future events identical to an uninterrupted run.
    #[inline]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Rebuild a queue from snapshot state: the clock, the next sequence
    /// number, and the pending entries as `(time, seq, payload)` triples.
    ///
    /// Each entry keeps its original sequence number so that ties between
    /// pre-snapshot and post-restore events resolve exactly as they would
    /// have in the uninterrupted run.
    ///
    /// # Panics
    ///
    /// Panics if an entry lies in the past of `now` or carries a sequence
    /// number the restored counter would hand out again — either means the
    /// snapshot is corrupt.
    pub fn restore(now: SimTime, seq: u64, entries: Vec<(SimTime, u64, E)>) -> Self {
        let mut heap = BinaryHeap::with_capacity(entries.len());
        for (at, entry_seq, payload) in entries {
            assert!(at >= now, "restored event at {} before clock {}", at.as_nanos(), now.as_nanos());
            assert!(entry_seq < seq, "restored event seq {entry_seq} >= queue seq {seq}");
            heap.push(Entry { at, seq: entry_seq, payload });
        }
        EventQueue { heap, seq, now }
    }
}

impl<E: Clone> EventQueue<E> {
    /// The pending events as `(time, seq, payload)` triples, sorted in firing
    /// order. This is the queue's serializable snapshot form; feed it back to
    /// [`EventQueue::restore`] together with [`EventQueue::now`] and
    /// [`EventQueue::seq`].
    pub fn snapshot_entries(&self) -> Vec<(SimTime, u64, E)> {
        let mut out: Vec<(SimTime, u64, E)> =
            self.heap.iter().map(|e| (e.at, e.seq, e.payload.clone())).collect();
        out.sort_by_key(|&(at, seq, _)| (at, seq));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), 3);
        q.schedule(SimTime(10), 1);
        q.schedule(SimTime(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(42), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5), ());
        q.schedule(SimTime(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(5));
        q.pop();
        assert_eq!(q.now(), SimTime(9));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.pop();
        q.schedule(SimTime(5), ());
    }

    #[test]
    fn snapshot_restore_preserves_order_and_ties() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), 0);
        q.schedule(SimTime(20), 1);
        q.schedule(SimTime(20), 2); // tie with 1: FIFO by seq
        q.schedule(SimTime(30), 3);
        q.pop(); // clock at 10, three pending

        let mut r = EventQueue::restore(q.now(), q.seq(), q.snapshot_entries());
        assert_eq!(r.now(), SimTime(10));
        assert_eq!(r.seq(), 4);
        // A post-restore event at the same instant as pre-snapshot ties must
        // still pop after them, exactly as in the uninterrupted run.
        r.schedule(SimTime(20), 4);
        q.schedule(SimTime(20), 4);
        let drain = |q: &mut EventQueue<i32>| -> Vec<i32> {
            std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect()
        };
        assert_eq!(drain(&mut r), vec![1, 2, 4, 3]);
        assert_eq!(drain(&mut q), vec![1, 2, 4, 3]);
    }

    #[test]
    fn peek_time_sees_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime(7), ());
        q.schedule(SimTime(3), ());
        assert_eq!(q.peek_time(), Some(SimTime(3)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
