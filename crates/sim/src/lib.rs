#![warn(missing_docs)]

//! # uvm-sim — discrete-event simulation substrate for the UVM stack
//!
//! This crate provides the foundation every other crate in the workspace is
//! built on:
//!
//! * [`time`] — the simulated nanosecond clock ([`SimTime`], [`SimDuration`]).
//! * [`event`] — a deterministic discrete-event queue ([`EventQueue`]) with
//!   stable FIFO ordering for simultaneous events.
//! * [`rng`] — a seeded, reproducible random source ([`DetRng`]) so that every
//!   simulation run with the same seed produces an identical trace.
//! * [`mem`] — the shared memory-layout vocabulary: virtual addresses, 4 KiB
//!   pages, and 2 MiB VABlocks exactly as the NVIDIA UVM driver defines them.
//! * [`cost`] — the analytic cost model ([`CostModel`]) that converts counted
//!   simulator work (pages migrated, PTEs torn down, radix-tree nodes
//!   allocated, …) into simulated time. The [`CostModel::titan_v`] preset is
//!   calibrated to the magnitudes reported by Allen & Ge (SC '21).
//! * [`error`] — the typed pipeline error ([`UvmError`]) that replaces
//!   panics along the servicing path.
//! * [`inject`] — deterministic, seeded fault injection ([`FaultPlan`],
//!   [`Injector`]) driving failures at named pipeline points.
//! * [`snapshot`] — the snapshot format version and the stable state digest
//!   used for checkpoint/restore and divergence detection.
//!
//! The simulator is *deterministic*: no wall-clock time, no global state, no
//! thread nondeterminism. Ties in the event queue are broken by insertion
//! order, and all randomness flows from an explicit seed.

pub mod cost;
pub mod error;
pub mod event;
pub mod inject;
pub mod mem;
pub mod rng;
pub mod snapshot;
pub mod time;

pub use cost::CostModel;
pub use error::{UvmError, UvmResult};
pub use event::EventQueue;
pub use inject::{FaultPlan, InjectionPoint, Injector, PointInjector, PointPlan};
pub use mem::{PageNum, VaBlockId, VirtAddr, PAGE_SIZE, PAGES_PER_VABLOCK, VABLOCK_SIZE};
pub use rng::DetRng;
pub use snapshot::{digest_value, SNAPSHOT_VERSION};
pub use time::{SimDuration, SimTime};
