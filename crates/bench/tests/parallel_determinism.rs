//! The tentpole determinism guarantee: fanning experiments across the
//! worker pool must not change a single byte of rendered output or JSON
//! relative to a serial run. CI additionally diffs the full release
//! binary's stdout at `--jobs 4` vs `--jobs 1`; this test pins the same
//! property at debug scale on a fast experiment subset.

use uvm_bench::{experiments, run_experiments};
use uvm_core::parallel;

/// Cheap-but-representative subset: single-sim figures plus one
/// multi-sim grid (fig9's batch-limit sweep uses intra-experiment
/// fan-out, exercising nested-inline execution under the pool).
const SUBSET: &[&str] = &["fig1", "fig3", "fig5", "fig9", "ext-inject"];

fn render_subset(jobs: usize) -> Vec<(String, String, String)> {
    parallel::configure_jobs(jobs);
    let all = experiments();
    let selected: Vec<_> = all.iter().filter(|e| SUBSET.contains(&e.id)).collect();
    assert_eq!(selected.len(), SUBSET.len(), "registry lost a subset id");
    let outs = run_experiments(selected);
    parallel::configure_jobs(1);
    outs.into_iter()
        .map(|o| {
            let json = serde_json::to_string_pretty(&o.value).expect("serializable");
            (o.id.to_string(), o.text, json)
        })
        .collect()
}

#[test]
fn four_workers_render_byte_identical_output() {
    let serial = render_subset(1);
    let parallel4 = render_subset(4);
    assert_eq!(serial.len(), parallel4.len());
    for ((id_s, text_s, json_s), (id_p, text_p, json_p)) in serial.iter().zip(&parallel4) {
        assert_eq!(id_s, id_p, "experiment order changed under --jobs 4");
        assert_eq!(text_s, text_p, "{id_s}: rendered text diverged under --jobs 4");
        assert_eq!(json_s, json_p, "{id_s}: JSON dump diverged under --jobs 4");
    }
}
