//! Regenerate every table and figure of Allen & Ge (SC '21).
//!
//! ```text
//! cargo run --release -p uvm-bench --bin paper            # everything
//! cargo run --release -p uvm-bench --bin paper fig9       # one experiment
//! cargo run --release -p uvm-bench --bin paper -- --json out   # + JSON dumps
//! ```
//!
//! Each experiment prints the same rows/series the paper reports; with
//! `--json <dir>` the raw result structs are also written as JSON for
//! external plotting.

use std::io::Write as _;
use std::time::Instant;

use uvm_core::experiments::*;

const SEED: u64 = 0x5C21;

struct Experiment {
    id: &'static str,
    title: &'static str,
    run: fn() -> (String, serde_json::Value),
}

fn exp<R: serde::Serialize>(
    f: fn(u64) -> R,
    render: fn(&R) -> String,
) -> (String, serde_json::Value) {
    let r = f(SEED);
    (render(&r), serde_json::to_value(&r).expect("serializable result"))
}

fn experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig1",
            title: "Fig. 1  — UVM vs explicit-management access latency",
            run: || exp(fig01_latency::run, |r| r.render()),
        },
        Experiment {
            id: "fig3",
            title: "Figs. 3/4 — vecadd fault batches and arrival timeline",
            run: || exp(fig03_vecadd::run, |r| r.render()),
        },
        Experiment {
            id: "fig5",
            title: "Fig. 5  — single-warp prefetch fills a batch",
            run: || exp(fig05_prefetch_ub::run, |r| r.render()),
        },
        Experiment {
            id: "table2",
            title: "Table 2 — per-SM fault statistics per batch",
            run: || exp(table2_per_sm::run, |r| r.render()),
        },
        Experiment {
            id: "fig6",
            title: "Fig. 6  — batch cost vs data migrated (best fits)",
            run: || exp(fig06_cost_vs_data::run, |r| format!("{}\n{}", r.render(), r.render_plot())),
        },
        Experiment {
            id: "fig7",
            title: "Fig. 7  — transfer share of batch time (sgemm)",
            run: || exp(fig07_transfer_fraction::run, |r| r.render()),
        },
        Experiment {
            id: "fig8",
            title: "Fig. 8  — raw vs deduplicated batch sizes",
            run: || exp(fig08_dedup_series::run, |r| format!("{}\n{}", r.render(), r.render_plot())),
        },
        Experiment {
            id: "fig9",
            title: "Fig. 9  — batch-size-limit sweep (sgemm)",
            run: || exp(fig09_batch_size::run, |r| r.render()),
        },
        Experiment {
            id: "fig10",
            title: "Fig. 10 — batch cost vs size by VABlock count",
            run: || exp(fig10_vablocks::run, |r| r.render()),
        },
        Experiment {
            id: "table3",
            title: "Table 3 — VABlock source statistics",
            run: || exp(table3_vablocks::run, |r| r.render()),
        },
        Experiment {
            id: "fig11",
            title: "Fig. 11 — CPU-thread count vs unmap cost (HPGMG)",
            run: || exp(fig11_unmap_threads::run, |r| r.render()),
        },
        Experiment {
            id: "fig12",
            title: "Fig. 12 — sgemm under oversubscription",
            run: || exp(fig12_oversub::run, |r| format!("{}\n{}", r.render(), r.render_plot())),
        },
        Experiment {
            id: "fig13",
            title: "Fig. 13 — stream eviction cost levels",
            run: || exp(fig13_evict_levels::run, |r| r.render()),
        },
        Experiment {
            id: "fig14",
            title: "Fig. 14 — sgemm prefetch profile + DMA outliers",
            run: || exp(fig14_prefetch_batches::run, |r| r.render()),
        },
        Experiment {
            id: "fig15",
            title: "Fig. 15 — dgemm eviction + prefetching panels",
            run: || exp(fig15_evict_prefetch::run, |r| r.render()),
        },
        Experiment {
            id: "fig16",
            title: "Fig. 16 — Gauss-Seidel case study",
            run: || exp(fig16_gauss_seidel::run, |r| format!("{}\n{}", r.render(), r.render_plot())),
        },
        Experiment {
            id: "fig17",
            title: "Fig. 17 — HPGMG case study (LRU order)",
            run: || exp(fig17_hpgmg::run, |r| format!("{}\n{}", r.render(), r.case.render_plot())),
        },
        Experiment {
            id: "table4",
            title: "Table 4 — prefetch on/off batch & kernel times",
            run: || exp(table4_speedup::run, |r| r.render()),
        },
        Experiment {
            id: "ext-hints",
            title: "Extension — cudaMemAdvise / cudaMemPrefetchAsync",
            run: || exp(ext_hints::run, |r| r.render()),
        },
        Experiment {
            id: "ext-inject",
            title: "Extension — fault injection & typed error recovery",
            run: || exp(ext_inject::run, |r| r.render()),
        },
        Experiment {
            id: "ext-thrashing",
            title: "Extension — thrashing mitigation (uvm_perf_thrashing)",
            run: || exp(ext_thrashing::run, |r| r.render()),
        },
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_dir: Option<String> = None;
    let mut filter: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            json_dir = it.next();
        } else {
            filter = Some(a);
        }
    }

    let all = experiments();
    let selected: Vec<&Experiment> = match &filter {
        Some(f) => all.iter().filter(|e| e.id == f).collect(),
        None => all.iter().collect(),
    };
    if selected.is_empty() {
        eprintln!(
            "unknown experiment '{}'; available: {}",
            filter.unwrap_or_default(),
            all.iter().map(|e| e.id).collect::<Vec<_>>().join(", ")
        );
        std::process::exit(1);
    }
    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create json output dir");
    }

    for e in selected {
        let t0 = Instant::now();
        let (text, value) = (e.run)();
        println!("================================================================");
        println!("{}   [{:.2}s]", e.title, t0.elapsed().as_secs_f64());
        println!("================================================================");
        println!("{text}\n");
        if let Some(dir) = &json_dir {
            let path = format!("{dir}/{}.json", e.id);
            let mut f = std::fs::File::create(&path).expect("create json file");
            f.write_all(serde_json::to_string_pretty(&value).expect("serialize").as_bytes())
                .expect("write json");
            println!("wrote {path}\n");
        }
    }
}
