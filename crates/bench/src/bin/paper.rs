//! Regenerate every table and figure of Allen & Ge (SC '21).
//!
//! ```text
//! cargo run --release -p uvm-bench --bin paper            # everything
//! cargo run --release -p uvm-bench --bin paper fig9       # one experiment
//! cargo run --release -p uvm-bench --bin paper -- --json out   # + JSON dumps
//! cargo run --release -p uvm-bench --bin paper -- --jobs 4     # parallel
//! ```
//!
//! Each experiment prints the same rows/series the paper reports; with
//! `--json <dir>` the raw result structs are also written as JSON for
//! external plotting.
//!
//! ## Parallel execution
//!
//! `--jobs N` (default: the machine's available cores) fans independent
//! experiments across a scoped worker pool and collects results in
//! submission order, so stdout, golden files, and JSON dumps are
//! byte-identical to a serial run — only the wall-clock `[N.NNs]`
//! suffixes differ. `--jobs 1` forces the fully serial path. Checkpoint
//! and resume runs are forced serial (the run-control ordinal is
//! process-global).
//!
//! ## Benchmark baseline
//!
//! ```text
//! paper bench --out BENCH_uvm.json [--jobs N] [--quick]
//! ```
//!
//! writes a machine-readable perf summary: per-experiment serial wall
//! times, the suite-level serial-vs-parallel comparison, and hand-rolled
//! hot-loop micro timings (dedup fast path vs reference, one full
//! `service_batch`, event queue, radix lookups). `--quick` trims micro
//! reps and skips the parallel suite pass (CI smoke).
//!
//! ## Policy sweep
//!
//! ```text
//! paper sweep [--quick] [--jobs N] [--bless] [--json <dir>]
//! ```
//!
//! runs the pluggable-policy grid (`ext-policy`): every prefetch policy ×
//! every eviction policy × four workloads (two regular, two irregular)
//! under ~125 % oversubscription. Cells fan out across the worker pool;
//! stdout is byte-identical for any `--jobs N`. `--quick` uses the
//! CI-smoke problem sizes (golden `ext_policy_quick.txt`).
//!
//! ## Chaos fuzzing
//!
//! ```text
//! paper chaos [--trials N] [--seed S] [--jobs N]    # seeded campaign
//! paper chaos --repro path/to/repro.json            # replay one scenario
//! ```
//!
//! `chaos` runs the deterministic scenario fuzzer
//! ([`uvm_core::chaos`]): each trial composes a workload × policy stack ×
//! fault plan × oversubscription × kill/restore schedule, runs it in
//! torture mode (snapshot → JSON → kill → restore at fuzzer-chosen batch
//! boundaries) against a clean one-shot reference, and requires
//! bit-identical final digests and batch records plus a clean cross-layer
//! audit. Failures shrink to a minimal scenario and are written as repro
//! files (`chaos-repro-<trial>.json`, or into `--out <dir>`); replay one
//! with `--repro`. Exit status is non-zero if any trial fails. Output is
//! byte-identical for any `--jobs N`.
//!
//! ## Checkpoint / resume
//!
//! ```text
//! --checkpoint-every N     write a checkpoint every N serviced batches
//! --checkpoint-file PATH   where to write it (default uvm-ckpt.json)
//! --resume PATH            resume a killed invocation from its checkpoint
//! --halt-after-checkpoint  exit right after the first checkpoint (kill demo)
//! ```
//!
//! Resume re-executes the harness deterministically; completed runs replay
//! in full and the checkpointed run restores mid-flight, so the combined
//! output of the killed invocation and the resumed one is byte-identical
//! to an uninterrupted run.
//!
//! ## Tracing
//!
//! ```text
//! paper list                                   # enumerate experiment ids
//! paper trace fig3 --out target/trace          # run fig3 with a RingTracer
//! paper trace fig3 --out d --trace-filter driver,batch-close
//! ```
//!
//! `trace` installs a bounded [`uvm_core::trace::RingTracer`], runs the
//! selected experiment with *byte-identical* stdout (tracing is
//! perturbation-free), and writes four artifacts to `--out`: a Chrome
//! `trace_event` JSON (load in Perfetto or `chrome://tracing`), a CSV
//! event dump, the per-batch latency-breakdown table, and the
//! trace-derived fault-latency distribution. With no `--trace-filter` it
//! also asserts that every complete batch's span breakdown reconciles
//! exactly with its `BatchClose` component vector.
//!
//! ## Other maintenance commands
//!
//! `--bless` rewrites the checked-in golden files from the current output;
//! `diverge [batch]` runs the lockstep divergence-detector demo.

use std::io::Write as _;
use std::time::Instant;

use uvm_bench::{canonical_id, experiments, run_experiments, Experiment, ExperimentOutput, SEED};
use uvm_core::divergence::{run_lockstep_perturbed, LockstepOutcome};
use uvm_core::experiments::bless_golden;
use uvm_core::parallel;
use uvm_core::runctl::{self, RunCtl};
use uvm_core::stats::{percentile, Histogram, Summary};
use uvm_core::trace::{self as trace, RingTracer, TraceFilter};
use uvm_core::workloads::cpu_init::CpuInitPolicy;
use uvm_core::workloads::stream::{self, StreamParams};
use uvm_core::SystemConfig;

/// Print `err` and exit with status 1 — the harness's terminal error path.
fn fail(context: &str, err: impl std::fmt::Display) -> ! {
    eprintln!("error: {context}: {err}");
    std::process::exit(1);
}

/// `paper chaos`: run a seeded chaos campaign (or replay one repro file)
/// and exit non-zero on any divergence, audit failure, or error.
fn chaos_command(trials: u64, seed: u64, repro: Option<&str>, out_dir: Option<&str>) {
    use uvm_core::chaos;

    if let Some(path) = repro {
        let file = match chaos::ReproFile::load(std::path::Path::new(path)) {
            Ok(f) => f,
            Err(e) => fail(&format!("load repro {path}"), e),
        };
        println!("replaying repro: {}", file.description);
        let verdict = chaos::run_trial(&file.scenario);
        match &verdict {
            chaos::TrialVerdict::Pass => {
                println!("repro passes: 0 divergences, 0 audit failures");
            }
            chaos::TrialVerdict::Divergence(d) => println!("repro FAILS (divergence): {d}"),
            chaos::TrialVerdict::AuditFailure(d) => println!("repro FAILS (audit): {d}"),
            chaos::TrialVerdict::RunError(d) => println!("repro FAILS (error): {d}"),
        }
        if verdict.is_failure() {
            std::process::exit(1);
        }
        return;
    }

    println!("chaos: {trials} trials, seed {seed:#x}");
    let report = chaos::run_campaign(trials, seed);
    print!("{}", report.render());
    if !report.clean() {
        // Persist each shrunk failure so it can be replayed and committed.
        let dir = out_dir.unwrap_or(".");
        if let Err(err) = std::fs::create_dir_all(dir) {
            fail("create repro output dir", err);
        }
        for f in &report.failures {
            let path = std::path::Path::new(dir).join(format!("chaos-repro-{}.json", f.trial));
            let file = chaos::ReproFile {
                description: format!(
                    "shrunk from campaign seed {seed:#x} trial {}: {:?}",
                    f.trial, f.verdict
                ),
                scenario: f.scenario.clone(),
            };
            match file.save(&path) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
            }
        }
        std::process::exit(1);
    }
}

/// Lockstep divergence-detector demo: two identically-seeded systems, one
/// with a deliberately burned RNG draw before `perturb_at`. The detector
/// must name the first diverging batch and the subsystem whose digest
/// broke.
fn diverge_demo(perturb_at: u64) {
    let workload = stream::build(StreamParams {
        warps: 64,
        pages_per_warp: 16,
        iters: 1,
        warps_per_page: 1,
        cpu_init: Some(CpuInitPolicy::Striped { threads: 8 }),
    });
    let config = SystemConfig::test_small(64 * 1024 * 1024).with_seed(SEED);
    println!("lockstep divergence demo: stream workload, seed {SEED:#x}");
    println!("instance A: pristine; instance B: one extra RNG draw before batch {perturb_at}");
    match run_lockstep_perturbed(&config, &workload, perturb_at) {
        Ok(LockstepOutcome::Identical { batches }) => {
            println!("runs stayed bit-identical through all {batches} batches");
            if perturb_at > 0 {
                eprintln!("error: the perturbation was not detected");
                std::process::exit(1);
            }
        }
        Ok(LockstepOutcome::Diverged(d)) => {
            println!("{d}");
            println!("  instance A digests: gpu={:#018x} driver={:#018x} host={:#018x} run={:#018x}",
                d.a.gpu, d.a.driver, d.a.host, d.a.run);
            println!("  instance B digests: gpu={:#018x} driver={:#018x} host={:#018x} run={:#018x}",
                d.b.gpu, d.b.driver, d.b.host, d.b.run);
        }
        Err(e) => fail("lockstep run failed", e),
    }
}

/// Render the trace-derived fault-latency distribution (the Figure-1-style
/// histogram) as text.
fn latency_report(lifetimes: &[u64]) -> String {
    if lifetimes.is_empty() {
        return "no fault lifetimes captured (no fault-serviced events in trace)\n".into();
    }
    let us: Vec<f64> = lifetimes.iter().map(|&ns| ns as f64 / 1000.0).collect();
    let s = Summary::of(&us);
    let mut out = format!(
        "fault service latency over {} faults (buffer arrival -> batch close)\n\
         mean {:.1} us  std {:.1} us  min {:.1} us  median {:.1} us  p99 {:.1} us  max {:.1} us\n\n",
        s.n,
        s.mean,
        s.std_dev,
        s.min,
        s.median,
        percentile(&us, 99.0),
        s.max
    );
    let hi = s.max.max(s.min + 1.0);
    let mut hist = Histogram::new(s.min, hi, 16);
    for &v in &us {
        hist.add(v);
    }
    let peak = (0..hist.bins()).map(|i| hist.count(i)).max().unwrap_or(1).max(1);
    out.push_str(&format!("{:>12} {:>8}  histogram\n", "center_us", "count"));
    for (center, count) in hist.centers() {
        let bar = "#".repeat(((count * 40).div_ceil(peak)) as usize);
        out.push_str(&format!("{center:>12.1} {count:>8}  {bar}\n"));
    }
    out
}

/// Run one experiment under a [`RingTracer`] and export the recorded
/// trace. Stdout is byte-identical to an untraced run of the same
/// experiment (tracing is perturbation-free); the artifacts and a summary
/// go to `--out` and stderr.
fn trace_experiment(spec: &str, out_dir: Option<&str>, filter_spec: Option<&str>) {
    let all = experiments();
    let id = canonical_id(spec);
    let Some(e) = all.iter().find(|e| e.id == id) else {
        eprintln!(
            "unknown experiment '{spec}'; available: {}",
            all.iter().map(|e| e.id).collect::<Vec<_>>().join(", ")
        );
        std::process::exit(1);
    };
    let Some(out_dir) = out_dir else {
        eprintln!("paper trace requires --out <dir> for the trace artifacts");
        std::process::exit(2);
    };
    let filter = match filter_spec {
        None => TraceFilter::all(),
        Some(spec) => TraceFilter::parse(spec).unwrap_or_else(|err| {
            eprintln!("error: {err}");
            std::process::exit(2);
        }),
    };
    if let Err(err) = std::fs::create_dir_all(out_dir) {
        fail("create trace output dir", err);
    }

    trace::install(Box::new(RingTracer::with_filter(1 << 22, filter)));
    let t0 = Instant::now();
    let (text, _value) = (e.run)();
    let elapsed = t0.elapsed().as_secs_f64();
    let Some(tracer) = trace::uninstall() else {
        fail("trace teardown", "tracer no longer installed after run");
    };
    let Some(ring) = tracer.as_ring() else {
        fail("trace teardown", "installed backend is not a ring tracer");
    };
    let records: Vec<_> = ring.records().cloned().collect();

    // Identical stdout to the untraced path — CI diffs this byte-for-byte
    // (modulo the wall-clock timing suffix).
    println!("================================================================");
    println!("{}   [{elapsed:.2}s]", e.title);
    println!("================================================================");
    println!("{text}\n");

    let breakdowns = trace::breakdown(&records);
    let lifetimes = trace::fault_lifetimes(&records);
    let artifacts = [
        (format!("{out_dir}/{id}.trace.json"), trace::chrome_trace(&records)),
        (format!("{out_dir}/{id}.trace.csv"), trace::csv(&records)),
        (format!("{out_dir}/{id}.breakdown.txt"), trace::breakdown_table(&breakdowns)),
        (format!("{out_dir}/{id}.latency.txt"), latency_report(&lifetimes)),
    ];
    for (path, contents) in &artifacts {
        if let Err(err) = std::fs::write(path, contents) {
            fail("write trace artifact", err);
        }
        eprintln!("wrote {path}");
    }

    let complete = breakdowns.iter().filter(|b| b.complete()).count();
    eprintln!(
        "trace: {} events captured ({} evicted), {} batches ({} complete), {} fault lifetimes",
        records.len(),
        ring.dropped(),
        breakdowns.len(),
        complete,
        lifetimes.len()
    );
    if filter_spec.is_none() {
        // With the full event stream, every complete batch's component
        // spans must tile to exactly its BatchClose vector.
        let broken: Vec<_> = breakdowns
            .iter()
            .filter(|b| b.complete() && !b.reconciled())
            .map(|b| (b.run, b.batch))
            .collect();
        if broken.is_empty() {
            eprintln!("reconciliation: all {complete} complete batches match their BatchClose breakdown");
        } else {
            eprintln!("error: span/BatchClose breakdown mismatch in batches {broken:?}");
            std::process::exit(1);
        }
    } else {
        eprintln!("reconciliation check skipped (--trace-filter may drop component spans)");
    }
}

/// Print one finished experiment (banner + report) and handle `--bless` /
/// `--json` side effects. Identical for serial and parallel runs.
fn emit(o: &ExperimentOutput, bless: bool, json_dir: Option<&str>) {
    println!("================================================================");
    println!("{}   [{:.2}s]", o.title, o.secs);
    println!("================================================================");
    println!("{}\n", o.text);
    if bless {
        match bless_golden(o.id, &o.text) {
            Ok(Some(path)) => println!("blessed {}\n", path.display()),
            Ok(None) => {}
            Err(err) => fail(&format!("failed to bless golden for {}", o.id), err),
        }
    }
    if let Some(dir) = json_dir {
        let path = format!("{dir}/{}.json", o.id);
        let payload = match serde_json::to_string_pretty(&o.value) {
            Ok(p) => p,
            Err(err) => fail(&format!("serialize {}", o.id), err),
        };
        let write = std::fs::File::create(&path)
            .and_then(|mut f| f.write_all(payload.as_bytes()));
        if let Err(err) = write {
            fail(&format!("write {path}"), err);
        }
        println!("wrote {path}\n");
    }
}

/// `paper sweep`: run the policy × workload grid (`ext-policy`) through
/// the parallel engine and print the comparison table. `--quick` switches
/// to the CI-smoke problem sizes (and the `ext-policy-quick` golden);
/// `--bless`/`--json` behave as for regular experiments.
fn sweep_command(quick: bool, bless: bool, json_dir: Option<&str>) {
    let t0 = Instant::now();
    let r = uvm_core::experiments::ext_policy::run_scaled(SEED, quick);
    let value = match serde_json::to_value(&r) {
        Ok(v) => v,
        Err(err) => fail("serialize ext-policy", err),
    };
    let o = ExperimentOutput {
        id: if quick { "ext-policy-quick" } else { "ext-policy" },
        title: if quick {
            "Extension — pluggable policy sweep (quick scale)"
        } else {
            "Extension — pluggable policy sweep (prefetch x eviction)"
        },
        text: r.render(),
        value,
        secs: t0.elapsed().as_secs_f64(),
    };
    emit(&o, bless, json_dir);
}

/// `paper bench`: write the machine-readable perf baseline.
fn bench_command(jobs: usize, out: Option<&str>, quick: bool) {
    eprintln!(
        "benchmarking: serial experiment pass{}, then hot-loop micros ({} mode)",
        if quick || jobs <= 1 { "" } else { " + parallel pass" },
        if quick { "quick" } else { "full" }
    );
    let report = uvm_bench::perf::bench_report(jobs, quick);
    let payload = match serde_json::to_string_pretty(&report) {
        Ok(p) => p,
        Err(err) => fail("serialize bench report", err),
    };
    match out {
        Some(path) => {
            if let Err(err) = std::fs::write(path, payload + "\n") {
                fail(&format!("write {path}"), err);
            }
            eprintln!("wrote {path}");
        }
        None => println!("{payload}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_dir: Option<String> = None;
    let mut out_dir: Option<String> = None;
    let mut trace_filter: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut bless = false;
    let mut quick = false;
    let mut jobs: Option<usize> = None;
    let mut trials: u64 = 25;
    let mut seed: u64 = 0;
    let mut repro: Option<String> = None;
    let mut ctl = RunCtl::default();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_dir = it.next(),
            "--out" => out_dir = it.next(),
            "--trace-filter" => trace_filter = it.next(),
            "--bless" => bless = true,
            "--quick" => quick = true,
            "--jobs" => {
                let n = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--jobs needs a positive thread count");
                    std::process::exit(2);
                });
                if n == 0 {
                    eprintln!("--jobs needs a positive thread count");
                    std::process::exit(2);
                }
                jobs = Some(n);
            }
            "--trials" => {
                trials = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--trials needs a positive count");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                });
            }
            "--repro" => repro = it.next(),
            "--checkpoint-every" => {
                let n = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--checkpoint-every needs a batch count");
                        std::process::exit(2);
                    });
                ctl.checkpoint_every = Some(n);
            }
            "--checkpoint-file" => ctl.checkpoint_path = it.next().map(Into::into),
            "--resume" => ctl.resume_from = it.next().map(Into::into),
            "--halt-after-checkpoint" => ctl.halt_after_checkpoint = true,
            _ => positional.push(a),
        }
    }
    let filter = positional.first().cloned();

    // Resolve the worker budget. Checkpoint/resume runs are forced serial:
    // the run-control ordinal that matches runs to checkpoints is
    // process-global, so concurrent runs would race it.
    let checkpointing = ctl.checkpoint_every.is_some() || ctl.resume_from.is_some();
    let requested = jobs.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });
    let effective = if checkpointing && requested > 1 {
        eprintln!("note: checkpoint/resume forces --jobs 1 (run ordinal is process-global)");
        1
    } else {
        requested
    };
    parallel::configure_jobs(effective);

    if filter.as_deref() == Some("list") {
        for e in experiments() {
            println!("{:<14} {}", e.id, e.title);
        }
        return;
    }

    if filter.as_deref() == Some("diverge") {
        // Optional trailing batch number; default to a mid-run batch.
        let at = positional.get(1).and_then(|v| v.parse().ok()).unwrap_or(3);
        diverge_demo(at);
        return;
    }

    if filter.as_deref() == Some("bench") {
        bench_command(effective, out_dir.as_deref(), quick);
        return;
    }

    if filter.as_deref() == Some("chaos") {
        chaos_command(trials, seed, repro.as_deref(), out_dir.as_deref());
        return;
    }

    if let Err(e) = runctl::configure(ctl) {
        fail("run-control configuration", e);
    }

    if filter.as_deref() == Some("sweep") {
        if let Some(dir) = &json_dir {
            if let Err(err) = std::fs::create_dir_all(dir) {
                fail("create json output dir", err);
            }
        }
        sweep_command(quick, bless, json_dir.as_deref());
        return;
    }

    if filter.as_deref() == Some("trace") {
        let Some(id) = positional.get(1) else {
            eprintln!("usage: paper trace <experiment> --out <dir> [--trace-filter <spec>]");
            std::process::exit(2);
        };
        trace_experiment(id, out_dir.as_deref(), trace_filter.as_deref());
        return;
    }

    let all = experiments();
    let selected: Vec<&Experiment> = match &filter {
        Some(f) => all.iter().filter(|e| e.id == f).collect(),
        None => all.iter().collect(),
    };
    if selected.is_empty() {
        eprintln!(
            "unknown experiment '{}'; available: {}",
            filter.unwrap_or_default(),
            all.iter().map(|e| e.id).collect::<Vec<_>>().join(", ")
        );
        std::process::exit(1);
    }
    if let Some(dir) = &json_dir {
        if let Err(err) = std::fs::create_dir_all(dir) {
            fail("create json output dir", err);
        }
    }

    if effective <= 1 {
        // Serial path: print each experiment as it finishes.
        for e in selected {
            let o = run_experiments(vec![e]);
            emit(&o[0], bless, json_dir.as_deref());
        }
    } else {
        // Parallel path: fan out across the pool; results come back in
        // submission order, so the emitted stream is byte-identical to
        // the serial path (modulo the wall-clock suffixes).
        for o in run_experiments(selected) {
            emit(&o, bless, json_dir.as_deref());
        }
    }
}
