//! Regenerate every table and figure of Allen & Ge (SC '21).
//!
//! ```text
//! cargo run --release -p uvm-bench --bin paper            # everything
//! cargo run --release -p uvm-bench --bin paper fig9       # one experiment
//! cargo run --release -p uvm-bench --bin paper -- --json out   # + JSON dumps
//! ```
//!
//! Each experiment prints the same rows/series the paper reports; with
//! `--json <dir>` the raw result structs are also written as JSON for
//! external plotting.
//!
//! ## Checkpoint / resume
//!
//! ```text
//! --checkpoint-every N     write a checkpoint every N serviced batches
//! --checkpoint-file PATH   where to write it (default uvm-ckpt.json)
//! --resume PATH            resume a killed invocation from its checkpoint
//! --halt-after-checkpoint  exit right after the first checkpoint (kill demo)
//! ```
//!
//! Resume re-executes the harness deterministically; completed runs replay
//! in full and the checkpointed run restores mid-flight, so the combined
//! output of the killed invocation and the resumed one is byte-identical
//! to an uninterrupted run.
//!
//! ## Tracing
//!
//! ```text
//! paper list                                   # enumerate experiment ids
//! paper trace fig3 --out target/trace          # run fig3 with a RingTracer
//! paper trace fig3 --out d --trace-filter driver,batch-close
//! ```
//!
//! `trace` installs a bounded [`uvm_core::trace::RingTracer`], runs the
//! selected experiment with *byte-identical* stdout (tracing is
//! perturbation-free), and writes four artifacts to `--out`: a Chrome
//! `trace_event` JSON (load in Perfetto or `chrome://tracing`), a CSV
//! event dump, the per-batch latency-breakdown table, and the
//! trace-derived fault-latency distribution. With no `--trace-filter` it
//! also asserts that every complete batch's span breakdown reconciles
//! exactly with its `BatchClose` component vector.
//!
//! ## Other maintenance commands
//!
//! `--bless` rewrites the checked-in golden files from the current output;
//! `diverge [batch]` runs the lockstep divergence-detector demo.

use std::io::Write as _;
use std::time::Instant;

use uvm_core::divergence::{run_lockstep_perturbed, LockstepOutcome};
use uvm_core::experiments::*;
use uvm_core::runctl::{self, RunCtl};
use uvm_core::workloads::cpu_init::CpuInitPolicy;
use uvm_core::stats::{percentile, Histogram, Summary};
use uvm_core::trace::{self as trace, RingTracer, TraceFilter};
use uvm_core::workloads::stream::{self, StreamParams};
use uvm_core::SystemConfig;

const SEED: u64 = 0x5C21;

struct Experiment {
    id: &'static str,
    title: &'static str,
    run: fn() -> (String, serde_json::Value),
}

fn exp<R: serde::Serialize>(
    f: fn(u64) -> R,
    render: fn(&R) -> String,
) -> (String, serde_json::Value) {
    let r = f(SEED);
    (render(&r), serde_json::to_value(&r).expect("serializable result"))
}

fn experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig1",
            title: "Fig. 1  — UVM vs explicit-management access latency",
            run: || exp(fig01_latency::run, |r| r.render()),
        },
        Experiment {
            id: "fig3",
            title: "Figs. 3/4 — vecadd fault batches and arrival timeline",
            run: || exp(fig03_vecadd::run, |r| r.render()),
        },
        Experiment {
            id: "fig5",
            title: "Fig. 5  — single-warp prefetch fills a batch",
            run: || exp(fig05_prefetch_ub::run, |r| r.render()),
        },
        Experiment {
            id: "table2",
            title: "Table 2 — per-SM fault statistics per batch",
            run: || exp(table2_per_sm::run, |r| r.render()),
        },
        Experiment {
            id: "fig6",
            title: "Fig. 6  — batch cost vs data migrated (best fits)",
            run: || exp(fig06_cost_vs_data::run, |r| format!("{}\n{}", r.render(), r.render_plot())),
        },
        Experiment {
            id: "fig7",
            title: "Fig. 7  — transfer share of batch time (sgemm)",
            run: || exp(fig07_transfer_fraction::run, |r| r.render()),
        },
        Experiment {
            id: "fig8",
            title: "Fig. 8  — raw vs deduplicated batch sizes",
            run: || exp(fig08_dedup_series::run, |r| format!("{}\n{}", r.render(), r.render_plot())),
        },
        Experiment {
            id: "fig9",
            title: "Fig. 9  — batch-size-limit sweep (sgemm)",
            run: || exp(fig09_batch_size::run, |r| r.render()),
        },
        Experiment {
            id: "fig10",
            title: "Fig. 10 — batch cost vs size by VABlock count",
            run: || exp(fig10_vablocks::run, |r| r.render()),
        },
        Experiment {
            id: "table3",
            title: "Table 3 — VABlock source statistics",
            run: || exp(table3_vablocks::run, |r| r.render()),
        },
        Experiment {
            id: "fig11",
            title: "Fig. 11 — CPU-thread count vs unmap cost (HPGMG)",
            run: || exp(fig11_unmap_threads::run, |r| r.render()),
        },
        Experiment {
            id: "fig12",
            title: "Fig. 12 — sgemm under oversubscription",
            run: || exp(fig12_oversub::run, |r| format!("{}\n{}", r.render(), r.render_plot())),
        },
        Experiment {
            id: "fig13",
            title: "Fig. 13 — stream eviction cost levels",
            run: || exp(fig13_evict_levels::run, |r| r.render()),
        },
        Experiment {
            id: "fig14",
            title: "Fig. 14 — sgemm prefetch profile + DMA outliers",
            run: || exp(fig14_prefetch_batches::run, |r| r.render()),
        },
        Experiment {
            id: "fig15",
            title: "Fig. 15 — dgemm eviction + prefetching panels",
            run: || exp(fig15_evict_prefetch::run, |r| r.render()),
        },
        Experiment {
            id: "fig16",
            title: "Fig. 16 — Gauss-Seidel case study",
            run: || exp(fig16_gauss_seidel::run, |r| format!("{}\n{}", r.render(), r.render_plot())),
        },
        Experiment {
            id: "fig17",
            title: "Fig. 17 — HPGMG case study (LRU order)",
            run: || exp(fig17_hpgmg::run, |r| format!("{}\n{}", r.render(), r.case.render_plot())),
        },
        Experiment {
            id: "table4",
            title: "Table 4 — prefetch on/off batch & kernel times",
            run: || exp(table4_speedup::run, |r| r.render()),
        },
        Experiment {
            id: "ext-hints",
            title: "Extension — cudaMemAdvise / cudaMemPrefetchAsync",
            run: || exp(ext_hints::run, |r| r.render()),
        },
        Experiment {
            id: "ext-inject",
            title: "Extension — fault injection & typed error recovery",
            run: || exp(ext_inject::run, |r| r.render()),
        },
        Experiment {
            id: "ext-thrashing",
            title: "Extension — thrashing mitigation (uvm_perf_thrashing)",
            run: || exp(ext_thrashing::run, |r| r.render()),
        },
    ]
}

/// Lockstep divergence-detector demo: two identically-seeded systems, one
/// with a deliberately burned RNG draw before `perturb_at`. The detector
/// must name the first diverging batch and the subsystem whose digest
/// broke.
fn diverge_demo(perturb_at: u64) {
    let workload = stream::build(StreamParams {
        warps: 64,
        pages_per_warp: 16,
        iters: 1,
        warps_per_page: 1,
        cpu_init: Some(CpuInitPolicy::Striped { threads: 8 }),
    });
    let config = SystemConfig::test_small(64 * 1024 * 1024).with_seed(SEED);
    println!("lockstep divergence demo: stream workload, seed {SEED:#x}");
    println!("instance A: pristine; instance B: one extra RNG draw before batch {perturb_at}");
    match run_lockstep_perturbed(&config, &workload, perturb_at) {
        Ok(LockstepOutcome::Identical { batches }) => {
            println!("runs stayed bit-identical through all {batches} batches");
            if perturb_at > 0 {
                eprintln!("error: the perturbation was not detected");
                std::process::exit(1);
            }
        }
        Ok(LockstepOutcome::Diverged(d)) => {
            println!("{d}");
            println!("  instance A digests: gpu={:#018x} driver={:#018x} host={:#018x} run={:#018x}",
                d.a.gpu, d.a.driver, d.a.host, d.a.run);
            println!("  instance B digests: gpu={:#018x} driver={:#018x} host={:#018x} run={:#018x}",
                d.b.gpu, d.b.driver, d.b.host, d.b.run);
        }
        Err(e) => {
            eprintln!("lockstep run failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Map loose experiment spellings onto harness ids: `fig03_vecadd` (the
/// experiment module name) and `fig03` both resolve to `fig3`.
fn canonical_id(spec: &str) -> String {
    let spec = spec.split('_').next().unwrap_or(spec);
    for prefix in ["fig", "table"] {
        if let Some(digits) = spec.strip_prefix(prefix) {
            if !digits.is_empty() && digits.chars().all(|c| c.is_ascii_digit()) {
                let n = digits.trim_start_matches('0');
                return format!("{prefix}{}", if n.is_empty() { "0" } else { n });
            }
        }
    }
    spec.to_string()
}

/// Render the trace-derived fault-latency distribution (the Figure-1-style
/// histogram) as text.
fn latency_report(lifetimes: &[u64]) -> String {
    if lifetimes.is_empty() {
        return "no fault lifetimes captured (no fault-serviced events in trace)\n".into();
    }
    let us: Vec<f64> = lifetimes.iter().map(|&ns| ns as f64 / 1000.0).collect();
    let s = Summary::of(&us);
    let mut out = format!(
        "fault service latency over {} faults (buffer arrival -> batch close)\n\
         mean {:.1} us  std {:.1} us  min {:.1} us  median {:.1} us  p99 {:.1} us  max {:.1} us\n\n",
        s.n,
        s.mean,
        s.std_dev,
        s.min,
        s.median,
        percentile(&us, 99.0),
        s.max
    );
    let hi = s.max.max(s.min + 1.0);
    let mut hist = Histogram::new(s.min, hi, 16);
    for &v in &us {
        hist.add(v);
    }
    let peak = (0..hist.bins()).map(|i| hist.count(i)).max().unwrap_or(1).max(1);
    out.push_str(&format!("{:>12} {:>8}  histogram\n", "center_us", "count"));
    for (center, count) in hist.centers() {
        let bar = "#".repeat(((count * 40).div_ceil(peak)) as usize);
        out.push_str(&format!("{center:>12.1} {count:>8}  {bar}\n"));
    }
    out
}

/// Run one experiment under a [`RingTracer`] and export the recorded
/// trace. Stdout is byte-identical to an untraced run of the same
/// experiment (tracing is perturbation-free); the artifacts and a summary
/// go to `--out` and stderr.
fn trace_experiment(spec: &str, out_dir: Option<&str>, filter_spec: Option<&str>) {
    let all = experiments();
    let id = canonical_id(spec);
    let Some(e) = all.iter().find(|e| e.id == id) else {
        eprintln!(
            "unknown experiment '{spec}'; available: {}",
            all.iter().map(|e| e.id).collect::<Vec<_>>().join(", ")
        );
        std::process::exit(1);
    };
    let Some(out_dir) = out_dir else {
        eprintln!("paper trace requires --out <dir> for the trace artifacts");
        std::process::exit(2);
    };
    let filter = match filter_spec {
        None => TraceFilter::all(),
        Some(spec) => TraceFilter::parse(spec).unwrap_or_else(|err| {
            eprintln!("error: {err}");
            std::process::exit(2);
        }),
    };
    std::fs::create_dir_all(out_dir).expect("create trace output dir");

    trace::install(Box::new(RingTracer::with_filter(1 << 22, filter)));
    let t0 = Instant::now();
    let (text, _value) = (e.run)();
    let elapsed = t0.elapsed().as_secs_f64();
    let tracer = trace::uninstall().expect("tracer still installed after run");
    let ring = tracer.as_ring().expect("installed backend is a ring");
    let records: Vec<_> = ring.records().cloned().collect();

    // Identical stdout to the untraced path — CI diffs this byte-for-byte
    // (modulo the wall-clock timing suffix).
    println!("================================================================");
    println!("{}   [{elapsed:.2}s]", e.title);
    println!("================================================================");
    println!("{text}\n");

    let breakdowns = trace::breakdown(&records);
    let lifetimes = trace::fault_lifetimes(&records);
    let artifacts = [
        (format!("{out_dir}/{id}.trace.json"), trace::chrome_trace(&records)),
        (format!("{out_dir}/{id}.trace.csv"), trace::csv(&records)),
        (format!("{out_dir}/{id}.breakdown.txt"), trace::breakdown_table(&breakdowns)),
        (format!("{out_dir}/{id}.latency.txt"), latency_report(&lifetimes)),
    ];
    for (path, contents) in &artifacts {
        std::fs::write(path, contents).expect("write trace artifact");
        eprintln!("wrote {path}");
    }

    let complete = breakdowns.iter().filter(|b| b.complete()).count();
    eprintln!(
        "trace: {} events captured ({} evicted), {} batches ({} complete), {} fault lifetimes",
        records.len(),
        ring.dropped(),
        breakdowns.len(),
        complete,
        lifetimes.len()
    );
    if filter_spec.is_none() {
        // With the full event stream, every complete batch's component
        // spans must tile to exactly its BatchClose vector.
        let broken: Vec<_> = breakdowns
            .iter()
            .filter(|b| b.complete() && !b.reconciled())
            .map(|b| (b.run, b.batch))
            .collect();
        if broken.is_empty() {
            eprintln!("reconciliation: all {complete} complete batches match their BatchClose breakdown");
        } else {
            eprintln!("error: span/BatchClose breakdown mismatch in batches {broken:?}");
            std::process::exit(1);
        }
    } else {
        eprintln!("reconciliation check skipped (--trace-filter may drop component spans)");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_dir: Option<String> = None;
    let mut out_dir: Option<String> = None;
    let mut trace_filter: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut bless = false;
    let mut ctl = RunCtl::default();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_dir = it.next(),
            "--out" => out_dir = it.next(),
            "--trace-filter" => trace_filter = it.next(),
            "--bless" => bless = true,
            "--checkpoint-every" => {
                let n = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--checkpoint-every needs a batch count");
                        std::process::exit(2);
                    });
                ctl.checkpoint_every = Some(n);
            }
            "--checkpoint-file" => ctl.checkpoint_path = it.next().map(Into::into),
            "--resume" => ctl.resume_from = it.next().map(Into::into),
            "--halt-after-checkpoint" => ctl.halt_after_checkpoint = true,
            _ => positional.push(a),
        }
    }
    let filter = positional.first().cloned();

    if filter.as_deref() == Some("list") {
        for e in experiments() {
            println!("{:<14} {}", e.id, e.title);
        }
        return;
    }

    if filter.as_deref() == Some("diverge") {
        // Optional trailing batch number; default to a mid-run batch.
        let at = positional.get(1).and_then(|v| v.parse().ok()).unwrap_or(3);
        diverge_demo(at);
        return;
    }

    if let Err(e) = runctl::configure(ctl) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }

    if filter.as_deref() == Some("trace") {
        let Some(id) = positional.get(1) else {
            eprintln!("usage: paper trace <experiment> --out <dir> [--trace-filter <spec>]");
            std::process::exit(2);
        };
        trace_experiment(id, out_dir.as_deref(), trace_filter.as_deref());
        return;
    }

    let all = experiments();
    let selected: Vec<&Experiment> = match &filter {
        Some(f) => all.iter().filter(|e| e.id == f).collect(),
        None => all.iter().collect(),
    };
    if selected.is_empty() {
        eprintln!(
            "unknown experiment '{}'; available: {}",
            filter.unwrap_or_default(),
            all.iter().map(|e| e.id).collect::<Vec<_>>().join(", ")
        );
        std::process::exit(1);
    }
    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create json output dir");
    }

    for e in selected {
        let t0 = Instant::now();
        let (text, value) = (e.run)();
        println!("================================================================");
        println!("{}   [{:.2}s]", e.title, t0.elapsed().as_secs_f64());
        println!("================================================================");
        println!("{text}\n");
        if bless {
            match bless_golden(e.id, &text) {
                Ok(Some(path)) => println!("blessed {}\n", path.display()),
                Ok(None) => {}
                Err(err) => {
                    eprintln!("error: failed to bless golden for {}: {err}", e.id);
                    std::process::exit(1);
                }
            }
        }
        if let Some(dir) = &json_dir {
            let path = format!("{dir}/{}.json", e.id);
            let mut f = std::fs::File::create(&path).expect("create json file");
            f.write_all(serde_json::to_string_pretty(&value).expect("serialize").as_bytes())
                .expect("write json");
            println!("wrote {path}\n");
        }
    }
}
