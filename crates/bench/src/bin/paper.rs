//! Regenerate every table and figure of Allen & Ge (SC '21).
//!
//! ```text
//! cargo run --release -p uvm-bench --bin paper            # everything
//! cargo run --release -p uvm-bench --bin paper fig9       # one experiment
//! cargo run --release -p uvm-bench --bin paper -- --json out   # + JSON dumps
//! ```
//!
//! Each experiment prints the same rows/series the paper reports; with
//! `--json <dir>` the raw result structs are also written as JSON for
//! external plotting.
//!
//! ## Checkpoint / resume
//!
//! ```text
//! --checkpoint-every N     write a checkpoint every N serviced batches
//! --checkpoint-file PATH   where to write it (default uvm-ckpt.json)
//! --resume PATH            resume a killed invocation from its checkpoint
//! --halt-after-checkpoint  exit right after the first checkpoint (kill demo)
//! ```
//!
//! Resume re-executes the harness deterministically; completed runs replay
//! in full and the checkpointed run restores mid-flight, so the combined
//! output of the killed invocation and the resumed one is byte-identical
//! to an uninterrupted run.
//!
//! ## Other maintenance commands
//!
//! `--bless` rewrites the checked-in golden files from the current output;
//! `diverge [batch]` runs the lockstep divergence-detector demo.

use std::io::Write as _;
use std::time::Instant;

use uvm_core::divergence::{run_lockstep_perturbed, LockstepOutcome};
use uvm_core::experiments::*;
use uvm_core::runctl::{self, RunCtl};
use uvm_core::workloads::cpu_init::CpuInitPolicy;
use uvm_core::workloads::stream::{self, StreamParams};
use uvm_core::SystemConfig;

const SEED: u64 = 0x5C21;

struct Experiment {
    id: &'static str,
    title: &'static str,
    run: fn() -> (String, serde_json::Value),
}

fn exp<R: serde::Serialize>(
    f: fn(u64) -> R,
    render: fn(&R) -> String,
) -> (String, serde_json::Value) {
    let r = f(SEED);
    (render(&r), serde_json::to_value(&r).expect("serializable result"))
}

fn experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig1",
            title: "Fig. 1  — UVM vs explicit-management access latency",
            run: || exp(fig01_latency::run, |r| r.render()),
        },
        Experiment {
            id: "fig3",
            title: "Figs. 3/4 — vecadd fault batches and arrival timeline",
            run: || exp(fig03_vecadd::run, |r| r.render()),
        },
        Experiment {
            id: "fig5",
            title: "Fig. 5  — single-warp prefetch fills a batch",
            run: || exp(fig05_prefetch_ub::run, |r| r.render()),
        },
        Experiment {
            id: "table2",
            title: "Table 2 — per-SM fault statistics per batch",
            run: || exp(table2_per_sm::run, |r| r.render()),
        },
        Experiment {
            id: "fig6",
            title: "Fig. 6  — batch cost vs data migrated (best fits)",
            run: || exp(fig06_cost_vs_data::run, |r| format!("{}\n{}", r.render(), r.render_plot())),
        },
        Experiment {
            id: "fig7",
            title: "Fig. 7  — transfer share of batch time (sgemm)",
            run: || exp(fig07_transfer_fraction::run, |r| r.render()),
        },
        Experiment {
            id: "fig8",
            title: "Fig. 8  — raw vs deduplicated batch sizes",
            run: || exp(fig08_dedup_series::run, |r| format!("{}\n{}", r.render(), r.render_plot())),
        },
        Experiment {
            id: "fig9",
            title: "Fig. 9  — batch-size-limit sweep (sgemm)",
            run: || exp(fig09_batch_size::run, |r| r.render()),
        },
        Experiment {
            id: "fig10",
            title: "Fig. 10 — batch cost vs size by VABlock count",
            run: || exp(fig10_vablocks::run, |r| r.render()),
        },
        Experiment {
            id: "table3",
            title: "Table 3 — VABlock source statistics",
            run: || exp(table3_vablocks::run, |r| r.render()),
        },
        Experiment {
            id: "fig11",
            title: "Fig. 11 — CPU-thread count vs unmap cost (HPGMG)",
            run: || exp(fig11_unmap_threads::run, |r| r.render()),
        },
        Experiment {
            id: "fig12",
            title: "Fig. 12 — sgemm under oversubscription",
            run: || exp(fig12_oversub::run, |r| format!("{}\n{}", r.render(), r.render_plot())),
        },
        Experiment {
            id: "fig13",
            title: "Fig. 13 — stream eviction cost levels",
            run: || exp(fig13_evict_levels::run, |r| r.render()),
        },
        Experiment {
            id: "fig14",
            title: "Fig. 14 — sgemm prefetch profile + DMA outliers",
            run: || exp(fig14_prefetch_batches::run, |r| r.render()),
        },
        Experiment {
            id: "fig15",
            title: "Fig. 15 — dgemm eviction + prefetching panels",
            run: || exp(fig15_evict_prefetch::run, |r| r.render()),
        },
        Experiment {
            id: "fig16",
            title: "Fig. 16 — Gauss-Seidel case study",
            run: || exp(fig16_gauss_seidel::run, |r| format!("{}\n{}", r.render(), r.render_plot())),
        },
        Experiment {
            id: "fig17",
            title: "Fig. 17 — HPGMG case study (LRU order)",
            run: || exp(fig17_hpgmg::run, |r| format!("{}\n{}", r.render(), r.case.render_plot())),
        },
        Experiment {
            id: "table4",
            title: "Table 4 — prefetch on/off batch & kernel times",
            run: || exp(table4_speedup::run, |r| r.render()),
        },
        Experiment {
            id: "ext-hints",
            title: "Extension — cudaMemAdvise / cudaMemPrefetchAsync",
            run: || exp(ext_hints::run, |r| r.render()),
        },
        Experiment {
            id: "ext-inject",
            title: "Extension — fault injection & typed error recovery",
            run: || exp(ext_inject::run, |r| r.render()),
        },
        Experiment {
            id: "ext-thrashing",
            title: "Extension — thrashing mitigation (uvm_perf_thrashing)",
            run: || exp(ext_thrashing::run, |r| r.render()),
        },
    ]
}

/// Lockstep divergence-detector demo: two identically-seeded systems, one
/// with a deliberately burned RNG draw before `perturb_at`. The detector
/// must name the first diverging batch and the subsystem whose digest
/// broke.
fn diverge_demo(perturb_at: u64) {
    let workload = stream::build(StreamParams {
        warps: 64,
        pages_per_warp: 16,
        iters: 1,
        warps_per_page: 1,
        cpu_init: Some(CpuInitPolicy::Striped { threads: 8 }),
    });
    let config = SystemConfig::test_small(64 * 1024 * 1024).with_seed(SEED);
    println!("lockstep divergence demo: stream workload, seed {SEED:#x}");
    println!("instance A: pristine; instance B: one extra RNG draw before batch {perturb_at}");
    match run_lockstep_perturbed(&config, &workload, perturb_at) {
        Ok(LockstepOutcome::Identical { batches }) => {
            println!("runs stayed bit-identical through all {batches} batches");
            if perturb_at > 0 {
                eprintln!("error: the perturbation was not detected");
                std::process::exit(1);
            }
        }
        Ok(LockstepOutcome::Diverged(d)) => {
            println!("{d}");
            println!("  instance A digests: gpu={:#018x} driver={:#018x} host={:#018x} run={:#018x}",
                d.a.gpu, d.a.driver, d.a.host, d.a.run);
            println!("  instance B digests: gpu={:#018x} driver={:#018x} host={:#018x} run={:#018x}",
                d.b.gpu, d.b.driver, d.b.host, d.b.run);
        }
        Err(e) => {
            eprintln!("lockstep run failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_dir: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut bless = false;
    let mut ctl = RunCtl::default();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_dir = it.next(),
            "--bless" => bless = true,
            "--checkpoint-every" => {
                let n = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--checkpoint-every needs a batch count");
                        std::process::exit(2);
                    });
                ctl.checkpoint_every = Some(n);
            }
            "--checkpoint-file" => ctl.checkpoint_path = it.next().map(Into::into),
            "--resume" => ctl.resume_from = it.next().map(Into::into),
            "--halt-after-checkpoint" => ctl.halt_after_checkpoint = true,
            _ => positional.push(a),
        }
    }
    let filter = positional.first().cloned();

    if filter.as_deref() == Some("diverge") {
        // Optional trailing batch number; default to a mid-run batch.
        let at = positional.get(1).and_then(|v| v.parse().ok()).unwrap_or(3);
        diverge_demo(at);
        return;
    }

    if let Err(e) = runctl::configure(ctl) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }

    let all = experiments();
    let selected: Vec<&Experiment> = match &filter {
        Some(f) => all.iter().filter(|e| e.id == f).collect(),
        None => all.iter().collect(),
    };
    if selected.is_empty() {
        eprintln!(
            "unknown experiment '{}'; available: {}",
            filter.unwrap_or_default(),
            all.iter().map(|e| e.id).collect::<Vec<_>>().join(", ")
        );
        std::process::exit(1);
    }
    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create json output dir");
    }

    for e in selected {
        let t0 = Instant::now();
        let (text, value) = (e.run)();
        println!("================================================================");
        println!("{}   [{:.2}s]", e.title, t0.elapsed().as_secs_f64());
        println!("================================================================");
        println!("{text}\n");
        if bless {
            match bless_golden(e.id, &text) {
                Ok(Some(path)) => println!("blessed {}\n", path.display()),
                Ok(None) => {}
                Err(err) => {
                    eprintln!("error: failed to bless golden for {}: {err}", e.id);
                    std::process::exit(1);
                }
            }
        }
        if let Some(dir) = &json_dir {
            let path = format!("{dir}/{}.json", e.id);
            let mut f = std::fs::File::create(&path).expect("create json file");
            f.write_all(serde_json::to_string_pretty(&value).expect("serialize").as_bytes())
                .expect("write json");
            println!("wrote {path}\n");
        }
    }
}
