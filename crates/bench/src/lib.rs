//! # uvm-bench — benchmark harness
//!
//! * `cargo run --release -p uvm-bench --bin paper` regenerates every table
//!   and figure of the paper at full experiment scale (optionally dumping
//!   JSON with `--json <dir>`, or fanning independent experiments across
//!   worker threads with `--jobs N` — stdout stays byte-identical).
//! * `cargo run --release -p uvm-bench --bin paper bench --out BENCH_uvm.json`
//!   writes the machine-readable perf baseline: per-experiment serial wall
//!   times, the suite-level serial vs parallel comparison, and hand-rolled
//!   hot-loop micro timings.
//! * `cargo bench` runs the Criterion suites: `micro` (fault-path data
//!   structures), `hotpath` (optimized hot loops vs their references),
//!   `system` (full-system runs + the DESIGN.md ablations), and
//!   `experiments` (one bench per paper table/figure at reduced scale).
//!
//! The experiment registry lives here (not in the binary) so integration
//! tests can execute the exact registry the `paper` binary ships — e.g.
//! asserting that `--jobs 1` and `--jobs 4` render byte-identical output.

use std::time::Instant;

use uvm_core::experiments::*;
use uvm_core::parallel;

/// The seed every experiment runs under (the harness-wide default).
pub const SEED: u64 = 0x5C21;

/// One registered experiment: a stable id, the banner title, and a runner
/// returning the rendered text plus the raw result as JSON.
pub struct Experiment {
    /// Stable id (`fig3`, `table4`, `ext-hints`, ...).
    pub id: &'static str,
    /// Human banner title, printed above the rendered text.
    pub title: &'static str,
    /// Run the experiment at [`SEED`].
    pub run: fn() -> (String, serde_json::Value),
}

fn exp<R: serde::Serialize>(
    f: fn(u64) -> R,
    render: fn(&R) -> String,
) -> (String, serde_json::Value) {
    let r = f(SEED);
    (render(&r), serde_json::to_value(&r).expect("serializable result"))
}

/// Every experiment, in paper order.
pub fn experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig1",
            title: "Fig. 1  — UVM vs explicit-management access latency",
            run: || exp(fig01_latency::run, |r| r.render()),
        },
        Experiment {
            id: "fig3",
            title: "Figs. 3/4 — vecadd fault batches and arrival timeline",
            run: || exp(fig03_vecadd::run, |r| r.render()),
        },
        Experiment {
            id: "fig5",
            title: "Fig. 5  — single-warp prefetch fills a batch",
            run: || exp(fig05_prefetch_ub::run, |r| r.render()),
        },
        Experiment {
            id: "table2",
            title: "Table 2 — per-SM fault statistics per batch",
            run: || exp(table2_per_sm::run, |r| r.render()),
        },
        Experiment {
            id: "fig6",
            title: "Fig. 6  — batch cost vs data migrated (best fits)",
            run: || exp(fig06_cost_vs_data::run, |r| format!("{}\n{}", r.render(), r.render_plot())),
        },
        Experiment {
            id: "fig7",
            title: "Fig. 7  — transfer share of batch time (sgemm)",
            run: || exp(fig07_transfer_fraction::run, |r| r.render()),
        },
        Experiment {
            id: "fig8",
            title: "Fig. 8  — raw vs deduplicated batch sizes",
            run: || exp(fig08_dedup_series::run, |r| format!("{}\n{}", r.render(), r.render_plot())),
        },
        Experiment {
            id: "fig9",
            title: "Fig. 9  — batch-size-limit sweep (sgemm)",
            run: || exp(fig09_batch_size::run, |r| r.render()),
        },
        Experiment {
            id: "fig10",
            title: "Fig. 10 — batch cost vs size by VABlock count",
            run: || exp(fig10_vablocks::run, |r| r.render()),
        },
        Experiment {
            id: "table3",
            title: "Table 3 — VABlock source statistics",
            run: || exp(table3_vablocks::run, |r| r.render()),
        },
        Experiment {
            id: "fig11",
            title: "Fig. 11 — CPU-thread count vs unmap cost (HPGMG)",
            run: || exp(fig11_unmap_threads::run, |r| r.render()),
        },
        Experiment {
            id: "fig12",
            title: "Fig. 12 — sgemm under oversubscription",
            run: || exp(fig12_oversub::run, |r| format!("{}\n{}", r.render(), r.render_plot())),
        },
        Experiment {
            id: "fig13",
            title: "Fig. 13 — stream eviction cost levels",
            run: || exp(fig13_evict_levels::run, |r| r.render()),
        },
        Experiment {
            id: "fig14",
            title: "Fig. 14 — sgemm prefetch profile + DMA outliers",
            run: || exp(fig14_prefetch_batches::run, |r| r.render()),
        },
        Experiment {
            id: "fig15",
            title: "Fig. 15 — dgemm eviction + prefetching panels",
            run: || exp(fig15_evict_prefetch::run, |r| r.render()),
        },
        Experiment {
            id: "fig16",
            title: "Fig. 16 — Gauss-Seidel case study",
            run: || exp(fig16_gauss_seidel::run, |r| format!("{}\n{}", r.render(), r.render_plot())),
        },
        Experiment {
            id: "fig17",
            title: "Fig. 17 — HPGMG case study (LRU order)",
            run: || exp(fig17_hpgmg::run, |r| format!("{}\n{}", r.render(), r.case.render_plot())),
        },
        Experiment {
            id: "table4",
            title: "Table 4 — prefetch on/off batch & kernel times",
            run: || exp(table4_speedup::run, |r| r.render()),
        },
        Experiment {
            id: "ext-hints",
            title: "Extension — cudaMemAdvise / cudaMemPrefetchAsync",
            run: || exp(ext_hints::run, |r| r.render()),
        },
        Experiment {
            id: "ext-inject",
            title: "Extension — fault injection & typed error recovery",
            run: || exp(ext_inject::run, |r| r.render()),
        },
        Experiment {
            id: "ext-thrashing",
            title: "Extension — thrashing mitigation (uvm_perf_thrashing)",
            run: || exp(ext_thrashing::run, |r| r.render()),
        },
        Experiment {
            id: "ext-policy",
            title: "Extension — pluggable policy sweep (prefetch x eviction)",
            run: || exp(ext_policy::run, |r| r.render()),
        },
    ]
}

/// Map loose experiment spellings onto harness ids: `fig03_vecadd` (the
/// experiment module name) and `fig03` both resolve to `fig3`.
pub fn canonical_id(spec: &str) -> String {
    let spec = spec.split('_').next().unwrap_or(spec);
    for prefix in ["fig", "table"] {
        if let Some(digits) = spec.strip_prefix(prefix) {
            if !digits.is_empty() && digits.chars().all(|c| c.is_ascii_digit()) {
                let n = digits.trim_start_matches('0');
                return format!("{prefix}{}", if n.is_empty() { "0" } else { n });
            }
        }
    }
    spec.to_string()
}

/// One completed experiment run.
pub struct ExperimentOutput {
    /// Registry id.
    pub id: &'static str,
    /// Banner title.
    pub title: &'static str,
    /// Rendered text report.
    pub text: String,
    /// Raw result as JSON.
    pub value: serde_json::Value,
    /// Wall-clock seconds this experiment took (measured on its worker).
    pub secs: f64,
}

/// Run `selected` experiments across the configured worker pool
/// ([`uvm_core::parallel::configure_jobs`]), returning outputs **in
/// submission order** — the caller prints them exactly as a serial loop
/// would, so stdout is byte-identical for any `--jobs N` (only the
/// wall-clock `[N.NNs]` suffixes differ).
pub fn run_experiments(selected: Vec<&Experiment>) -> Vec<ExperimentOutput> {
    parallel::map(selected, |e| {
        let t0 = Instant::now();
        let (text, value) = (e.run)();
        ExperimentOutput {
            id: e.id,
            title: e.title,
            text,
            value,
            secs: t0.elapsed().as_secs_f64(),
        }
    })
}

/// Hand-rolled hot-loop micro timings and the suite-level serial/parallel
/// comparison behind `paper bench` (the vendored Criterion shim is a
/// single-shot smoke harness, so the baseline numbers are timed here).
pub mod perf {
    use super::{experiments, run_experiments, Instant};
    use serde_json::Value;

    /// Build a [`Value::Object`] from `(key, value)` pairs (the vendored
    /// serde shim has no `json!` macro).
    fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
    use uvm_core::driver::dedup::{
        classify_duplicates, classify_duplicates_with, DedupResult, DedupScratch,
    };
    use uvm_core::driver::policy::DriverPolicy;
    use uvm_core::driver::service::{ServiceScratch, UvmDriver};
    use uvm_core::gpu::device::Gpu;
    use uvm_core::gpu::fault::{AccessKind, FaultRecord};
    use uvm_core::gpu::spec::GpuSpec;
    use uvm_core::hostos::host::HostMemory;
    use uvm_core::hostos::radix_tree::RadixTree;
    use uvm_core::parallel;
    use uvm_core::sim::cost::CostModel;
    use uvm_core::sim::event::EventQueue;
    use uvm_core::sim::mem::{AddressSpaceAllocator, PageNum, VABLOCK_SIZE};
    use uvm_core::sim::time::SimTime;

    /// Mean ns per call of `f` over `reps` timed iterations (one warmup).
    fn time_ns<R>(reps: u32, mut f: impl FnMut() -> R) -> f64 {
        std::hint::black_box(f());
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(f());
        }
        t0.elapsed().as_nanos() as f64 / f64::from(reps)
    }

    /// A synthetic batch: `n` faults with one duplicate run every
    /// `dup_every` (the same shape the Criterion `micro` suite uses).
    pub fn make_batch(n: usize, dup_every: usize) -> Vec<FaultRecord> {
        (0..n)
            .map(|i| FaultRecord {
                page: PageNum((i / dup_every.max(1)) as u64),
                kind: AccessKind::Read,
                sm: (i % 80) as u32,
                utlb: (i % 40) as u32,
                warp: i as u32,
                arrival: SimTime(i as u64),
                dup_of_outstanding: false,
            })
            .collect()
    }

    /// One full `service_batch` call on a fresh driver: a 1024-fault batch
    /// spread over four VABlocks with every page duplicated once —
    /// exercising fetch-side dedup, grouping, first-touch DMA setup, and
    /// page migration together.
    pub fn service_batch_once() -> u64 {
        let cost = CostModel::titan_v();
        let mut driver = UvmDriver::new(DriverPolicy::default(), cost.clone(), 16, 42);
        let mut gpu = Gpu::new(GpuSpec::small(16 * VABLOCK_SIZE), cost);
        let mut host = HostMemory::new();
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(4 * VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        let pages = alloc.num_pages();
        let batch: Vec<FaultRecord> = (0..1024u64)
            .map(|i| FaultRecord {
                page: alloc.page((i / 2) * 7 % pages),
                kind: AccessKind::Read,
                sm: (i % 80) as u32,
                utlb: (i % 40) as u32,
                warp: i as u32,
                arrival: SimTime(0),
                dup_of_outstanding: false,
            })
            .collect();
        let mut scratch = ServiceScratch::default();
        let rec = driver
            .service_batch_with(&batch, &mut gpu, &mut host, SimTime(0), &mut scratch)
            .expect("synthetic batch services cleanly");
        rec.pages_migrated
    }

    /// The hot-loop micro numbers (mean ns per operation), as a JSON map.
    pub fn micro_numbers(quick: bool) -> Value {
        let reps = if quick { 20 } else { 200 };
        let batch = make_batch(2048, 8);

        let dedup_ref = time_ns(reps, || classify_duplicates(&batch).unique.len());
        let mut ds = DedupScratch::default();
        let mut dout = DedupResult::default();
        let dedup_fast = time_ns(reps, || {
            classify_duplicates_with(&batch, &mut ds, &mut dout);
            dout.unique.len()
        });

        let service = time_ns(reps.min(100), service_batch_once);

        let event_queue = time_ns(reps, || {
            let mut q: EventQueue<u32> = EventQueue::with_capacity(10_000);
            for i in 0..10_000u32 {
                q.schedule(SimTime(u64::from(i.wrapping_mul(2_654_435_761) % 1_000_000)), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum += u64::from(e);
            }
            sum
        });

        let mut tree = RadixTree::new();
        for k in 0..32_768u64 {
            tree.insert(k * 7, k);
        }
        let radix_lookup = time_ns(reps, || {
            let mut hits = 0u64;
            for k in 0..32_768u64 {
                if tree.get(k * 7).is_some() {
                    hits += 1;
                }
            }
            hits
        });

        obj(vec![
            ("dedup_reference_2048x8", Value::Float(dedup_ref)),
            ("dedup_fast_2048x8", Value::Float(dedup_fast)),
            ("service_batch_1024x4blocks", Value::Float(service)),
            ("event_queue_schedule_pop_10k", Value::Float(event_queue)),
            ("radix_lookup_sweep_32768", Value::Float(radix_lookup)),
        ])
    }

    /// Build the full `BENCH_uvm.json` report: per-experiment serial wall
    /// times, the suite serial-vs-parallel comparison at `jobs` workers,
    /// and the micro numbers. `quick` trims micro reps and skips the
    /// parallel suite pass (for CI smoke on small runners).
    pub fn bench_report(jobs: usize, quick: bool) -> Value {
        let prior = parallel::jobs();

        // Serial pass: per-experiment wall times (the regression-gate
        // numbers — single-threaded, so they are comparable across runs
        // regardless of the runner's core count).
        parallel::configure_jobs(1);
        let t0 = Instant::now();
        let all = experiments();
        let serial = run_experiments(all.iter().collect());
        let serial_wall = t0.elapsed().as_secs_f64();

        // Parallel pass: suite wall time at `jobs` workers.
        let parallel_wall = if quick || jobs <= 1 {
            None
        } else {
            parallel::configure_jobs(jobs);
            let t0 = Instant::now();
            let again = run_experiments(all.iter().collect());
            let wall = t0.elapsed().as_secs_f64();
            assert_eq!(serial.len(), again.len());
            for (a, b) in serial.iter().zip(&again) {
                assert_eq!(a.text, b.text, "parallel output diverged for {}", a.id);
            }
            Some(wall)
        };
        parallel::configure_jobs(prior.max(1));

        let per_experiment: Vec<Value> = serial
            .iter()
            .map(|o| {
                obj(vec![
                    ("id", Value::Str(o.id.to_string())),
                    ("serial_s", Value::Float(o.secs)),
                ])
            })
            .collect();
        let mut suite_fields = vec![
            ("serial_s", Value::Float(serial_wall)),
            ("jobs", Value::NumU(jobs as u64)),
        ];
        if let Some(wall) = parallel_wall {
            suite_fields.push(("parallel_s", Value::Float(wall)));
            suite_fields.push(("speedup", Value::Float(serial_wall / wall.max(1e-9))));
        }
        obj(vec![
            ("schema", Value::NumU(1)),
            ("generated_by", Value::Str("paper bench".to_string())),
            ("quick", Value::Bool(quick)),
            ("experiments", Value::Array(per_experiment)),
            ("suite", obj(suite_fields)),
            ("micro_ns", micro_numbers(quick)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_canonical() {
        let all = experiments();
        let mut ids: Vec<&str> = all.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len(), "duplicate experiment ids");
        assert_eq!(canonical_id("fig03_vecadd"), "fig3");
        assert_eq!(canonical_id("fig3"), "fig3");
        assert_eq!(canonical_id("table04"), "table4");
        assert_eq!(canonical_id("ext-hints"), "ext-hints");
    }

    #[test]
    fn micro_numbers_cover_every_hot_loop() {
        let serde_json::Value::Object(fields) = perf::micro_numbers(true) else {
            panic!("micro numbers are a map");
        };
        for key in [
            "dedup_reference_2048x8",
            "dedup_fast_2048x8",
            "service_batch_1024x4blocks",
            "event_queue_schedule_pop_10k",
            "radix_lookup_sweep_32768",
        ] {
            let v = fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
            let Some(serde_json::Value::Float(ns)) = v else {
                panic!("{key} missing or non-numeric: {v:?}");
            };
            assert!(*ns > 0.0, "{key} must be positive, got {ns}");
        }
    }
}
