//! # uvm-bench — benchmark harness
//!
//! * `cargo run --release -p uvm-bench --bin paper` regenerates every table
//!   and figure of the paper at full experiment scale (optionally dumping
//!   JSON with `--json <dir>`).
//! * `cargo bench` runs the Criterion suites: `micro` (fault-path data
//!   structures), `system` (full-system runs + the DESIGN.md ablations),
//!   and `experiments` (one bench per paper table/figure at reduced scale).
