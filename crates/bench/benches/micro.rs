//! Microbenchmarks of the substrate data structures on the fault path:
//! the kernel-style radix tree, the host page table, per-VABlock bitmaps,
//! batch deduplication, the prefetch tree walk, and the event queue.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use uvm_core::driver::bitmap::PageBitmap;
use uvm_core::driver::dedup::classify_duplicates;
use uvm_core::driver::prefetch::compute_prefetch;
use uvm_core::gpu::fault::{AccessKind, FaultRecord};
use uvm_core::hostos::page_table::{PageTable, PteFlags};
use uvm_core::hostos::radix_tree::RadixTree;
use uvm_core::sim::event::EventQueue;
use uvm_core::sim::mem::PageNum;
use uvm_core::sim::time::SimTime;

fn bench_radix_tree(c: &mut Criterion) {
    let mut g = c.benchmark_group("radix_tree");
    for &n in &[512u64, 4096, 32768] {
        g.bench_with_input(BenchmarkId::new("insert_sequential", n), &n, |b, &n| {
            b.iter(|| {
                let mut t = RadixTree::new();
                for k in 0..n {
                    t.insert(black_box(k), k);
                }
                t.len()
            });
        });
        g.bench_with_input(BenchmarkId::new("insert_strided", n), &n, |b, &n| {
            b.iter(|| {
                let mut t = RadixTree::new();
                for k in 0..n {
                    t.insert(black_box(k * 4096), k);
                }
                t.len()
            });
        });
        g.bench_with_input(BenchmarkId::new("lookup", n), &n, |b, &n| {
            let mut t = RadixTree::new();
            for k in 0..n {
                t.insert(k * 7, k);
            }
            b.iter(|| {
                let mut hits = 0u64;
                for k in 0..n {
                    if t.get(black_box(k * 7)).is_some() {
                        hits += 1;
                    }
                }
                hits
            });
        });
    }
    g.finish();
}

fn bench_page_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("page_table");
    g.bench_function("map_unmap_block", |b| {
        b.iter(|| {
            let mut pt = PageTable::new();
            for i in 0..512u64 {
                pt.map(PageNum(i), PteFlags { dirty: i % 3 == 0, writable: true });
            }
            pt.unmap_range(PageNum(0), PageNum(512))
        });
    });
    g.bench_function("mapped_in_range_sparse", |b| {
        let mut pt = PageTable::new();
        for i in 0..8192u64 {
            pt.map(PageNum(i * 13), PteFlags::default());
        }
        b.iter(|| pt.mapped_in_range(PageNum(0), PageNum(black_box(100_000))).len());
    });
    g.finish();
}

fn bench_bitmap(c: &mut Criterion) {
    let mut g = c.benchmark_group("page_bitmap");
    let a: PageBitmap = (0..512).step_by(2).collect();
    let b2: PageBitmap = (0..512).step_by(3).collect();
    g.bench_function("boolean_ops", |b| {
        b.iter(|| {
            let x = a.or(&b2);
            let y = a.and(&b2);
            let z = a.and_not(&b2);
            black_box((x.count(), y.count(), z.count()))
        });
    });
    g.bench_function("iter_set", |b| {
        b.iter(|| a.iter_set().sum::<usize>());
    });
    g.finish();
}

fn make_batch(n: usize, dup_every: usize) -> Vec<FaultRecord> {
    (0..n)
        .map(|i| FaultRecord {
            page: PageNum((i / dup_every.max(1)) as u64),
            kind: AccessKind::Read,
            sm: (i % 80) as u32,
            utlb: (i % 40) as u32,
            warp: i as u32,
            arrival: SimTime(i as u64),
            dup_of_outstanding: false,
        })
        .collect()
}

fn bench_dedup(c: &mut Criterion) {
    let mut g = c.benchmark_group("dedup");
    for &(n, dups) in &[(256usize, 1usize), (256, 4), (2048, 8)] {
        let batch = make_batch(n, dups);
        g.bench_with_input(
            BenchmarkId::new("classify", format!("{n}x{dups}")),
            &batch,
            |b, batch| b.iter(|| classify_duplicates(black_box(batch)).unique.len()),
        );
    }
    g.finish();
}

fn bench_prefetch(c: &mut Criterion) {
    let mut g = c.benchmark_group("prefetch_tree");
    let resident: PageBitmap = (0..200).collect();
    let faulted: PageBitmap = (200..280).collect();
    g.bench_function("compute", |b| {
        b.iter(|| compute_prefetch(black_box(&resident), black_box(&faulted), 512, 0.5).count());
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u32> = EventQueue::with_capacity(10_000);
            for i in 0..10_000u32 {
                q.schedule(SimTime(((i * 2_654_435_761) % 1_000_000) as u64), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum += e as u64;
            }
            sum
        });
    });
    g.finish();
}

criterion_group!(
    micro,
    bench_radix_tree,
    bench_page_table,
    bench_bitmap,
    bench_dedup,
    bench_prefetch,
    bench_event_queue
);
criterion_main!(micro);
