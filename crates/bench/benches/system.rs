//! Full-system benchmarks and the ablation studies called out in
//! DESIGN.md: batch-size sweep, dedup on/off, flush-vs-keep, interconnect
//! speed, and the hypothetical per-VABlock driver parallelization the
//! paper's Discussion argues against.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use uvm_core::driver::policy::DriverPolicy;
use uvm_core::sim::cost::CostModel;
use uvm_core::workloads::cpu_init::CpuInitPolicy;
use uvm_core::workloads::stream::{self, StreamParams};
use uvm_core::workloads::vecadd::{self, VecAddParams};
use uvm_core::workloads::workload::Workload;
use uvm_core::{SystemConfig, UvmSystem};

const MB: u64 = 1024 * 1024;

fn small_stream() -> Workload {
    stream::build(StreamParams {
        warps: 64,
        pages_per_warp: 8,
        iters: 1,
        warps_per_page: 2,
        cpu_init: Some(CpuInitPolicy::SingleThread),
    })
}

fn oversub_stream() -> Workload {
    stream::build(StreamParams {
        warps: 64,
        pages_per_warp: 16,
        iters: 2,
        warps_per_page: 1,
        cpu_init: Some(CpuInitPolicy::SingleThread),
    })
}

/// Simulator throughput: a full faulting kernel end to end.
fn bench_full_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_system");
    g.bench_function("vecadd_microbenchmark", |b| {
        let w = vecadd::build(VecAddParams::default());
        b.iter(|| UvmSystem::new(SystemConfig::test_small(64 * MB)).run(black_box(&w)).num_batches);
    });
    g.bench_function("stream_in_core", |b| {
        let w = small_stream();
        b.iter(|| UvmSystem::new(SystemConfig::test_small(64 * MB)).run(black_box(&w)).num_batches);
    });
    g.bench_function("stream_oversubscribed", |b| {
        let w = oversub_stream();
        b.iter(|| UvmSystem::new(SystemConfig::test_small(8 * MB)).run(black_box(&w)).evictions);
    });
    g.bench_function("explicit_baseline", |b| {
        let w = small_stream();
        b.iter(|| {
            UvmSystem::new(SystemConfig::test_small(64 * MB))
                .run_explicit(black_box(&w))
                .kernel_time
        });
    });
    g.finish();
}

/// Ablation: driver batch-size limit (the Fig. 9 knob at bench scale).
fn bench_ablation_batch_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_batch_size");
    for &limit in &[64usize, 256, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(limit), &limit, |b, &limit| {
            let w = small_stream();
            let config =
                SystemConfig::test_small(64 * MB).with_policy(DriverPolicy::default().batch_limit(limit));
            b.iter(|| UvmSystem::new(config.clone()).run(black_box(&w)).kernel_time);
        });
    }
    g.finish();
}

/// Ablation: duplicate-fault collapsing on/off.
fn bench_ablation_dedup(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_dedup");
    for &on in &[true, false] {
        g.bench_with_input(BenchmarkId::from_parameter(on), &on, |b, &on| {
            let w = stream::build(StreamParams {
                warps: 64,
                pages_per_warp: 8,
                iters: 1,
                warps_per_page: 4, // heavy sharing -> many duplicates
                cpu_init: Some(CpuInitPolicy::SingleThread),
            });
            let config =
                SystemConfig::test_small(64 * MB).with_policy(DriverPolicy::default().dedup(on));
            b.iter(|| UvmSystem::new(config.clone()).run(black_box(&w)).total_batch_time);
        });
    }
    g.finish();
}

/// Ablation: flush-before-replay vs keeping stale buffer entries.
fn bench_ablation_flush(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_flush");
    for &on in &[true, false] {
        g.bench_with_input(BenchmarkId::from_parameter(on), &on, |b, &on| {
            let w = small_stream();
            let config =
                SystemConfig::test_small(64 * MB).with_policy(DriverPolicy::default().flush(on));
            b.iter(|| UvmSystem::new(config.clone()).run(black_box(&w)).kernel_time);
        });
    }
    g.finish();
}

/// Ablation: interconnect bandwidth — the paper's point that faster
/// hardware would help but not fix the management-dominated cost.
fn bench_ablation_interconnect(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_interconnect");
    for &factor in &[1u32, 4, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(factor), &factor, |b, &factor| {
            let w = small_stream();
            let mut config = SystemConfig::test_small(64 * MB);
            config.cost = CostModel {
                h2d_bandwidth: CostModel::titan_v().h2d_bandwidth * factor as f64,
                d2h_bandwidth: CostModel::titan_v().d2h_bandwidth * factor as f64,
                ..CostModel::titan_v()
            };
            b.iter(|| UvmSystem::new(config.clone()).run(black_box(&w)).kernel_time);
        });
    }
    g.finish();
}

/// Ablation: the hypothetical per-VABlock parallel driver from the paper's
/// Discussion. From the serial batch logs, compute the wall-clock a
/// perfectly parallel per-block servicing stage would achieve (critical
/// path = the largest block's share) and report the imbalance-limited
/// speedup as the benchmarked quantity.
fn bench_ablation_driver_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_driver_parallel");
    g.bench_function("imbalance_analysis", |b| {
        let w = oversub_stream();
        b.iter(|| {
            let result = UvmSystem::new(SystemConfig::test_small(8 * MB)).run(black_box(&w));
            // Per batch: block-servicing work divides proportionally to
            // per-block faults; the parallel critical path is the max
            // share. Fixed batch work does not parallelize.
            let mut serial = 0.0f64;
            let mut parallel = 0.0f64;
            for r in &result.records {
                let total: u32 = r.per_block_faults.iter().sum();
                let maxb: u32 = r.per_block_faults.iter().copied().max().unwrap_or(0);
                let t = r.service_time().as_nanos() as f64;
                serial += t;
                if total > 0 {
                    parallel += t * (maxb as f64 / total as f64);
                } else {
                    parallel += t;
                }
            }
            black_box(serial / parallel.max(1.0)) // imbalance-limited speedup
        });
    });
    g.finish();
}

criterion_group!(
    system,
    bench_full_system,
    bench_ablation_batch_size,
    bench_ablation_dedup,
    bench_ablation_flush,
    bench_ablation_interconnect,
    bench_ablation_driver_parallel
);
criterion_main!(system);
