//! Benchmarks of the optimized fault-path hot loops against their
//! reference implementations, plus end-to-end experiment anchors.
//!
//! * `dedup` — the sort-based scratch-reusing fast path
//!   (`classify_duplicates_with`) vs the allocating reference
//!   (`classify_duplicates`) on the same batches.
//! * `service_batch` — one full `UvmDriver::service_batch` call, with a
//!   fresh scratch per call vs one reused scratch.
//! * `event_queue` / `radix_lookup` — the simulator's two busiest
//!   substrate structures.
//! * `e2e` — two full paper experiments (Fig. 3 and Fig. 12) as
//!   end-to-end regression anchors for the whole pipeline.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use uvm_bench::perf::{make_batch, service_batch_once};
use uvm_core::driver::dedup::{
    classify_duplicates, classify_duplicates_with, DedupResult, DedupScratch,
};
use uvm_core::experiments::{fig03_vecadd, fig12_oversub};
use uvm_core::hostos::radix_tree::RadixTree;
use uvm_core::sim::event::EventQueue;
use uvm_core::sim::time::SimTime;

fn bench_dedup(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath_dedup");
    for &(n, dups) in &[(256usize, 4usize), (2048, 8)] {
        let batch = make_batch(n, dups);
        g.bench_with_input(
            BenchmarkId::new("reference", format!("{n}x{dups}")),
            &batch,
            |b, batch| b.iter(|| classify_duplicates(black_box(batch)).unique.len()),
        );
        g.bench_with_input(
            BenchmarkId::new("fast_scratch", format!("{n}x{dups}")),
            &batch,
            |b, batch| {
                let mut scratch = DedupScratch::default();
                let mut out = DedupResult::default();
                b.iter(|| {
                    classify_duplicates_with(black_box(batch), &mut scratch, &mut out);
                    out.unique.len()
                });
            },
        );
    }
    g.finish();
}

fn bench_service_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath_service");
    g.bench_function("service_batch_1024x4blocks", |b| {
        b.iter(|| black_box(service_batch_once()));
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath_event_queue");
    g.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u32> = EventQueue::with_capacity(10_000);
            for i in 0..10_000u32 {
                q.schedule(SimTime(u64::from(i.wrapping_mul(2_654_435_761) % 1_000_000)), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum += u64::from(e);
            }
            sum
        });
    });
    g.finish();
}

fn bench_radix_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath_radix");
    let mut tree = RadixTree::new();
    for k in 0..32_768u64 {
        tree.insert(k * 7, k);
    }
    g.bench_function("lookup_sweep_32768", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for k in 0..32_768u64 {
                if tree.get(black_box(k * 7)).is_some() {
                    hits += 1;
                }
            }
            hits
        });
    });
    g.finish();
}

fn bench_e2e(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath_e2e");
    g.bench_function("fig3_vecadd", |b| {
        b.iter(|| fig03_vecadd::run(black_box(1)).batches.len());
    });
    g.bench_function("fig12_oversub", |b| {
        b.iter(|| fig12_oversub::run(black_box(1)).points.len());
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_dedup,
    bench_service_batch,
    bench_event_queue,
    bench_radix_lookup,
    bench_e2e
);
criterion_main!(benches);
