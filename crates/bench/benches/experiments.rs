//! One Criterion bench per paper table/figure.
//!
//! Each bench runs the pipeline that regenerates the corresponding
//! experiment. The cheap experiments run at full experiment scale; the
//! heavy ones run a reduced-scale analog of the same pipeline so a full
//! `cargo bench` stays tractable — full-scale regeneration is
//! `cargo run --release -p uvm-bench --bin paper`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use uvm_core::driver::policy::DriverPolicy;
use uvm_core::experiments::{fig03_vecadd, fig05_prefetch_ub};
use uvm_core::workloads::cpu_init::CpuInitPolicy;
use uvm_core::workloads::{gauss_seidel, hpgmg, random, regular, sgemm, stream};
use uvm_core::{SystemConfig, UvmSystem};

const MB: u64 = 1024 * 1024;

fn small_config(mem_mb: u64) -> SystemConfig {
    SystemConfig::test_small(mem_mb * MB)
}

fn mini_sgemm() -> uvm_core::workloads::workload::Workload {
    sgemm::build(sgemm::GemmParams {
        n: 512,
        tile: 128,
        elem_size: 4,
        pages_per_instr: 32,
        compute_per_ktile: uvm_core::sim::time::SimDuration::from_micros(10),
        cpu_init: Some(CpuInitPolicy::SingleThread),
    })
}

fn mini_stream(iters: u32) -> uvm_core::workloads::workload::Workload {
    stream::build(stream::StreamParams {
        warps: 64,
        pages_per_warp: 8,
        iters,
        warps_per_page: 2,
        cpu_init: Some(CpuInitPolicy::SingleThread),
    })
}

fn bench_fig1_latency(c: &mut Criterion) {
    c.bench_function("fig1_latency", |b| {
        let w = mini_stream(1);
        b.iter(|| {
            let uvm = UvmSystem::new(small_config(64)).run(black_box(&w)).kernel_time;
            let explicit = UvmSystem::new(small_config(64)).run_explicit(black_box(&w));
            uvm.as_nanos() as f64
                / (explicit.kernel_time + explicit.upfront_copy_time).as_nanos() as f64
        });
    });
}

fn bench_fig3_vecadd(c: &mut Criterion) {
    // Cheap enough to run at full experiment scale.
    c.bench_function("fig3_vecadd", |b| {
        b.iter(|| fig03_vecadd::run(black_box(1)).batches.len());
    });
}

fn bench_fig5_prefetch(c: &mut Criterion) {
    c.bench_function("fig5_prefetch", |b| {
        b.iter(|| fig05_prefetch_ub::run(black_box(1)).first_batch_size);
    });
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_per_sm", |b| {
        let w = regular::build(regular::RegularParams {
            warps: 64,
            pages_per_warp: 16,
            pages_per_instr: 4,
            cpu_init: Some(CpuInitPolicy::SingleThread),
        });
        b.iter(|| {
            let r = UvmSystem::new(small_config(64)).run(black_box(&w));
            r.records.iter().map(|x| x.raw_faults).sum::<u64>() as f64
                / r.num_batches.max(1) as f64
        });
    });
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6_cost_vs_data", |b| {
        let w = mini_sgemm();
        b.iter(|| {
            let r = UvmSystem::new(small_config(64)).run(black_box(&w));
            let pts: Vec<(f64, f64)> = r
                .records
                .iter()
                .map(|x| (x.bytes_migrated as f64, x.service_time().as_nanos() as f64))
                .collect();
            uvm_core::stats::linear_fit(&pts).map(|f| f.slope)
        });
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7_transfer_fraction", |b| {
        let w = mini_sgemm();
        b.iter(|| {
            let r = UvmSystem::new(small_config(64)).run(black_box(&w));
            r.records.iter().map(|x| x.transfer_fraction()).fold(0.0, f64::max)
        });
    });
}

fn bench_fig8(c: &mut Criterion) {
    c.bench_function("fig8_dedup_series", |b| {
        let w = mini_stream(1);
        b.iter(|| {
            let r = UvmSystem::new(small_config(64)).run(black_box(&w));
            r.records.iter().map(|x| x.total_dups()).sum::<u64>()
        });
    });
}

fn bench_fig9_batchsize(c: &mut Criterion) {
    c.bench_function("fig9_batchsize", |b| {
        let w = mini_sgemm();
        b.iter(|| {
            let mut out = Vec::new();
            for limit in [64usize, 256] {
                let config =
                    small_config(64).with_policy(DriverPolicy::default().batch_limit(limit));
                out.push(UvmSystem::new(config).run(black_box(&w)).kernel_time);
            }
            out
        });
    });
}

fn bench_fig10(c: &mut Criterion) {
    c.bench_function("fig10_vablocks", |b| {
        let w = random::build(random::RandomParams {
            warps: 64,
            accesses_per_warp: 16,
            footprint_pages: 8192,
            seed: 7,
            cpu_init: Some(CpuInitPolicy::SingleThread),
        });
        b.iter(|| {
            let r = UvmSystem::new(small_config(64)).run(black_box(&w));
            r.records.iter().map(|x| x.num_va_blocks).sum::<u64>()
        });
    });
}

fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3_vablocks", |b| {
        let w = gauss_seidel::build(gauss_seidel::GaussSeidelParams {
            rows: 256,
            pages_per_row: 2,
            warps: 16,
            iters: 1,
            compute_per_row: uvm_core::sim::time::SimDuration::from_micros(1),
            cpu_init: Some(CpuInitPolicy::SingleThread),
        });
        b.iter(|| {
            let r = UvmSystem::new(small_config(64)).run(black_box(&w));
            r.records.iter().flat_map(|x| x.per_block_faults.iter()).sum::<u32>()
        });
    });
}

fn bench_fig11_unmap(c: &mut Criterion) {
    c.bench_function("fig11_unmap_threads", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            for policy in [CpuInitPolicy::SingleThread, CpuInitPolicy::Striped { threads: 16 }] {
                let w = stream::build(stream::StreamParams {
                    warps: 32,
                    pages_per_warp: 16,
                    iters: 1,
                    warps_per_page: 1,
                    cpu_init: Some(policy),
                });
                let r = UvmSystem::new(small_config(64)).run(&w);
                out.push(r.records.iter().map(|x| x.t_unmap.as_nanos()).sum::<u64>());
            }
            out
        });
    });
}

fn bench_fig12_oversub(c: &mut Criterion) {
    c.bench_function("fig12_oversub", |b| {
        let w = mini_stream(1);
        b.iter(|| UvmSystem::new(small_config(2)).run(black_box(&w)).evictions);
    });
}

fn bench_fig13(c: &mut Criterion) {
    c.bench_function("fig13_evict_levels", |b| {
        let w = mini_stream(2);
        b.iter(|| {
            let r = UvmSystem::new(small_config(4)).run(black_box(&w));
            r.records
                .iter()
                .filter(|x| x.evictions > 0 && x.t_unmap.as_nanos() == 0)
                .count()
        });
    });
}

fn bench_fig14_prefetch(c: &mut Criterion) {
    c.bench_function("fig14_prefetch", |b| {
        let w = mini_sgemm();
        b.iter(|| {
            let base = UvmSystem::new(small_config(64)).run(black_box(&w)).num_batches;
            let pf = UvmSystem::new(small_config(64).with_policy(DriverPolicy::with_prefetch()))
                .run(black_box(&w))
                .num_batches;
            1.0 - pf as f64 / base.max(1) as f64
        });
    });
}

fn bench_fig15(c: &mut Criterion) {
    c.bench_function("fig15_evict_prefetch", |b| {
        let w = mini_sgemm();
        b.iter(|| {
            let config = small_config(2).with_policy(DriverPolicy::with_prefetch());
            let r = UvmSystem::new(config).run(black_box(&w));
            (r.evictions, r.records.iter().map(|x| x.prefetched_pages).sum::<u64>())
        });
    });
}

fn bench_fig16(c: &mut Criterion) {
    c.bench_function("fig16_gauss_seidel", |b| {
        let w = gauss_seidel::build(gauss_seidel::GaussSeidelParams {
            rows: 256,
            pages_per_row: 2,
            warps: 16,
            iters: 2,
            compute_per_row: uvm_core::sim::time::SimDuration::from_micros(1),
            cpu_init: Some(CpuInitPolicy::SingleThread),
        });
        b.iter(|| {
            let config = small_config(2).with_policy(DriverPolicy::with_prefetch());
            UvmSystem::new(config).run(black_box(&w)).evictions
        });
    });
}

fn bench_fig17(c: &mut Criterion) {
    c.bench_function("fig17_hpgmg", |b| {
        let w = hpgmg::build(hpgmg::HpgmgParams {
            level0_pages: 512,
            levels: 3,
            vcycles: 1,
            warps: 16,
            pages_per_instr: 8,
            compute_per_phase: uvm_core::sim::time::SimDuration::from_micros(5),
            cpu_init: Some(CpuInitPolicy::SingleThread),
        });
        b.iter(|| {
            let config = small_config(4).with_policy(DriverPolicy::with_prefetch());
            let r = UvmSystem::new(config).run(black_box(&w));
            r.records.iter().flat_map(|x| x.evicted_blocks.first().copied()).min()
        });
    });
}

fn bench_table4(c: &mut Criterion) {
    c.bench_function("table4_speedup", |b| {
        let w = mini_stream(2);
        b.iter(|| {
            let base = UvmSystem::new(small_config(4)).run(black_box(&w)).kernel_time;
            let pf = UvmSystem::new(small_config(4).with_policy(DriverPolicy::with_prefetch()))
                .run(black_box(&w))
                .kernel_time;
            base.as_nanos() as f64 / pf.as_nanos().max(1) as f64
        });
    });
}

criterion_group! {
    name = experiments;
    config = Criterion::default().sample_size(10);
    targets =
        bench_fig1_latency,
        bench_fig3_vecadd,
        bench_fig5_prefetch,
        bench_table2,
        bench_fig6,
        bench_fig7,
        bench_fig8,
        bench_fig9_batchsize,
        bench_fig10,
        bench_table3,
        bench_fig11_unmap,
        bench_fig12_oversub,
        bench_fig13,
        bench_fig14_prefetch,
        bench_fig15,
        bench_fig16,
        bench_fig17,
        bench_table4
}
criterion_main!(experiments);
