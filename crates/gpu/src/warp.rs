//! Warp execution state.
//!
//! A [`Warp`] is an in-order issue state machine over its [`WarpProgram`].
//! The stepping logic itself lives in [`crate::device`] (it needs the μTLBs,
//! GMMU, and page table); this module owns the per-warp bookkeeping:
//! program counter, partially issued instruction, the set of outstanding
//! faulted accesses (the scoreboard), and accesses that must re-fault after
//! a replay found them still non-resident.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use uvm_sim::mem::PageNum;
use uvm_sim::time::SimTime;

use crate::fault::AccessKind;
use crate::isa::{Instr, WarpProgram};

/// Scheduling status of a warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WarpStatus {
    /// Queued behind other warps on its SM; not yet executing.
    Queued,
    /// Executing; may be stepped.
    Ready,
    /// Stalled on faults (scoreboard, full μTLB, or end-of-program with
    /// outstanding accesses); woken by the next fault replay.
    Blocked,
    /// Program complete and all accesses fulfilled.
    Done,
}

/// One warp.
///
/// Fully serializable — program counter, partially issued instruction,
/// scoreboard, and refault queue included — so a restored warp resumes
/// mid-instruction exactly where the snapshot left it.
#[derive(Debug, Serialize, Deserialize)]
pub struct Warp {
    /// Global warp id.
    pub id: u32,
    /// Hosting SM.
    pub sm: u32,
    /// μTLB serving that SM.
    pub utlb: u32,
    /// Scheduling status.
    pub status: WarpStatus,
    /// Time at which the warp may next issue.
    pub ready_at: SimTime,
    program: WarpProgram,
    pc: usize,
    /// Pages of the current instruction not yet issued (in reverse order so
    /// `pop` yields them in program order).
    pending_pages: Vec<PageNum>,
    pending_kind: AccessKind,
    /// Faulted accesses awaiting service: page → access kind. Ordered so
    /// every iteration (notably the spurious-reissue RNG pairing) is
    /// deterministic regardless of process or thread.
    outstanding: BTreeMap<PageNum, AccessKind>,
    /// Accesses a replay found still non-resident; re-issued (re-faulted)
    /// before the current instruction continues.
    refault: Vec<(PageNum, AccessKind)>,
    /// Monotone count of faults this warp generated (including refaults).
    pub faults_generated: u64,
}

impl Warp {
    /// Create a queued warp.
    pub fn new(id: u32, sm: u32, utlb: u32, program: WarpProgram) -> Self {
        Warp {
            id,
            sm,
            utlb,
            status: WarpStatus::Queued,
            ready_at: SimTime::ZERO,
            program,
            pc: 0,
            pending_pages: Vec::new(),
            pending_kind: AccessKind::Read,
            outstanding: BTreeMap::new(),
            refault: Vec::new(),
            faults_generated: 0,
        }
    }

    /// Whether the warp has outstanding faulted accesses (the scoreboard is
    /// non-empty).
    pub fn has_outstanding(&self) -> bool {
        !self.outstanding.is_empty()
    }

    /// Number of outstanding faulted accesses.
    pub fn outstanding_len(&self) -> usize {
        self.outstanding.len()
    }

    /// Record a faulted access awaiting service.
    pub fn note_outstanding(&mut self, page: PageNum, kind: AccessKind) {
        self.outstanding.insert(page, kind);
    }

    /// Iterate the outstanding faulted accesses in ascending page order.
    pub fn outstanding_accesses(&self) -> impl Iterator<Item = (PageNum, AccessKind)> + '_ {
        self.outstanding.iter().map(|(&p, &k)| (p, k))
    }

    /// Take the next access to issue: first any refaults, then the pages of
    /// the partially issued instruction. Returns `None` when the current
    /// instruction (if any) is fully issued.
    pub fn next_pending_access(&mut self) -> Option<(PageNum, AccessKind)> {
        if let Some(rf) = self.refault.pop() {
            return Some(rf);
        }
        self.pending_pages.pop().map(|p| (p, self.pending_kind))
    }

    /// Put back an access that could not issue (μTLB full); it will be the
    /// next one retried.
    pub fn push_back_access(&mut self, page: PageNum, kind: AccessKind) {
        if kind == self.pending_kind && self.refault.is_empty() {
            self.pending_pages.push(page);
        } else {
            self.refault.push((page, kind));
        }
    }

    /// Whether the current instruction still has unissued accesses (or
    /// refaults are queued).
    pub fn has_pending_accesses(&self) -> bool {
        !self.pending_pages.is_empty() || !self.refault.is_empty()
    }

    /// Fetch the next instruction, loading its pages into the pending
    /// queue. Returns the fetched instruction, or `None` at program end.
    pub fn fetch_next_instr(&mut self) -> Option<&Instr> {
        let instr = self.program.instrs.get(self.pc)?;
        self.pc += 1;
        match instr {
            Instr::Load { pages } => {
                self.pending_kind = AccessKind::Read;
                self.pending_pages = pages.iter().rev().copied().collect();
            }
            Instr::Store { pages } => {
                self.pending_kind = AccessKind::Write;
                self.pending_pages = pages.iter().rev().copied().collect();
            }
            Instr::Prefetch { pages } => {
                self.pending_kind = AccessKind::Prefetch;
                self.pending_pages = pages.iter().rev().copied().collect();
            }
            Instr::Delay(_) => {
                self.pending_pages.clear();
            }
        }
        Some(instr)
    }

    /// Peek at the next instruction without consuming it.
    pub fn peek_instr(&self) -> Option<&Instr> {
        self.program.instrs.get(self.pc)
    }

    /// Whether the program counter is at the end.
    pub fn at_program_end(&self) -> bool {
        self.pc >= self.program.instrs.len()
    }

    /// Apply a fault replay: every outstanding access whose page is now
    /// resident (per `is_resident`) is fulfilled; the rest move to the
    /// refault queue for re-issue. Returns the number fulfilled.
    pub fn apply_replay(&mut self, is_resident: impl Fn(PageNum) -> bool) -> usize {
        let mut fulfilled = 0;
        let mut still = Vec::new();
        for (page, kind) in std::mem::take(&mut self.outstanding) {
            if is_resident(page) {
                fulfilled += 1;
            } else {
                still.push((page, kind));
            }
        }
        // Deterministic re-issue order.
        still.sort_unstable_by_key(|(p, _)| *p);
        for (page, kind) in still {
            self.refault.push((page, kind));
        }
        fulfilled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog(instrs: Vec<Instr>) -> WarpProgram {
        WarpProgram { instrs }
    }

    #[test]
    fn fetch_loads_pages_in_program_order() {
        let mut w = Warp::new(0, 0, 0, prog(vec![Instr::Load {
            pages: vec![PageNum(1), PageNum(2), PageNum(3)],
        }]));
        w.fetch_next_instr().unwrap();
        assert_eq!(w.next_pending_access(), Some((PageNum(1), AccessKind::Read)));
        assert_eq!(w.next_pending_access(), Some((PageNum(2), AccessKind::Read)));
        assert_eq!(w.next_pending_access(), Some((PageNum(3), AccessKind::Read)));
        assert_eq!(w.next_pending_access(), None);
        assert!(w.at_program_end());
    }

    #[test]
    fn push_back_retries_same_access_next() {
        let mut w = Warp::new(0, 0, 0, prog(vec![Instr::Load {
            pages: vec![PageNum(1), PageNum(2)],
        }]));
        w.fetch_next_instr().unwrap();
        let (p, k) = w.next_pending_access().unwrap();
        w.push_back_access(p, k);
        assert_eq!(w.next_pending_access(), Some((PageNum(1), AccessKind::Read)));
    }

    #[test]
    fn replay_fulfills_resident_and_queues_refaults() {
        let mut w = Warp::new(0, 0, 0, prog(vec![]));
        w.note_outstanding(PageNum(1), AccessKind::Read);
        w.note_outstanding(PageNum(2), AccessKind::Read);
        w.note_outstanding(PageNum(3), AccessKind::Write);
        let fulfilled = w.apply_replay(|p| p == PageNum(2));
        assert_eq!(fulfilled, 1);
        assert!(w.has_pending_accesses());
        // Refaults re-issue in sorted order (LIFO pop → descending pushes).
        let a = w.next_pending_access().unwrap();
        let b = w.next_pending_access().unwrap();
        let mut got = vec![a, b];
        got.sort_unstable_by_key(|(p, _)| *p);
        assert_eq!(got, vec![(PageNum(1), AccessKind::Read), (PageNum(3), AccessKind::Write)]);
        assert!(!w.has_outstanding());
    }

    #[test]
    fn delay_instruction_has_no_pages() {
        let mut w = Warp::new(0, 0, 0, prog(vec![Instr::Delay(
            uvm_sim::time::SimDuration::from_micros(1),
        )]));
        let instr = w.fetch_next_instr().unwrap();
        assert!(matches!(instr, Instr::Delay(_)));
        assert!(!w.has_pending_accesses());
    }
}
