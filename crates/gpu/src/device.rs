//! The GPU device façade.
//!
//! [`Gpu`] ties the per-warp state machines, μTLBs, GMMU, fault buffer, and
//! the GPU-side page table together. The host-side driver interacts with it
//! the way the real UVM driver interacts with the hardware:
//!
//! * fetch faults from [`Gpu::fault_buffer`],
//! * map migrated pages with [`Gpu::map_pages`] (updating the GPU page
//!   table via the push-buffer),
//! * flush the buffer and issue a replay with [`Gpu::flush`] +
//!   [`Gpu::replay`], which clears μTLB waiting state and wakes stalled
//!   warps,
//! * unmap pages on eviction with [`Gpu::unmap_pages`].
//!
//! Warps are driven by [`Gpu::step_warp`], which advances one warp until it
//! faults to a stall, finishes, or exhausts its step quantum — the engine
//! (in `uvm-core`) schedules these steps as discrete events.

use std::collections::{HashSet, VecDeque};

use serde::{Deserialize, Serialize};
use uvm_sim::cost::CostModel;
use uvm_sim::mem::PageNum;
use uvm_sim::rng::DetRng;
use uvm_sim::time::SimTime;

use crate::fault::{AccessKind, FaultRecord};
use crate::fault_buffer::FaultBuffer;
use crate::gmmu::Gmmu;
use crate::isa::{Instr, WarpProgram};
use crate::spec::GpuSpec;
use crate::utlb::{Utlb, UtlbInsert};
use crate::warp::{Warp, WarpStatus};

/// Maximum instructions a single `step_warp` call executes before yielding
/// back to the event loop, bounding how far a warp can run ahead of
/// concurrent residency changes.
const STEP_QUANTUM_INSTRS: usize = 512;

/// Result of stepping a warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The warp used its quantum; schedule another step at `at`.
    Continue {
        /// Time of the next step.
        at: SimTime,
    },
    /// The warp stalled on faults; it will be woken by the next replay.
    Blocked,
    /// The warp completed; a queued warp may have taken its SM slot.
    Finished {
        /// Completion time.
        at: SimTime,
        /// Queued warp activated into the freed slot, needing its first
        /// step scheduled.
        activated: Option<u32>,
    },
}

/// The modelled GPU device.
///
/// Serializable in full — page table, μTLBs, GMMU queues, fault buffer,
/// every warp's scoreboard, SM occupancy, and the hardware-jitter RNG — so
/// a snapshot taken between batches restores to a bit-identical device.
#[derive(Debug, Serialize, Deserialize)]
pub struct Gpu {
    /// Hardware configuration.
    pub spec: GpuSpec,
    cost: CostModel,
    /// GPU page table: pages currently resident and mapped on the device.
    page_table: HashSet<PageNum>,
    utlbs: Vec<Utlb>,
    /// Fault arbitration stage.
    pub gmmu: Gmmu,
    /// The circular fault buffer the driver fetches from.
    pub fault_buffer: FaultBuffer,
    warps: Vec<Warp>,
    sm_queues: Vec<VecDeque<u32>>,
    sm_active: Vec<u32>,
    rng: DetRng,
    done_warps: usize,
    /// Completion time of the last warp to finish.
    pub kernel_end: SimTime,
    /// Monotone count of replays issued.
    pub replays: u64,
    /// Monotone count of GPU resets suffered.
    pub resets: u64,
}

impl Gpu {
    /// A GPU with the given hardware spec and cost model, and a seed for
    /// the hardware-timing jitter (warp wake staggering after replay).
    pub fn new_seeded(spec: GpuSpec, cost: CostModel, seed: u64) -> Self {
        let num_utlbs = spec.num_utlbs();
        let num_sms = spec.num_sms;
        Gpu {
            gmmu: Gmmu::new(num_utlbs),
            fault_buffer: FaultBuffer::new(spec.fault_buffer_entries),
            utlbs: (0..num_utlbs)
                .map(|_| Utlb::new(spec.utlb_outstanding_limit))
                .collect(),
            warps: Vec::new(),
            sm_queues: (0..num_sms).map(|_| VecDeque::new()).collect(),
            sm_active: vec![0; num_sms as usize],
            rng: DetRng::new(seed ^ 0x6704_11AD),
            done_warps: 0,
            kernel_end: SimTime::ZERO,
            replays: 0,
            resets: 0,
            page_table: HashSet::new(),
            spec,
            cost,
        }
    }

    /// A GPU with the given hardware spec and cost model (default seed).
    pub fn new(spec: GpuSpec, cost: CostModel) -> Self {
        Self::new_seeded(spec, cost, 0)
    }

    /// Launch a kernel: one program per warp, assigned to SMs round-robin.
    /// Returns the ids of warps activated immediately (the first wave);
    /// the rest queue behind them and activate as slots free up.
    pub fn launch(&mut self, programs: Vec<WarpProgram>) -> Vec<u32> {
        let base = self.warps.len() as u32;
        for (i, program) in programs.into_iter().enumerate() {
            let id = base + i as u32;
            let sm = id % self.spec.num_sms;
            let utlb = self.spec.utlb_of_sm(sm);
            self.warps.push(Warp::new(id, sm, utlb, program));
            self.sm_queues[sm as usize].push_back(id);
        }
        let mut activated = Vec::new();
        for sm in 0..self.spec.num_sms as usize {
            while self.sm_active[sm] < self.spec.max_warps_per_sm {
                let Some(wid) = self.sm_queues[sm].pop_front() else { break };
                self.warps[wid as usize].status = WarpStatus::Ready;
                self.sm_active[sm] += 1;
                activated.push(wid);
            }
        }
        activated
    }

    /// Total warps launched.
    pub fn num_warps(&self) -> usize {
        self.warps.len()
    }

    /// Warps that have completed.
    pub fn warps_done(&self) -> usize {
        self.done_warps
    }

    /// Whether every launched warp has completed.
    pub fn all_done(&self) -> bool {
        self.done_warps == self.warps.len()
    }

    /// Warps currently stalled waiting for a replay.
    pub fn blocked_warps(&self) -> usize {
        self.warps.iter().filter(|w| w.status == WarpStatus::Blocked).count()
    }

    /// Read access to a warp (tests, instrumentation).
    pub fn warp(&self, wid: u32) -> &Warp {
        &self.warps[wid as usize]
    }

    /// Whether `page` is resident on the device.
    pub fn is_resident(&self, page: PageNum) -> bool {
        self.page_table.contains(&page)
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.page_table.len()
    }

    /// Map pages after migration (driver push-buffer operation).
    pub fn map_pages<I: IntoIterator<Item = PageNum>>(&mut self, pages: I) {
        self.page_table.extend(pages);
    }

    /// Unmap pages on eviction.
    pub fn unmap_pages<I: IntoIterator<Item = PageNum>>(&mut self, pages: I) {
        for p in pages {
            self.page_table.remove(&p);
        }
    }

    /// Move pending GMMU faults into the fault buffer (round-robin
    /// arbitration), returning the inserted records.
    pub fn drain_faults(&mut self) -> Vec<FaultRecord> {
        self.gmmu.drain(&mut self.fault_buffer, &self.cost)
    }

    /// Driver pre-replay flush: drop all buffered and in-flight faults.
    /// Returns the number of entries dropped.
    pub fn flush(&mut self) -> u64 {
        self.fault_buffer.flush() + self.gmmu.flush()
    }

    /// A GPU reset: the fault buffer, in-flight GMMU arbitration, and all
    /// μTLB outstanding-fault tracking are lost. Returns the number of
    /// fault entries destroyed.
    ///
    /// Blocked warps are *not* woken here — their faults are simply gone
    /// from hardware. The driver re-attaches and issues a replay (the
    /// normal end-of-batch one), which wakes the warps; the lost accesses
    /// then re-fault exactly like overflow-dropped entries do, so forward
    /// progress is preserved from the last consistent point.
    pub fn reset(&mut self, now: SimTime) -> u64 {
        self.resets += 1;
        let dropped = self.fault_buffer.reset() + self.gmmu.flush();
        for u in &mut self.utlbs {
            u.reset();
        }
        uvm_trace::emit_instant(now.0, || uvm_trace::TraceEvent::GpuReset {
            seq: self.resets,
            dropped,
        });
        dropped
    }

    /// Aggregate μTLB entries lost to GPU resets.
    pub fn utlb_reset_losses(&self) -> u64 {
        self.utlbs.iter().map(|u| u.reset_losses()).sum()
    }

    /// Fault replay: clear μTLB waiting state and wake every blocked warp.
    /// Returns `(warp, wake_time)` pairs; wake times are staggered over
    /// `replay_wake_spread` because μTLB replay processing and warp
    /// re-scheduling resume warps at slightly different instants — except
    /// when a single warp is blocked (nothing to arbitrate against), which
    /// keeps the single-warp microbenchmarks (Figs. 3–5) exactly timed.
    pub fn replay(&mut self, now: SimTime) -> Vec<(u32, SimTime)> {
        self.replays += 1;
        let blocked_warps =
            self.warps.iter().filter(|w| w.status == WarpStatus::Blocked).count() as u64;
        uvm_trace::emit_instant(now.0, || uvm_trace::TraceEvent::Replay {
            seq: self.replays,
            woken: blocked_warps,
        });
        for u in &mut self.utlbs {
            u.replay();
        }
        let blocked = self
            .warps
            .iter()
            .filter(|w| w.status == WarpStatus::Blocked)
            .count();
        let spread = self.cost.replay_wake_spread.as_nanos();
        let page_table = &self.page_table;
        let mut woken = Vec::new();
        for w in &mut self.warps {
            if w.status == WarpStatus::Blocked {
                w.apply_replay(|p| page_table.contains(&p));
                w.status = WarpStatus::Ready;
                let wake = if blocked > 1 && spread > 0 {
                    now + uvm_sim::time::SimDuration::from_nanos(self.rng.below(spread))
                } else {
                    now
                };
                w.ready_at = wake;
                woken.push((w.id, wake));
            }
        }
        woken
    }

    /// Advance warp `wid` from time `now` until it blocks, finishes, or
    /// exhausts its step quantum.
    ///
    /// # Panics
    ///
    /// Panics if the warp is not in the `Ready` state.
    pub fn step_warp(&mut self, wid: u32, now: SimTime) -> StepOutcome {
        let w = &mut self.warps[wid as usize];
        assert_eq!(w.status, WarpStatus::Ready, "stepping warp {wid} in state {:?}", w.status);
        let mut t = if now > w.ready_at { now } else { w.ready_at };
        let mut instrs_executed = 0usize;

        loop {
            // Issue any pending accesses of the current instruction (plus
            // queued refaults).
            while let Some((page, kind)) = w.next_pending_access() {
                if self.page_table.contains(&page) {
                    continue; // hit
                }
                if kind == AccessKind::Prefetch {
                    // Prefetches bypass the scoreboard and μTLB slots: the
                    // fault is logged but the warp neither stalls nor waits.
                    self.gmmu.deposit(w.utlb, page, kind, w.sm, w.id, t, false);
                    w.faults_generated += 1;
                    continue;
                }
                match self.utlbs[w.utlb as usize].try_insert(page) {
                    UtlbInsert::Inserted => {
                        self.gmmu.deposit(w.utlb, page, kind, w.sm, w.id, t, false);
                        w.note_outstanding(page, kind);
                        w.faults_generated += 1;
                    }
                    UtlbInsert::AlreadyOutstanding => {
                        // Another access (same or different warp behind this
                        // μTLB) already faulted this page. The access
                        // usually attaches to the existing entry, but with
                        // some probability the GMMU logs another entry —
                        // the same-μTLB (type 1) duplicates of Sec. 4.2.
                        if self.rng.chance(self.spec.same_utlb_dup_prob) {
                            self.gmmu.deposit(w.utlb, page, kind, w.sm, w.id, t, true);
                            w.faults_generated += 1;
                        }
                        w.note_outstanding(page, kind);
                    }
                    UtlbInsert::Full => {
                        // All 56 slots occupied: the warp stalls until the
                        // next replay (the Fig. 3 56-fault first batch).
                        w.push_back_access(page, kind);
                        w.status = WarpStatus::Blocked;
                        w.ready_at = t;
                        return StepOutcome::Blocked;
                    }
                }
            }

            // Current instruction fully issued: move to the next.
            if w.at_program_end() {
                if w.has_outstanding() {
                    // Program issued completely but accesses are still in
                    // flight; the warp retires only when they land.
                    w.status = WarpStatus::Blocked;
                    w.ready_at = t;
                    Self::spurious_reissue(w, &mut self.gmmu, &mut self.rng, self.spec.spurious_refault_prob, t);
                    return StepOutcome::Blocked;
                }
                w.status = WarpStatus::Done;
                w.ready_at = t;
                let sm = w.sm as usize;
                self.done_warps += 1;
                if t > self.kernel_end {
                    self.kernel_end = t;
                }
                self.sm_active[sm] -= 1;
                let activated = self.sm_queues[sm].pop_front().inspect(|&next| {
                    self.warps[next as usize].status = WarpStatus::Ready;
                    self.warps[next as usize].ready_at = t;
                    self.sm_active[sm] += 1;
                });
                return StepOutcome::Finished { at: t, activated };
            }

            // Scoreboard: a store cannot issue while any prior faulted
            // access is outstanding (Listing 2: FADD stalls on its input
            // registers, blocking the STG and everything after it).
            if matches!(w.peek_instr(), Some(Instr::Store { .. })) && w.has_outstanding() {
                w.status = WarpStatus::Blocked;
                w.ready_at = t;
                Self::spurious_reissue(w, &mut self.gmmu, &mut self.rng, self.spec.spurious_refault_prob, t);
                return StepOutcome::Blocked;
            }

            // Infallible: the `at_program_end` branch above already returned.
            let instr = w.fetch_next_instr().expect("not at program end");
            t += match instr {
                Instr::Delay(d) => *d,
                _ => self.cost.warp_instr_latency,
            };
            instrs_executed += 1;
            if instrs_executed >= STEP_QUANTUM_INSTRS {
                w.ready_at = t;
                return StepOutcome::Continue { at: t };
            }
        }
    }

    /// While a warp stalls on outstanding faults, its SM occasionally
    /// "spuriously wakes up to reissue the same fault" (paper Sec. 4.2):
    /// each outstanding access re-enters the GMMU with some probability as
    /// a same-μTLB duplicate, 10–60 µs after the stall (a *wake-up*, not an
    /// instantaneous echo — so microbenchmark first batches keep their
    /// exact μTLB-limit size, and most re-issues land mid-service and are
    /// flushed, surfacing only occasionally as batch duplicates). The μTLB
    /// entry already exists, so no slot is consumed.
    fn spurious_reissue(
        w: &mut Warp,
        gmmu: &mut Gmmu,
        rng: &mut DetRng,
        prob: f64,
        now: SimTime,
    ) {
        if prob <= 0.0 {
            return;
        }
        let reissues: Vec<(PageNum, AccessKind)> = w
            .outstanding_accesses()
            .filter(|_| rng.chance(prob))
            .collect();
        for (page, kind) in reissues {
            let wake_delay =
                uvm_sim::time::SimDuration::from_nanos(10_000 + rng.below(50_000));
            gmmu.deposit(w.utlb, page, kind, w.sm, w.id, now + wake_delay, true);
            w.faults_generated += 1;
        }
    }

    /// Aggregate μTLB full-stall count (hardware-limit pressure metric).
    pub fn utlb_full_stalls(&self) -> u64 {
        self.utlbs.iter().map(|u| u.full_stalls()).sum()
    }

    /// Occupancy of a μTLB (tests).
    pub fn utlb_occupancy(&self, utlb: u32) -> u32 {
        self.utlbs[utlb as usize].occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvm_sim::mem::{VaBlockId, PAGES_PER_VABLOCK};

    fn small_gpu() -> Gpu {
        Gpu::new(GpuSpec::small(1 << 30), CostModel::titan_v())
    }

    /// A minimal driver loop: fetch → service (map everything) → flush →
    /// replay, repeated until the kernel finishes. Returns the batch sizes.
    fn mini_drive(gpu: &mut Gpu, activated: Vec<u32>, batch_limit: usize) -> Vec<usize> {
        let mut pending: Vec<u32> = activated;
        let mut batches = Vec::new();
        let mut now = SimTime::ZERO;
        for _round in 0..10_000 {
            // Step every ready warp to quiescence.
            while let Some(wid) = pending.pop() {
                match gpu.step_warp(wid, now) {
                    StepOutcome::Continue { .. } => pending.push(wid),
                    StepOutcome::Blocked => {}
                    StepOutcome::Finished { activated, .. } => {
                        if let Some(next) = activated {
                            pending.push(next);
                        }
                    }
                }
            }
            gpu.drain_faults();
            if gpu.all_done() {
                break;
            }
            // Service one batch.
            now = SimTime(now.0 + 100_000);
            let batch = gpu.fault_buffer.fetch(batch_limit, now);
            if batch.is_empty() && gpu.fault_buffer.is_empty() && gpu.gmmu.pending() == 0 {
                // Warps blocked with nothing buffered: replay to re-fault.
                gpu.flush();
                pending = gpu.replay(now).into_iter().map(|(w, _)| w).collect();
                continue;
            }
            batches.push(batch.len());
            let pages: HashSet<PageNum> = batch.iter().map(|f| f.page).collect();
            gpu.map_pages(pages);
            gpu.flush();
            now = SimTime(now.0 + 10_000);
            pending = gpu.replay(now).into_iter().map(|(w, _)| w).collect();
        }
        batches
    }

    /// The Listing 1 vector-addition microbenchmark: one 32-thread warp,
    /// each thread touching one page of a, b, and c per statement, three
    /// statements.
    fn vecadd_program() -> WarpProgram {
        let a = 1000u64; // page bases, far apart
        let b = 2000u64;
        let c = 3000u64;
        let mut p = WarpProgram::new();
        for stmt in 0..3u64 {
            let off = stmt * 32;
            p.push(Instr::Load {
                pages: (0..32).map(|l| PageNum(a + off + l)).collect(),
            });
            p.push(Instr::Load {
                pages: (0..32).map(|l| PageNum(b + off + l)).collect(),
            });
            p.push(Instr::Store {
                pages: (0..32).map(|l| PageNum(c + off + l)).collect(),
            });
        }
        p
    }

    #[test]
    fn vecadd_first_batch_is_exactly_56_faults() {
        // Paper Fig. 3: 32 A-reads plus 24 B-reads fill the 56 μTLB slots.
        let mut gpu = small_gpu();
        let activated = gpu.launch(vec![vecadd_program()]);
        assert_eq!(gpu.step_warp(activated[0], SimTime::ZERO), StepOutcome::Blocked);
        let recs = gpu.drain_faults();
        assert_eq!(recs.len(), 56);
        assert!(recs.iter().all(|r| r.kind == AccessKind::Read));
        assert_eq!(gpu.utlb_occupancy(gpu.warp(activated[0]).utlb), 56);
    }

    #[test]
    fn vecadd_writes_only_after_all_reads_fulfilled() {
        // Paper Sec. 3.2: no write access can execute until all 64
        // prerequisite reads are fulfilled.
        let mut gpu = small_gpu();
        let activated = gpu.launch(vec![vecadd_program()]);
        let wid = activated[0];
        assert_eq!(gpu.step_warp(wid, SimTime::ZERO), StepOutcome::Blocked);
        // Service batch 1 (56 reads).
        gpu.drain_faults();
        let batch1 = gpu.fault_buffer.fetch(256, SimTime(u64::MAX / 2));
        gpu.map_pages(batch1.iter().map(|f| f.page));
        gpu.flush();
        let woken = gpu.replay(SimTime(1_000_000));
        assert_eq!(woken, vec![(wid, SimTime(1_000_000))]);
        // Batch 2: the remaining 8 B-reads; the store is still
        // scoreboard-blocked behind them.
        assert_eq!(gpu.step_warp(wid, SimTime(1_000_000)), StepOutcome::Blocked);
        let recs = gpu.drain_faults();
        assert_eq!(recs.len(), 8);
        assert!(recs.iter().all(|r| r.kind == AccessKind::Read));
        // Service batch 2; only now can writes fault.
        let batch2 = gpu.fault_buffer.fetch(256, SimTime(u64::MAX / 2));
        gpu.map_pages(batch2.iter().map(|f| f.page));
        gpu.flush();
        gpu.replay(SimTime(2_000_000));
        assert_eq!(gpu.step_warp(wid, SimTime(2_000_000)), StepOutcome::Blocked);
        let recs = gpu.drain_faults();
        assert!(!recs.is_empty());
        assert!(recs.iter().any(|r| r.kind == AccessKind::Write), "writes fault now");
        // All writes in this wave target vector C's first statement pages.
        for r in recs.iter().filter(|r| r.kind == AccessKind::Write) {
            assert!(r.page.0 >= 3000 && r.page.0 < 3032, "{:?}", r.page);
        }
    }

    #[test]
    fn vecadd_completes_under_mini_driver() {
        let mut gpu = small_gpu();
        let activated = gpu.launch(vec![vecadd_program()]);
        let batches = mini_drive(&mut gpu, activated, 256);
        assert!(gpu.all_done());
        assert_eq!(batches[0], 56);
        // 3 statements x 96 accesses = 288 unique pages total.
        assert_eq!(gpu.resident_pages(), 288);
        assert!(batches.len() >= 5, "multiple batches required: {batches:?}");
    }

    #[test]
    fn prefetch_single_warp_fills_whole_batch() {
        // Paper Fig. 5: software prefetching escapes both the μTLB limit
        // and the scoreboard; a single warp generates up to the batch-size
        // limit (256) in one batch.
        let mut gpu = small_gpu();
        let pages: Vec<PageNum> = (0..300).map(|i| PageNum(5000 + i)).collect();
        let mut p = WarpProgram::new();
        p.push(Instr::Prefetch { pages });
        let activated = gpu.launch(vec![p]);
        // The warp never blocks: prefetches are fire-and-forget.
        match gpu.step_warp(activated[0], SimTime::ZERO) {
            StepOutcome::Finished { .. } => {}
            other => panic!("prefetch warp should finish immediately, got {other:?}"),
        }
        let recs = gpu.drain_faults();
        assert_eq!(recs.len(), 300);
        let batch = gpu.fault_buffer.fetch(256, SimTime(u64::MAX / 2));
        assert_eq!(batch.len(), 256, "batch capped at the software limit");
        // The tail beyond the batch limit is dropped by the flush.
        assert_eq!(gpu.flush(), 44);
    }

    #[test]
    fn utlb_sharing_between_adjacent_sms() {
        // Two warps on SMs 0 and 1 share μTLB 0; their combined outstanding
        // faults are bounded by the single 56-entry budget.
        let mut gpu = small_gpu();
        let p0 = WarpProgram {
            instrs: vec![Instr::Load { pages: (0..32).map(|i| PageNum(100 + i)).collect() }],
        };
        let p1 = WarpProgram {
            instrs: vec![Instr::Load { pages: (0..32).map(|i| PageNum(200 + i)).collect() }],
        };
        // Launch 8 programs so warps land on SMs 0..8; warps 0 and 1 share μTLB 0.
        let activated = gpu.launch(vec![p0, p1]);
        for wid in activated {
            let _ = gpu.step_warp(wid, SimTime::ZERO);
        }
        assert_eq!(gpu.utlb_occupancy(0), 56);
        assert_eq!(gpu.utlb_full_stalls(), 1);
        let recs = gpu.drain_faults();
        assert_eq!(recs.len(), 56);
    }

    #[test]
    fn same_utlb_duplicate_faults_are_flagged() {
        // Two warps behind the same μTLB touching the same page: the second
        // fault is logged as a duplicate of an outstanding entry.
        let mut gpu = small_gpu();
        let shared = PageNum(42);
        let prog = WarpProgram { instrs: vec![Instr::load1(shared)] };
        // Warps 0 and 1 land on SMs 0 and 1 → both on μTLB 0.
        let activated = gpu.launch(vec![prog.clone(), prog]);
        for wid in activated {
            let _ = gpu.step_warp(wid, SimTime::ZERO);
        }
        let recs = gpu.drain_faults();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs.iter().filter(|r| r.dup_of_outstanding).count(), 1);
        assert_eq!(gpu.utlb_occupancy(0), 1, "duplicate consumed no extra slot");
    }

    #[test]
    fn resident_pages_do_not_fault() {
        let mut gpu = small_gpu();
        let block = VaBlockId(3);
        gpu.map_pages(block.pages());
        assert_eq!(gpu.resident_pages() as u64, PAGES_PER_VABLOCK);
        let prog = WarpProgram {
            instrs: vec![
                Instr::Load { pages: vec![block.page_at(0), block.page_at(5)] },
                Instr::Store { pages: vec![block.page_at(6)] },
            ],
        };
        let activated = gpu.launch(vec![prog]);
        match gpu.step_warp(activated[0], SimTime::ZERO) {
            StepOutcome::Finished { .. } => {}
            other => panic!("all-resident warp should finish, got {other:?}"),
        }
        assert_eq!(gpu.gmmu.pending(), 0);
        assert_eq!(gpu.warp(activated[0]).faults_generated, 0);
    }

    #[test]
    fn wave_scheduling_respects_occupancy() {
        let mut gpu = small_gpu();
        // 8 SMs x 16 warps = 128 slots; launch 130 trivial programs.
        let progs: Vec<WarpProgram> = (0..130)
            .map(|i| WarpProgram { instrs: vec![Instr::load1(PageNum(10_000 + i))] })
            .collect();
        let activated = gpu.launch(progs);
        assert_eq!(activated.len(), 128);
        let batches = mini_drive(&mut gpu, activated, 256);
        assert!(gpu.all_done());
        assert_eq!(gpu.num_warps(), 130);
        assert!(!batches.is_empty());
    }

    #[test]
    fn kernel_end_reflects_last_finisher() {
        let mut gpu = small_gpu();
        let prog = WarpProgram {
            instrs: vec![Instr::Delay(uvm_sim::time::SimDuration::from_micros(50))],
        };
        let activated = gpu.launch(vec![prog]);
        match gpu.step_warp(activated[0], SimTime(1000)) {
            StepOutcome::Finished { at, .. } => {
                assert_eq!(at, SimTime(1000 + 50_000));
                assert_eq!(gpu.kernel_end, at);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn second_launch_reuses_residency() {
        let mut gpu = small_gpu();
        let prog = WarpProgram { instrs: vec![Instr::load1(PageNum(7))] };
        let a1 = gpu.launch(vec![prog.clone()]);
        let _ = gpu.step_warp(a1[0], SimTime::ZERO);
        let recs = gpu.drain_faults();
        gpu.map_pages(recs.iter().map(|r| r.page));
        gpu.flush();
        for (w, t) in gpu.replay(SimTime(1000)) {
            let _ = gpu.step_warp(w, t);
        }
        assert!(gpu.all_done());
        // Second kernel touching the same page: no fault.
        let a2 = gpu.launch(vec![prog]);
        match gpu.step_warp(a2[0], SimTime(2000)) {
            StepOutcome::Finished { .. } => {}
            other => panic!("warm page should not fault: {other:?}"),
        }
        assert_eq!(gpu.gmmu.pending(), 0);
        assert_eq!(gpu.num_warps(), 2);
        assert!(gpu.all_done());
    }

    #[test]
    fn buffer_overflow_drops_and_recovers() {
        // A fault buffer smaller than one μTLB's burst: the overflow is
        // dropped by the hardware and the access re-faults after replay.
        let mut spec = GpuSpec::small(1 << 30);
        spec.fault_buffer_entries = 16;
        let mut gpu = Gpu::new(spec, CostModel::titan_v());
        let prog = WarpProgram {
            instrs: vec![Instr::Load { pages: (0..32).map(PageNum).collect() }],
        };
        let a = gpu.launch(vec![prog]);
        let _ = gpu.step_warp(a[0], SimTime::ZERO);
        let recs = gpu.drain_faults();
        assert_eq!(recs.len(), 16, "buffer capacity bounds insertions");
        assert_eq!(gpu.fault_buffer.overflow_drops(), 16);
        // Service what arrived, replay, and let the rest re-fault.
        let batch = gpu.fault_buffer.fetch(256, SimTime(u64::MAX / 2));
        gpu.map_pages(batch.iter().map(|f| f.page));
        gpu.flush();
        for (w, t) in gpu.replay(SimTime(1_000_000)) {
            let _ = gpu.step_warp(w, t);
        }
        let recs2 = gpu.drain_faults();
        assert_eq!(recs2.len(), 16, "dropped accesses re-fault");
        let batch2 = gpu.fault_buffer.fetch(256, SimTime(u64::MAX / 2));
        gpu.map_pages(batch2.iter().map(|f| f.page));
        gpu.flush();
        for (w, t) in gpu.replay(SimTime(2_000_000)) {
            let _ = gpu.step_warp(w, t);
        }
        assert!(gpu.all_done());
        assert_eq!(gpu.resident_pages(), 32);
    }

    #[test]
    fn reset_loses_state_but_replay_recovers_the_run() {
        // A reset destroys the buffered faults and μTLB tracking; the
        // subsequent (driver-issued) replay wakes the blocked warp and the
        // lost accesses re-fault — same recovery shape as overflow drops.
        let mut gpu = small_gpu();
        let prog = WarpProgram {
            instrs: vec![Instr::Load { pages: (0..32).map(PageNum).collect() }],
        };
        let a = gpu.launch(vec![prog]);
        let _ = gpu.step_warp(a[0], SimTime::ZERO);
        let recs = gpu.drain_faults();
        assert_eq!(recs.len(), 32);
        // Hardware loses everything before the driver fetched a single one.
        let dropped = gpu.reset(SimTime(500));
        assert_eq!(dropped, 32);
        assert_eq!(gpu.resets, 1);
        assert_eq!(gpu.fault_buffer.reset_losses(), 32);
        assert_eq!(gpu.utlb_reset_losses(), 32);
        assert_eq!(gpu.utlb_occupancy(gpu.warp(a[0]).utlb), 0);
        // Driver re-attaches and replays: the warp re-faults all 32 pages.
        for (w, t) in gpu.replay(SimTime(1_000_000)) {
            let _ = gpu.step_warp(w, t);
        }
        let recs2 = gpu.drain_faults();
        assert_eq!(recs2.len(), 32, "lost accesses re-fault after replay");
        let batch = gpu.fault_buffer.fetch(256, SimTime(u64::MAX / 2));
        gpu.map_pages(batch.iter().map(|f| f.page));
        gpu.flush();
        for (w, t) in gpu.replay(SimTime(2_000_000)) {
            let _ = gpu.step_warp(w, t);
        }
        assert!(gpu.all_done());
        assert_eq!(gpu.resident_pages(), 32);
    }

    #[test]
    fn delay_program_advances_time_without_faults() {
        let mut gpu = small_gpu();
        let prog = WarpProgram {
            instrs: vec![
                Instr::Delay(uvm_sim::time::SimDuration::from_micros(10)),
                Instr::load1(PageNum(1)),
                Instr::Delay(uvm_sim::time::SimDuration::from_micros(10)),
            ],
        };
        let a = gpu.launch(vec![prog]);
        // The load is non-blocking: both delays elapse, then the warp
        // blocks at program end waiting for its outstanding access.
        assert_eq!(gpu.step_warp(a[0], SimTime::ZERO), StepOutcome::Blocked);
        let recs = gpu.drain_faults();
        assert_eq!(recs.len(), 1);
        assert!(recs[0].arrival.as_nanos() >= 10_000, "first delay elapsed before the fault");
        gpu.map_pages([PageNum(1)]);
        gpu.flush();
        let woken = gpu.replay(SimTime(100_000));
        match gpu.step_warp(woken[0].0, woken[0].1) {
            StepOutcome::Finished { at, .. } => {
                assert_eq!(at, SimTime(100_000), "all compute already ran pre-block")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "stepping warp")]
    fn stepping_blocked_warp_panics() {
        let mut gpu = small_gpu();
        let prog = WarpProgram {
            instrs: vec![Instr::Load { pages: vec![PageNum(1)] }],
        };
        let activated = gpu.launch(vec![prog]);
        // Warp blocks at end with outstanding fault.
        let _ = gpu.step_warp(activated[0], SimTime::ZERO);
        let _ = gpu.step_warp(activated[0], SimTime::ZERO);
    }
}
