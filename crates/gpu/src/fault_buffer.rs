//! The GPU fault buffer.
//!
//! A circular array in device memory, configured and managed by the UVM
//! driver (paper Sec. 2.1). The GMMU appends fault entries; the driver
//! fetches from the head when forming a batch and *flushes* the buffer
//! before issuing a replay, dropping any entries it did not service —
//! dropped non-duplicate faults are simply re-generated after the replay
//! (Sec. 4.2).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use uvm_sim::inject::PointInjector;
use uvm_sim::time::SimTime;

use crate::fault::FaultRecord;

/// The circular GPU fault buffer.
#[derive(Debug, Serialize, Deserialize)]
pub struct FaultBuffer {
    entries: VecDeque<FaultRecord>,
    capacity: u32,
    /// Monotone count of entries dropped because the buffer was full.
    overflow_drops: u64,
    /// Monotone count of entries dropped by driver flushes.
    flush_drops: u64,
    /// Monotone count of entries lost to GPU resets.
    reset_losses: u64,
    /// Monotone count of entries ever inserted.
    total_inserted: u64,
    /// Overflow-storm injection (disabled by default; see `uvm_sim::inject`).
    injector: PointInjector,
}

impl FaultBuffer {
    /// An empty buffer with the given hardware capacity.
    pub fn new(capacity: u32) -> Self {
        FaultBuffer {
            entries: VecDeque::with_capacity(capacity as usize),
            capacity,
            overflow_drops: 0,
            flush_drops: 0,
            reset_losses: 0,
            total_inserted: 0,
            injector: PointInjector::disabled(),
        }
    }

    /// Install the overflow-storm injector (the
    /// [`InjectionPoint::FaultBufferOverflow`](uvm_sim::inject::InjectionPoint)
    /// site).
    pub fn set_injector(&mut self, injector: PointInjector) {
        self.injector = injector;
    }

    /// Number of entries currently buffered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Remaining slots.
    pub fn free_slots(&self) -> u32 {
        self.capacity - self.entries.len() as u32
    }

    /// Append a fault. Returns `false` (and counts an overflow drop) when
    /// the buffer is full — the hardware drops the entry and the access
    /// re-faults after the next replay. An injected overflow storm makes the
    /// buffer behave as if it were full for the storm's duration.
    pub fn push(&mut self, fault: FaultRecord) -> bool {
        if self.entries.len() as u32 >= self.capacity
            || (self.injector.is_enabled() && self.injector.should_fail(fault.arrival))
        {
            self.overflow_drops += 1;
            return false;
        }
        debug_assert!(
            self.entries.back().is_none_or(|last| last.arrival <= fault.arrival),
            "fault buffer arrivals must be monotone"
        );
        self.entries.push_back(fault);
        self.total_inserted += 1;
        true
    }

    /// Fetch up to `max` entries whose arrival time is `<= now`, in arrival
    /// order. This models the driver's batch-formation read loop: it reads
    /// what has arrived, up to the batch size limit.
    pub fn fetch(&mut self, max: usize, now: SimTime) -> Vec<FaultRecord> {
        let mut out = Vec::with_capacity(max.min(self.entries.len()));
        self.fetch_into(max, now, &mut out);
        out
    }

    /// [`FaultBuffer::fetch`] into a caller-owned buffer: appends up to
    /// `max` arrived entries to `out` and returns how many were appended.
    /// Lets the run loop reuse one batch allocation across all batches.
    pub fn fetch_into(&mut self, max: usize, now: SimTime, out: &mut Vec<FaultRecord>) -> usize {
        let mut taken = 0;
        while taken < max {
            match self.entries.front() {
                Some(f) if f.arrival <= now => {
                    out.push(self.entries.pop_front().expect("front exists"));
                    taken += 1;
                }
                _ => break,
            }
        }
        taken
    }

    /// Arrival time of the oldest buffered entry, if any.
    pub fn earliest_arrival(&self) -> Option<SimTime> {
        self.entries.front().map(|f| f.arrival)
    }

    /// Driver flush before replay: drop every remaining entry. Returns the
    /// number dropped.
    pub fn flush(&mut self) -> u64 {
        let dropped = self.entries.len() as u64;
        self.entries.clear();
        self.flush_drops += dropped;
        dropped
    }

    /// A GPU reset loses every buffered entry. Unlike [`FaultBuffer::flush`]
    /// this is not a driver-ordered drop: the entries vanish from hardware,
    /// and are accounted separately so reset damage is distinguishable from
    /// routine pre-replay flushes. Returns the number lost.
    pub fn reset(&mut self) -> u64 {
        let lost = self.entries.len() as u64;
        self.entries.clear();
        self.reset_losses += lost;
        lost
    }

    /// Monotone count of hardware overflow drops.
    pub fn overflow_drops(&self) -> u64 {
        self.overflow_drops
    }

    /// Monotone count of entries lost to GPU resets.
    pub fn reset_losses(&self) -> u64 {
        self.reset_losses
    }

    /// Monotone count of flush drops.
    pub fn flush_drops(&self) -> u64 {
        self.flush_drops
    }

    /// Monotone count of entries ever inserted.
    pub fn total_inserted(&self) -> u64 {
        self.total_inserted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::AccessKind;
    use uvm_sim::mem::PageNum;

    fn fault(page: u64, arrival: u64) -> FaultRecord {
        FaultRecord {
            page: PageNum(page),
            kind: AccessKind::Read,
            sm: 0,
            utlb: 0,
            warp: 0,
            arrival: SimTime(arrival),
            dup_of_outstanding: false,
        }
    }

    #[test]
    fn fetch_respects_arrival_time() {
        let mut b = FaultBuffer::new(16);
        b.push(fault(1, 10));
        b.push(fault(2, 20));
        b.push(fault(3, 30));
        let got = b.fetch(10, SimTime(20));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].page, PageNum(1));
        assert_eq!(got[1].page, PageNum(2));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn fetch_respects_batch_limit() {
        let mut b = FaultBuffer::new(16);
        for i in 0..10 {
            b.push(fault(i, i));
        }
        let got = b.fetch(4, SimTime(100));
        assert_eq!(got.len(), 4);
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn overflow_drops_are_counted() {
        let mut b = FaultBuffer::new(2);
        assert!(b.push(fault(1, 0)));
        assert!(b.push(fault(2, 0)));
        assert!(!b.push(fault(3, 0)));
        assert_eq!(b.overflow_drops(), 1);
        assert_eq!(b.len(), 2);
        assert_eq!(b.total_inserted(), 2);
    }

    #[test]
    fn flush_drops_everything() {
        let mut b = FaultBuffer::new(8);
        for i in 0..5 {
            b.push(fault(i, i));
        }
        assert_eq!(b.flush(), 5);
        assert!(b.is_empty());
        assert_eq!(b.flush_drops(), 5);
        assert_eq!(b.flush(), 0);
    }

    #[test]
    fn injected_storm_drops_a_burst_without_filling_the_buffer() {
        use uvm_sim::inject::PointPlan;
        use uvm_sim::DetRng;

        let mut b = FaultBuffer::new(64);
        b.set_injector(PointInjector::new(
            &PointPlan::scheduled(SimTime(10), 3),
            DetRng::new(1),
        ));
        assert!(b.push(fault(1, 5)));
        // The storm hits: three consecutive arrivals are dropped even though
        // the buffer has plenty of free slots.
        assert!(!b.push(fault(2, 10)));
        assert!(!b.push(fault(3, 11)));
        assert!(!b.push(fault(4, 12)));
        assert!(b.push(fault(5, 13)));
        assert_eq!(b.overflow_drops(), 3);
        assert_eq!(b.total_inserted(), 2);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn reset_losses_are_separate_from_flush_drops() {
        let mut b = FaultBuffer::new(8);
        for i in 0..4 {
            b.push(fault(i, i));
        }
        assert_eq!(b.reset(), 4);
        assert!(b.is_empty());
        assert_eq!(b.reset_losses(), 4);
        assert_eq!(b.flush_drops(), 0);
        b.push(fault(9, 9));
        assert_eq!(b.flush(), 1);
        assert_eq!(b.flush_drops(), 1);
        assert_eq!(b.reset_losses(), 4);
    }

    #[test]
    fn earliest_arrival_tracks_front() {
        let mut b = FaultBuffer::new(8);
        assert_eq!(b.earliest_arrival(), None);
        b.push(fault(1, 7));
        b.push(fault(2, 9));
        assert_eq!(b.earliest_arrival(), Some(SimTime(7)));
        b.fetch(1, SimTime(100));
        assert_eq!(b.earliest_arrival(), Some(SimTime(9)));
    }
}
