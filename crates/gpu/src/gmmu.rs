//! The GPU memory-management unit: fault arbitration into the fault buffer.
//!
//! Warps deposit fault requests into per-μTLB queues; the GMMU drains those
//! queues **round-robin** into the fault buffer, serializing insertions at
//! its write port (one entry per `fault_insert_gap`).
//!
//! Round-robin arbitration is this model's concrete mechanism for the
//! paper's two GPU-side observations:
//!
//! 1. *"each batch represents a combination of work across the GPU SMs"*
//!    and *"SMs are served relatively fairly"* (Table 2) — fair draining
//!    across 40 μTLBs bounds any SM's share of a 256-fault batch at
//!    256 / 80 = 3.2 faults, the exact maximum in Table 2;
//! 2. a single faulting warp still fills a whole batch by itself (Fig. 3)
//!    because with only one non-empty queue, round-robin degenerates to
//!    FIFO.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use uvm_sim::cost::CostModel;
use uvm_sim::mem::PageNum;
use uvm_sim::time::SimTime;

use crate::fault::{AccessKind, FaultRecord};
use crate::fault_buffer::FaultBuffer;

/// A fault awaiting GMMU insertion into the fault buffer.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct PendingFault {
    page: PageNum,
    kind: AccessKind,
    sm: u32,
    warp: u32,
    requested: SimTime,
    dup_of_outstanding: bool,
}

/// The GMMU arbitration stage.
#[derive(Debug, Serialize, Deserialize)]
pub struct Gmmu {
    queues: Vec<VecDeque<PendingFault>>,
    /// Round-robin cursor over μTLB queues.
    cursor: usize,
    /// Next time the buffer write port is free.
    port_free_at: SimTime,
    /// Monotone count of faults deposited.
    total_deposited: u64,
    /// Monotone count of pending faults discarded by flushes.
    flush_discards: u64,
}

impl Gmmu {
    /// A GMMU serving `num_utlbs` μTLB queues.
    pub fn new(num_utlbs: u32) -> Self {
        Gmmu {
            queues: (0..num_utlbs).map(|_| VecDeque::new()).collect(),
            cursor: 0,
            port_free_at: SimTime::ZERO,
            total_deposited: 0,
            flush_discards: 0,
        }
    }

    /// Number of faults awaiting insertion.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Monotone count of deposits.
    pub fn total_deposited(&self) -> u64 {
        self.total_deposited
    }

    /// Earliest request time among pending (undrained) faults — used by the
    /// engine to schedule the interrupt wake without forcing an early
    /// drain (draining early would defeat round-robin arbitration across
    /// μTLB queues that fill concurrently).
    pub fn earliest_request(&self) -> Option<SimTime> {
        self.queues
            .iter()
            .filter_map(|q| q.front().map(|pf| pf.requested))
            .min()
    }

    /// Deposit a fault request from `utlb` at time `requested`.
    #[allow(clippy::too_many_arguments)]
    pub fn deposit(
        &mut self,
        utlb: u32,
        page: PageNum,
        kind: AccessKind,
        sm: u32,
        warp: u32,
        requested: SimTime,
        dup_of_outstanding: bool,
    ) {
        self.total_deposited += 1;
        self.queues[utlb as usize].push_back(PendingFault {
            page,
            kind,
            sm,
            warp,
            requested,
            dup_of_outstanding,
        });
    }

    /// Drain pending faults round-robin into `buffer`, assigning arrival
    /// timestamps no earlier than each fault's request time and serialized
    /// at the write port. Returns the inserted records (for event
    /// scheduling). Entries that find the buffer full are discarded — the
    /// hardware drops them and the access re-faults after the next replay.
    pub fn drain(&mut self, buffer: &mut FaultBuffer, cost: &CostModel) -> Vec<FaultRecord> {
        let n_queues = self.queues.len();
        let mut inserted = Vec::new();
        if n_queues == 0 {
            return inserted;
        }
        let mut remaining: usize = self.pending();
        while remaining > 0 {
            // Advance the cursor to the next non-empty queue.
            let mut tries = 0;
            while self.queues[self.cursor].is_empty() {
                self.cursor = (self.cursor + 1) % n_queues;
                tries += 1;
                debug_assert!(tries <= n_queues, "pending() said work remains");
            }
            let utlb = self.cursor as u32;
            let pf = self.queues[self.cursor].pop_front().expect("non-empty");
            self.cursor = (self.cursor + 1) % n_queues;
            remaining -= 1;

            let slot = if pf.requested > self.port_free_at {
                pf.requested
            } else {
                self.port_free_at
            };
            self.port_free_at = slot + cost.fault_insert_gap;
            let record = FaultRecord {
                page: pf.page,
                kind: pf.kind,
                sm: pf.sm,
                utlb,
                warp: pf.warp,
                arrival: slot + cost.fault_insert_latency,
                dup_of_outstanding: pf.dup_of_outstanding,
            };
            if buffer.push(record) {
                uvm_trace::emit_instant(record.arrival.0, || uvm_trace::TraceEvent::FaultGenerated {
                    page: record.page.0,
                    kind: record.kind.trace(),
                    sm: record.sm,
                    utlb: record.utlb,
                    warp: record.warp,
                    dup: record.dup_of_outstanding,
                });
                inserted.push(record);
            } else {
                uvm_trace::emit_instant(record.arrival.0, || uvm_trace::TraceEvent::FaultDropped {
                    page: record.page.0,
                    sm: record.sm,
                    utlb: record.utlb,
                });
            }
        }
        inserted
    }

    /// Monotone count of pending faults discarded by flushes.
    pub fn flush_discards(&self) -> u64 {
        self.flush_discards
    }

    /// Discard all pending (not yet inserted) faults — part of the driver's
    /// pre-replay flush. The dropped accesses re-fault after replay. The
    /// write port idles once its backlog is discarded, so its serialization
    /// point resets: without this, a large discarded wave would keep
    /// phantom-delaying future insertions.
    pub fn flush(&mut self) -> u64 {
        let dropped: u64 = self.queues.iter().map(|q| q.len() as u64).sum();
        for q in &mut self.queues {
            q.clear();
        }
        self.flush_discards += dropped;
        self.port_free_at = SimTime::ZERO;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(g: &mut Gmmu) -> Vec<FaultRecord> {
        let mut buf = FaultBuffer::new(4096);
        let cost = CostModel::titan_v();
        g.drain(&mut buf, &cost)
    }

    #[test]
    fn single_queue_drains_fifo() {
        let mut g = Gmmu::new(4);
        for i in 0..10u64 {
            g.deposit(2, PageNum(i), AccessKind::Read, 4, 0, SimTime(100), false);
        }
        let recs = drain_all(&mut g);
        let pages: Vec<u64> = recs.iter().map(|r| r.page.0).collect();
        assert_eq!(pages, (0..10).collect::<Vec<_>>());
        // Arrivals strictly increase by the port gap.
        for w in recs.windows(2) {
            assert!(w[1].arrival > w[0].arrival);
        }
    }

    #[test]
    fn multiple_queues_interleave_round_robin() {
        let mut g = Gmmu::new(2);
        for i in 0..4u64 {
            g.deposit(0, PageNum(i), AccessKind::Read, 0, 0, SimTime(0), false);
            g.deposit(1, PageNum(100 + i), AccessKind::Read, 2, 1, SimTime(0), false);
        }
        let recs = drain_all(&mut g);
        let utlbs: Vec<u32> = recs.iter().map(|r| r.utlb).collect();
        assert_eq!(utlbs, vec![0, 1, 0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn fairness_bounds_per_sm_share_of_a_batch() {
        // 40 μTLBs each with plenty of faults: the first 256 buffer entries
        // contain at most ceil(256/40) = 7 faults per μTLB, i.e. 3.2 per SM
        // on average with 2 SMs per μTLB — the Table 2 cap.
        let mut g = Gmmu::new(40);
        for u in 0..40u32 {
            for i in 0..56u64 {
                g.deposit(u, PageNum(u as u64 * 1000 + i), AccessKind::Read, u * 2, u, SimTime(0), false);
            }
        }
        let recs = drain_all(&mut g);
        let first_batch = &recs[..256];
        let mut per_utlb = [0u32; 40];
        for r in first_batch {
            per_utlb[r.utlb as usize] += 1;
        }
        assert!(per_utlb.iter().all(|&c| (6..=7).contains(&c)), "{per_utlb:?}");
    }

    #[test]
    fn arrival_respects_request_time() {
        let mut g = Gmmu::new(1);
        g.deposit(0, PageNum(1), AccessKind::Read, 0, 0, SimTime(1_000_000), false);
        let recs = drain_all(&mut g);
        assert!(recs[0].arrival >= SimTime(1_000_000));
    }

    #[test]
    fn flush_discards_pending() {
        let mut g = Gmmu::new(2);
        g.deposit(0, PageNum(1), AccessKind::Read, 0, 0, SimTime(0), false);
        g.deposit(1, PageNum(2), AccessKind::Read, 2, 1, SimTime(0), false);
        assert_eq!(g.flush(), 2);
        assert_eq!(g.pending(), 0);
        assert!(drain_all(&mut g).is_empty());
    }

    #[test]
    fn full_buffer_discards_overflow() {
        let mut g = Gmmu::new(1);
        for i in 0..10u64 {
            g.deposit(0, PageNum(i), AccessKind::Read, 0, 0, SimTime(0), false);
        }
        let mut buf = FaultBuffer::new(4);
        let cost = CostModel::titan_v();
        let inserted = g.drain(&mut buf, &cost);
        assert_eq!(inserted.len(), 4);
        assert_eq!(buf.overflow_drops(), 6);
        assert_eq!(g.pending(), 0);
    }
}
