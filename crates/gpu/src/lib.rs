#![warn(missing_docs)]

//! # uvm-gpu — GPU device model: fault generation hardware
//!
//! Section 3 of Allen & Ge (SC '21) characterizes *how* GPU page faults are
//! generated: per-μTLB outstanding-fault limits, per-SM rate behaviour,
//! scoreboard-induced serialization between dependent accesses, and the
//! replay mechanism. This crate models the device side of the UVM
//! architecture at exactly that level of detail:
//!
//! * [`spec`] — the hardware configuration ([`GpuSpec::titan_v`] matches the
//!   paper's testbed: 80 SMs, 2 SMs per μTLB, 56 outstanding faults per
//!   μTLB, 12 GiB of device memory).
//! * [`isa`] — warp-level micro-instruction streams ([`Instr`]): loads,
//!   stores (scoreboard-gated, reproducing the Listing 2 behaviour where
//!   writes cannot fault until their input reads are fulfilled), software
//!   prefetches (which bypass the scoreboard and the μTLB fault slots,
//!   reproducing Fig. 5), and compute delays.
//! * [`utlb`] — per-μTLB outstanding-fault tracking with the 56-entry limit.
//! * [`gmmu`] — the GPU memory-management unit: per-μTLB fault queues
//!   drained **round-robin** into the fault buffer. Round-robin arbitration
//!   is this model's concrete interpretation of the paper's observed per-SM
//!   "rate throttling": with 40 μTLBs × 2 SMs and a 256-fault batch limit,
//!   fair draining yields at most 256/80 = **3.2 faults per SM per batch**
//!   — precisely the maximum reported in Table 2.
//! * [`fault_buffer`] — the circular GPU fault buffer the driver fetches
//!   from and flushes before each replay.
//! * [`warp`] — warp execution state machines issuing accesses against the
//!   GPU page table.
//! * [`device`] — [`Gpu`], the device façade: launch kernels, step warps,
//!   accept replays, and expose the fault buffer to the driver.

pub mod device;
pub mod fault;
pub mod fault_buffer;
pub mod gmmu;
pub mod isa;
pub mod spec;
pub mod utlb;
pub mod warp;

pub use device::{Gpu, StepOutcome};
pub use fault::{AccessKind, FaultRecord};
pub use fault_buffer::FaultBuffer;
pub use gmmu::Gmmu;
pub use isa::{Instr, WarpProgram};
pub use spec::GpuSpec;
pub use utlb::{Utlb, UtlbInsert};
pub use warp::{Warp, WarpStatus};
