//! Per-μTLB outstanding-fault tracking.
//!
//! Each μTLB can hold a bounded number of outstanding (replayable) faults —
//! 56 on the paper's Volta hardware. A warp whose access misses while the
//! μTLB is full stalls until the next fault replay clears the entries
//! (Sec. 3.2: the first vector-addition batch contains exactly 56 faults,
//! all of vector A's reads plus most of vector B's).

use std::collections::HashSet;

use serde::{Deserialize, Serialize};
use uvm_sim::mem::PageNum;

/// Result of attempting to register a fault with a μTLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UtlbInsert {
    /// A new outstanding-fault entry was created.
    Inserted,
    /// This page already has an outstanding fault from this μTLB; the access
    /// piggybacks on it (and surfaces as a same-μTLB duplicate if the GMMU
    /// logs it again).
    AlreadyOutstanding,
    /// All outstanding-fault slots are occupied; the warp must stall until
    /// replay.
    Full,
}

/// One μTLB's outstanding-fault state.
#[derive(Debug, Serialize, Deserialize)]
pub struct Utlb {
    outstanding: HashSet<PageNum>,
    limit: u32,
    /// Monotone count of stall events due to a full μTLB.
    full_stalls: u64,
    /// Monotone count of entries lost to GPU resets (distinct from the
    /// orderly clears a replay performs).
    reset_losses: u64,
}

impl Utlb {
    /// A μTLB with the given outstanding-fault slot count.
    pub fn new(limit: u32) -> Self {
        Utlb {
            outstanding: HashSet::with_capacity(limit as usize),
            limit,
            full_stalls: 0,
            reset_losses: 0,
        }
    }

    /// Attempt to register an outstanding fault for `page`.
    pub fn try_insert(&mut self, page: PageNum) -> UtlbInsert {
        if self.outstanding.contains(&page) {
            return UtlbInsert::AlreadyOutstanding;
        }
        if self.outstanding.len() as u32 >= self.limit {
            self.full_stalls += 1;
            return UtlbInsert::Full;
        }
        self.outstanding.insert(page);
        UtlbInsert::Inserted
    }

    /// Whether `page` has an outstanding fault.
    pub fn is_outstanding(&self, page: PageNum) -> bool {
        self.outstanding.contains(&page)
    }

    /// Current number of outstanding faults.
    pub fn occupancy(&self) -> u32 {
        self.outstanding.len() as u32
    }

    /// Slot limit.
    pub fn limit(&self) -> u32 {
        self.limit
    }

    /// Monotone count of full-μTLB stalls observed.
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls
    }

    /// A fault replay clears every outstanding entry (waiting μTLB state is
    /// reset and the misses re-execute).
    pub fn replay(&mut self) {
        self.outstanding.clear();
    }

    /// A GPU reset loses the tracking state outright: entries vanish
    /// without the orderly hand-off a replay performs. Returns the number
    /// of entries lost (also accumulated in [`Utlb::reset_losses`]).
    pub fn reset(&mut self) -> u64 {
        let lost = self.outstanding.len() as u64;
        self.reset_losses += lost;
        self.outstanding.clear();
        lost
    }

    /// Monotone count of entries lost to GPU resets.
    pub fn reset_losses(&self) -> u64 {
        self.reset_losses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_to_limit_then_stalls() {
        let mut u = Utlb::new(56);
        for i in 0..56 {
            assert_eq!(u.try_insert(PageNum(i)), UtlbInsert::Inserted);
        }
        assert_eq!(u.occupancy(), 56);
        assert_eq!(u.try_insert(PageNum(100)), UtlbInsert::Full);
        assert_eq!(u.full_stalls(), 1);
    }

    #[test]
    fn duplicate_page_does_not_consume_slot() {
        let mut u = Utlb::new(2);
        assert_eq!(u.try_insert(PageNum(1)), UtlbInsert::Inserted);
        assert_eq!(u.try_insert(PageNum(1)), UtlbInsert::AlreadyOutstanding);
        assert_eq!(u.occupancy(), 1);
        assert!(u.is_outstanding(PageNum(1)));
    }

    #[test]
    fn replay_clears_everything() {
        let mut u = Utlb::new(4);
        for i in 0..4 {
            u.try_insert(PageNum(i));
        }
        assert_eq!(u.try_insert(PageNum(9)), UtlbInsert::Full);
        u.replay();
        assert_eq!(u.occupancy(), 0);
        assert_eq!(u.try_insert(PageNum(9)), UtlbInsert::Inserted);
    }

    #[test]
    fn reset_loses_entries_and_counts_them() {
        let mut u = Utlb::new(8);
        for i in 0..5 {
            u.try_insert(PageNum(i));
        }
        assert_eq!(u.reset(), 5);
        assert_eq!(u.occupancy(), 0);
        assert_eq!(u.reset_losses(), 5);
        // A reset is not a replay-ordered clear; replay accounting is
        // untouched and the μTLB is immediately usable again.
        assert_eq!(u.try_insert(PageNum(9)), UtlbInsert::Inserted);
        assert_eq!(u.reset(), 1);
        assert_eq!(u.reset_losses(), 6);
    }

    #[test]
    fn full_duplicate_still_reports_duplicate() {
        // A duplicate of an outstanding page must be reported as such even
        // when the μTLB is at capacity, since it does not need a new slot.
        let mut u = Utlb::new(1);
        u.try_insert(PageNum(5));
        assert_eq!(u.try_insert(PageNum(5)), UtlbInsert::AlreadyOutstanding);
    }
}
