//! Warp-level micro-instruction streams.
//!
//! Workload generators compile each benchmark's access pattern into one
//! [`WarpProgram`] per warp: the sequence of page-granular memory
//! operations the warp's 32 lanes perform after coalescing. The
//! instruction set captures exactly the semantics the paper's SASS analysis
//! (Listing 2) identifies as fault-relevant:
//!
//! * [`Instr::Load`] — non-blocking: a warp may issue further independent
//!   instructions while its load faults are outstanding.
//! * [`Instr::Store`] — scoreboard-gated: a store cannot issue until every
//!   previously issued faulting access of the warp has been fulfilled
//!   (`FADD R9, R0, R9` stalls on its input registers, so `STG` — and
//!   everything after it, since issue is in-order — waits for all prior
//!   reads; this is why vector-addition writes always land in a later
//!   batch than their reads).
//! * [`Instr::Prefetch`] — `prefetch.global.L2`: requires no registers,
//!   bypasses the scoreboard *and* the μTLB outstanding-fault slots, which
//!   is how a single warp can fill an entire 256-fault batch (Fig. 5).
//! * [`Instr::Delay`] — non-memory compute time between access phases.

use serde::{Deserialize, Serialize};
use uvm_sim::mem::PageNum;
use uvm_sim::time::SimDuration;

/// One warp-level instruction. `pages` lists the distinct pages the warp's
/// lanes touch in this instruction (after intra-warp coalescing): a fully
/// coalesced access is one page, a page-strided access is up to 32.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// Global load touching `pages`.
    Load {
        /// Distinct pages the warp's lanes read.
        pages: Vec<PageNum>,
    },
    /// Global store touching `pages`; waits for all prior outstanding
    /// faulted accesses of this warp (scoreboard).
    Store {
        /// Distinct pages the warp's lanes write.
        pages: Vec<PageNum>,
    },
    /// Software prefetch of `pages`.
    Prefetch {
        /// Distinct pages prefetched.
        pages: Vec<PageNum>,
    },
    /// Compute for the given duration without memory access.
    Delay(SimDuration),
}

impl Instr {
    /// A load of a single page.
    pub fn load1(page: PageNum) -> Self {
        Instr::Load { pages: vec![page] }
    }

    /// A store of a single page.
    pub fn store1(page: PageNum) -> Self {
        Instr::Store { pages: vec![page] }
    }

    /// The pages this instruction touches (empty for `Delay`).
    pub fn pages(&self) -> &[PageNum] {
        match self {
            Instr::Load { pages } | Instr::Store { pages } | Instr::Prefetch { pages } => pages,
            Instr::Delay(_) => &[],
        }
    }

    /// Whether this instruction writes memory.
    pub fn is_store(&self) -> bool {
        matches!(self, Instr::Store { .. })
    }
}

/// The full instruction stream of one warp.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarpProgram {
    /// Instructions in issue order.
    pub instrs: Vec<Instr>,
}

impl WarpProgram {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an instruction (builder style).
    pub fn push(&mut self, instr: Instr) -> &mut Self {
        self.instrs.push(instr);
        self
    }

    /// Total number of page touches across all instructions.
    pub fn total_accesses(&self) -> usize {
        self.instrs.iter().map(|i| i.pages().len()).sum()
    }

    /// The set of distinct pages the program touches, sorted.
    pub fn touched_pages(&self) -> Vec<PageNum> {
        let mut pages: Vec<PageNum> =
            self.instrs.iter().flat_map(|i| i.pages().iter().copied()).collect();
        pages.sort_unstable();
        pages.dedup();
        pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let mut p = WarpProgram::new();
        p.push(Instr::load1(PageNum(1)))
            .push(Instr::load1(PageNum(2)))
            .push(Instr::store1(PageNum(3)))
            .push(Instr::Delay(SimDuration::from_nanos(10)));
        assert_eq!(p.total_accesses(), 3);
        assert_eq!(
            p.touched_pages(),
            vec![PageNum(1), PageNum(2), PageNum(3)]
        );
        assert!(p.instrs[2].is_store());
        assert!(!p.instrs[0].is_store());
        assert!(p.instrs[3].pages().is_empty());
    }

    #[test]
    fn touched_pages_dedups() {
        let mut p = WarpProgram::new();
        p.push(Instr::load1(PageNum(5))).push(Instr::store1(PageNum(5)));
        assert_eq!(p.touched_pages(), vec![PageNum(5)]);
        assert_eq!(p.total_accesses(), 2);
    }
}
