//! GPU page-fault records.
//!
//! One [`FaultRecord`] corresponds to one entry the GMMU writes into the GPU
//! fault buffer. The fields mirror the metadata the paper's per-fault
//! instrumented driver logs: faulting page, access type, originating SM and
//! μTLB, and the arrival timestamp in the buffer (Fig. 4 plots exactly
//! these timestamps).

use serde::{Deserialize, Serialize};
use uvm_sim::mem::PageNum;
use uvm_sim::time::SimTime;

/// The access type of a faulting memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A global-memory load (`LDG`).
    Read,
    /// A global-memory store (`STG`); scoreboard-gated.
    Write,
    /// A software prefetch (`prefetch.global.L2`); bypasses the scoreboard
    /// and the μTLB outstanding-fault slots.
    Prefetch,
}

impl AccessKind {
    /// Whether this access occupies a μTLB outstanding-fault slot.
    pub fn occupies_utlb_slot(self) -> bool {
        !matches!(self, AccessKind::Prefetch)
    }

    /// Trace-event representation of this access type.
    pub fn trace(self) -> uvm_trace::TraceAccess {
        match self {
            AccessKind::Read => uvm_trace::TraceAccess::Read,
            AccessKind::Write => uvm_trace::TraceAccess::Write,
            AccessKind::Prefetch => uvm_trace::TraceAccess::Prefetch,
        }
    }
}

/// One fault-buffer entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// The faulting 4 KiB page.
    pub page: PageNum,
    /// Access type.
    pub kind: AccessKind,
    /// Originating SM.
    pub sm: u32,
    /// Originating μTLB.
    pub utlb: u32,
    /// Originating warp (global warp id).
    pub warp: u32,
    /// Arrival time in the GPU fault buffer.
    pub arrival: SimTime,
    /// True when the GMMU already had an outstanding fault for this page
    /// from the same μTLB (a same-μTLB duplicate at generation time).
    pub dup_of_outstanding: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_does_not_occupy_slots() {
        assert!(AccessKind::Read.occupies_utlb_slot());
        assert!(AccessKind::Write.occupies_utlb_slot());
        assert!(!AccessKind::Prefetch.occupies_utlb_slot());
    }

    #[test]
    fn record_round_trips_serde() {
        let r = FaultRecord {
            page: PageNum(42),
            kind: AccessKind::Write,
            sm: 3,
            utlb: 1,
            warp: 9,
            arrival: SimTime(12345),
            dup_of_outstanding: true,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: FaultRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
