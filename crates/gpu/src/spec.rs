//! GPU hardware configuration.

use serde::{Deserialize, Serialize};

/// Static hardware parameters of the modelled GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// SMs sharing one μTLB ("adjacent SMs share a μTLB", paper Sec. 4.2).
    pub sms_per_utlb: u32,
    /// Maximum outstanding (replayable) faults per μTLB. The paper measures
    /// 56 on Volta (Sec. 3.2).
    pub utlb_outstanding_limit: u32,
    /// Device memory capacity in bytes.
    pub memory_bytes: u64,
    /// Hardware fault-buffer capacity in entries.
    pub fault_buffer_entries: u32,
    /// Maximum resident warps per SM (occupancy bound).
    pub max_warps_per_sm: u32,
    /// Probability that a warp stalling on outstanding faults spuriously
    /// re-issues one of them ("SMs spuriously wake up to reissue the same
    /// fault during a batch", paper Sec. 4.2) — a source of same-μTLB
    /// duplicate faults even for workloads with no inter-warp sharing.
    pub spurious_refault_prob: f64,
    /// Probability that an access hitting an *already outstanding* fault
    /// entry of its own μTLB logs an additional (type-1 duplicate) buffer
    /// entry rather than silently attaching to the existing entry.
    /// Cross-μTLB duplicates always log (each μTLB faults independently).
    pub same_utlb_dup_prob: f64,
}

impl GpuSpec {
    /// The paper's testbed: NVIDIA Titan V (GV100), 80 SMs, 12 GiB HBM2.
    pub fn titan_v() -> Self {
        GpuSpec {
            num_sms: 80,
            sms_per_utlb: 2,
            utlb_outstanding_limit: 56,
            memory_bytes: 12 * 1024 * 1024 * 1024,
            fault_buffer_entries: 8192,
            max_warps_per_sm: 64,
            spurious_refault_prob: 0.12,
            same_utlb_dup_prob: 0.25,
        }
    }

    /// A reduced configuration for fast unit tests and examples: same
    /// per-μTLB and batching constraints, smaller device.
    pub fn small(memory_bytes: u64) -> Self {
        GpuSpec {
            num_sms: 8,
            sms_per_utlb: 2,
            utlb_outstanding_limit: 56,
            memory_bytes,
            fault_buffer_entries: 4096,
            max_warps_per_sm: 16,
            spurious_refault_prob: 0.0,
            same_utlb_dup_prob: 1.0,
        }
    }

    /// Number of μTLBs on the device.
    pub fn num_utlbs(&self) -> u32 {
        self.num_sms.div_ceil(self.sms_per_utlb)
    }

    /// The μTLB serving a given SM.
    pub fn utlb_of_sm(&self, sm: u32) -> u32 {
        sm / self.sms_per_utlb
    }

    /// Device memory capacity in whole 2 MiB VABlocks.
    pub fn memory_va_blocks(&self) -> u64 {
        self.memory_bytes / uvm_sim::mem::VABLOCK_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_v_matches_paper() {
        let s = GpuSpec::titan_v();
        assert_eq!(s.num_sms, 80);
        assert_eq!(s.num_utlbs(), 40);
        assert_eq!(s.utlb_outstanding_limit, 56);
        assert_eq!(s.memory_va_blocks(), 6144); // 12 GiB / 2 MiB
    }

    #[test]
    fn utlb_assignment_pairs_adjacent_sms() {
        let s = GpuSpec::titan_v();
        assert_eq!(s.utlb_of_sm(0), 0);
        assert_eq!(s.utlb_of_sm(1), 0);
        assert_eq!(s.utlb_of_sm(2), 1);
        assert_eq!(s.utlb_of_sm(79), 39);
    }

    #[test]
    fn odd_sm_count_rounds_utlbs_up() {
        let mut s = GpuSpec::small(1 << 30);
        s.num_sms = 7;
        assert_eq!(s.num_utlbs(), 4);
    }
}
