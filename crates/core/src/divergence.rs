//! Lockstep divergence detection.
//!
//! The simulator's core guarantee is determinism: same config + workload →
//! bit-identical execution. This module *checks* that guarantee by running
//! two instances in lockstep — advancing each exactly one serviced batch at
//! a time — and comparing their per-subsystem state digests
//! ([`SubsystemDigests`]) after every batch. The instant the digests
//! disagree, the detector reports the first diverging batch and names the
//! subsystem(s) whose digest broke, turning "the runs differ somewhere" into
//! "the driver state diverged at batch 37".
//!
//! The two instances can be anything that yields a
//! [`RunInProgress`]: two fresh systems from
//! the same seed (regression check), a live run against a restored
//! checkpoint of itself (snapshot validation), or a deliberately perturbed
//! pair ([`run_lockstep_perturbed`], the demo of what a
//! randomness-consuming bug looks like).

use core::fmt;

use uvm_sim::error::UvmError;
use uvm_workloads::workload::Workload;

use crate::config::SystemConfig;
use crate::snapshot::SubsystemDigests;
use crate::system::{Progress, RunHints, RunInProgress, UvmSystem};

/// A detected state divergence between two lockstep runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The first serviced batch after which the states disagreed
    /// (1-based).
    pub batch: u64,
    /// Names of the subsystems whose digests broke, in fixed order
    /// (`"gpu"`, `"driver"`, `"host"`, `"run"`).
    pub subsystems: Vec<&'static str>,
    /// Digests of instance A at the diverging batch.
    pub a: SubsystemDigests,
    /// Digests of instance B at the diverging batch.
    pub b: SubsystemDigests,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "first divergence at batch {}: digest mismatch in [{}]",
            self.batch,
            self.subsystems.join(", ")
        )
    }
}

/// Outcome of a lockstep comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockstepOutcome {
    /// The runs stayed bit-identical through every batch to completion.
    Identical {
        /// Total batches both runs serviced.
        batches: u64,
    },
    /// The runs diverged; details name the batch and subsystem.
    Diverged(Divergence),
}

/// Advance `a` and `b` in lockstep, one serviced batch at a time,
/// comparing subsystem digests after every batch. Returns at the first
/// divergence or when both runs finish identically.
///
/// `tamper` is called before each step with the upcoming batch number
/// (1-based) and both instances; the identity closure `|_, _, _| {}` runs
/// a pure comparison, while a perturbing closure stages a deliberate
/// divergence for testing the detector itself.
pub fn run_lockstep(
    mut a: RunInProgress,
    mut b: RunInProgress,
    workload: &Workload,
    mut tamper: impl FnMut(u64, &mut RunInProgress, &mut RunInProgress),
) -> Result<LockstepOutcome, UvmError> {
    loop {
        let next_batch = a.batches().max(b.batches()) + 1;
        tamper(next_batch, &mut a, &mut b);
        let pa = a.advance_batch(workload)?;
        let pb = b.advance_batch(workload)?;
        let da = a.subsystem_digests();
        let db = b.subsystem_digests();
        if da != db || pa != pb {
            let mut subsystems = da.diff(&db);
            if subsystems.is_empty() {
                // Digests agree but one run finished while the other
                // serviced a batch: the run loops are out of phase.
                subsystems.push("run");
            }
            return Ok(LockstepOutcome::Diverged(Divergence {
                batch: a.batches().max(b.batches()),
                subsystems,
                a: da,
                b: db,
            }));
        }
        if pa == Progress::Finished {
            return Ok(LockstepOutcome::Identical { batches: a.batches() });
        }
    }
}

/// Build two identical systems from `config`, perturb instance B's driver
/// RNG just before batch `perturb_at_batch`, and run the lockstep
/// detector. With `perturb_at_batch = 0` (or any batch past the end of the
/// run) nothing is perturbed and the outcome must be
/// [`LockstepOutcome::Identical`] — the regression form of the check.
pub fn run_lockstep_perturbed(
    config: &SystemConfig,
    workload: &Workload,
    perturb_at_batch: u64,
) -> Result<LockstepOutcome, UvmError> {
    let hints = RunHints::default();
    let a = UvmSystem::new(config.clone()).start(workload, &hints)?;
    let b = UvmSystem::new(config.clone()).start(workload, &hints)?;
    run_lockstep(a, b, workload, |next, _a, b| {
        if next == perturb_at_batch {
            b.perturb_driver_rng();
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvm_workloads::cpu_init::CpuInitPolicy;
    use uvm_workloads::stream::{self, StreamParams};

    const MB: u64 = 1024 * 1024;

    fn workload() -> Workload {
        stream::build(StreamParams {
            warps: 32,
            pages_per_warp: 16,
            iters: 1,
            warps_per_page: 1,
            cpu_init: Some(CpuInitPolicy::SingleThread),
        })
    }

    #[test]
    fn identical_seeds_stay_in_lockstep() {
        let config = SystemConfig::test_small(64 * MB);
        let out = run_lockstep_perturbed(&config, &workload(), 0).unwrap();
        match out {
            LockstepOutcome::Identical { batches } => assert!(batches > 0),
            LockstepOutcome::Diverged(d) => panic!("spurious divergence: {d}"),
        }
    }

    #[test]
    fn perturbed_rng_is_caught_at_the_right_batch() {
        let config = SystemConfig::test_small(64 * MB);
        let out = run_lockstep_perturbed(&config, &workload(), 3).unwrap();
        match out {
            LockstepOutcome::Diverged(d) => {
                assert_eq!(d.batch, 3, "divergence must surface at the perturbed batch");
                assert!(
                    d.subsystems.contains(&"driver"),
                    "the driver RNG was perturbed, got {:?}",
                    d.subsystems
                );
                let msg = d.to_string();
                assert!(msg.contains("batch 3") && msg.contains("driver"), "got: {msg}");
            }
            LockstepOutcome::Identical { .. } => {
                panic!("a burned RNG draw must break lockstep")
            }
        }
    }

    #[test]
    fn different_seeds_diverge_immediately() {
        let w = workload();
        let a = UvmSystem::new(SystemConfig::test_small(64 * MB).with_seed(1))
            .start(&w, &RunHints::default())
            .unwrap();
        let b = UvmSystem::new(SystemConfig::test_small(64 * MB).with_seed(2))
            .start(&w, &RunHints::default())
            .unwrap();
        match run_lockstep(a, b, &w, |_, _, _| {}).unwrap() {
            LockstepOutcome::Diverged(d) => assert_eq!(d.batch, 1),
            LockstepOutcome::Identical { .. } => panic!("different seeds cannot agree"),
        }
    }

    #[test]
    fn restored_checkpoint_stays_in_lockstep_with_live_run() {
        // Snapshot validation: a restored instance must track the live one
        // it was captured from, batch for batch, to the end.
        let w = workload();
        let config = SystemConfig::test_small(64 * MB);
        let mut live = UvmSystem::new(config.clone())
            .start(&w, &RunHints::default())
            .unwrap();
        for _ in 0..2 {
            live.advance_batch(&w).unwrap();
        }
        let snap = live.snapshot(&w, 0);
        let restored = RunInProgress::restore(&snap, &w).unwrap();
        match run_lockstep(live, restored, &w, |_, _, _| {}).unwrap() {
            LockstepOutcome::Identical { batches } => assert!(batches >= 2),
            LockstepOutcome::Diverged(d) => panic!("restore broke lockstep: {d}"),
        }
    }
}
