//! Deterministic chaos engine: seeded scenario fuzzing of the servicing
//! stack under torture-mode execution.
//!
//! Each trial composes a [`Scenario`] — workload × policy stack × fault
//! plan × device-memory size × kill/restore points — from a deterministic
//! per-trial RNG stream, then executes it twice:
//!
//! 1. **Reference**: one uninterrupted run from [`UvmSystem::start`] to
//!    completion.
//! 2. **Torture**: the same scenario, but at every fuzzer-chosen batch
//!    boundary the run is snapshotted, serialized to JSON, dropped, parsed
//!    back, and restored — the in-memory equivalent of a kill + resume.
//!
//! The two runs must agree **bit-for-bit**: identical per-subsystem state
//! digests at completion and byte-identical serialized batch records. Any
//! disagreement is a digest divergence. After both runs the full
//! cross-layer auditor ([`uvm_driver::audit`]) must report zero
//! violations (scenarios also run with in-band auditing enabled, so a
//! violation mid-run surfaces immediately). A failing trial is shrunk to
//! a minimal reproducer and can be written to / replayed from a serde
//! repro file (`paper chaos --repro <file>`).
//!
//! Trials are fully independent (each builds its own system from its own
//! seeds and never consults the process-global [`crate::runctl`] state),
//! so the harness fans them across the `--jobs` worker pool; the report
//! is byte-identical for any jobs width.

use std::collections::BTreeSet;
use std::path::Path;

use serde::{Deserialize, Serialize};
use uvm_driver::engine::{EvictionPolicyKind, PrefetchPolicyKind};
use uvm_driver::policy::DriverPolicy;
use uvm_sim::error::UvmError;
use uvm_sim::inject::{FaultPlan, InjectionPoint, PointPlan};
use uvm_sim::rng::DetRng;
use uvm_sim::time::SimTime;
use uvm_workloads::cpu_init::CpuInitPolicy;
use uvm_workloads::random::{self, RandomParams};
use uvm_workloads::stream::{self, StreamParams};
use uvm_workloads::vecadd::{self, VecAddParams};
use uvm_workloads::workload::Workload;

use crate::config::SystemConfig;
use crate::parallel;
use crate::snapshot::{run_key, SubsystemDigests, SystemSnapshot};
use crate::system::{Progress, RunHints, RunInProgress, UvmSystem};

const MB: u64 = 1024 * 1024;

/// Hang guard: no generated scenario legitimately services this many
/// batches; exceeding it fails the trial instead of spinning forever.
const MAX_BATCHES: u64 = 50_000;

/// Upper bound on shrink attempts per failing trial (each attempt re-runs
/// the trial, so this caps shrink cost).
const MAX_SHRINK_STEPS: usize = 48;

/// The workload half of a scenario: small, fully parameterized builders
/// over the `uvm-workloads` generators, chosen so every variant completes
/// in milliseconds while still exercising migration, duplication,
/// oversubscription, and (for `Random`) irregular access.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// The BabelStream-style triad (regular, 3 arrays).
    Stream {
        /// Number of warps.
        warps: u32,
        /// Pages per vector per warp.
        pages_per_warp: u64,
        /// CPU-init threads (0 = single-threaded init).
        striped_threads: u32,
    },
    /// Uniform-random single-page accesses (irregular).
    Random {
        /// Number of warps.
        warps: u32,
        /// Accesses per warp.
        accesses_per_warp: u32,
        /// Footprint in pages.
        footprint_pages: u64,
        /// Access-pattern seed.
        seed: u64,
    },
    /// The paper's Listing-1 vector addition (tiny, first-batch shape).
    VecAdd {
        /// Number of warps.
        warps: u32,
        /// Statements per thread.
        statements: u32,
    },
}

impl WorkloadSpec {
    /// Materialize the workload.
    pub fn build(&self) -> Workload {
        match *self {
            WorkloadSpec::Stream { warps, pages_per_warp, striped_threads } => {
                stream::build(StreamParams {
                    warps,
                    pages_per_warp,
                    iters: 1,
                    warps_per_page: 1,
                    cpu_init: Some(if striped_threads > 1 {
                        CpuInitPolicy::Striped { threads: striped_threads }
                    } else {
                        CpuInitPolicy::SingleThread
                    }),
                })
            }
            WorkloadSpec::Random { warps, accesses_per_warp, footprint_pages, seed } => {
                random::build(RandomParams {
                    warps,
                    accesses_per_warp,
                    footprint_pages,
                    seed,
                    cpu_init: Some(CpuInitPolicy::SingleThread),
                })
            }
            WorkloadSpec::VecAdd { warps, statements } => vecadd::build(VecAddParams {
                warps,
                statements,
                coalesced: false,
                cpu_init: Some(CpuInitPolicy::SingleThread),
            }),
        }
    }
}

/// One fully-specified chaos trial. Serializable so failing scenarios can
/// be committed as repro files and replayed byte-identically forever.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// System seed (drives service jitter and every injector stream).
    pub seed: u64,
    /// The workload under test.
    pub workload: WorkloadSpec,
    /// Device memory in MiB (the oversubscription knob).
    pub memory_mb: u64,
    /// The composed driver policy stack (always audited).
    pub policy: DriverPolicy,
    /// The fault-injection plan (transient points + sustained domains).
    pub plan: FaultPlan,
    /// Batch numbers (1-based) where the torture run kills itself and
    /// restores from a JSON-round-tripped snapshot.
    pub kill_batches: Vec<u64>,
}

impl Scenario {
    /// Generate trial `index` of a chaos campaign. Deterministic: the
    /// scenario is a pure function of `(campaign_seed, index)`.
    pub fn generate(campaign_seed: u64, index: u64) -> Scenario {
        // Independent, well-spread per-trial stream (FNV over both parts).
        let mut rng = DetRng::new(run_key(index, campaign_seed, 0xC4A05));

        let workload = match rng.below(3) {
            0 => WorkloadSpec::Stream {
                warps: 16 + rng.below(33) as u32,
                pages_per_warp: 8 + rng.below(17),
                striped_threads: if rng.chance(0.5) { 8 } else { 0 },
            },
            1 => WorkloadSpec::Random {
                warps: 24 + rng.below(41) as u32,
                accesses_per_warp: 16 + rng.below(25) as u32,
                footprint_pages: 2048 + rng.below(2049),
                seed: rng.below(1 << 31),
            },
            _ => WorkloadSpec::VecAdd {
                warps: 1 + rng.below(8) as u32,
                statements: 2 + rng.below(4) as u32,
            },
        };

        // Memory sizes chosen so some scenarios oversubscribe (stream and
        // random footprints reach ~16-24 MiB) and some do not.
        let memory_mb = [16u64, 24, 32, 64][rng.below(4) as usize];

        let base = if rng.chance(0.5) {
            DriverPolicy::with_prefetch()
        } else {
            DriverPolicy::default()
        };
        let prefetcher = [
            PrefetchPolicyKind::None,
            PrefetchPolicyKind::TreeDensity,
            PrefetchPolicyKind::SequentialStride,
        ][rng.below(3) as usize];
        let evictor = [
            EvictionPolicyKind::Lru,
            EvictionPolicyKind::Random,
            EvictionPolicyKind::Lfu,
        ][rng.below(3) as usize];
        let policy = base
            .prefetcher(prefetcher)
            .evictor(evictor)
            .batch_limit([64usize, 256][rng.below(2) as usize])
            .dedup(rng.chance(0.9))
            .retries(1 + rng.below(3) as u32)
            .pressure_reserve(2 + rng.below(9))
            .degraded_escalation([0u64, 2, 6][rng.below(3) as usize])
            .audited(true);

        // Transient points fire per-operation; keep probabilities low so
        // recovery (retry/degrade) stays exercised without pushing any
        // path into unrecoverable territory on every trial.
        let mut plan = FaultPlan::none();
        for point in InjectionPoint::TRANSIENT {
            if rng.chance(0.45) {
                plan.point_mut(point).probability = 0.01 + rng.unit() * 0.05;
            }
        }
        // Sustained domains are consulted once per batch, so slightly
        // higher rates still mean a handful of regimes per run.
        if rng.chance(0.5) {
            *plan.point_mut(InjectionPoint::DeviceMemoryPressure) = if rng.chance(0.7) {
                PointPlan::with_probability(0.05 + rng.unit() * 0.15)
            } else {
                PointPlan::scheduled(SimTime(rng.below(4_000_000)), 1 + rng.below(4) as u32)
            };
        }
        if rng.chance(0.4) {
            *plan.point_mut(InjectionPoint::GpuReset) = if rng.chance(0.7) {
                PointPlan::with_probability(0.02 + rng.unit() * 0.08)
            } else {
                PointPlan::scheduled(SimTime(rng.below(4_000_000)), 1)
            };
        }

        // Kill/restore points: up to four distinct early-to-mid batch
        // boundaries (batches beyond the run's actual length simply never
        // trigger).
        let mut kill_batches: BTreeSet<u64> = BTreeSet::new();
        for _ in 0..rng.below(5) {
            kill_batches.insert(1 + rng.below(30));
        }

        Scenario {
            seed: campaign_seed ^ (0x5EED << 16) ^ index,
            workload,
            memory_mb,
            policy,
            plan,
            kill_batches: kill_batches.into_iter().collect(),
        }
    }

    /// The assembled system config for this scenario.
    pub fn config(&self) -> SystemConfig {
        SystemConfig::test_small(self.memory_mb * MB)
            .with_seed(self.seed)
            .with_policy(self.policy.clone())
            .with_fault_plan(self.plan.clone())
    }
}

/// What one scenario execution (reference or torture) produced when it
/// completed: the final per-subsystem state digests and the serialized
/// batch-record stream. Two executions of the same scenario must agree on
/// both, byte for byte.
#[derive(Debug, PartialEq)]
struct ExecOutcome {
    digests: SubsystemDigests,
    records_json: String,
    batches: u64,
    audit_violations: Vec<String>,
}

/// Verdict of one chaos trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrialVerdict {
    /// Reference and torture agreed bit-for-bit and the auditor was clean.
    /// (A deterministic *recoverable-path exhaustion* — both runs failing
    /// with the identical typed error — also passes: chaos verifies
    /// bit-identity of behavior, including failure behavior.)
    Pass,
    /// The torture run's final state or record stream differed from the
    /// reference.
    Divergence(String),
    /// The cross-layer auditor reported violations (in-band or post-run).
    AuditFailure(String),
    /// The run failed in a way that prevented comparison (e.g. the
    /// batch-cap hang guard).
    RunError(String),
}

impl TrialVerdict {
    /// Whether this verdict fails the trial.
    pub fn is_failure(&self) -> bool {
        !matches!(self, TrialVerdict::Pass)
    }
}

/// Execute one scenario with the given kill/restore points and collect the
/// comparison artifacts.
fn execute(scenario: &Scenario, kills: &[u64]) -> Result<ExecOutcome, UvmError> {
    let workload = scenario.workload.build();
    let system = UvmSystem::new(scenario.config());
    let mut pending: BTreeSet<u64> = kills.iter().copied().collect();
    let mut run = system.start(&workload, &RunHints::default())?;
    loop {
        match run.advance_batch(&workload)? {
            Progress::Finished => break,
            Progress::Batch(n) => {
                if n > MAX_BATCHES {
                    return Err(UvmError::SnapshotInvalid {
                        detail: format!("hang guard: exceeded {MAX_BATCHES} batches"),
                    });
                }
                if pending.remove(&n) {
                    // Kill + resume, in memory: serialize the checkpoint
                    // to JSON, drop the live run, parse the bytes back,
                    // and restore. This exercises the exact code path a
                    // killed harness process takes on --resume.
                    let snap = run.snapshot(&workload, 0);
                    let json =
                        serde_json::to_string(&snap).map_err(|e| UvmError::SnapshotInvalid {
                            detail: format!("snapshot serialization failed: {e}"),
                        })?;
                    drop(run);
                    let back: SystemSnapshot =
                        serde_json::from_str(&json).map_err(|e| UvmError::SnapshotInvalid {
                            detail: format!("snapshot re-parse failed: {e}"),
                        })?;
                    run = RunInProgress::restore(&back, &workload)?;
                }
            }
        }
    }
    let digests = run.subsystem_digests();
    let audit_violations: Vec<String> =
        uvm_driver::audit::violations(run.driver(), run.gpu(), run.host())
            .iter()
            .map(ToString::to_string)
            .collect();
    let batches = run.batches();
    let result = run.into_result(&workload);
    let records_json =
        serde_json::to_string(&result.records).map_err(|e| UvmError::SnapshotInvalid {
            detail: format!("record serialization failed: {e}"),
        })?;
    Ok(ExecOutcome { digests, records_json, batches, audit_violations })
}

/// Run one trial: clean reference vs torture-mode execution, digest and
/// record comparison, and a full audit pass.
pub fn run_trial(scenario: &Scenario) -> TrialVerdict {
    let reference = execute(scenario, &[]);
    let torture = execute(scenario, &scenario.kill_batches);
    match (reference, torture) {
        (Ok(a), Ok(b)) => {
            if !a.audit_violations.is_empty() || !b.audit_violations.is_empty() {
                let all = a.audit_violations.iter().chain(&b.audit_violations);
                return TrialVerdict::AuditFailure(
                    all.cloned().collect::<Vec<_>>().join("; "),
                );
            }
            if a.digests != b.digests {
                return TrialVerdict::Divergence(format!(
                    "final state digests disagree in [{}] after {} batches",
                    a.digests.diff(&b.digests).join(", "),
                    b.batches
                ));
            }
            if a.records_json != b.records_json {
                return TrialVerdict::Divergence(format!(
                    "batch-record streams differ ({} vs {} batches)",
                    a.batches, b.batches
                ));
            }
            TrialVerdict::Pass
        }
        // An invariant violation anywhere is an audit failure (the in-band
        // auditor converts violations into typed errors mid-run).
        (Err(e @ UvmError::InvariantViolation { .. }), _)
        | (_, Err(e @ UvmError::InvariantViolation { .. })) => {
            TrialVerdict::AuditFailure(e.to_string())
        }
        (Err(ea), Err(eb)) => {
            if ea == eb {
                // Both runs exhausted the same recovery path identically:
                // deterministic failure behavior is a pass.
                TrialVerdict::Pass
            } else {
                TrialVerdict::Divergence(format!(
                    "reference failed with `{ea}` but torture failed with `{eb}`"
                ))
            }
        }
        (Ok(_), Err(e)) => {
            TrialVerdict::Divergence(format!("reference completed but torture failed: {e}"))
        }
        (Err(e), Ok(_)) => {
            TrialVerdict::Divergence(format!("torture completed but reference failed: {e}"))
        }
    }
}

/// Greedily shrink a failing scenario: repeatedly try removing one source
/// of complexity (a kill point, an injection point, a non-stock policy
/// choice) and keep any reduction that still fails. The result is the
/// minimal scenario this procedure can reach, suitable for a repro file.
pub fn shrink(scenario: &Scenario) -> Scenario {
    let mut current = scenario.clone();
    let mut budget = MAX_SHRINK_STEPS;
    loop {
        let mut reduced = false;
        for candidate in reductions(&current) {
            if budget == 0 {
                return current;
            }
            budget -= 1;
            if run_trial(&candidate).is_failure() {
                current = candidate;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return current;
        }
    }
}

/// All one-step reductions of a scenario, simplest-removal first.
fn reductions(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    for i in 0..s.kill_batches.len() {
        let mut c = s.clone();
        c.kill_batches.remove(i);
        out.push(c);
    }
    for point in InjectionPoint::ALL {
        if s.plan.point(point).is_enabled() {
            let mut c = s.clone();
            *c.plan.point_mut(point) = PointPlan::default();
            out.push(c);
        }
    }
    let stock = DriverPolicy::default().audited(true);
    if s.policy.prefetch_enabled {
        let mut c = s.clone();
        c.policy.prefetch_enabled = false;
        out.push(c);
    }
    if s.policy.prefetch_policy != stock.prefetch_policy {
        let mut c = s.clone();
        c.policy.prefetch_policy = stock.prefetch_policy;
        out.push(c);
    }
    if s.policy.eviction_policy != stock.eviction_policy {
        let mut c = s.clone();
        c.policy.eviction_policy = stock.eviction_policy;
        out.push(c);
    }
    if s.policy.batch_limit != stock.batch_limit {
        let mut c = s.clone();
        c.policy.batch_limit = stock.batch_limit;
        out.push(c);
    }
    out
}

/// One failing trial of a campaign, with its shrunk reproducer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialFailure {
    /// Trial index within the campaign.
    pub trial: u64,
    /// The verdict of the original (unshrunk) scenario.
    pub verdict: TrialVerdict,
    /// The shrunk minimal scenario (still failing).
    pub scenario: Scenario,
}

/// Result of a chaos campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosReport {
    /// Trials executed.
    pub trials: u64,
    /// Campaign seed.
    pub seed: u64,
    /// Trials whose torture run diverged from the reference.
    pub divergences: u64,
    /// Trials with cross-layer audit violations.
    pub audit_failures: u64,
    /// Trials that failed without a comparison (hang guard etc.).
    pub errors: u64,
    /// Every failing trial, shrunk.
    pub failures: Vec<TrialFailure>,
}

impl ChaosReport {
    /// Whether the campaign was fully clean.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Text report. The final line always carries the
    /// `"N divergences, M audit failures"` phrase CI greps for.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.failures {
            let what = match &f.verdict {
                TrialVerdict::Divergence(d) => format!("divergence: {d}"),
                TrialVerdict::AuditFailure(d) => format!("audit failure: {d}"),
                TrialVerdict::RunError(d) => format!("error: {d}"),
                TrialVerdict::Pass => "pass (?)".into(),
            };
            out.push_str(&format!("trial {:>4}  FAIL  {what}\n", f.trial));
        }
        out.push_str(&format!(
            "{} trials (seed {:#x}): {} divergences, {} audit failures, {} errors\n",
            self.trials, self.seed, self.divergences, self.audit_failures, self.errors
        ));
        out
    }
}

/// Run a chaos campaign: `trials` scenarios generated from `seed`,
/// executed across the configured `--jobs` worker pool (trials are
/// independent; results are reported in trial order, so the report is
/// byte-identical for any jobs width). Failing scenarios are shrunk.
pub fn run_campaign(trials: u64, seed: u64) -> ChaosReport {
    let verdicts = parallel::map_indexed(trials as usize, |i| {
        let scenario = Scenario::generate(seed, i as u64);
        let verdict = run_trial(&scenario);
        (verdict, scenario)
    });
    let mut report = ChaosReport {
        trials,
        seed,
        divergences: 0,
        audit_failures: 0,
        errors: 0,
        failures: Vec::new(),
    };
    for (i, (verdict, scenario)) in verdicts.into_iter().enumerate() {
        if !verdict.is_failure() {
            continue;
        }
        match &verdict {
            TrialVerdict::Divergence(_) => report.divergences += 1,
            TrialVerdict::AuditFailure(_) => report.audit_failures += 1,
            TrialVerdict::RunError(_) => report.errors += 1,
            TrialVerdict::Pass => {}
        }
        report.failures.push(TrialFailure {
            trial: i as u64,
            verdict,
            scenario: shrink(&scenario),
        });
    }
    report
}

/// A committed reproducer: one scenario plus the human context of what it
/// guards. Replayable via `paper chaos --repro <file>` and the
/// `chaos_repros` integration test.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReproFile {
    /// What this scenario reproduces / guards against.
    pub description: String,
    /// The scenario itself.
    pub scenario: Scenario,
}

impl ReproFile {
    /// Load a repro file.
    pub fn load(path: &Path) -> Result<ReproFile, UvmError> {
        let text = std::fs::read_to_string(path).map_err(|e| UvmError::SnapshotInvalid {
            detail: format!("cannot read {}: {e}", path.display()),
        })?;
        serde_json::from_str(&text).map_err(|e| UvmError::SnapshotInvalid {
            detail: format!("cannot parse {}: {e}", path.display()),
        })
    }

    /// Write a repro file (pretty-printed for reviewable diffs).
    pub fn save(&self, path: &Path) -> Result<(), UvmError> {
        let json = serde_json::to_string_pretty(self).map_err(|e| UvmError::SnapshotInvalid {
            detail: format!("cannot serialize repro: {e}"),
        })?;
        std::fs::write(path, json + "\n").map_err(|e| UvmError::SnapshotInvalid {
            detail: format!("cannot write {}: {e}", path.display()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic_per_seed_and_index() {
        let a = Scenario::generate(7, 3);
        let b = Scenario::generate(7, 3);
        assert_eq!(a, b);
        assert_ne!(a, Scenario::generate(7, 4), "different index, different scenario");
        assert_ne!(a, Scenario::generate(8, 3), "different seed, different scenario");
    }

    #[test]
    fn scenario_round_trips_serde() {
        let s = Scenario::generate(42, 0);
        let json = serde_json::to_string(&s).expect("scenario serializes");
        let back: Scenario = serde_json::from_str(&json).expect("scenario parses");
        assert_eq!(s, back);
    }

    #[test]
    fn clean_trial_passes_with_and_without_kills() {
        // A quiet scenario (no injection) with kill points: torture-mode
        // snapshot/kill/restore must be invisible in the final state.
        let scenario = Scenario {
            seed: 0x5C21,
            workload: WorkloadSpec::Stream {
                warps: 16,
                pages_per_warp: 8,
                striped_threads: 0,
            },
            memory_mb: 16,
            policy: DriverPolicy::default().audited(true),
            plan: FaultPlan::none(),
            kill_batches: vec![1, 3],
        };
        assert_eq!(run_trial(&scenario), TrialVerdict::Pass);
    }

    #[test]
    fn injected_trial_with_sustained_domains_passes() {
        // Pressure + reset + transient faults + kill/restore, all at once:
        // the full failure model must still be bit-identical under torture.
        let plan = FaultPlan::uniform(0.03)
            .with(InjectionPoint::DeviceMemoryPressure, PointPlan::with_probability(0.2))
            .with(InjectionPoint::GpuReset, PointPlan::with_probability(0.1));
        let scenario = Scenario {
            seed: 0x5C21,
            workload: WorkloadSpec::Stream {
                warps: 24,
                pages_per_warp: 12,
                striped_threads: 8,
            },
            memory_mb: 16,
            policy: DriverPolicy::default().retries(2).pressure_reserve(4).audited(true),
            plan,
            kill_batches: vec![2, 5, 9],
        };
        assert_eq!(run_trial(&scenario), TrialVerdict::Pass);
    }

    #[test]
    fn small_campaign_is_clean_and_deterministic() {
        let a = run_campaign(4, 0);
        assert!(a.clean(), "seed-0 campaign must be clean: {}", a.render());
        assert_eq!(a.trials, 4);
        let b = run_campaign(4, 0);
        assert_eq!(a.render(), b.render(), "campaign report must be reproducible");
        assert!(a.render().contains("0 divergences, 0 audit failures"));
    }

    #[test]
    fn shrink_reduces_a_failing_scenario() {
        // A scenario that "fails" deterministically: the hang guard cannot
        // be hit cheaply, so instead verify the shrinker against a real
        // verdict by giving `run_trial` a scenario whose torture path we
        // sabotage via an absurd kill list is not possible from here.
        // What IS checkable: shrinking a passing scenario is the identity
        // (no reduction may "fix" a pass into a failure).
        let s = Scenario::generate(0, 1);
        if run_trial(&s).is_failure() {
            // If generation ever produces a failing trial, the campaign
            // test above fails loudly; don't double-report here.
            return;
        }
        // Reductions of a passing scenario all pass (shrink is only ever
        // invoked on failures, but its step set must not invent them).
        for c in reductions(&s).into_iter().take(4) {
            assert!(!run_trial(&c).is_failure());
        }
    }

    #[test]
    fn repro_file_round_trips() {
        let repro = ReproFile {
            description: "test".into(),
            scenario: Scenario::generate(1, 2),
        };
        let dir = std::env::temp_dir().join("uvm-chaos-test");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("repro.json");
        repro.save(&path).expect("save repro");
        let back = ReproFile::load(&path).expect("load repro");
        assert_eq!(back.scenario, repro.scenario);
        assert_eq!(back.description, "test");
        std::fs::remove_file(&path).ok();
    }
}
