//! Export helpers for run instrumentation.
//!
//! The paper's authors post-process their driver logs externally; these
//! helpers serialize a [`RunResult`]'s batch records to CSV (one row per
//! batch, schema below) and render quick terminal summaries, so the same
//! workflows apply to simulator output.

use std::fmt::Write as _;

use uvm_stats::Summary;

use crate::system::RunResult;

/// CSV header for [`batch_records_csv`].
pub const BATCH_CSV_HEADER: &str = "seq,start_ns,end_ns,service_ns,raw_faults,unique_pages,\
dup_same_utlb,dup_cross_utlb,read_faults,write_faults,prefetch_faults,distinct_sms,\
num_va_blocks,new_va_blocks,pages_migrated,bytes_migrated,prefetched_pages,evictions,\
bytes_evicted,cpu_pages_unmapped,remote_mapped_pages,dropped_faults,injected_faults,\
retries,degraded_blocks,t_fetch_ns,t_preprocess_ns,\
t_dma_setup_ns,t_unmap_ns,t_populate_ns,t_transfer_ns,t_evict_ns,t_pte_ns,t_fixed_ns,\
t_backoff_ns,driver_prefetch_op";

/// Serialize every batch record of a run as CSV (with header).
pub fn batch_records_csv(result: &RunResult) -> String {
    let mut out = String::with_capacity(result.records.len() * 160 + 256);
    out.push_str(BATCH_CSV_HEADER);
    out.push('\n');
    for r in &result.records {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            r.seq,
            r.start.as_nanos(),
            r.end.as_nanos(),
            r.service_time().as_nanos(),
            r.raw_faults,
            r.unique_pages,
            r.dup_same_utlb,
            r.dup_cross_utlb,
            r.read_faults,
            r.write_faults,
            r.prefetch_faults,
            r.distinct_sms,
            r.num_va_blocks,
            r.new_va_blocks,
            r.pages_migrated,
            r.bytes_migrated,
            r.prefetched_pages,
            r.evictions,
            r.bytes_evicted,
            r.cpu_pages_unmapped,
            r.remote_mapped_pages,
            r.dropped_faults,
            r.injected_faults,
            r.retries,
            r.degraded_blocks,
            r.t_fetch.as_nanos(),
            r.t_preprocess.as_nanos(),
            r.t_dma_setup.as_nanos(),
            r.t_unmap.as_nanos(),
            r.t_populate.as_nanos(),
            r.t_transfer.as_nanos(),
            r.t_evict.as_nanos(),
            r.t_pte.as_nanos(),
            r.t_fixed.as_nanos(),
            r.t_backoff.as_nanos(),
            r.driver_prefetch_op,
        );
    }
    out
}

/// A one-screen textual summary of a run (counts, time breakdown,
/// batch-size distribution).
pub fn summarize(result: &RunResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "run: {}", result.workload);
    let _ = writeln!(out, "  kernel time        {}", result.kernel_time);
    let _ = writeln!(out, "  batch time         {}", result.total_batch_time);
    let _ = writeln!(out, "  batches            {}", result.num_batches);
    let _ = writeln!(out, "  faults inserted    {}", result.total_faults_inserted);
    let _ = writeln!(out, "  flush drops        {}", result.flush_drops);
    let _ = writeln!(out, "  replays            {}", result.replays);
    let _ = writeln!(out, "  evictions          {}", result.evictions);
    let injected: u64 = result.records.iter().map(|r| r.injected_faults).sum();
    let retries: u64 = result.records.iter().map(|r| r.retries).sum();
    let degraded: u64 = result.records.iter().map(|r| r.degraded_blocks).sum();
    let dropped: u64 = result.records.iter().map(|r| r.dropped_faults).sum();
    if injected + retries + degraded + dropped > 0 {
        let _ = writeln!(
            out,
            "  injected faults    {injected} ({retries} retries, {degraded} degraded blocks, {dropped} dropped)"
        );
    }
    let _ = writeln!(
        out,
        "  bytes migrated     {:.2} MiB",
        result.total_bytes_migrated() as f64 / (1024.0 * 1024.0)
    );

    if !result.records.is_empty() {
        let sizes = Summary::of_ints(result.records.iter().map(|r| r.raw_faults));
        let _ = writeln!(
            out,
            "  batch size         mean {:.1}, sd {:.1}, min {:.0}, max {:.0}",
            sizes.mean, sizes.std_dev, sizes.min, sizes.max
        );
        let total_ns: u64 = result
            .records
            .iter()
            .map(|r| r.service_time().as_nanos())
            .sum();
        let component = |name: &str, ns: u64| {
            format!("    {name:<12} {:>6.1}%", 100.0 * ns as f64 / total_ns.max(1) as f64)
        };
        let sum = |f: fn(&uvm_driver::BatchRecord) -> u64| -> u64 {
            result.records.iter().map(f).sum()
        };
        let _ = writeln!(out, "  service-time breakdown:");
        let _ = writeln!(out, "{}", component("fetch", sum(|r| r.t_fetch.as_nanos())));
        let _ = writeln!(out, "{}", component("preprocess", sum(|r| r.t_preprocess.as_nanos())));
        let _ = writeln!(out, "{}", component("dma setup", sum(|r| r.t_dma_setup.as_nanos())));
        let _ = writeln!(out, "{}", component("cpu unmap", sum(|r| r.t_unmap.as_nanos())));
        let _ = writeln!(out, "{}", component("populate", sum(|r| r.t_populate.as_nanos())));
        let _ = writeln!(out, "{}", component("transfer", sum(|r| r.t_transfer.as_nanos())));
        let _ = writeln!(out, "{}", component("evict", sum(|r| r.t_evict.as_nanos())));
        let _ = writeln!(out, "{}", component("pte", sum(|r| r.t_pte.as_nanos())));
        let _ = writeln!(out, "{}", component("fixed", sum(|r| r.t_fixed.as_nanos())));
        let backoff = sum(|r| r.t_backoff.as_nanos());
        if backoff > 0 {
            let _ = writeln!(out, "{}", component("backoff", backoff));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SystemConfig, UvmSystem};
    use uvm_workloads::vecadd::{self, VecAddParams};

    fn sample_run() -> RunResult {
        UvmSystem::new(SystemConfig::test_small(64 * 1024 * 1024))
            .run(&vecadd::build(VecAddParams::default()))
    }

    #[test]
    fn csv_has_header_and_one_row_per_batch() {
        let result = sample_run();
        let csv = batch_records_csv(&result);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + result.records.len());
        assert!(lines[0].starts_with("seq,start_ns"));
        let cols = lines[0].split(',').count();
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), cols, "row width matches header");
        }
        // First batch: 56 raw faults in column 5.
        assert_eq!(lines[1].split(',').nth(4), Some("56"));
    }

    #[test]
    fn summary_reports_components_that_sum_to_100() {
        let result = sample_run();
        let text = summarize(&result);
        assert!(text.contains("kernel time"));
        let percents: f64 = text
            .lines()
            .filter(|l| l.trim_end().ends_with('%'))
            .map(|l| {
                l.trim_end()
                    .trim_end_matches('%')
                    .split_whitespace()
                    .last()
                    .unwrap()
                    .parse::<f64>()
                    .unwrap()
            })
            .sum();
        assert!((percents - 100.0).abs() < 1.0, "components sum to ~100%: {percents}");
    }
}
