//! Process-global checkpoint/resume policy for the experiment harness.
//!
//! The harness runs experiments as a deterministic sequence of system runs.
//! This module lets the binary entry point declare, once, how those runs
//! should checkpoint and resume; the run loop in
//! [`UvmSystem::try_run_with_hints`](crate::system::UvmSystem::try_run_with_hints)
//! consults the policy transparently, so every experiment gains
//! `--checkpoint-every` / `--resume` support without touching experiment
//! code.
//!
//! ## Resume model
//!
//! A checkpoint records a [`run_key`] — the run's
//! ordinal within the process plus digests of its workload and config.
//! Resuming re-executes the harness *from the start*: runs before the
//! checkpointed one replay deterministically in full (producing identical
//! output, since the simulator is deterministic), and when a run's key
//! matches the pending snapshot, that run restores mid-flight instead of
//! starting fresh. The overall output is therefore byte-identical to the
//! uninterrupted execution.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use uvm_sim::error::UvmError;

use crate::snapshot::{run_key, SystemSnapshot};

/// Checkpoint/resume policy, set once per process from CLI flags.
#[derive(Debug, Clone, Default)]
pub struct RunCtl {
    /// Write a checkpoint every N serviced batches (latest overwrites
    /// earlier ones). `None` disables auto-checkpointing.
    pub checkpoint_every: Option<u64>,
    /// Where checkpoints are written. Defaults to `uvm-ckpt.json` in the
    /// working directory.
    pub checkpoint_path: Option<PathBuf>,
    /// Resume from this checkpoint file (loaded eagerly so a bad file
    /// fails fast, before any simulation runs).
    pub resume_from: Option<PathBuf>,
    /// Exit the process (status 0) immediately after the first checkpoint
    /// is written. Simulates a mid-run kill for resume testing; the
    /// partial output up to that point has already been printed.
    pub halt_after_checkpoint: bool,
}

#[derive(Debug, Default)]
struct CtlState {
    ctl: RunCtl,
    /// The pending resume snapshot; taken (once) by the run whose key
    /// matches.
    resume: Option<SystemSnapshot>,
}

static CTL: OnceLock<Mutex<CtlState>> = OnceLock::new();
static ORDINAL: AtomicU64 = AtomicU64::new(0);

/// Lock the policy state. A poisoned lock is recovered rather than
/// propagated: the state is a plain policy value mutated only by whole
/// assignments, so a panic in another thread cannot leave it torn.
fn state() -> MutexGuard<'static, CtlState> {
    CTL.get_or_init(|| Mutex::new(CtlState::default()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Install the process-wide policy. Call once, before any experiment runs.
/// When `resume_from` is set, the snapshot is loaded and validated here;
/// an unreadable or unparsable file is an immediate error.
pub fn configure(ctl: RunCtl) -> Result<(), UvmError> {
    let resume = match &ctl.resume_from {
        Some(path) => Some(SystemSnapshot::load(path)?),
        None => None,
    };
    let mut s = state();
    s.ctl = ctl;
    s.resume = resume;
    Ok(())
}

/// One run's view of the policy, handed out by `begin_run`.
#[derive(Debug)]
pub struct RunSession {
    key: u64,
    every: Option<u64>,
    path: PathBuf,
    halt: bool,
    resume: Option<SystemSnapshot>,
    wrote_checkpoint: bool,
}

/// Register the start of a system run and capture the policy that applies
/// to it. Claims the next run ordinal (the deterministic re-execution
/// order is what makes resume land on the right run) and, if the pending
/// resume snapshot's key matches this run, takes it.
pub(crate) fn begin_run(workload_digest: u64, config_digest: u64) -> RunSession {
    let ordinal = ORDINAL.fetch_add(1, Ordering::SeqCst);
    let key = run_key(ordinal, workload_digest, config_digest);
    let mut s = state();
    let resume = match &s.resume {
        Some(snap) if snap.run_key == key => s.resume.take(),
        _ => None,
    };
    RunSession {
        key,
        every: s.ctl.checkpoint_every.filter(|&n| n > 0),
        path: s
            .ctl
            .checkpoint_path
            .clone()
            .unwrap_or_else(|| PathBuf::from("uvm-ckpt.json")),
        halt: s.ctl.halt_after_checkpoint,
        resume,
        wrote_checkpoint: false,
    }
}

impl RunSession {
    /// This run's key, to be stored into checkpoints it writes.
    pub(crate) fn run_key(&self) -> u64 {
        self.key
    }

    /// Take the resume snapshot, if one matched this run.
    pub(crate) fn take_resume(&mut self) -> Option<SystemSnapshot> {
        self.resume.take()
    }

    /// Whether a checkpoint is due after serviced batch `n` (1-based).
    pub(crate) fn should_checkpoint(&self, n: u64) -> bool {
        self.every.is_some_and(|e| n % e == 0)
    }

    /// Write `snap` to the checkpoint path (atomically, overwriting the
    /// previous checkpoint) and honor `halt_after_checkpoint`.
    pub(crate) fn write_checkpoint(&mut self, snap: &SystemSnapshot) {
        if let Err(e) = snap.save(&self.path) {
            eprintln!(
                "warning: failed to write checkpoint {}: {e}",
                self.path.display()
            );
            return;
        }
        self.wrote_checkpoint = true;
        if self.halt {
            eprintln!(
                "checkpoint written to {} after batch {}; halting as requested",
                self.path.display(),
                snap.batches
            );
            std::process::exit(0);
        }
    }

    /// The run completed: a checkpoint it wrote is now stale (resuming
    /// from it would redo finished work), so remove it.
    pub(crate) fn finish(self) {
        if self.wrote_checkpoint {
            std::fs::remove_file(&self.path).ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the global ordinal is shared across the whole test process, so
    // these tests assert relative behavior only and never assume a
    // specific ordinal value.

    #[test]
    fn ordinals_are_distinct_and_keys_differ() {
        let a = begin_run(1, 2);
        let b = begin_run(1, 2);
        assert_ne!(a.run_key(), b.run_key(), "same inputs, different ordinal");
    }

    #[test]
    fn unconfigured_session_never_checkpoints() {
        let s = begin_run(0, 0);
        assert!(!s.should_checkpoint(1));
        assert!(!s.should_checkpoint(50));
        s.finish();
    }
}
