//! Fig. 5 — a single warp fills an entire fault batch via software
//! prefetching.
//!
//! `prefetch.global.L2` needs no destination register, so it bypasses the
//! scoreboard and the 56-entry μTLB outstanding-fault budget. A single
//! warp prefetching a large region generates faults up to the *software*
//! batch-size limit (256); everything beyond the limit in the buffer is
//! dropped by the pre-replay flush (the paper's footnote 1).

use serde::{Deserialize, Serialize};
use uvm_workloads::prefetch_ub::{self, PrefetchUbParams};

use crate::experiments::suite::experiment_config;
use crate::system::UvmSystem;

/// The Fig. 5 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Result {
    /// Pages prefetched by the single warp.
    pub pages_prefetched: u64,
    /// Size of the first batch (should equal the batch limit).
    pub first_batch_size: u64,
    /// Batch size limit in force.
    pub batch_limit: u64,
    /// Faults dropped by flushes (the tail beyond the limit).
    pub flush_drops: u64,
    /// Raw sizes of all batches.
    pub batch_sizes: Vec<u64>,
}

/// Run the prefetch microbenchmark.
pub fn run(seed: u64) -> Fig5Result {
    let config = experiment_config(64).with_seed(seed);
    let batch_limit = config.policy.batch_limit as u64;
    let workload = prefetch_ub::build(PrefetchUbParams::default());
    let pages = workload.total_accesses() as u64;
    let result = UvmSystem::new(config).run(&workload);
    Fig5Result {
        pages_prefetched: pages,
        first_batch_size: result.records.first().map(|r| r.raw_faults).unwrap_or(0),
        batch_limit,
        flush_drops: result.flush_drops,
        batch_sizes: result.records.iter().map(|r| r.raw_faults).collect(),
    }
}

impl Fig5Result {
    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        format!(
            "Fig. 5 — single-warp prefetch burst\n\
             pages prefetched        {}\n\
             batch size limit        {}\n\
             first batch size        {}\n\
             faults dropped at flush {}\n\
             batch sizes             {:?}",
            self.pages_prefetched,
            self.batch_limit,
            self.first_batch_size,
            self.flush_drops,
            self.batch_sizes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_warp_fills_the_batch_limit() {
        let r = run(1);
        assert_eq!(r.pages_prefetched, 300);
        assert_eq!(r.first_batch_size, r.batch_limit, "batch capped at software limit");
        assert!(
            r.flush_drops >= r.pages_prefetched - r.batch_limit,
            "the tail beyond the limit is dropped: {}",
            r.flush_drops
        );
        assert!(r.render().contains("first batch size"));
    }
}
