//! Experiment drivers: one module per table and figure of the paper's
//! evaluation.
//!
//! Every module exposes a `run(seed)` (or parameterized variant) returning
//! a serializable result struct with a `render()` method that prints the
//! same rows/series the paper reports. The `suite` module defines the
//! benchmark instances (scaled to simulate in seconds rather than hours)
//! shared by the multi-benchmark experiments.
//!
//! | module | reproduces |
//! |---|---|
//! | [`fig01_latency`] | Fig. 1 — UVM vs explicit-management access latency |
//! | [`fig03_vecadd`] | Figs. 3 & 4 — vecadd fault batches + arrival timeline |
//! | [`fig05_prefetch_ub`] | Fig. 5 — single-warp prefetch fills a batch |
//! | [`table2_per_sm`] | Table 2 — per-SM fault statistics per batch |
//! | [`fig06_cost_vs_data`] | Fig. 6 — batch cost vs data migrated best fits |
//! | [`fig07_transfer_fraction`] | Fig. 7 — transfer share of batch time |
//! | [`fig08_dedup_series`] | Fig. 8 — raw vs deduplicated batch sizes |
//! | [`fig09_batch_size`] | Fig. 9 — batch-size-limit sweep |
//! | [`fig10_vablocks`] | Fig. 10 — cost vs size colored by VABlock count |
//! | [`table3_vablocks`] | Table 3 — VABlock source statistics |
//! | [`fig11_unmap_threads`] | Fig. 11 — CPU-thread count vs unmap cost |
//! | [`fig12_oversub`] | Fig. 12 — sgemm under oversubscription |
//! | [`fig13_evict_levels`] | Fig. 13 — stream eviction cost levels |
//! | [`fig14_prefetch_batches`] | Fig. 14 — prefetch batch profile + DMA outliers |
//! | [`fig15_evict_prefetch`] | Fig. 15 — dgemm eviction + prefetching panels |
//! | [`fig16_gauss_seidel`] | Fig. 16 — Gauss-Seidel case study |
//! | [`fig17_hpgmg`] | Fig. 17 — HPGMG case study (LRU order) |
//! | [`table4_speedup`] | Table 4 — prefetch on/off batch & kernel times |

use std::path::{Path, PathBuf};

/// Overwrite the checked-in golden file for experiment `id` with freshly
/// rendered output (the experiment runner's `--bless` flow). Returns the
/// path written, or `None` when the experiment keeps no golden file.
///
/// The golden lives in this crate's source tree
/// (`src/experiments/golden/`), so blessing only works from a source
/// checkout — which is the only place it makes sense.
pub fn bless_golden(id: &str, rendered: &str) -> std::io::Result<Option<PathBuf>> {
    let file = match id {
        "ext-inject" => "ext_inject.txt",
        "ext-policy" => "ext_policy.txt",
        "ext-policy-quick" => "ext_policy_quick.txt",
        _ => return Ok(None),
    };
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("src/experiments/golden")
        .join(file);
    // Keep each line byte-exact (column padding matters to the CI diff);
    // drop only empty lines, as the CI extraction does.
    let mut out = rendered
        .lines()
        .filter(|l| !l.is_empty())
        .collect::<Vec<_>>()
        .join("\n");
    out.push('\n');
    std::fs::write(&path, out)?;
    Ok(Some(path))
}

pub mod ext_hints;
pub mod ext_inject;
pub mod ext_policy;
pub mod ext_thrashing;
pub mod fig01_latency;
pub mod fig03_vecadd;
pub mod fig05_prefetch_ub;
pub mod fig06_cost_vs_data;
pub mod fig07_transfer_fraction;
pub mod fig08_dedup_series;
pub mod fig09_batch_size;
pub mod fig10_vablocks;
pub mod fig11_unmap_threads;
pub mod fig12_oversub;
pub mod fig13_evict_levels;
pub mod fig14_prefetch_batches;
pub mod fig15_evict_prefetch;
pub mod fig16_gauss_seidel;
pub mod fig17_hpgmg;
pub mod suite;
pub mod table2_per_sm;
pub mod table3_vablocks;
pub mod table4_speedup;
