//! Fig. 8 — raw vs deduplicated batch sizes over time (stream and sgemm).
//!
//! The driver workload is application-driven: sgemm's k-loop produces
//! distinct batching "phases" while stream is uniform; and filtering
//! duplicate faults greatly reduces effective batch sizes for both —
//! duplicates contribute overhead but no migration.

use serde::{Deserialize, Serialize};

use crate::experiments::suite::{experiment_config, Bench};
use crate::system::UvmSystem;

/// One application's batch-size time series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Series {
    /// Benchmark name.
    pub bench: String,
    /// `(start time s, raw batch size)` per batch — the upper panes.
    pub raw: Vec<(f64, u64)>,
    /// `(start time s, deduplicated size)` per batch — the lower panes.
    pub deduped: Vec<(f64, u64)>,
    /// Total duplicate faults discarded.
    pub total_dups: u64,
    /// Total raw faults.
    pub total_raw: u64,
}

/// The Fig. 8 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Result {
    /// stream and sgemm series.
    pub series: Vec<Fig8Series>,
}

/// Run the dedup time-series experiment.
pub fn run(seed: u64) -> Fig8Result {
    let series = [Bench::Stream, Bench::Sgemm]
        .iter()
        .map(|&b| {
            let config = experiment_config(768).with_seed(seed);
            let result = UvmSystem::new(config).run(&b.build());
            Fig8Series {
                bench: b.name().to_string(),
                raw: result
                    .records
                    .iter()
                    .map(|r| (r.start.as_secs_f64(), r.raw_faults))
                    .collect(),
                deduped: result
                    .records
                    .iter()
                    .map(|r| (r.start.as_secs_f64(), r.unique_pages))
                    .collect(),
                total_dups: result.records.iter().map(|r| r.total_dups()).sum(),
                total_raw: result.records.iter().map(|r| r.raw_faults).sum(),
            }
        })
        .collect();
    Fig8Result { series }
}

impl Fig8Result {
    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let mut out = String::from("Fig. 8 — raw vs deduplicated batch sizes\n");
        for s in &self.series {
            let mean_raw =
                s.raw.iter().map(|&(_, v)| v).sum::<u64>() as f64 / s.raw.len().max(1) as f64;
            let mean_dedup = s.deduped.iter().map(|&(_, v)| v).sum::<u64>() as f64
                / s.deduped.len().max(1) as f64;
            out.push_str(&format!(
                "{:<12} batches {:>5}  mean raw {:>6.1}  mean dedup {:>6.1}  dup rate {:>5.1}%\n",
                s.bench,
                s.raw.len(),
                mean_raw,
                mean_dedup,
                100.0 * s.total_dups as f64 / s.total_raw.max(1) as f64
            ));
        }
        out
    }
}

impl Fig8Result {
    /// Terminal time-series plots: raw vs deduplicated sizes per app.
    pub fn render_plot(&self) -> String {
        let mut out = String::new();
        for s in &self.series {
            let raw: Vec<(f64, f64)> = s.raw.iter().map(|&(t, v)| (t, v as f64)).collect();
            let dedup: Vec<(f64, f64)> =
                s.deduped.iter().map(|&(t, v)| (t, v as f64)).collect();
            out.push_str(
                &uvm_stats::ScatterPlot::new(
                    &format!("Fig. 8 — {} batch sizes over time", s.bench),
                    "time (s)",
                    "faults",
                )
                .series("raw", raw)
                .series("dedup", dedup)
                .render(),
            );
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_shrinks_batches_and_sgemm_shows_phases() {
        let r = run(1);
        assert_eq!(r.series.len(), 2);
        for s in &r.series {
            assert!(s.total_dups > 0, "{}: expected duplicate faults", s.bench);
            // Dedup never grows a batch.
            for (raw, dedup) in s.raw.iter().zip(s.deduped.iter()) {
                assert!(dedup.1 <= raw.1);
            }
        }
        // sgemm shares tiles across warps: its duplicate rate exceeds
        // stream's (disjoint chunks; dups only from warps sharing a μTLB
        // re-issuing).
        let stream = &r.series[0];
        let sgemm = &r.series[1];
        let rate = |s: &Fig8Series| s.total_dups as f64 / s.total_raw as f64;
        assert!(
            rate(sgemm) > rate(stream),
            "sgemm dup rate {:.3} should exceed stream {:.3}",
            rate(sgemm),
            rate(stream)
        );
        // Phases: sgemm batch sizes vary far more than a uniform stream
        // (coefficient of variation check).
        let cv = |xs: &[(f64, u64)]| {
            let vals: Vec<f64> = xs.iter().map(|&(_, v)| v as f64).collect();
            let s = uvm_stats::Summary::of(&vals);
            s.std_dev / s.mean
        };
        assert!(cv(&sgemm.raw) > 0.2, "sgemm shows batching phases");
        assert!(r.render().contains("dup rate"));
    }
}
