//! Fig. 6 — batch cost vs data migrated: linear best fits per application.
//!
//! Data movement is the leading *indicator* of batch cost: average batch
//! time rises linearly with migrated bytes, with application-dependent
//! intercepts and high per-application variance (the management costs the
//! rest of the paper dissects).

use serde::{Deserialize, Serialize};
use uvm_stats::{linear_fit, LinearFit};

use crate::experiments::suite::{experiment_config, Bench};
use crate::system::UvmSystem;

/// One application's scatter and fit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Series {
    /// Benchmark name.
    pub bench: String,
    /// `(MiB migrated, batch ms)` points, one per batch.
    pub points: Vec<(f64, f64)>,
    /// Least-squares fit over the points.
    pub fit: Option<LinearFit>,
}

/// The Fig. 6 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Result {
    /// One series per application.
    pub series: Vec<Fig6Series>,
}

/// Run the cost-vs-data experiment.
pub fn run(seed: u64) -> Fig6Result {
    let benches = [
        Bench::Regular,
        Bench::Sgemm,
        Bench::Stream,
        Bench::Cufft,
        Bench::GaussSeidel,
    ];
    let series = benches
        .iter()
        .map(|&b| {
            let config = experiment_config(768).with_seed(seed);
            let result = UvmSystem::new(config).run(&b.build());
            let points: Vec<(f64, f64)> = result
                .records
                .iter()
                .map(|r| {
                    (
                        r.bytes_migrated as f64 / (1024.0 * 1024.0),
                        r.service_time().as_nanos() as f64 / 1e6,
                    )
                })
                .collect();
            Fig6Series {
                bench: b.name().to_string(),
                fit: linear_fit(&points),
                points,
            }
        })
        .collect();
    Fig6Result { series }
}

impl Fig6Result {
    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let mut t = uvm_stats::Table::new(vec![
            "Benchmark",
            "Batches",
            "Slope (ms/MiB)",
            "Intercept (ms)",
            "r^2",
        ]);
        for s in &self.series {
            match &s.fit {
                Some(f) => t.row(vec![
                    s.bench.clone(),
                    s.points.len().to_string(),
                    format!("{:.3}", f.slope),
                    format!("{:.3}", f.intercept),
                    format!("{:.2}", f.r_squared),
                ]),
                None => t.row(vec![
                    s.bench.clone(),
                    s.points.len().to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]),
            };
        }
        format!("Fig. 6 — best fit of batch cost vs data migrated\n{}", t.render())
    }
}

impl Fig6Result {
    /// Terminal scatter of all series (log-y, as the paper plots it).
    pub fn render_plot(&self) -> String {
        let mut plot = uvm_stats::ScatterPlot::new(
            "Fig. 6 — batch time vs data migrated",
            "MiB migrated",
            "ms",
        )
        .log_y();
        for s in &self.series {
            plot = plot.series(&s.bench, s.points.clone());
        }
        plot.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_rises_linearly_with_data() {
        let r = run(1);
        assert_eq!(r.series.len(), 5);
        let mut positive_intercepts = 0;
        for s in &r.series {
            let fit = s.fit.as_ref().unwrap_or_else(|| panic!("{} has a fit", s.bench));
            assert!(fit.slope > 0.0, "{}: slope {:.4} must be positive", s.bench, fit.slope);
            if fit.intercept > 0.0 {
                positive_intercepts += 1;
            }
            assert!(s.points.len() > 10, "{}", s.bench);
        }
        // Management overhead shows as a positive zero-data intercept for
        // most applications (tightly clustered scatters can fit noisily).
        assert!(positive_intercepts >= 3, "got {positive_intercepts} positive intercepts");
        // Variance is real: fits are informative but not perfect.
        assert!(r.series.iter().any(|s| s.fit.as_ref().unwrap().r_squared < 0.98));
        assert!(r.render().contains("Slope"));
        assert!(r.render_plot().contains("|"));
    }
}
