//! Fig. 12 — sgemm under oversubscription and eviction.
//!
//! With the problem exceeding device memory, batches divide into a
//! non-evicting population (before memory fills, or hitting resident
//! blocks) and an evicting one that pays failed allocation + writeback +
//! restart on top of normal servicing — visibly costlier at the same
//! migration size.

use serde::{Deserialize, Serialize};

use crate::experiments::suite::{experiment_config, Bench};
use crate::system::UvmSystem;

/// One batch observation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig12Point {
    /// Batch start (s).
    pub t: f64,
    /// Migrated MiB.
    pub mib: f64,
    /// Service time (ms).
    pub ms: f64,
    /// Evictions performed by this batch.
    pub evictions: u64,
}

/// The Fig. 12 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig12Result {
    /// All batches.
    pub points: Vec<Fig12Point>,
    /// Total evictions.
    pub total_evictions: u64,
    /// Oversubscription ratio (footprint / device memory).
    pub oversub_ratio: f64,
    /// Mean ms of non-evicting batches.
    pub mean_ms_no_evict: f64,
    /// Mean ms of evicting batches.
    pub mean_ms_evict: f64,
}

/// Run sgemm oversubscribed (~125 % of device memory).
pub fn run(seed: u64) -> Fig12Result {
    let bench = Bench::Sgemm;
    let workload = bench.build();
    let mem_mb = bench.oversub_memory_mb();
    let config = experiment_config(mem_mb).with_seed(seed);
    let oversub_ratio = workload.footprint_bytes() as f64 / (mem_mb * 1024 * 1024) as f64;
    let result = UvmSystem::new(config).run(&workload);
    let points: Vec<Fig12Point> = result
        .records
        .iter()
        .map(|r| Fig12Point {
            t: r.start.as_secs_f64(),
            mib: r.bytes_migrated as f64 / (1024.0 * 1024.0),
            ms: r.service_time().as_nanos() as f64 / 1e6,
            evictions: r.evictions,
        })
        .collect();
    let mean = |pred: &dyn Fn(&Fig12Point) -> bool| {
        let sel: Vec<f64> = points.iter().filter(|p| pred(p)).map(|p| p.ms).collect();
        if sel.is_empty() { 0.0 } else { sel.iter().sum::<f64>() / sel.len() as f64 }
    };
    Fig12Result {
        total_evictions: result.evictions,
        oversub_ratio,
        mean_ms_no_evict: mean(&|p| p.evictions == 0),
        mean_ms_evict: mean(&|p| p.evictions > 0),
        points,
    }
}

impl Fig12Result {
    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        format!(
            "Fig. 12 — sgemm under oversubscription ({:.0}% of memory)\n\
             batches                {}\n\
             total evictions        {}\n\
             mean batch, no evict   {:.3} ms\n\
             mean batch, evicting   {:.3} ms",
            self.oversub_ratio * 100.0,
            self.points.len(),
            self.total_evictions,
            self.mean_ms_no_evict,
            self.mean_ms_evict,
        )
    }
}

impl Fig12Result {
    /// Terminal scatter: batch time vs migrated size, evicting batches as
    /// a separate series (the paper's coloring).
    pub fn render_plot(&self) -> String {
        let clean: Vec<(f64, f64)> = self
            .points
            .iter()
            .filter(|p| p.evictions == 0)
            .map(|p| (p.mib, p.ms))
            .collect();
        let evicting: Vec<(f64, f64)> = self
            .points
            .iter()
            .filter(|p| p.evictions > 0)
            .map(|p| (p.mib, p.ms))
            .collect();
        uvm_stats::ScatterPlot::new(
            "Fig. 12 — sgemm under oversubscription",
            "MiB migrated",
            "ms",
        )
        .log_y()
        .series("no eviction", clean)
        .series("evicting", evicting)
        .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicting_batches_cost_more() {
        let r = run(1);
        assert!(r.oversub_ratio > 1.05, "workload oversubscribes: {:.2}", r.oversub_ratio);
        assert!(r.total_evictions > 0);
        // Many batches execute before memory fills, without evictions.
        let no_evict = r.points.iter().filter(|p| p.evictions == 0).count();
        let evict = r.points.iter().filter(|p| p.evictions > 0).count();
        assert!(no_evict > 0 && evict > 0);
        assert!(
            r.mean_ms_evict > r.mean_ms_no_evict,
            "evicting {:.3}ms <= clean {:.3}ms",
            r.mean_ms_evict,
            r.mean_ms_no_evict
        );
        // Evictions start only after memory has filled.
        let first_evict_t = r
            .points
            .iter()
            .find(|p| p.evictions > 0)
            .map(|p| p.t)
            .unwrap();
        assert!(first_evict_t > r.points[0].t);
        assert!(r.render().contains("evictions"));
    }
}
