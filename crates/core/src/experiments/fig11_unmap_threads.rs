//! Fig. 11 — host-side parallelization inflates fault-path unmap cost
//! (HPGMG).
//!
//! The same HPGMG problem, initialized by one CPU thread vs the default
//! one-thread-per-core OpenMP configuration: with striped multithreaded
//! initialization every VABlock is mapped by many cores, so the fault-path
//! `unmap_mapping_range()` pays cross-core PTE state and a wide TLB
//! shootdown — roughly doubling batch cost in the paper.

use serde::{Deserialize, Serialize};
use uvm_workloads::cpu_init::CpuInitPolicy;

use crate::experiments::suite::{experiment_config, Bench};
use crate::system::UvmSystem;

/// One configuration's measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Config {
    /// Initializing CPU thread count.
    pub cpu_threads: u32,
    /// Total batch time (ms).
    pub batch_ms: f64,
    /// Kernel time (ms).
    pub kernel_ms: f64,
    /// Mean per-batch unmap fraction among batches that unmapped.
    pub mean_unmap_fraction: f64,
    /// Max per-batch unmap fraction.
    pub max_unmap_fraction: f64,
    /// Total `unmap_mapping_range` time (ms).
    pub unmap_ms: f64,
    /// `(batch seq, unmap fraction)` series for the figure coloring.
    pub fractions: Vec<(u64, f64)>,
}

/// The Fig. 11 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Result {
    /// Single-threaded initialization.
    pub single: Fig11Config,
    /// Multithreaded (striped) initialization.
    pub multi: Fig11Config,
}

fn run_one(seed: u64, policy: CpuInitPolicy, threads: u32) -> Fig11Config {
    let config = experiment_config(768).with_seed(seed);
    let workload = Bench::Hpgmg.build_with_init(Some(policy));
    let result = UvmSystem::new(config).run(&workload);
    let fractions: Vec<(u64, f64)> = result
        .records
        .iter()
        .map(|r| (r.seq, r.unmap_fraction()))
        .collect();
    let unmapping: Vec<f64> = fractions.iter().map(|&(_, f)| f).filter(|&f| f > 0.0).collect();
    Fig11Config {
        cpu_threads: threads,
        batch_ms: result.total_batch_time.as_nanos() as f64 / 1e6,
        kernel_ms: result.kernel_time.as_nanos() as f64 / 1e6,
        mean_unmap_fraction: if unmapping.is_empty() {
            0.0
        } else {
            unmapping.iter().sum::<f64>() / unmapping.len() as f64
        },
        max_unmap_fraction: fractions.iter().map(|&(_, f)| f).fold(0.0, f64::max),
        unmap_ms: result.records.iter().map(|r| r.t_unmap.as_nanos()).sum::<u64>() as f64 / 1e6,
        fractions,
    }
}

/// Run the single- vs multi-threaded comparison (32 threads, the Epyc
/// 7551P core count).
pub fn run(seed: u64) -> Fig11Result {
    Fig11Result {
        single: run_one(seed, CpuInitPolicy::SingleThread, 1),
        multi: run_one(seed, CpuInitPolicy::Striped { threads: 32 }, 32),
    }
}

impl Fig11Result {
    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let mut t = uvm_stats::Table::new(vec![
            "CPU threads",
            "Batch (ms)",
            "Kernel (ms)",
            "Unmap (ms)",
            "Mean unmap %",
            "Max unmap %",
        ]);
        for c in [&self.single, &self.multi] {
            t.row(vec![
                c.cpu_threads.to_string(),
                format!("{:.2}", c.batch_ms),
                format!("{:.2}", c.kernel_ms),
                format!("{:.2}", c.unmap_ms),
                format!("{:.1}%", c.mean_unmap_fraction * 100.0),
                format!("{:.1}%", c.max_unmap_fraction * 100.0),
            ]);
        }
        format!("Fig. 11 — HPGMG: CPU-thread count vs unmap cost\n{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multithreaded_init_roughly_doubles_unmap_cost() {
        let r = run(1);
        // The unmap component itself inflates sharply.
        assert!(
            r.multi.unmap_ms > 1.8 * r.single.unmap_ms,
            "unmap: single {:.2}ms multi {:.2}ms",
            r.single.unmap_ms,
            r.multi.unmap_ms
        );
        // Overall batch time suffers (the paper sees ~2x; we require a
        // clear regression).
        assert!(
            r.multi.batch_ms > 1.15 * r.single.batch_ms,
            "batch: single {:.2}ms multi {:.2}ms",
            r.single.batch_ms,
            r.multi.batch_ms
        );
        // And the per-batch unmap share rises.
        assert!(r.multi.mean_unmap_fraction > r.single.mean_unmap_fraction);
        assert!(r.render().contains("Max unmap"));
    }
}
