//! Table 4 — batch and kernel execution times with and without
//! prefetching (Gauss-Seidel and HPGMG, modest oversubscription).
//!
//! With < 125 % oversubscription, prefetching improves kernel time 3.39×
//! (Gauss-Seidel) and 2.72× (HPGMG) in the paper; aggregate batch time is
//! always below kernel time (it excludes interrupt latency and GPU compute
//! on resident data).

use serde::{Deserialize, Serialize};
use uvm_driver::policy::DriverPolicy;

use crate::experiments::suite::{experiment_config, Bench};
use crate::system::UvmSystem;

/// One benchmark's row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Row {
    /// Benchmark name.
    pub bench: String,
    /// Batch time without prefetching (ms).
    pub batch_ms_no_prefetch: f64,
    /// Kernel time without prefetching (ms).
    pub kernel_ms_no_prefetch: f64,
    /// Batch time with prefetching (ms).
    pub batch_ms_prefetch: f64,
    /// Kernel time with prefetching (ms).
    pub kernel_ms_prefetch: f64,
    /// Kernel speedup from prefetching.
    pub speedup: f64,
}

/// The Table 4 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Result {
    /// Gauss-Seidel and HPGMG rows.
    pub rows: Vec<Table4Row>,
}

/// One `(benchmark, prefetch?)` cell: batch and kernel time in ns.
fn run_cell(bench: Bench, prefetch: bool, seed: u64) -> (u64, u64) {
    let workload = bench.build();
    // Modest oversubscription, as in the paper. At this simulator's reduced
    // scale (tens of VABlocks instead of thousands), LRU-horizon thrash
    // appears at lower ratios than on a 12 GiB device, so "modest" is ~105%
    // here; see EXPERIMENTS.md for the calibration notes.
    let mem_mb = (workload.footprint_bytes() / (1024 * 1024)) * 100 / 105;
    let mut config = experiment_config(mem_mb).with_seed(seed);
    if prefetch {
        config = config.with_policy(DriverPolicy::with_prefetch());
    }
    let result = UvmSystem::new(config).run(&workload);
    (result.total_batch_time.as_nanos(), result.kernel_time.as_nanos())
}

/// Run Table 4. The app × config matrix is four independent sims, fanned
/// out across the worker pool; rows assemble in fixed benchmark order.
pub fn run(seed: u64) -> Table4Result {
    let benches = [Bench::GaussSeidel, Bench::Hpgmg];
    let cells: Vec<(Bench, bool)> = benches
        .iter()
        .flat_map(|&b| [(b, false), (b, true)])
        .collect();
    let timings = crate::parallel::map(cells, |(bench, prefetch)| run_cell(bench, prefetch, seed));
    let rows = benches
        .iter()
        .zip(timings.chunks_exact(2))
        .map(|(bench, pair)| {
            let (batch_base, kernel_base) = pair[0];
            let (batch_pf, kernel_pf) = pair[1];
            Table4Row {
                bench: bench.name().to_string(),
                batch_ms_no_prefetch: batch_base as f64 / 1e6,
                kernel_ms_no_prefetch: kernel_base as f64 / 1e6,
                batch_ms_prefetch: batch_pf as f64 / 1e6,
                kernel_ms_prefetch: kernel_pf as f64 / 1e6,
                speedup: kernel_base as f64 / kernel_pf.max(1) as f64,
            }
        })
        .collect();
    Table4Result { rows }
}

impl Table4Result {
    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let mut t = uvm_stats::Table::new(vec![
            "Benchmark",
            "Batch no-PF (ms)",
            "Kernel no-PF (ms)",
            "Batch PF (ms)",
            "Kernel PF (ms)",
            "Speedup",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.bench.clone(),
                format!("{:.2}", r.batch_ms_no_prefetch),
                format!("{:.2}", r.kernel_ms_no_prefetch),
                format!("{:.2}", r.batch_ms_prefetch),
                format!("{:.2}", r.kernel_ms_prefetch),
                format!("{:.2}x", r.speedup),
            ]);
        }
        format!("Table 4 — batch and kernel execution times\n{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_speeds_up_oversubscribed_kernels() {
        let r = run(1);
        assert_eq!(r.rows.len(), 2);
        for row in &r.rows {
            // Paper: 3.39x and 2.72x. We require the same winner at the
            // same order of magnitude.
            assert!(
                row.speedup > 1.6,
                "{}: prefetch speedup {:.2}x too small",
                row.bench,
                row.speedup
            );
            assert!(row.speedup < 6.0, "{}: speedup {:.2}x implausible", row.bench, row.speedup);
            // Batch time is a subset of kernel time in all configurations.
            assert!(row.batch_ms_no_prefetch < row.kernel_ms_no_prefetch);
            assert!(row.batch_ms_prefetch < row.kernel_ms_prefetch);
        }
        assert!(r.render().contains("Speedup"));
    }
}
