//! Table 2 — per-SM fault source statistics in each batch.
//!
//! For every batch, the per-SM fault density is `raw_faults / num_SMs`;
//! the table reports its distribution over all batches of a run. The
//! paper's key observations: the maximum is 3.20 — exactly the 256-fault
//! batch limit divided by 80 SMs, i.e. fair GMMU arbitration — and every
//! batch contains faults from nearly all SMs.

use serde::{Deserialize, Serialize};
use uvm_stats::Summary;

use crate::experiments::suite::{experiment_config, Bench};
use crate::system::UvmSystem;

/// One benchmark's row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Benchmark name.
    pub bench: String,
    /// Mean faults/SM over batches.
    pub avg_faults_per_sm: f64,
    /// Standard deviation over batches.
    pub std_dev: f64,
    /// Minimum over batches.
    pub min: f64,
    /// Maximum over batches.
    pub max: f64,
    /// Mean number of distinct SMs represented per batch.
    pub avg_distinct_sms: f64,
    /// Mean distinct SMs among *full* batches (raw size >= 200) — the
    /// paper's "each batch contains faults from nearly all SMs".
    pub avg_distinct_sms_full: f64,
    /// Number of batches observed.
    pub batches: u64,
}

/// The Table 2 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Result {
    /// One row per benchmark, in paper order.
    pub rows: Vec<Table2Row>,
    /// SM count used for normalization.
    pub num_sms: u32,
}

/// Run Table 2 over the benchmark suite.
pub fn run(seed: u64) -> Table2Result {
    let num_sms = experiment_config(768).gpu.num_sms;
    // One independent sim per benchmark: fan the suite across the worker
    // pool, rows staying in paper order.
    let rows = crate::parallel::map(Bench::table_suite().to_vec(), |b| {
            let config = experiment_config(768).with_seed(seed);
            let result = UvmSystem::new(config).run(&b.build());
            let per_sm: Vec<f64> = result
                .records
                .iter()
                .map(|r| r.raw_faults as f64 / num_sms as f64)
                .collect();
            let s = Summary::of(&per_sm);
            let distinct: Vec<f64> =
                result.records.iter().map(|r| r.distinct_sms as f64).collect();
            let distinct_full: Vec<f64> = result
                .records
                .iter()
                .filter(|r| r.raw_faults >= 200)
                .map(|r| r.distinct_sms as f64)
                .collect();
            Table2Row {
                bench: b.name().to_string(),
                avg_faults_per_sm: s.mean,
                std_dev: s.std_dev,
                min: s.min,
                max: s.max,
                avg_distinct_sms: Summary::of(&distinct).mean,
                avg_distinct_sms_full: Summary::of(&distinct_full).mean,
                batches: result.num_batches,
            }
        });
    Table2Result { rows, num_sms }
}

impl Table2Result {
    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let mut t = uvm_stats::Table::new(vec![
            "Benchmark",
            "Avg Faults/SM",
            "Std. Dev.",
            "Min.",
            "Max.",
            "Avg SMs/batch",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.bench.clone(),
                format!("{:.2}", r.avg_faults_per_sm),
                format!("{:.2}", r.std_dev),
                format!("{:.2}", r.min),
                format!("{:.2}", r.max),
                format!("{:.1}", r.avg_distinct_sms),
            ]);
        }
        format!("Table 2 — per-SM source statistics in each batch\n{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_sm_stats_match_paper_shape() {
        let r = run(1);
        assert_eq!(r.rows.len(), 7);
        let cap = 256.0 / r.num_sms as f64; // 3.2 on the Titan V config
        let by_name = |n: &str| r.rows.iter().find(|row| row.bench == n).unwrap();

        for row in &r.rows {
            assert!(row.batches > 0, "{}", row.bench);
            // The fair-arbitration cap bounds every benchmark (small slack
            // for sub-256 leftovers is unnecessary: cap is exact).
            assert!(
                row.max <= cap + 1e-9,
                "{}: max {:.2} exceeds fair-share cap {:.2}",
                row.bench,
                row.max,
                cap
            );
            assert!(row.avg_faults_per_sm > 0.0);
        }
        // The synthetics saturate batches; the real apps do not.
        let regular = by_name("Regular");
        assert!(
            regular.avg_faults_per_sm > 2.0,
            "Regular should approach the cap: {:.2}",
            regular.avg_faults_per_sm
        );
        assert!((regular.max - cap).abs() < 0.2, "Regular hits full batches");
        let hpgmg = by_name("hpgmg");
        assert!(
            hpgmg.avg_faults_per_sm < regular.avg_faults_per_sm,
            "hpgmg is sparser than Regular"
        );
        // Full batches draw from many SMs (the "fairness" observation);
        // tiny batches trivially have few sources.
        // With 2 SMs per μTLB and queue heads dominated by the first warp
        // to fill each μTLB, a full fair batch spans roughly one SM per
        // μTLB (~40 of 80).
        assert!(
            regular.avg_distinct_sms_full > r.num_sms as f64 * 0.35,
            "full Regular batches should span many SMs: {:.1}",
            regular.avg_distinct_sms_full
        );
        assert!(r.render().contains("gauss-seidel"));
    }
}
