//! Extension experiment (beyond the paper): thrashing mitigation.
//!
//! The production driver ships a thrashing detector
//! (`uvm_perf_thrashing`) that the paper's analysis does not exercise.
//! Our simplified version pins a block host-side (remote mappings, no
//! migration) when it re-faults shortly after being evicted. Thrashing is
//! a property of *irregular* oversubscribed workloads (Ganguly et al.,
//! IPDPS'20), so this experiment runs the Random benchmark with half the
//! footprint resident: uniform accesses re-fault evicted blocks almost
//! immediately, and pinning converts the migration ping-pong into remote
//! accesses.

use serde::{Deserialize, Serialize};
use uvm_driver::policy::DriverPolicy;

use crate::experiments::suite::{experiment_config, Bench};
use crate::system::UvmSystem;

/// One configuration's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThrashRow {
    /// Whether mitigation was enabled.
    pub mitigation: bool,
    /// Kernel time (ms).
    pub kernel_ms: f64,
    /// VABlock evictions.
    pub evictions: u64,
    /// Thrashing pins applied.
    pub pins: u64,
    /// Pages migrated (including re-migrations).
    pub pages_migrated: u64,
    /// Pages mapped remotely by pins.
    pub remote_mapped: u64,
}

/// The extension-experiment dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtThrashingResult {
    /// Mitigation off, then on.
    pub rows: Vec<ThrashRow>,
}

fn measure(mitigation: bool, seed: u64) -> ThrashRow {
    let bench = Bench::Random;
    let workload = bench.build();
    // Uniform random at 200% oversubscription: heavy eviction ping-pong.
    let mem_mb = (workload.footprint_bytes() / (1024 * 1024)) / 2;
    let config = experiment_config(mem_mb)
        .with_policy(DriverPolicy::default().thrashing(mitigation))
        .with_seed(seed);
    let r = UvmSystem::new(config).run(&workload);
    ThrashRow {
        mitigation,
        kernel_ms: r.kernel_time.as_nanos() as f64 / 1e6,
        evictions: r.evictions,
        pins: r.records.iter().map(|x| x.thrashing_pins).sum(),
        pages_migrated: r.records.iter().map(|x| x.pages_migrated).sum(),
        remote_mapped: r.records.iter().map(|x| x.remote_mapped_pages).sum(),
    }
}

/// Run the comparison.
pub fn run(seed: u64) -> ExtThrashingResult {
    ExtThrashingResult {
        rows: vec![measure(false, seed), measure(true, seed)],
    }
}

impl ExtThrashingResult {
    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let mut t = uvm_stats::Table::new(vec![
            "Mitigation",
            "Kernel (ms)",
            "Evictions",
            "Pins",
            "Migrated",
            "Remote",
        ]);
        for r in &self.rows {
            t.row(vec![
                if r.mitigation { "on" } else { "off" }.to_string(),
                format!("{:.2}", r.kernel_ms),
                r.evictions.to_string(),
                r.pins.to_string(),
                r.pages_migrated.to_string(),
                r.remote_mapped.to_string(),
            ]);
        }
        format!(
            "Extension — thrashing mitigation (Random, 200% oversubscription)\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mitigation_cuts_evictions_and_migration_churn() {
        let r = run(1);
        let off = &r.rows[0];
        let on = &r.rows[1];
        assert!(!off.mitigation && on.mitigation);
        assert_eq!(off.pins, 0);
        assert!(on.pins > 0, "thrashing must be detected");
        assert!(
            on.evictions * 2 < off.evictions,
            "pinning should cut evictions sharply: {} vs {}",
            on.evictions,
            off.evictions
        );
        assert!(on.pages_migrated < off.pages_migrated, "less re-migration churn");
        assert!(on.kernel_ms < off.kernel_ms, "and the kernel speeds up");
        assert!(r.render().contains("Mitigation"));
    }
}
