//! Fig. 16 — Gauss-Seidel case study (~16 % oversubscription, prefetching
//! on).
//!
//! The three panels: (a) batch profile with prefetching, (b) batch profile
//! with evictions, and (c) the page-level fault/eviction behaviour showing
//! the indirect allocation → eviction → prefetching relationship: evicting
//! a block creates a freshly paged-in block whose subsequent accesses
//! trigger a robust prefetch response.

use serde::{Deserialize, Serialize};
use uvm_driver::policy::DriverPolicy;

use crate::experiments::suite::{experiment_config, Bench};
use crate::system::UvmSystem;

/// Per-batch observation for the case-study panels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseStudyPoint {
    /// Batch sequence number (panel c's x axis).
    pub seq: u64,
    /// Batch start (s).
    pub t: f64,
    /// Service time (ms).
    pub ms: f64,
    /// Migrated MiB.
    pub mib: f64,
    /// Prefetched pages.
    pub prefetched: u64,
    /// Evictions.
    pub evictions: u64,
    /// Evicted block ids (page-range visualization).
    pub evicted_blocks: Vec<u64>,
    /// Serviced block ids (first-touch order reconstruction).
    pub served_blocks: Vec<u64>,
}

/// A case-study dataset (shared by Figs. 16 and 17).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseStudyResult {
    /// Workload name.
    pub bench: String,
    /// Oversubscription ratio.
    pub oversub_ratio: f64,
    /// All batches.
    pub points: Vec<CaseStudyPoint>,
    /// Total evictions.
    pub total_evictions: u64,
    /// Kernel time (ms).
    pub kernel_ms: f64,
}

/// Shared runner for the case studies.
pub fn run_case_study(bench: Bench, oversub_pct: u64, seed: u64) -> CaseStudyResult {
    let workload = bench.build();
    let footprint_mb = workload.footprint_bytes() / (1024 * 1024);
    let mem_mb = (footprint_mb * 100 / oversub_pct).max(4);
    let config = experiment_config(mem_mb)
        .with_policy(DriverPolicy::with_prefetch())
        .with_seed(seed);
    let result = UvmSystem::new(config).run(&workload);
    CaseStudyResult {
        bench: bench.name().to_string(),
        oversub_ratio: workload.footprint_bytes() as f64 / (mem_mb * 1024 * 1024) as f64,
        total_evictions: result.evictions,
        kernel_ms: result.kernel_time.as_nanos() as f64 / 1e6,
        points: result
            .records
            .iter()
            .map(|r| CaseStudyPoint {
                seq: r.seq,
                t: r.start.as_secs_f64(),
                ms: r.service_time().as_nanos() as f64 / 1e6,
                mib: r.bytes_migrated as f64 / (1024.0 * 1024.0),
                prefetched: r.prefetched_pages,
                evictions: r.evictions,
                evicted_blocks: r.evicted_blocks.clone(),
                served_blocks: r.served_blocks.clone(),
            })
            .collect(),
    }
}

impl CaseStudyResult {
    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        format!(
            "{} case study ({:.0}% oversubscription)\n\
             batches          {}\n\
             kernel           {:.2} ms\n\
             total evictions  {}\n\
             prefetched pages {}",
            self.bench,
            self.oversub_ratio * 100.0,
            self.points.len(),
            self.kernel_ms,
            self.total_evictions,
            self.points.iter().map(|p| p.prefetched).sum::<u64>(),
        )
    }

    /// Terminal time-series: batch time with prefetching and evicting
    /// batches as separate series (the paper's panels a/b).
    pub fn render_plot(&self) -> String {
        let pf: Vec<(f64, f64)> = self
            .points
            .iter()
            .filter(|p| p.prefetched > 0)
            .map(|p| (p.t, p.ms))
            .collect();
        let ev: Vec<(f64, f64)> = self
            .points
            .iter()
            .filter(|p| p.evictions > 0)
            .map(|p| (p.t, p.ms))
            .collect();
        let rest: Vec<(f64, f64)> = self
            .points
            .iter()
            .filter(|p| p.prefetched == 0 && p.evictions == 0)
            .map(|p| (p.t, p.ms))
            .collect();
        uvm_stats::ScatterPlot::new(
            &format!("{} — batch time series", self.bench),
            "time (s)",
            "ms",
        )
        .log_y()
        .series("plain", rest)
        .series("prefetching", pf)
        .series("evicting", ev)
        .render()
    }

    /// Batches where an eviction occurs within `window` batches *before* a
    /// prefetch burst — the paper's eviction-precedes-prefetch coincidence.
    pub fn evictions_preceding_prefetch(&self, window: u64) -> usize {
        self.points
            .iter()
            .filter(|p| p.evictions > 0)
            .filter(|e| {
                self.points
                    .iter()
                    .any(|p| p.seq > e.seq && p.seq <= e.seq + window && p.prefetched > 0)
            })
            .count()
    }
}

/// Run the Gauss-Seidel case study at ~16 % oversubscription.
pub fn run(seed: u64) -> CaseStudyResult {
    run_case_study(Bench::GaussSeidel, 116, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_and_prefetch_interleave() {
        let r = run(1);
        assert!(r.oversub_ratio > 1.1 && r.oversub_ratio < 1.25, "{}", r.oversub_ratio);
        assert!(r.total_evictions > 0);
        let evicting = r.points.iter().filter(|p| p.evictions > 0).count();
        assert!(evicting > 0);
        // Eviction creates prefetching opportunities: a meaningful share of
        // evicting batches is followed shortly by a prefetch burst, and
        // prefetching stays active in the eviction-heavy phase.
        let followed = r.evictions_preceding_prefetch(10);
        assert!(
            followed * 10 >= evicting,
            "evictions should precede prefetch bursts: {}/{}",
            followed,
            evicting
        );
        let first_evict_seq = r.points.iter().find(|p| p.evictions > 0).unwrap().seq;
        let prefetch_after_evictions: u64 = r
            .points
            .iter()
            .filter(|p| p.seq > first_evict_seq)
            .map(|p| p.prefetched)
            .sum();
        assert!(prefetch_after_evictions > 0, "prefetching continues amid evictions");
        assert!(r.render().contains("oversubscription"));
    }
}
