//! Figs. 3 & 4 — the vector-addition fault microscope.
//!
//! Fig. 3 plots every fault of the Listing 1 page-strided vector addition
//! in arrival order, separated by batch: the first batch holds exactly 56
//! faults (the μTLB outstanding limit — all of A's reads plus most of B's),
//! and no write can fault until all 64 prerequisite reads are fulfilled.
//! Fig. 4 plots the same faults against real arrival timestamps: faults of
//! a batch cluster tightly, separated by the much longer batch-service
//! gaps.

use serde::{Deserialize, Serialize};
use uvm_driver::batch::FaultKind;
use uvm_driver::policy::DriverPolicy;
use uvm_workloads::vecadd::{self, VecAddParams};

use crate::experiments::suite::experiment_config;
use crate::system::UvmSystem;

/// One fault observation (a point in Figs. 3/4).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FaultPoint {
    /// Servicing batch.
    pub batch: u64,
    /// Faulting page number.
    pub page: u64,
    /// Access type.
    pub kind: FaultKind,
    /// Arrival time in the fault buffer (ns).
    pub arrival_ns: u64,
}

/// Per-batch summary for the Fig. 3 grouping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchSummary {
    /// Batch sequence number.
    pub seq: u64,
    /// Raw faults fetched.
    pub faults: u64,
    /// Read faults.
    pub reads: u64,
    /// Write faults.
    pub writes: u64,
    /// First fault arrival (ns).
    pub first_arrival_ns: u64,
    /// Last fault arrival (ns).
    pub last_arrival_ns: u64,
}

/// The Figs. 3/4 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Result {
    /// Every fault in arrival order.
    pub faults: Vec<FaultPoint>,
    /// Per-batch summaries.
    pub batches: Vec<BatchSummary>,
    /// Mean intra-batch arrival spread (ns) — Fig. 4's tight vertical
    /// clusters.
    pub mean_intra_batch_spread_ns: f64,
    /// Mean gap between consecutive batches' arrivals (ns).
    pub mean_inter_batch_gap_ns: f64,
}

/// Run the vector-addition microscope.
pub fn run(seed: u64) -> Fig3Result {
    let config = experiment_config(64)
        .with_policy(DriverPolicy::default().log_faults(true))
        .with_seed(seed);
    let workload = vecadd::build(VecAddParams::default());
    let result = UvmSystem::new(config).run(&workload);

    let faults: Vec<FaultPoint> = result
        .fault_log
        .iter()
        .map(|f| FaultPoint {
            batch: f.batch_seq,
            page: f.page,
            kind: f.kind,
            arrival_ns: f.arrival.as_nanos(),
        })
        .collect();

    let batches: Vec<BatchSummary> = result
        .records
        .iter()
        .map(|r| {
            let in_batch: Vec<&FaultPoint> =
                faults.iter().filter(|f| f.batch == r.seq).collect();
            BatchSummary {
                seq: r.seq,
                faults: r.raw_faults,
                reads: r.read_faults,
                writes: r.write_faults,
                first_arrival_ns: in_batch.iter().map(|f| f.arrival_ns).min().unwrap_or(0),
                last_arrival_ns: in_batch.iter().map(|f| f.arrival_ns).max().unwrap_or(0),
            }
        })
        .collect();

    let spreads: Vec<f64> = batches
        .iter()
        .filter(|b| b.faults > 1)
        .map(|b| (b.last_arrival_ns - b.first_arrival_ns) as f64)
        .collect();
    let gaps: Vec<f64> = batches
        .windows(2)
        .map(|w| w[1].first_arrival_ns.saturating_sub(w[0].last_arrival_ns) as f64)
        .collect();

    Fig3Result {
        mean_intra_batch_spread_ns: mean(&spreads),
        mean_inter_batch_gap_ns: mean(&gaps),
        faults,
        batches,
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

impl Fig3Result {
    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let mut t = uvm_stats::Table::new(vec![
            "Batch", "Faults", "Reads", "Writes", "Arrival span (us)",
        ]);
        for b in &self.batches {
            t.row(vec![
                b.seq.to_string(),
                b.faults.to_string(),
                b.reads.to_string(),
                b.writes.to_string(),
                format!("{:.2}", (b.last_arrival_ns - b.first_arrival_ns) as f64 / 1e3),
            ]);
        }
        format!(
            "Figs. 3/4 — vecadd fault batches (intra-batch spread {:.1} us, inter-batch gap {:.1} us)\n{}",
            self.mean_intra_batch_spread_ns / 1e3,
            self.mean_inter_batch_gap_ns / 1e3,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_fig3_and_fig4_shape() {
        let r = run(1);
        // Fig. 3: first batch = 56 reads (μTLB limit), second = remaining 8.
        assert_eq!(r.batches[0].faults, 56);
        assert_eq!(r.batches[0].writes, 0);
        assert_eq!(r.batches[1].faults, 8);
        // Writes appear only after all 64 reads of the statement resolved.
        let first_write_batch = r
            .batches
            .iter()
            .find(|b| b.writes > 0)
            .expect("writes must fault eventually")
            .seq;
        assert!(first_write_batch >= 2);
        // Fig. 4: intra-batch arrival spread is far smaller than the gap
        // between batches (batch servicing dominates).
        assert!(
            r.mean_inter_batch_gap_ns > 5.0 * r.mean_intra_batch_spread_ns,
            "spread {} vs gap {}",
            r.mean_intra_batch_spread_ns,
            r.mean_inter_batch_gap_ns
        );
        // All 288 unique accesses appear.
        let unique: std::collections::HashSet<u64> = r.faults.iter().map(|f| f.page).collect();
        assert_eq!(unique.len(), 288);
        assert!(r.render().contains("Batch"));
    }
}
