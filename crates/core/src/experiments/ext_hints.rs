//! Extension experiment (beyond the paper): the `cudaMemAdvise` /
//! `cudaMemPrefetchAsync` escape hatches.
//!
//! The paper's related work (Chien/Peng/Markidis, MCHPC'19; Min et al.'s
//! EMOGI) evaluates UVM's advanced features as remedies for the
//! fault-path costs this repository dissects. This experiment runs the
//! same workload under four managements and compares end-to-end time and
//! driver work:
//!
//! 1. **default** — fault-driven demand migration;
//! 2. **prefetch-async** — explicit bulk migration before launch
//!    (`cudaMemPrefetchAsync` + synchronize);
//! 3. **read-mostly** — read duplication for the input arrays (no
//!    fault-path unmap, no eviction writeback);
//! 4. **preferred-host** — inputs pinned host-side and mapped remotely
//!    (no migration at all; every access crosses the interconnect).

use serde::{Deserialize, Serialize};
use uvm_driver::advise::MemAdvise;
use uvm_workloads::cpu_init::CpuInitPolicy;
use uvm_workloads::stream::{self, StreamParams};
use uvm_workloads::workload::Workload;

use crate::experiments::suite::experiment_config;
use crate::system::{RunHints, UvmSystem};

/// One management strategy's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HintRow {
    /// Strategy name.
    pub strategy: String,
    /// End-to-end time (ms), including any upfront prefetch.
    pub total_ms: f64,
    /// Fault batches serviced.
    pub fault_batches: u64,
    /// Pages migrated.
    pub pages_migrated: u64,
    /// Pages mapped remotely.
    pub remote_mapped: u64,
    /// Fault-path unmap time (ms).
    pub unmap_ms: f64,
}

/// The extension-experiment dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtHintsResult {
    /// One row per strategy.
    pub rows: Vec<HintRow>,
}

fn workload() -> Workload {
    stream::build(StreamParams {
        warps: 256,
        pages_per_warp: 16,
        iters: 2,
        warps_per_page: 1,
        cpu_init: Some(CpuInitPolicy::SingleThread),
    })
}

fn measure(name: &str, w: &Workload, hints: RunHints, seed: u64) -> HintRow {
    let result = UvmSystem::new(experiment_config(256).with_seed(seed)).run_with_hints(w, &hints);
    let fault_batches = result.records.iter().filter(|r| !r.driver_prefetch_op).count() as u64;
    HintRow {
        strategy: name.to_string(),
        total_ms: result.kernel_time.as_nanos() as f64 / 1e6,
        fault_batches,
        pages_migrated: result.records.iter().map(|r| r.pages_migrated).sum(),
        remote_mapped: result.records.iter().map(|r| r.remote_mapped_pages).sum(),
        unmap_ms: result.records.iter().map(|r| r.t_unmap.as_nanos()).sum::<u64>() as f64 / 1e6,
    }
}

/// Run the four-strategy comparison.
pub fn run(seed: u64) -> ExtHintsResult {
    let w = workload();
    let inputs: Vec<_> = w.allocations[..2].to_vec(); // a and b (c is output)

    let rows = vec![
        measure("default", &w, RunHints::default(), seed),
        measure(
            "prefetch-async",
            &w,
            RunHints {
                prefetch: w.allocations.clone(),
                ..Default::default()
            },
            seed,
        ),
        measure(
            "read-mostly",
            &w,
            RunHints {
                advise: inputs.iter().map(|&a| (a, MemAdvise::ReadMostly)).collect(),
                ..Default::default()
            },
            seed,
        ),
        measure(
            "preferred-host",
            &w,
            RunHints {
                advise: inputs
                    .iter()
                    .map(|&a| (a, MemAdvise::PreferredLocationHost))
                    .collect(),
                ..Default::default()
            },
            seed,
        ),
    ];
    ExtHintsResult { rows }
}

impl ExtHintsResult {
    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let mut t = uvm_stats::Table::new(vec![
            "Strategy",
            "Total (ms)",
            "Fault batches",
            "Migrated",
            "Remote",
            "Unmap (ms)",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.strategy.clone(),
                format!("{:.2}", r.total_ms),
                r.fault_batches.to_string(),
                r.pages_migrated.to_string(),
                r.remote_mapped.to_string(),
                format!("{:.2}", r.unmap_ms),
            ]);
        }
        format!(
            "Extension — memory-usage hints (stream triad, 2 iterations)\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hints_trade_costs_as_designed() {
        let r = run(1);
        let by = |n: &str| r.rows.iter().find(|row| row.strategy == n).unwrap();
        let default = by("default");
        let prefetch = by("prefetch-async");
        let read_mostly = by("read-mostly");
        let host = by("preferred-host");

        // Prefetch: far fewer fault batches, faster end to end.
        assert!(prefetch.fault_batches * 2 < default.fault_batches);
        assert!(prefetch.total_ms < default.total_ms);

        // Read-mostly: no fault-path unmap for the inputs (only the
        // output's blocks could ever unmap, and c is GPU-written only).
        assert!(read_mostly.unmap_ms < default.unmap_ms * 0.2);

        // Preferred-host: the inputs never migrate; remote mappings appear.
        assert!(host.remote_mapped > 0);
        assert!(host.pages_migrated < default.pages_migrated);
        assert_eq!(host.unmap_ms, 0.0, "host-pinned inputs keep CPU mappings");
    }
}
