//! Fig. 14 — sgemm with prefetching: far fewer batches, DMA-setup
//! outliers.
//!
//! The tree-based density prefetcher collapses the mid-range batch
//! population (the paper reports a 93 % batch-count reduction for sgemm)
//! by migrating up to a full VABlock per fault burst. What remains are the
//! compulsory costs prefetching cannot remove: first-touch DMA-map
//! creation whose radix-tree storage makes some batches spend most of
//! their time in VABlock state initialization (up to 64 % in the paper).

use serde::{Deserialize, Serialize};
use uvm_driver::policy::DriverPolicy;

use crate::experiments::suite::{experiment_config, Bench};
use crate::system::UvmSystem;

/// The Fig. 14 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig14Result {
    /// Batches without prefetching (the Fig. 7 baseline).
    pub batches_baseline: u64,
    /// Batches with prefetching.
    pub batches_prefetch: u64,
    /// Relative reduction in batch count.
    pub reduction: f64,
    /// Pages added by the prefetcher.
    pub prefetched_pages: u64,
    /// `(migrated MiB, ms, dma fraction)` per prefetching batch.
    pub points: Vec<(f64, f64, f64)>,
    /// Maximum per-batch DMA-setup fraction.
    pub max_dma_fraction: f64,
    /// Kernel time without prefetching (ms).
    pub kernel_ms_baseline: f64,
    /// Kernel time with prefetching (ms).
    pub kernel_ms_prefetch: f64,
}

/// Run sgemm with and without prefetching.
pub fn run(seed: u64) -> Fig14Result {
    let baseline = UvmSystem::new(experiment_config(768).with_seed(seed)).run(&Bench::Sgemm.build());
    let pf_config = experiment_config(768)
        .with_policy(DriverPolicy::with_prefetch())
        .with_seed(seed);
    let prefetch = UvmSystem::new(pf_config).run(&Bench::Sgemm.build());

    let points: Vec<(f64, f64, f64)> = prefetch
        .records
        .iter()
        .map(|r| {
            (
                r.bytes_migrated as f64 / (1024.0 * 1024.0),
                r.service_time().as_nanos() as f64 / 1e6,
                r.dma_fraction(),
            )
        })
        .collect();
    Fig14Result {
        batches_baseline: baseline.num_batches,
        batches_prefetch: prefetch.num_batches,
        reduction: 1.0 - prefetch.num_batches as f64 / baseline.num_batches.max(1) as f64,
        prefetched_pages: prefetch.records.iter().map(|r| r.prefetched_pages).sum(),
        max_dma_fraction: points.iter().map(|&(_, _, d)| d).fold(0.0, f64::max),
        kernel_ms_baseline: baseline.kernel_time.as_nanos() as f64 / 1e6,
        kernel_ms_prefetch: prefetch.kernel_time.as_nanos() as f64 / 1e6,
        points,
    }
}

impl Fig14Result {
    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        format!(
            "Fig. 14 — sgemm batch profile with prefetching\n\
             batches, no prefetch   {}\n\
             batches, prefetch      {}  ({:.0}% reduction)\n\
             prefetched pages       {}\n\
             max DMA-setup share    {:.0}%\n\
             kernel, no prefetch    {:.2} ms\n\
             kernel, prefetch       {:.2} ms",
            self.batches_baseline,
            self.batches_prefetch,
            self.reduction * 100.0,
            self.prefetched_pages,
            self.max_dma_fraction * 100.0,
            self.kernel_ms_baseline,
            self.kernel_ms_prefetch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_collapses_batches_and_exposes_dma_outliers() {
        let r = run(1);
        assert!(
            r.reduction >= 0.70,
            "prefetch should eliminate most batches (paper: 93%), got {:.0}%",
            r.reduction * 100.0
        );
        assert!(r.prefetched_pages > 1000);
        assert!(
            r.max_dma_fraction >= 0.25,
            "DMA-setup outlier batches should dominate their time, got {:.2}",
            r.max_dma_fraction
        );
        assert!(
            r.kernel_ms_prefetch < r.kernel_ms_baseline,
            "prefetching speeds up sgemm"
        );
        assert!(r.render().contains("reduction"));
    }
}
