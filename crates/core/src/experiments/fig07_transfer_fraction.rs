//! Fig. 7 — the share of batch time spent on data transfer (sgemm).
//!
//! The striking result: although data movement is the leading cost
//! indicator (Fig. 6), the actual transfer accounts for *at most ~25 %* of
//! any batch's time, and typically far less — the driver's management work
//! dominates. This is the paper's core motivation for dissecting the
//! servicing path.

use serde::{Deserialize, Serialize};
use uvm_stats::{percentile, Summary};

use crate::experiments::suite::{experiment_config, Bench};
use crate::system::UvmSystem;

/// The Fig. 7 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Result {
    /// `(batch seq, transfer fraction)` per batch.
    pub fractions: Vec<(u64, f64)>,
    /// Distribution summary of the fractions.
    pub summary: Summary,
    /// 95th percentile of the fractions.
    pub p95: f64,
    /// Total batches.
    pub num_batches: u64,
}

/// Run the transfer-fraction experiment (sgemm, stock policy).
pub fn run(seed: u64) -> Fig7Result {
    let config = experiment_config(768).with_seed(seed);
    let result = UvmSystem::new(config).run(&Bench::Sgemm.build());
    let fractions: Vec<(u64, f64)> = result
        .records
        .iter()
        .map(|r| (r.seq, r.transfer_fraction()))
        .collect();
    let vals: Vec<f64> = fractions.iter().map(|&(_, f)| f).collect();
    Fig7Result {
        summary: Summary::of(&vals),
        p95: percentile(&vals, 95.0),
        num_batches: result.num_batches,
        fractions,
    }
}

impl Fig7Result {
    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        format!(
            "Fig. 7 — transfer share of batch time (sgemm, {} batches)\n\
             mean   {:.1}%\n\
             median {:.1}%\n\
             p95    {:.1}%\n\
             max    {:.1}%",
            self.num_batches,
            self.summary.mean * 100.0,
            self.summary.median * 100.0,
            self.p95 * 100.0,
            self.summary.max * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_is_at_most_a_quarter_of_batch_time() {
        let r = run(1);
        assert!(r.num_batches > 20);
        // The paper's bound: at most ~25%, typically far lower.
        assert!(
            r.summary.max <= 0.32,
            "max transfer fraction {:.2} should stay near the paper's 25% ceiling",
            r.summary.max
        );
        assert!(
            r.summary.median < r.summary.max,
            "typical batches are well below the max"
        );
        assert!(r.summary.mean < 0.25);
        assert!(r.render().contains("p95"));
    }
}
