//! The shared benchmark suite and experiment configurations.
//!
//! The paper's runs use gigabyte-scale problems on a 12 GiB Titan V; the
//! simulator reproduces the same *driver-visible structure* at tens of
//! megabytes so that a full experiment sweep completes in seconds. Every
//! multi-benchmark experiment (Tables 2 and 3, Figs. 6 and 10) draws its
//! workloads from here, so cross-experiment numbers are comparable.

use uvm_gpu::spec::GpuSpec;
use uvm_sim::time::SimDuration;
use uvm_workloads::cpu_init::CpuInitPolicy;
use uvm_workloads::workload::Workload;
use uvm_workloads::{fft, gauss_seidel, hpgmg, random, regular, sgemm, stream};

use crate::config::SystemConfig;

/// Experiment system config: the full Titan V fault-generation hardware
/// (80 SMs, 40 μTLBs — required for the Table 2 per-SM statistics) with a
/// reduced device-memory capacity matching the scaled workloads.
pub fn experiment_config(memory_mb: u64) -> SystemConfig {
    let mut config = SystemConfig::titan_v();
    config.gpu = GpuSpec {
        memory_bytes: memory_mb * 1024 * 1024,
        ..GpuSpec::titan_v()
    };
    config
}

/// The benchmarks of the paper's Tables 2 and 3 (plus dgemm for Fig. 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bench {
    /// Contiguous streaming synthetic.
    Regular,
    /// Uniform-random synthetic.
    Random,
    /// cuBLAS sgemm.
    Sgemm,
    /// cuBLAS dgemm (Fig. 15).
    Dgemm,
    /// BabelStream triad.
    Stream,
    /// cuFFT.
    Cufft,
    /// Gauss-Seidel stencil.
    GaussSeidel,
    /// HPGMG-FV proxy app.
    Hpgmg,
}

impl Bench {
    /// The benchmark's display name (matches the paper's tables).
    pub fn name(self) -> &'static str {
        match self {
            Bench::Regular => "Regular",
            Bench::Random => "Random",
            Bench::Sgemm => "sgemm",
            Bench::Dgemm => "dgemm",
            Bench::Stream => "stream",
            Bench::Cufft => "cufft",
            Bench::GaussSeidel => "gauss-seidel",
            Bench::Hpgmg => "hpgmg",
        }
    }

    /// The seven benchmarks of Tables 2 and 3, in paper order.
    pub fn table_suite() -> [Bench; 7] {
        [
            Bench::Regular,
            Bench::Random,
            Bench::Sgemm,
            Bench::Stream,
            Bench::Cufft,
            Bench::GaussSeidel,
            Bench::Hpgmg,
        ]
    }

    /// Build the benchmark at standard experiment scale (single-threaded
    /// CPU initialization, in-core footprints of 16–80 MiB).
    pub fn build(self) -> Workload {
        self.build_with_init(Some(CpuInitPolicy::SingleThread))
    }

    /// Build with an explicit CPU-initialization policy.
    pub fn build_with_init(self, cpu_init: Option<CpuInitPolicy>) -> Workload {
        match self {
            Bench::Regular => regular::build(regular::RegularParams {
                warps: 320,
                pages_per_warp: 48,
                pages_per_instr: 4,
                cpu_init,
            }),
            Bench::Random => random::build(random::RandomParams {
                warps: 320,
                accesses_per_warp: 48,
                // Sparse accesses over a wide footprint: the paper's Random
                // touches hundreds of VABlocks per batch at ~1 fault each.
                footprint_pages: 110 * 1024,
                seed: 0xBAD5EED,
                cpu_init,
            }),
            Bench::Sgemm => sgemm::build(sgemm::GemmParams {
                n: 2048,
                tile: 128,
                elem_size: 4,
                pages_per_instr: 32,
                compute_per_ktile: SimDuration::from_micros(40),
                cpu_init,
            }),
            Bench::Dgemm => sgemm::build(
                sgemm::GemmParams {
                    n: 1280,
                    tile: 128,
                    elem_size: 4,
                    pages_per_instr: 32,
                    compute_per_ktile: SimDuration::from_micros(40),
                    cpu_init,
                }
                .dgemm(),
            ),
            Bench::Stream => stream::build(stream::StreamParams {
                warps: 320,
                pages_per_warp: 16,
                iters: 1,
                warps_per_page: 4,
                cpu_init,
            }),
            Bench::Cufft => fft::build(fft::FftParams {
                chunks: 256,
                pages_per_chunk: 16,
                pages_per_instr: 8,
                compute_per_pass: SimDuration::from_micros(20),
                cpu_init,
            }),
            Bench::GaussSeidel => gauss_seidel::build(gauss_seidel::GaussSeidelParams {
                rows: 4096,
                pages_per_row: 4,
                warps: 128,
                iters: 2,
                compute_per_row: SimDuration::from_micros(2),
                cpu_init,
            }),
            Bench::Hpgmg => hpgmg::build(hpgmg::HpgmgParams {
                level0_pages: 16384,
                levels: 4,
                vcycles: 2,
                warps: 128,
                pages_per_instr: 8,
                compute_per_phase: SimDuration::from_micros(10),
                cpu_init,
            }),
        }
    }

    /// Device memory (in MiB) that gives this benchmark roughly the
    /// paper-style oversubscription ratio (footprint ≈ 110–130 % of GPU
    /// memory).
    pub fn oversub_memory_mb(self) -> u64 {
        let w = self.build();
        let footprint_mb = w.footprint_bytes() / (1024 * 1024);
        // ~125% oversubscription: memory = footprint / 1.25.
        (footprint_mb * 4 / 5).max(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_suite_benches_build() {
        for b in Bench::table_suite() {
            let w = b.build();
            assert!(w.num_warps() > 0, "{}", b.name());
            assert!(w.footprint_bytes() > 0, "{}", b.name());
            assert!(w.total_accesses() > 0, "{}", b.name());
        }
    }

    #[test]
    fn footprints_are_experiment_scale() {
        for b in Bench::table_suite() {
            let mb = b.build().footprint_bytes() / (1024 * 1024);
            assert!((8..=512).contains(&mb), "{} is {} MiB", b.name(), mb);
        }
    }

    #[test]
    fn oversub_memory_is_smaller_than_footprint() {
        for b in [Bench::Sgemm, Bench::Stream, Bench::GaussSeidel, Bench::Hpgmg] {
            let w = b.build();
            let mem = b.oversub_memory_mb() * 1024 * 1024;
            assert!(mem < w.footprint_bytes(), "{}", b.name());
        }
    }

    #[test]
    fn experiment_config_keeps_titan_sms() {
        let c = experiment_config(64);
        assert_eq!(c.gpu.num_sms, 80);
        assert_eq!(c.capacity_blocks(), 32);
    }
}
