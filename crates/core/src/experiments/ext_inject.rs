//! Extension experiment (beyond the paper): fault injection and recovery.
//!
//! The paper analyses the servicing pipeline on a healthy system; a real
//! driver additionally survives replayable-buffer overflows, IOMMU map
//! failures, copy-engine faults, and populate errors. This experiment
//! sweeps a uniform per-operation failure probability across **all five**
//! injection points ([`FaultPlan::uniform`]) on an oversubscribed Stream
//! run with the invariant auditor enabled, and reports how much recovery
//! work (retries, deterministic backoff, degradations to remote mappings,
//! dropped faults) each failure rate causes. The zero-rate row doubles as
//! a regression guard: it must be identical to a run without any injection
//! wiring at all.

use serde::{Deserialize, Serialize};
use uvm_driver::policy::DriverPolicy;
use uvm_sim::inject::FaultPlan;

use crate::experiments::suite::{experiment_config, Bench};
use crate::system::UvmSystem;

/// One failure rate's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InjectRow {
    /// Per-operation failure probability at every injection point.
    pub rate: f64,
    /// Whether the run completed (recovery absorbed every failure).
    pub completed: bool,
    /// The terminal error when recovery was exhausted.
    pub error: Option<String>,
    /// Kernel time (ms); 0 when the run failed.
    pub kernel_ms: f64,
    /// Failures injected across all points.
    pub injected: u64,
    /// Retry attempts performed by the driver.
    pub retries: u64,
    /// Deterministic backoff spent retrying (µs).
    pub backoff_us: u64,
    /// VABlocks degraded to remote (sysmem-mapped) state.
    pub degraded_blocks: u64,
    /// Faults lost to injected buffer-overflow storms.
    pub dropped_faults: u64,
    /// Pages left remote-mapped by degradations and pins.
    pub remote_mapped: u64,
    /// Pages migrated to the device.
    pub pages_migrated: u64,
}

/// The injection-sweep dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtInjectResult {
    /// One row per swept failure rate, ascending.
    pub rows: Vec<InjectRow>,
}

/// The swept per-operation failure probabilities.
pub const RATES: [f64; 4] = [0.0, 0.01, 0.05, 0.15];

fn measure(rate: f64, seed: u64) -> InjectRow {
    let workload = Bench::Stream.build();
    // 75% of the footprint resident: evictions and re-migrations give the
    // copy-engine and DMA injection points plenty of operations to fail.
    let mem_mb = (workload.footprint_bytes() / (1024 * 1024)) * 3 / 4;
    let config = experiment_config(mem_mb)
        .with_policy(DriverPolicy::default().audited(true))
        .with_fault_plan(FaultPlan::uniform(rate))
        .with_seed(seed);
    match UvmSystem::new(config).try_run(&workload) {
        Ok(r) => InjectRow {
            rate,
            completed: true,
            error: None,
            kernel_ms: r.kernel_time.as_nanos() as f64 / 1e6,
            injected: r.records.iter().map(|x| x.injected_faults).sum(),
            retries: r.records.iter().map(|x| x.retries).sum(),
            backoff_us: r.records.iter().map(|x| x.t_backoff.as_nanos()).sum::<u64>() / 1000,
            degraded_blocks: r.records.iter().map(|x| x.degraded_blocks).sum(),
            dropped_faults: r.records.iter().map(|x| x.dropped_faults).sum(),
            remote_mapped: r.records.iter().map(|x| x.remote_mapped_pages).sum(),
            pages_migrated: r.records.iter().map(|x| x.pages_migrated).sum(),
        },
        Err(e) => InjectRow {
            rate,
            completed: false,
            error: Some(e.to_string()),
            kernel_ms: 0.0,
            injected: 0,
            retries: 0,
            backoff_us: 0,
            degraded_blocks: 0,
            dropped_faults: 0,
            remote_mapped: 0,
            pages_migrated: 0,
        },
    }
}

/// Run the failure-rate sweep.
pub fn run(seed: u64) -> ExtInjectResult {
    ExtInjectResult {
        rows: RATES.iter().map(|&rate| measure(rate, seed)).collect(),
    }
}

impl ExtInjectResult {
    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let mut t = uvm_stats::Table::new(vec![
            "Rate",
            "Status",
            "Kernel (ms)",
            "Injected",
            "Retries",
            "Backoff (us)",
            "Degraded",
            "Dropped",
            "Remote",
            "Migrated",
        ]);
        for r in &self.rows {
            t.row(vec![
                format!("{:.2}", r.rate),
                match (&r.error, r.completed) {
                    (Some(e), _) => format!("failed: {e}"),
                    (None, _) => "ok".to_string(),
                },
                format!("{:.2}", r.kernel_ms),
                r.injected.to_string(),
                r.retries.to_string(),
                r.backoff_us.to_string(),
                r.degraded_blocks.to_string(),
                r.dropped_faults.to_string(),
                r.remote_mapped.to_string(),
                r.pages_migrated.to_string(),
            ]);
        }
        format!(
            "Extension — fault injection & recovery (Stream, 133% oversubscription, audited)\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_row_matches_an_uninjected_baseline() {
        let baseline = {
            let workload = Bench::Stream.build();
            let mem_mb = (workload.footprint_bytes() / (1024 * 1024)) * 3 / 4;
            let config = experiment_config(mem_mb)
                .with_policy(DriverPolicy::default().audited(true))
                .with_seed(9);
            UvmSystem::new(config).try_run(&workload).unwrap()
        };
        let row = measure(0.0, 9);
        assert!(row.completed);
        assert_eq!(row.injected, 0);
        assert_eq!(row.retries, 0);
        assert_eq!(row.kernel_ms, baseline.kernel_time.as_nanos() as f64 / 1e6);
        assert_eq!(
            row.pages_migrated,
            baseline.records.iter().map(|x| x.pages_migrated).sum::<u64>()
        );
    }

    #[test]
    fn nonzero_rates_inject_and_recover() {
        let row = measure(0.05, 9);
        assert!(row.injected > 0, "failures must fire at 5%");
        if row.completed {
            assert!(row.retries > 0, "recovery implies retries");
            assert!(row.backoff_us > 0, "retries accumulate backoff");
        } else {
            assert!(row.error.is_some());
        }
    }

    #[test]
    fn same_seed_gives_identical_sweeps() {
        let a = run(0x5C21);
        let b = run(0x5C21);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn render_matches_checked_in_golden() {
        // Regenerate with:
        //   cargo run --release -p uvm-bench --bin paper -- ext-inject
        // and paste the table (or run the test and copy the `left` value).
        let golden = include_str!("golden/ext_inject.txt");
        assert_eq!(run(0x5C21).render().trim_end(), golden.trim_end());
    }
}
