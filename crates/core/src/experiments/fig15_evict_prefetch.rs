//! Fig. 15 — dgemm with eviction *and* prefetching: the four panels.
//!
//! The most complex scenario combines every cost source. The paper's four
//! panels show that (a) prefetching stays active throughout, (b) eviction
//! ranges match the non-prefetching runs and concentrate late, (c) CPU
//! unmapping happens on first touches and diminishes once every block has
//! been GPU-touched, and (d) DMA-map creation remains intermittent and
//! occasionally expensive.

use serde::{Deserialize, Serialize};
use uvm_driver::policy::DriverPolicy;

use crate::experiments::suite::{experiment_config, Bench};
use crate::system::UvmSystem;

/// One batch observation across all four panels.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig15Point {
    /// Batch start (s).
    pub t: f64,
    /// Migrated MiB.
    pub mib: f64,
    /// Service time (ms).
    pub ms: f64,
    /// Prefetched pages (panel a).
    pub prefetched: u64,
    /// Evictions (panel b).
    pub evictions: u64,
    /// Unmap time ms (panel c).
    pub unmap_ms: f64,
    /// DMA-setup time ms (panel d).
    pub dma_ms: f64,
}

/// The Fig. 15 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig15Result {
    /// All batches in time order.
    pub points: Vec<Fig15Point>,
    /// Oversubscription ratio.
    pub oversub_ratio: f64,
    /// Total evictions.
    pub total_evictions: u64,
    /// Total prefetched pages.
    pub total_prefetched: u64,
}

/// Run dgemm oversubscribed with prefetching enabled.
pub fn run(seed: u64) -> Fig15Result {
    let bench = Bench::Dgemm;
    let workload = bench.build();
    let mem_mb = bench.oversub_memory_mb();
    let config = experiment_config(mem_mb)
        .with_policy(DriverPolicy::with_prefetch())
        .with_seed(seed);
    let oversub_ratio = workload.footprint_bytes() as f64 / (mem_mb * 1024 * 1024) as f64;
    let result = UvmSystem::new(config).run(&workload);
    let points: Vec<Fig15Point> = result
        .records
        .iter()
        .map(|r| Fig15Point {
            t: r.start.as_secs_f64(),
            mib: r.bytes_migrated as f64 / (1024.0 * 1024.0),
            ms: r.service_time().as_nanos() as f64 / 1e6,
            prefetched: r.prefetched_pages,
            evictions: r.evictions,
            unmap_ms: r.t_unmap.as_nanos() as f64 / 1e6,
            dma_ms: r.t_dma_setup.as_nanos() as f64 / 1e6,
        })
        .collect();
    Fig15Result {
        oversub_ratio,
        total_evictions: result.evictions,
        total_prefetched: points.iter().map(|p| p.prefetched).sum(),
        points,
    }
}

impl Fig15Result {
    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let n = self.points.len();
        let span = self.points.last().map(|p| p.t).unwrap_or(0.0);
        format!(
            "Fig. 15 — dgemm with eviction + prefetching ({:.0}% oversubscription)\n\
             batches           {}\n\
             time span         {:.4} s\n\
             total evictions   {}\n\
             prefetched pages  {}",
            self.oversub_ratio * 100.0,
            n,
            span,
            self.total_evictions,
            self.total_prefetched,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_panel_shape_holds() {
        let r = run(1);
        assert!(r.oversub_ratio > 1.05);
        assert!(r.total_evictions > 0);
        assert!(r.total_prefetched > 0, "prefetching stays active");

        let t_end = r.points.last().unwrap().t.max(1e-9);
        // (a) prefetching occurs in both halves of the run.
        let half = t_end / 2.0;
        assert!(r.points.iter().any(|p| p.prefetched > 0 && p.t < half));
        assert!(r.points.iter().any(|p| p.prefetched > 0 && p.t >= half));
        // (b) evictions start only after memory fills (not in the earliest
        // tenth of the run).
        let first_evict = r.points.iter().find(|p| p.evictions > 0).unwrap();
        assert!(first_evict.t > t_end / 10.0, "evictions come later: {:.4}", first_evict.t);
        // (c) CPU unmapping diminishes: more unmap time in the first half
        // than the second (every block is eventually GPU-touched).
        let unmap_first: f64 =
            r.points.iter().filter(|p| p.t < half).map(|p| p.unmap_ms).sum();
        let unmap_second: f64 =
            r.points.iter().filter(|p| p.t >= half).map(|p| p.unmap_ms).sum();
        assert!(
            unmap_first > unmap_second,
            "unmap concentrates early: {:.2} vs {:.2}",
            unmap_first,
            unmap_second
        );
        // (d) DMA setup is intermittent: some batches pay it, most do not.
        let with_dma = r.points.iter().filter(|p| p.dma_ms > 0.0).count();
        assert!(with_dma > 0 && with_dma < r.points.len());
        assert!(r.render().contains("prefetched pages"));
    }
}
