//! Extension experiment: pluggable-policy sweep over regular and
//! irregular workloads.
//!
//! The paper's driver hard-wires one prefetcher (the tree-based density
//! heuristic) and one evictor (LRU VABlock order). The policy engine
//! makes both pluggable; this experiment runs the full policy × workload
//! grid under ~125 % oversubscription so the interaction is visible:
//!
//! * dense streaming (vecadd) rewards the tree prefetcher and the
//!   sequential-stride policy almost equally — the access order *is* a
//!   stride;
//! * Gauss-Seidel's row sweep re-touches evicted rows, so aggressive
//!   prefetching under oversubscription amplifies eviction churn
//!   (Fig. 15/16's pathology);
//! * pointer-chasing BFS and skewed attention gathers give a reactive
//!   prefetcher nothing to learn — only the oracle (perfect future
//!   knowledge, the upper bound adaptive schemes chase) still wins;
//! * eviction policy matters most where the working set is skewed
//!   (attention's hot rows make LRU ≈ LFU ≫ random).
//!
//! Every cell is an independent seeded simulation, so the grid fans out
//! across `--jobs N` workers with byte-identical output.

use serde::{Deserialize, Serialize};
use uvm_driver::policy::DriverPolicy;
use uvm_driver::{EvictionPolicyKind, PrefetchPolicyKind};
use uvm_sim::time::SimDuration;
use uvm_workloads::cpu_init::CpuInitPolicy;
use uvm_workloads::workload::Workload;
use uvm_workloads::{attention, gauss_seidel, graph_bfs, vecadd};

use crate::experiments::suite::experiment_config;
use crate::parallel;
use crate::system::UvmSystem;

/// One (workload, prefetcher, evictor) cell of the grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyRow {
    /// Workload name.
    pub workload: String,
    /// Prefetch policy name.
    pub prefetch: String,
    /// Eviction policy name.
    pub evict: String,
    /// Kernel time (ms).
    pub kernel_ms: f64,
    /// Fault batches serviced.
    pub batches: u64,
    /// Pages migrated host→device.
    pub pages_migrated: u64,
    /// Pages added by the prefetcher.
    pub pages_prefetched: u64,
    /// VABlock evictions.
    pub evictions: u64,
}

/// The sweep dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtPolicyResult {
    /// Grid cells in workload-major, prefetcher-then-evictor order.
    pub rows: Vec<PolicyRow>,
}

/// A workload instance plus the device memory that oversubscribes it.
struct SweepCase {
    name: &'static str,
    workload: Workload,
    memory_mb: u64,
}

impl SweepCase {
    /// ~125 % oversubscription: device memory = footprint / 1.25.
    fn new(name: &'static str, workload: Workload) -> SweepCase {
        let footprint_mb = workload.footprint_bytes() / (1024 * 1024);
        SweepCase { name, workload, memory_mb: (footprint_mb * 4 / 5).max(4) }
    }
}

/// The four sweep workloads: two regular (streaming, stencil) and two
/// irregular (pointer-chasing, skewed gathers). `quick` shrinks every
/// problem for CI smoke and debug-mode tests.
fn sweep_cases(quick: bool) -> Vec<SweepCase> {
    let init = Some(CpuInitPolicy::SingleThread);
    vec![
        SweepCase::new(
            "vecadd",
            vecadd::build(vecadd::VecAddParams {
                warps: if quick { 128 } else { 256 },
                statements: if quick { 6 } else { 8 },
                coalesced: true,
                cpu_init: init,
            }),
        ),
        SweepCase::new(
            "gauss-seidel",
            gauss_seidel::build(gauss_seidel::GaussSeidelParams {
                rows: if quick { 512 } else { 1024 },
                pages_per_row: 4,
                warps: if quick { 32 } else { 64 },
                iters: 2,
                compute_per_row: SimDuration::from_micros(2),
                cpu_init: init,
            }),
        ),
        SweepCase::new(
            "graph-bfs",
            graph_bfs::build(graph_bfs::GraphBfsParams {
                vertices: if quick { 4096 } else { 8192 },
                vdata_bytes: 1024,
                ..graph_bfs::GraphBfsParams::default()
            }),
        ),
        SweepCase::new(
            "attention",
            attention::build(attention::AttentionParams {
                kv_rows: if quick { 2048 } else { 8192 },
                batches: if quick { 4 } else { 8 },
                queries_per_batch: if quick { 8 } else { 16 },
                hot_rows: if quick { 128 } else { 256 },
                ..attention::AttentionParams::default()
            }),
        ),
    ]
}

/// Run one grid cell.
fn measure(
    case: &SweepCase,
    prefetch: PrefetchPolicyKind,
    evict: EvictionPolicyKind,
    seed: u64,
) -> PolicyRow {
    let config = experiment_config(case.memory_mb)
        .with_policy(DriverPolicy::default().prefetcher(prefetch).evictor(evict))
        .with_seed(seed);
    let r = UvmSystem::new(config).run(&case.workload);
    PolicyRow {
        workload: case.name.to_string(),
        prefetch: prefetch.name().to_string(),
        evict: evict.name().to_string(),
        kernel_ms: r.kernel_time.as_nanos() as f64 / 1e6,
        batches: r.num_batches,
        pages_migrated: r.records.iter().map(|x| x.pages_migrated).sum(),
        pages_prefetched: r.records.iter().map(|x| x.prefetched_pages).sum(),
        evictions: r.evictions,
    }
}

/// Run the full grid at experiment scale.
pub fn run(seed: u64) -> ExtPolicyResult {
    run_scaled(seed, false)
}

/// Run the grid; `quick` uses the CI-smoke problem sizes.
///
/// Cells fan out across the configured worker pool
/// ([`crate::parallel::configure_jobs`]); every cell owns its seeded
/// simulation, and results come back in submission order, so the rendered
/// table is byte-identical for any `--jobs N`.
pub fn run_scaled(seed: u64, quick: bool) -> ExtPolicyResult {
    let cases = sweep_cases(quick);
    let mut cells: Vec<(usize, PrefetchPolicyKind, EvictionPolicyKind)> = Vec::new();
    for wi in 0..cases.len() {
        for &p in &PrefetchPolicyKind::ALL {
            for &e in &EvictionPolicyKind::ALL {
                cells.push((wi, p, e));
            }
        }
    }
    let rows = parallel::map(cells, |(wi, p, e)| measure(&cases[wi], p, e, seed));
    ExtPolicyResult { rows }
}

impl ExtPolicyResult {
    /// The row for a given (workload, prefetch, evict) combination.
    pub fn cell(&self, workload: &str, prefetch: &str, evict: &str) -> Option<&PolicyRow> {
        self.rows
            .iter()
            .find(|r| r.workload == workload && r.prefetch == prefetch && r.evict == evict)
    }

    /// Paper-style text rendering: the full grid, one row per cell.
    pub fn render(&self) -> String {
        let mut t = uvm_stats::Table::new(vec![
            "Workload",
            "Prefetch",
            "Evict",
            "Kernel (ms)",
            "Batches",
            "Migrated",
            "Prefetched",
            "Evictions",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.workload.clone(),
                r.prefetch.clone(),
                r.evict.clone(),
                format!("{:.2}", r.kernel_ms),
                r.batches.to_string(),
                r.pages_migrated.to_string(),
                r.pages_prefetched.to_string(),
                r.evictions.to_string(),
            ]);
        }
        format!(
            "Extension — policy sweep (prefetch x eviction grid, ~125% oversubscription)\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_covers_every_policy_combination() {
        let r = run_scaled(1, true);
        assert_eq!(
            r.rows.len(),
            4 * PrefetchPolicyKind::ALL.len() * EvictionPolicyKind::ALL.len()
        );
        // Every cell ran a real oversubscribed simulation.
        for row in &r.rows {
            assert!(row.batches > 0, "{row:?}");
            assert!(row.pages_migrated > 0, "{row:?}");
            assert!(row.evictions > 0, "oversubscription must force evictions: {row:?}");
        }
        // The `none` prefetcher never prefetches; the others do somewhere.
        for row in r.rows.iter().filter(|r| r.prefetch == "none") {
            assert_eq!(row.pages_prefetched, 0, "{row:?}");
        }
        for name in ["tree", "stride", "oracle"] {
            let total: u64 = r
                .rows
                .iter()
                .filter(|r| r.prefetch == name)
                .map(|r| r.pages_prefetched)
                .sum();
            assert!(total > 0, "{name} never prefetched a page");
        }
        let rendered = r.render();
        assert!(rendered.contains("vecadd"));
        assert!(rendered.contains("graph-bfs"));
        assert!(rendered.contains("oracle"));
        assert!(rendered.contains("lfu"));
    }

    #[test]
    fn cells_are_deterministic_per_seed() {
        // Grid-level determinism (and jobs-invariance) is covered by the
        // `policy_matrix` integration tests and the CI sweep smoke job;
        // here just pin the per-cell contract on a cheap cell.
        let cases = sweep_cases(true);
        let case = cases.last().expect("sweep has cases");
        let a = measure(case, PrefetchPolicyKind::Oracle, EvictionPolicyKind::Random, 7);
        let b = measure(case, PrefetchPolicyKind::Oracle, EvictionPolicyKind::Random, 7);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = measure(case, PrefetchPolicyKind::Oracle, EvictionPolicyKind::Random, 8);
        assert_ne!(format!("{a:?}"), format!("{c:?}"), "seed must perturb the run");
    }
}
