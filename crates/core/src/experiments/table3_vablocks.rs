//! Table 3 — VABlock source statistics in a batch.
//!
//! The distribution of faults over VABlocks varies enormously by
//! application — Random touches hundreds of blocks with ~1 fault each,
//! Gauss-Seidel a couple of blocks with dozens — and the per-block fault
//! counts have high variance. This is the paper's argument against naive
//! per-VABlock driver parallelization (the workload would be badly
//! imbalanced).

use serde::{Deserialize, Serialize};
use uvm_stats::Summary;

use crate::experiments::suite::{experiment_config, Bench};
use crate::system::UvmSystem;

/// One benchmark's row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Benchmark name.
    pub bench: String,
    /// Mean distinct VABlocks per batch.
    pub vablocks_per_batch: f64,
    /// Mean faults per VABlock (over all per-block counts).
    pub faults_per_vablock: f64,
    /// Standard deviation of per-block fault counts.
    pub std_dev: f64,
    /// Minimum per-block fault count.
    pub min: u32,
    /// Maximum per-block fault count.
    pub max: u32,
}

/// The Table 3 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Result {
    /// One row per benchmark, in paper order.
    pub rows: Vec<Table3Row>,
}

/// Run Table 3 over the benchmark suite.
pub fn run(seed: u64) -> Table3Result {
    // Independent per-benchmark sims: parallel over the suite, paper order.
    let rows = crate::parallel::map(Bench::table_suite().to_vec(), |b| {
            let config = experiment_config(768).with_seed(seed);
            let result = UvmSystem::new(config).run(&b.build());
            let blocks_per_batch: Vec<f64> = result
                .records
                .iter()
                .map(|r| r.num_va_blocks as f64)
                .collect();
            let per_block: Vec<u32> = result
                .records
                .iter()
                .flat_map(|r| r.per_block_faults.iter().copied())
                .collect();
            let s = Summary::of(&per_block.iter().map(|&c| c as f64).collect::<Vec<_>>());
            Table3Row {
                bench: b.name().to_string(),
                vablocks_per_batch: Summary::of(&blocks_per_batch).mean,
                faults_per_vablock: s.mean,
                std_dev: s.std_dev,
                min: per_block.iter().copied().min().unwrap_or(0),
                max: per_block.iter().copied().max().unwrap_or(0),
            }
        });
    Table3Result { rows }
}

impl Table3Result {
    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let mut t = uvm_stats::Table::new(vec![
            "Benchmark",
            "VABlock/Batch",
            "Faults/VABlock",
            "Std. Dev.",
            "Min.",
            "Max.",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.bench.clone(),
                format!("{:.2}", r.vablocks_per_batch),
                format!("{:.2}", r.faults_per_vablock),
                format!("{:.2}", r.std_dev),
                r.min.to_string(),
                r.max.to_string(),
            ]);
        }
        format!("Table 3 — VABlock source statistics in a batch\n{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vablock_distribution_matches_paper_shape() {
        let r = run(1);
        assert_eq!(r.rows.len(), 7);
        let by_name = |n: &str| r.rows.iter().find(|row| row.bench == n).unwrap();
        let random = by_name("Random");
        let gauss = by_name("gauss-seidel");

        // Random: no locality — the most blocks per batch, the fewest
        // faults per block (paper: 233 blocks at 1.04 faults).
        for row in &r.rows {
            if row.bench != "Random" {
                assert!(
                    random.vablocks_per_batch > row.vablocks_per_batch,
                    "Random ({:.1}) should top {} ({:.1})",
                    random.vablocks_per_batch,
                    row.bench,
                    row.vablocks_per_batch
                );
            }
        }
        assert!(
            random.faults_per_vablock < 2.0,
            "Random has ~1 fault per block: {:.2}",
            random.faults_per_vablock
        );
        assert!(random.std_dev < 2.0, "Random is the only low-variance workload");

        // Gauss-Seidel: highest locality — few blocks, many faults each
        // (paper: 2.3 blocks at 22 faults).
        assert!(
            gauss.vablocks_per_batch < random.vablocks_per_batch / 5.0,
            "gauss-seidel concentrates in few blocks: {:.2} vs {:.2}",
            gauss.vablocks_per_batch,
            random.vablocks_per_batch
        );
        assert!(
            gauss.faults_per_vablock > random.faults_per_vablock * 1.8,
            "gauss-seidel packs more faults per block: {:.2} vs {:.2}",
            gauss.faults_per_vablock,
            random.faults_per_vablock
        );

        // Per-block imbalance is real for the apps (the anti-parallelization
        // argument): high max vs min.
        assert!(by_name("sgemm").max > 30);
        assert!(r.rows.iter().all(|row| row.min >= 1));
        assert!(r.render().contains("VABlock/Batch"));
    }
}
