//! Fig. 10 — batch time vs migration size, colored by VABlock count.
//!
//! The driver services each VABlock in a batch independently, so for equal
//! migration sizes, batches touching more VABlocks cost more and vary
//! more. We bucket batches by migrated bytes and compare service times of
//! the high-block-count and low-block-count halves within each bucket.

use serde::{Deserialize, Serialize};

use crate::experiments::suite::{experiment_config, Bench};
use crate::system::UvmSystem;

/// One batch observation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig10Point {
    /// Migrated MiB.
    pub mib: f64,
    /// Service time (ms).
    pub ms: f64,
    /// Distinct VABlocks serviced.
    pub blocks: u64,
}

/// Paired comparison within one size bucket.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BucketComparison {
    /// Bucket's mean migrated MiB.
    pub mib: f64,
    /// Mean ms of the low-block-count half.
    pub low_blocks_ms: f64,
    /// Mean ms of the high-block-count half.
    pub high_blocks_ms: f64,
    /// Points in the bucket.
    pub n: usize,
}

/// The Fig. 10 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Result {
    /// All batch points across benchmarks.
    pub points: Vec<Fig10Point>,
    /// Per-size-bucket comparisons.
    pub buckets: Vec<BucketComparison>,
}

/// Run the VABlock-cost experiment across several benchmarks.
pub fn run(seed: u64) -> Fig10Result {
    // Independent per-benchmark sims, fanned across the worker pool; the
    // concatenation below keeps the serial benchmark order.
    let benches = vec![Bench::Regular, Bench::Random, Bench::Sgemm, Bench::Cufft, Bench::GaussSeidel];
    let per_bench = crate::parallel::map(benches, |b| {
        let config = experiment_config(768).with_seed(seed);
        let result = UvmSystem::new(config).run(&b.build());
        result
            .records
            .iter()
            .map(|r| Fig10Point {
                mib: r.bytes_migrated as f64 / (1024.0 * 1024.0),
                ms: r.service_time().as_nanos() as f64 / 1e6,
                blocks: r.num_va_blocks,
            })
            .collect::<Vec<_>>()
    });
    let points: Vec<Fig10Point> = per_bench.into_iter().flatten().collect();

    // Bucket by migrated size; split each bucket at its median block count.
    let mut buckets = Vec::new();
    let max_mib = points.iter().map(|p| p.mib).fold(0.0f64, f64::max);
    let n_buckets = 8;
    for i in 0..n_buckets {
        let lo = max_mib * i as f64 / n_buckets as f64;
        let hi = max_mib * (i + 1) as f64 / n_buckets as f64;
        let mut in_bucket: Vec<&Fig10Point> =
            points.iter().filter(|p| p.mib >= lo && p.mib < hi).collect();
        if in_bucket.len() < 8 {
            continue;
        }
        in_bucket.sort_by_key(|p| p.blocks);
        let mid = in_bucket.len() / 2;
        let mean_ms = |ps: &[&Fig10Point]| ps.iter().map(|p| p.ms).sum::<f64>() / ps.len() as f64;
        buckets.push(BucketComparison {
            mib: in_bucket.iter().map(|p| p.mib).sum::<f64>() / in_bucket.len() as f64,
            low_blocks_ms: mean_ms(&in_bucket[..mid]),
            high_blocks_ms: mean_ms(&in_bucket[mid..]),
            n: in_bucket.len(),
        });
    }
    Fig10Result { points, buckets }
}

impl Fig10Result {
    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let mut t = uvm_stats::Table::new(vec![
            "Size bucket (MiB)",
            "n",
            "Few-blocks (ms)",
            "Many-blocks (ms)",
        ]);
        for b in &self.buckets {
            t.row(vec![
                format!("{:.2}", b.mib),
                b.n.to_string(),
                format!("{:.3}", b.low_blocks_ms),
                format!("{:.3}", b.high_blocks_ms),
            ]);
        }
        format!(
            "Fig. 10 — batch cost vs migration size by VABlock count ({} batches)\n{}",
            self.points.len(),
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_vablocks_cost_more_at_equal_size() {
        let r = run(1);
        assert!(r.points.len() > 100);
        assert!(!r.buckets.is_empty());
        let higher = r
            .buckets
            .iter()
            .filter(|b| b.high_blocks_ms > b.low_blocks_ms)
            .count();
        assert!(
            higher * 4 >= r.buckets.len() * 3,
            "many-block batches should cost more in most size buckets: {}/{}",
            higher,
            r.buckets.len()
        );
        assert!(r.render().contains("Many-blocks"));
    }
}
