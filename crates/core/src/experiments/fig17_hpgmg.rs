//! Fig. 17 — HPGMG case study (~25 % oversubscription, prefetching on).
//!
//! Beyond the eviction/prefetch interplay shared with Fig. 16, panel (c)
//! exposes the LRU policy: because the driver only observes *migrations*
//! (never GPU-side hits), "least recently used" degenerates to earliest
//! allocated — the first large eviction wave targets the first-allocated
//! blocks (the fine multigrid level), which the V-cycle is about to need
//! again.

use serde::{Deserialize, Serialize};

use crate::experiments::suite::Bench;
use crate::experiments::fig16_gauss_seidel::{run_case_study, CaseStudyResult};

/// The Fig. 17 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig17Result {
    /// The case-study panels.
    pub case: CaseStudyResult,
    /// Block ids of the first eviction wave (first quarter of evictions).
    pub first_wave_blocks: Vec<u64>,
    /// Blocks in first-GPU-touch (= first-migration) order.
    pub first_touch_order: Vec<u64>,
}

/// Run the HPGMG case study at ~25 % oversubscription.
pub fn run(seed: u64) -> Fig17Result {
    let case = run_case_study(Bench::Hpgmg, 125, seed);
    let all_evicted: Vec<u64> = case
        .points
        .iter()
        .flat_map(|p| p.evicted_blocks.iter().copied())
        .collect();
    let first_wave: Vec<u64> =
        all_evicted.iter().take((all_evicted.len() / 4).max(1)).copied().collect();
    // Reconstruct first-touch order from the per-batch served blocks.
    let mut seen = std::collections::HashSet::new();
    let mut first_touch_order = Vec::new();
    for p in &case.points {
        for &b in &p.served_blocks {
            if seen.insert(b) {
                first_touch_order.push(b);
            }
        }
    }
    Fig17Result {
        case,
        first_wave_blocks: first_wave,
        first_touch_order,
    }
}

impl Fig17Result {
    /// Mean rank (in first-touch order) of the first eviction wave,
    /// normalized to [0, 1]: values near 0 mean the earliest-allocated
    /// blocks are evicted first.
    pub fn first_wave_mean_rank(&self) -> f64 {
        if self.first_wave_blocks.is_empty() || self.first_touch_order.is_empty() {
            return 0.0;
        }
        let rank_of = |b: u64| {
            self.first_touch_order.iter().position(|&x| x == b).unwrap_or(0) as f64
                / self.first_touch_order.len() as f64
        };
        self.first_wave_blocks.iter().map(|&b| rank_of(b)).sum::<f64>()
            / self.first_wave_blocks.len() as f64
    }

    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        format!(
            "{}\nfirst eviction wave mean first-touch rank {:.2} (0 = earliest allocated)",
            self.case.render(),
            self.first_wave_mean_rank(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_earliest_allocated_first() {
        let r = run(1);
        assert!(r.case.total_evictions > 0);
        // The first eviction wave targets the earliest-allocated blocks:
        // its mean first-touch rank sits in the early part of the order.
        let rank = r.first_wave_mean_rank();
        assert!(
            rank < 0.5,
            "first eviction wave should target early allocations, mean rank {rank:.2}"
        );
        // Eviction/prefetch interplay holds here too.
        let evicting = r.case.points.iter().filter(|p| p.evictions > 0).count();
        let followed = r.case.evictions_preceding_prefetch(10);
        assert!(followed * 10 >= evicting, "{followed}/{evicting}");
        assert!(r.render().contains("first eviction wave"));
    }
}
