//! Fig. 9 — the batch-size-limit sweep (sgemm).
//!
//! Larger batch limits admit more duplicates per batch but need fewer
//! batches overall, and the per-batch overhead dominates the duplicate
//! cost: performance improves with batch size, with diminishing returns
//! beyond ~1024 (the supply of unique faults per service window runs out
//! long before the 6144 hardware maximum).

use serde::{Deserialize, Serialize};
use uvm_driver::policy::DriverPolicy;

use crate::experiments::suite::{experiment_config, Bench};
use crate::system::UvmSystem;

/// One point of the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Point {
    /// Batch size limit.
    pub batch_limit: usize,
    /// Kernel time (ms).
    pub kernel_ms: f64,
    /// Total batch service time (ms).
    pub batch_ms: f64,
    /// Number of batches.
    pub num_batches: u64,
    /// Mean raw batch size.
    pub mean_batch_size: f64,
    /// Mean *unique* faults per batch.
    pub mean_unique_per_batch: f64,
    /// Duplicate fraction of all fetched faults.
    pub dup_rate: f64,
}

/// The Fig. 9 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Result {
    /// Sweep points in increasing batch-limit order.
    pub points: Vec<Fig9Point>,
}

/// Run the batch-size sweep.
pub fn run(seed: u64) -> Fig9Result {
    run_limits(seed, &[64, 256, 512, 1024, 2048])
}

/// Run the sweep over explicit limits. The per-limit sims are independent
/// (each constructs its own seeded system), so the grid fans out across
/// the configured worker pool; points stay in `limits` order.
pub fn run_limits(seed: u64, limits: &[usize]) -> Fig9Result {
    let points = crate::parallel::map(limits.to_vec(), |limit| {
            let config = experiment_config(768)
                .with_policy(DriverPolicy::default().batch_limit(limit))
                .with_seed(seed);
            let result = UvmSystem::new(config).run(&Bench::Sgemm.build());
            let raw: u64 = result.records.iter().map(|r| r.raw_faults).sum();
            let unique: u64 = result.records.iter().map(|r| r.unique_pages).sum();
            Fig9Point {
                batch_limit: limit,
                kernel_ms: result.kernel_time.as_nanos() as f64 / 1e6,
                batch_ms: result.total_batch_time.as_nanos() as f64 / 1e6,
                num_batches: result.num_batches,
                mean_batch_size: result.mean_batch_size(),
                mean_unique_per_batch: unique as f64 / result.num_batches.max(1) as f64,
                dup_rate: 1.0 - unique as f64 / raw.max(1) as f64,
            }
        });
    Fig9Result { points }
}

impl Fig9Result {
    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let mut t = uvm_stats::Table::new(vec![
            "Batch limit",
            "Kernel (ms)",
            "Batches",
            "Mean size",
            "Mean unique",
            "Dup rate",
        ]);
        for p in &self.points {
            t.row(vec![
                p.batch_limit.to_string(),
                format!("{:.2}", p.kernel_ms),
                p.num_batches.to_string(),
                format!("{:.1}", p.mean_batch_size),
                format!("{:.1}", p.mean_unique_per_batch),
                format!("{:.1}%", p.dup_rate * 100.0),
            ]);
        }
        format!("Fig. 9 — batch-size-limit sweep (sgemm)\n{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_batches_win_with_diminishing_returns() {
        let r = run(1);
        let by_limit = |l: usize| r.points.iter().find(|p| p.batch_limit == l).unwrap();
        let b64 = by_limit(64);
        let b256 = by_limit(256);
        let b1024 = by_limit(1024);
        let b2048 = by_limit(2048);

        // Strong correlation between batch size and performance.
        assert!(
            b256.kernel_ms < b64.kernel_ms,
            "256 ({:.2}ms) beats 64 ({:.2}ms)",
            b256.kernel_ms,
            b64.kernel_ms
        );
        assert!(
            b1024.kernel_ms < b256.kernel_ms * 1.02,
            "1024 at least matches 256"
        );
        // Diminishing returns past 1024.
        let delta = (b2048.kernel_ms - b1024.kernel_ms).abs() / b1024.kernel_ms;
        assert!(delta < 0.12, "1024 -> 2048 changes little, got {:.1}%", delta * 100.0);
        // Fewer batches with larger limits.
        assert!(b2048.num_batches < b64.num_batches);
        // Larger batches carry more duplicates.
        assert!(b2048.dup_rate >= b64.dup_rate * 0.8);
        assert!(r.render().contains("Dup rate"));
    }
}
