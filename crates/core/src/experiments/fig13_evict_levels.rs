//! Fig. 13 — stream under oversubscription: eviction cost "levels".
//!
//! Batches with the *same* eviction count split into distinct cost levels.
//! The mechanism: a VABlock's first migration pays the CPU
//! `unmap_mapping_range()` cost, but an evicted block is *not* re-mapped
//! on the CPU — so when it is paged back in later (stream iterates the
//! triad), the unmap cost vanishes, creating a lower level whose
//! unmapping-range time is near zero.

use serde::{Deserialize, Serialize};
use uvm_workloads::cpu_init::CpuInitPolicy;
use uvm_workloads::stream::{self, StreamParams};

use crate::experiments::suite::experiment_config;
use crate::system::UvmSystem;

/// One evicting-batch observation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig13Point {
    /// Evictions in this batch.
    pub evictions: u64,
    /// Service time (ms).
    pub ms: f64,
    /// Time spent in `unmap_mapping_range` (ms).
    pub unmap_ms: f64,
}

/// The Fig. 13 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig13Result {
    /// Evicting batches only.
    pub points: Vec<Fig13Point>,
    /// Of those, batches paying the CPU-unmap cost (the upper level).
    pub with_unmap: usize,
    /// Batches with near-zero unmap cost (the lower level — re-migrations
    /// of previously evicted blocks).
    pub without_unmap: usize,
    /// Mean ms of the upper level.
    pub mean_ms_with_unmap: f64,
    /// Mean ms of the lower level.
    pub mean_ms_without_unmap: f64,
}

/// Run the iterated stream triad oversubscribed.
pub fn run(seed: u64) -> Fig13Result {
    // More warps than the GPU's occupancy (5120 resident): the grid drains
    // in waves, so new VABlocks are first-touched *throughout* the run —
    // first-touch unmap and eviction coincide, as they do at the paper's
    // GB scale. Two iterations re-touch evicted blocks. Memory at ~80% of
    // the footprint.
    let workload = stream::build(StreamParams {
        warps: 7680,
        pages_per_warp: 1,
        iters: 2,
        warps_per_page: 1,
        cpu_init: Some(CpuInitPolicy::SingleThread),
    });
    let mem_mb = workload.footprint_bytes() * 4 / 5 / (1024 * 1024);
    let config = experiment_config(mem_mb).with_seed(seed);
    let result = UvmSystem::new(config).run(&workload);

    let points: Vec<Fig13Point> = result
        .records
        .iter()
        .filter(|r| r.evictions > 0)
        .map(|r| Fig13Point {
            evictions: r.evictions,
            ms: r.service_time().as_nanos() as f64 / 1e6,
            unmap_ms: r.t_unmap.as_nanos() as f64 / 1e6,
        })
        .collect();
    let (upper, lower): (Vec<&Fig13Point>, Vec<&Fig13Point>) =
        points.iter().partition(|p| p.unmap_ms > 0.01);
    let mean = |ps: &[&Fig13Point]| {
        if ps.is_empty() { 0.0 } else { ps.iter().map(|p| p.ms).sum::<f64>() / ps.len() as f64 }
    };
    Fig13Result {
        with_unmap: upper.len(),
        without_unmap: lower.len(),
        mean_ms_with_unmap: mean(&upper),
        mean_ms_without_unmap: mean(&lower),
        points,
    }
}

impl Fig13Result {
    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        format!(
            "Fig. 13 — stream oversubscription cost levels\n\
             evicting batches            {}\n\
             upper level (pays unmap)    {} batches, mean {:.3} ms\n\
             lower level (no unmap)      {} batches, mean {:.3} ms",
            self.points.len(),
            self.with_unmap,
            self.mean_ms_with_unmap,
            self.without_unmap,
            self.mean_ms_without_unmap,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_batches_form_two_cost_levels() {
        let r = run(1);
        assert!(!r.points.is_empty(), "oversubscribed stream must evict");
        assert!(r.with_unmap > 0, "first-touch migrations pay unmap");
        assert!(
            r.without_unmap > 0,
            "re-migrations of evicted blocks skip unmap (the lower level)"
        );
        assert!(
            r.mean_ms_with_unmap > r.mean_ms_without_unmap,
            "upper {:.3}ms must exceed lower {:.3}ms",
            r.mean_ms_with_unmap,
            r.mean_ms_without_unmap
        );
        assert!(r.render().contains("lower level"));
    }
}
