//! Fig. 1 — access latency: abstracted unified memory vs explicit direct
//! management.
//!
//! The paper's opening figure shows that transparently managed (UVM)
//! accesses cost one or more orders of magnitude more than explicit
//! `cudaMemcpy`-style management. We run each benchmark twice: once under
//! the full fault-driven UVM pipeline and once under the
//! explicit-management baseline (bulk copy up front, fault-free kernel),
//! and report the per-access latency ratio.

use serde::{Deserialize, Serialize};

use crate::experiments::suite::{experiment_config, Bench};
use crate::system::UvmSystem;

/// One benchmark's latency comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyRow {
    /// Benchmark name.
    pub bench: String,
    /// Total page accesses issued by the kernel.
    pub accesses: u64,
    /// UVM end-to-end time (ns): faulting kernel.
    pub uvm_total_ns: u64,
    /// Explicit-management end-to-end time (ns): bulk copy + fault-free
    /// kernel.
    pub explicit_total_ns: u64,
    /// Mean ns per access under UVM.
    pub uvm_ns_per_access: f64,
    /// Mean ns per access under explicit management.
    pub explicit_ns_per_access: f64,
    /// Latency inflation factor (UVM / explicit).
    pub ratio: f64,
}

/// The Fig. 1 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Result {
    /// One row per benchmark.
    pub rows: Vec<LatencyRow>,
}

/// Run the Fig. 1 comparison.
pub fn run(seed: u64) -> Fig1Result {
    let benches = [Bench::Stream, Bench::Sgemm, Bench::Cufft];
    let rows = benches
        .iter()
        .map(|&b| {
            let workload = b.build();
            let accesses = workload.total_accesses() as u64;
            let config = experiment_config(768).with_seed(seed);
            let uvm = UvmSystem::new(config.clone()).run(&workload);
            let explicit = UvmSystem::new(config).run_explicit(&workload);
            let uvm_total_ns = uvm.kernel_time.as_nanos();
            let explicit_total_ns =
                (explicit.kernel_time + explicit.upfront_copy_time).as_nanos();
            LatencyRow {
                bench: b.name().to_string(),
                accesses,
                uvm_total_ns,
                explicit_total_ns,
                uvm_ns_per_access: uvm_total_ns as f64 / accesses as f64,
                explicit_ns_per_access: explicit_total_ns as f64 / accesses as f64,
                ratio: uvm_total_ns as f64 / explicit_total_ns as f64,
            }
        })
        .collect();
    Fig1Result { rows }
}

impl Fig1Result {
    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let mut t = uvm_stats::Table::new(vec![
            "Benchmark",
            "Accesses",
            "UVM ns/acc",
            "Explicit ns/acc",
            "Ratio",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.bench.clone(),
                r.accesses.to_string(),
                format!("{:.1}", r.uvm_ns_per_access),
                format!("{:.1}", r.explicit_ns_per_access),
                format!("{:.1}x", r.ratio),
            ]);
        }
        format!("Fig. 1 — UVM vs explicit-management access latency\n{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvm_latency_is_an_order_of_magnitude_higher() {
        let result = run(1);
        assert_eq!(result.rows.len(), 3);
        for row in &result.rows {
            assert!(
                row.ratio >= 5.0,
                "{}: UVM should be >=5x slower, got {:.1}x",
                row.bench,
                row.ratio
            );
            assert!(row.uvm_total_ns > 0 && row.explicit_total_ns > 0);
        }
        // At least one benchmark shows a full order of magnitude.
        assert!(result.rows.iter().any(|r| r.ratio >= 10.0));
        let text = result.render();
        assert!(text.contains("stream") && text.contains("Ratio"));
    }
}
