//! System configuration.

use serde::{Deserialize, Serialize};
use uvm_driver::policy::DriverPolicy;
use uvm_gpu::spec::GpuSpec;
use uvm_hostos::numa::NumaTopology;
use uvm_sim::cost::CostModel;
use uvm_sim::inject::FaultPlan;

/// Full configuration of one simulated system run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// GPU hardware parameters.
    pub gpu: GpuSpec,
    /// Driver policy.
    pub policy: DriverPolicy,
    /// Cost-model calibration.
    pub cost: CostModel,
    /// Host NUMA topology (None = uniform memory). When set, fault-path
    /// unmap work against remote-node mapper state is inflated by the
    /// node distance.
    pub numa: Option<NumaTopology>,
    /// The CPU core hosting the UVM worker thread.
    pub worker_core: u32,
    /// Seed for all stochastic elements.
    pub seed: u64,
    /// Deterministic fault-injection plan (disabled by default). When any
    /// point is enabled, the system wires seeded injectors into the fault
    /// buffer, the DMA space, the host page tables, and the driver.
    pub fault_plan: FaultPlan,
}

impl SystemConfig {
    /// The paper's testbed: Titan V, stock driver policy, calibrated costs.
    pub fn titan_v() -> Self {
        SystemConfig {
            gpu: GpuSpec::titan_v(),
            policy: DriverPolicy::default(),
            cost: CostModel::titan_v(),
            numa: Some(NumaTopology::epyc_7551p()),
            worker_core: 0,
            seed: 0x5C21,
            fault_plan: FaultPlan::none(),
        }
    }

    /// A reduced GPU (8 SMs, `memory_bytes` of device memory) with the same
    /// per-μTLB and batching constraints — for tests and examples that need
    /// to run in milliseconds.
    pub fn test_small(memory_bytes: u64) -> Self {
        SystemConfig {
            gpu: GpuSpec::small(memory_bytes),
            policy: DriverPolicy::default(),
            cost: CostModel::titan_v(),
            numa: None,
            worker_core: 0,
            seed: 0x5C21,
            fault_plan: FaultPlan::none(),
        }
    }

    /// Builder-style policy override.
    pub fn with_policy(mut self, policy: DriverPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style fault-injection plan override.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Device memory capacity in VABlocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.gpu.memory_va_blocks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        let t = SystemConfig::titan_v();
        assert_eq!(t.gpu.num_sms, 80);
        assert_eq!(t.capacity_blocks(), 6144);
        let s = SystemConfig::test_small(64 * 1024 * 1024);
        assert_eq!(s.capacity_blocks(), 32);
        assert_eq!(s.policy.batch_limit, 256);
    }

    #[test]
    fn builders() {
        let c = SystemConfig::test_small(1 << 22)
            .with_policy(DriverPolicy::with_prefetch())
            .with_seed(7)
            .with_fault_plan(FaultPlan::uniform(0.1));
        assert!(c.policy.prefetch_enabled);
        assert_eq!(c.seed, 7);
        assert!(c.fault_plan.is_enabled());
    }

    #[test]
    fn fault_plan_defaults_to_disabled_and_round_trips() {
        let c = SystemConfig::titan_v();
        assert!(!c.fault_plan.is_enabled());
        let c = c.with_fault_plan(FaultPlan::uniform(0.05));
        let json = serde_json::to_string(&c).unwrap();
        let back: SystemConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn config_round_trips_serde() {
        let c = SystemConfig::titan_v();
        let json = serde_json::to_string(&c).unwrap();
        let back: SystemConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
