#![warn(missing_docs)]

//! # uvm-core — the full-system simulator and experiment harness
//!
//! This crate is the public façade of the workspace: it wires the
//! `uvm-gpu` device model, the `uvm-driver` fault-servicing state machine,
//! and the `uvm-hostos` substrate into a deterministic discrete-event
//! simulation, and implements one experiment driver per table and figure of
//! Allen & Ge, *"In-Depth Analyses of Unified Virtual Memory System for GPU
//! Accelerated Computing"* (SC '21).
//!
//! ## Quickstart
//!
//! ```
//! use uvm_core::{SystemConfig, UvmSystem};
//! use uvm_workloads::vecadd::{self, VecAddParams};
//!
//! // The paper's Listing 1 microbenchmark on a small simulated GPU.
//! let config = SystemConfig::test_small(64 * 1024 * 1024);
//! let workload = vecadd::build(VecAddParams::default());
//! let result = UvmSystem::new(config).run(&workload);
//!
//! // Fig. 3: the first batch holds exactly 56 faults (the μTLB limit).
//! assert_eq!(result.records[0].raw_faults, 56);
//! assert!(result.kernel_time.as_nanos() > 0);
//! ```
//!
//! ## Layout
//!
//! * [`config`] — [`SystemConfig`]: GPU spec + driver policy + cost model +
//!   seed. Presets for the paper's Titan V testbed and for fast tests.
//! * [`system`] — [`UvmSystem`]: the event loop (warp steps, fault
//!   arrivals, driver wakes, batch completions, replays) and [`RunResult`].
//! * [`experiments`] — one module per paper table/figure (plus extension
//!   experiments for `cudaMemAdvise`/prefetch hints and thrashing
//!   mitigation); each returns a serializable result struct with a
//!   `render()` text report.
//! * [`report`] — CSV export and terminal summaries of batch records.
//! * [`snapshot`] — [`snapshot::SystemSnapshot`]: versioned whole-system
//!   checkpoints with per-subsystem integrity digests.
//! * [`parallel`] — deterministic scoped worker pool fanning independent
//!   runs across `--jobs N` threads with submission-order results.
//! * [`runctl`] — process-global `--checkpoint-every` / `--resume` policy
//!   consulted transparently by every run.
//! * [`divergence`] — lockstep execution of two instances, reporting the
//!   first batch and subsystem whose state digests disagree.

pub mod chaos;
pub mod config;
pub mod divergence;
pub mod experiments;
pub mod parallel;
pub mod report;
pub mod runctl;
pub mod snapshot;
pub mod system;

pub use chaos::{ChaosReport, ReproFile, Scenario};
pub use config::SystemConfig;
pub use snapshot::SystemSnapshot;
pub use system::{Progress, RunHints, RunInProgress, RunResult, UvmSystem};

// Re-export the component crates so downstream users need only uvm-core.
pub use uvm_driver as driver;
pub use uvm_gpu as gpu;
pub use uvm_hostos as hostos;
pub use uvm_sim as sim;
pub use uvm_stats as stats;
pub use uvm_trace as trace;
pub use uvm_workloads as workloads;
