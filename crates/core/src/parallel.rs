//! Deterministic scoped worker pool for independent simulation runs.
//!
//! The experiment sweep is embarrassingly parallel: every figure/table run
//! (and every cell of an intra-experiment parameter grid, e.g. Fig. 9's
//! batch-size limits or Table 4's app × config matrix) constructs its own
//! [`crate::UvmSystem`] from its own seed and shares no mutable state with
//! its siblings. [`map`] fans such runs out across `--jobs N` OS threads
//! while keeping every observable artifact — stdout, golden files, trace
//! exports — **byte-identical** to the serial run:
//!
//! * each item keeps its own seeded RNG streams (seeds are data, not
//!   ambient state), so a run computes the same result on any thread;
//! * results are written into a slot indexed by *submission order* and the
//!   caller receives them in that order, so completion-order
//!   nondeterminism never leaks out;
//! * rendering/printing stays with the caller, after the join.
//!
//! Work that touches process-global state falls back to inline execution:
//! when tracing is enabled (the global tracer is installed once per
//! process), when the pool is already inside a worker (no nested fan-out),
//! or when `--jobs 1`/checkpointing is configured.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide worker budget, set once at startup from `--jobs N`.
/// Defaults to 1 (serial) so library users opt in explicitly.
static JOBS: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    /// Set inside pool workers so nested [`map`] calls run inline instead
    /// of spawning a thread explosion (an experiment parallelised at the
    /// grid level may itself be an item of the experiment-level fan-out).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Set the worker budget for subsequent [`map`] calls. Values are clamped
/// to at least 1.
pub fn configure_jobs(n: usize) {
    JOBS.store(n.max(1), Ordering::SeqCst);
}

/// The configured worker budget.
pub fn jobs() -> usize {
    JOBS.load(Ordering::SeqCst)
}

/// Number of workers a [`map`] over `len` items would actually use.
///
/// Returns 1 (inline execution) when the budget is 1, when called from
/// inside a pool worker, or when the process-global tracer is installed —
/// trace event order must match the serial run exactly.
pub fn effective_jobs(len: usize) -> usize {
    let budget = jobs().min(len.max(1));
    if budget <= 1 || IN_WORKER.with(Cell::get) || uvm_trace::enabled() {
        1
    } else {
        budget
    }
}

/// Apply `f` to every item, fanning out across the configured worker
/// budget, and return the results **in submission order**.
///
/// Items are claimed via an atomic cursor (so an expensive item does not
/// stall the queue behind it) and each result lands in the slot of its
/// submitting index; observable order is therefore independent of thread
/// scheduling. With an effective budget of 1 this degenerates to a plain
/// serial loop with zero threading overhead.
///
/// A panic inside `f` propagates to the caller once all workers have
/// stopped, same as a serial loop.
pub fn map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if effective_jobs(n) <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = effective_jobs(n);

    // Slot-per-item storage: workers take items and deposit results by
    // index. The mutexes are uncontended (each slot is touched by exactly
    // one worker) — they exist only to satisfy `Sync`.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                IN_WORKER.with(|w| w.set(true));
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i]
                        .lock()
                        .expect("worker pool slot poisoned")
                        .take()
                        .expect("work item claimed twice");
                    let out = f(item);
                    *results[i].lock().expect("worker pool result slot poisoned") = Some(out);
                }
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("worker pool result slot poisoned")
                .expect("worker pool lost a result")
        })
        .collect()
}

/// [`map`] over an index range: `map_indexed(n, f)` is `map((0..n), f)`
/// without materialising the indices.
pub fn map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    map((0..n).collect(), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that mutate the process-global budget.
    static GUARD: Mutex<()> = Mutex::new(());

    fn with_jobs<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let prev = jobs();
        configure_jobs(n);
        let r = f();
        configure_jobs(prev);
        r
    }

    #[test]
    fn serial_and_parallel_agree_in_order() {
        let serial = with_jobs(1, || map((0..64).collect(), |i: i32| i * i));
        let par = with_jobs(4, || map((0..64).collect(), |i: i32| i * i));
        assert_eq!(serial, par);
        assert_eq!(par[10], 100);
    }

    #[test]
    fn order_is_submission_not_completion() {
        // Make early items slow: a completion-ordered pool would return
        // them last.
        let out = with_jobs(4, || {
            map((0..16).collect::<Vec<u64>>(), |i| {
                if i < 4 {
                    std::thread::sleep(std::time::Duration::from_millis(20 - 4 * i));
                }
                i
            })
        });
        assert_eq!(out, (0..16).collect::<Vec<u64>>());
    }

    #[test]
    fn nested_map_runs_inline() {
        let out = with_jobs(4, || {
            map((0..4).collect::<Vec<usize>>(), |i| {
                // Inside a worker the nested call must not spawn.
                assert_eq!(effective_jobs(8), 1);
                map((0..3).collect::<Vec<usize>>(), move |j| i * 10 + j)
            })
        });
        assert_eq!(out[2], vec![20, 21, 22]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = with_jobs(4, || map(Vec::<i32>::new(), |x| x));
        assert!(out.is_empty());
    }

    #[test]
    fn map_indexed_counts() {
        let out = with_jobs(3, || map_indexed(5, |i| i * 2));
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
    }
}
