//! The full-system discrete-event simulation.
//!
//! [`UvmSystem::run`] executes one workload to completion, reproducing the
//! paper's end-to-end fault lifecycle:
//!
//! 1. warps issue accesses; misses deposit faults at their μTLB (bounded by
//!    the 56-entry outstanding limit);
//! 2. the GMMU arbitrates deposits round-robin into the fault buffer;
//! 3. the first arrival raises an interrupt that wakes the driver worker
//!    (interrupt + wake latency);
//! 4. the worker fetches up to `batch_limit` arrived faults and services
//!    the batch ([`uvm_driver::UvmDriver::service_batch`]);
//! 5. on completion it **flushes** the buffer (dropping everything that
//!    arrived during servicing) and issues a **replay**, which clears μTLB
//!    state and wakes all stalled warps; unserviced accesses re-fault;
//! 6. the worker sleeps until the next interrupt.
//!
//! The loop is fully deterministic: same config + workload → identical
//! batch logs, timings, and fault streams.
//!
//! ## Incremental execution and checkpoints
//!
//! The loop is exposed incrementally as well: [`UvmSystem::start`] yields a
//! [`RunInProgress`] whose [`RunInProgress::advance_batch`] runs the event
//! loop up to the next serviced batch. Between batches the *entire* mutable
//! state of the simulation — GPU, driver, host OS, event queue, RNG
//! streams, injectors — can be captured as a versioned
//! [`SystemSnapshot`] and later restored
//! into a new `RunInProgress` that continues bit-identically.
//! [`UvmSystem::try_run_with_hints`] and friends are thin drivers over this
//! interface, so batch-mode and checkpointed executions traverse exactly
//! the same code path.

use serde::{Deserialize, Serialize, Value};
use uvm_driver::advise::MemAdvise;
use uvm_driver::batch::{BatchRecord, FaultMeta};
use uvm_driver::service::{ServiceScratch, UvmDriver};
use uvm_gpu::device::{Gpu, StepOutcome};
use uvm_gpu::fault::FaultRecord;
use uvm_hostos::host::HostMemory;
use uvm_sim::error::UvmError;
use uvm_sim::event::EventQueue;
use uvm_sim::inject::{InjectionPoint, Injector};
use uvm_sim::mem::Allocation;
use uvm_sim::snapshot::digest_value;
use uvm_sim::time::{SimDuration, SimTime};
use uvm_workloads::workload::Workload;

use crate::config::SystemConfig;
use crate::runctl;
use crate::snapshot::{SubsystemDigests, SystemSnapshot, SNAPSHOT_VERSION};

/// Safety valve: a run that schedules more events than this is considered
/// hung (it would correspond to billions of simulated faults).
const MAX_EVENTS: u64 = 200_000_000;

/// Outcome of one full-system run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Time from launch until the last warp finished (the paper's "Kernel"
    /// time).
    pub kernel_time: SimDuration,
    /// Sum of all batch service times (the paper's "Batch" time).
    pub total_batch_time: SimDuration,
    /// Number of serviced batches.
    pub num_batches: u64,
    /// Per-batch instrumentation records.
    pub records: Vec<BatchRecord>,
    /// Per-fault metadata (non-empty when `policy.log_fault_metadata`).
    pub fault_log: Vec<FaultMeta>,
    /// Fault replays issued.
    pub replays: u64,
    /// Faults dropped by pre-replay flushes.
    pub flush_drops: u64,
    /// Faults dropped by hardware buffer overflow.
    pub overflow_drops: u64,
    /// Total faults that reached the fault buffer.
    pub total_faults_inserted: u64,
    /// VABlock evictions performed.
    pub evictions: u64,
    /// `unmap_mapping_range` invocations.
    pub unmap_calls: u64,
    /// Upfront bulk-copy time (zero for UVM runs; set by
    /// [`UvmSystem::run_explicit`], the explicit-management baseline).
    pub upfront_copy_time: SimDuration,
    /// `(launch, completion)` span of each sequential kernel in the
    /// workload (one entry unless the workload declares kernel
    /// boundaries).
    pub kernel_spans: Vec<(SimTime, SimTime)>,
}

impl RunResult {
    /// Mean raw batch size.
    pub fn mean_batch_size(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.records.iter().map(|r| r.raw_faults).sum::<u64>() as f64
                / self.records.len() as f64
        }
    }

    /// Total bytes migrated host→device.
    pub fn total_bytes_migrated(&self) -> u64 {
        self.records.iter().map(|r| r.bytes_migrated).sum()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Event {
    /// Advance a warp.
    WarpStep(u32),
    /// The driver worker checks the fault buffer.
    DriverCheck,
    /// The in-flight batch finished servicing.
    BatchDone,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Worker {
    /// Asleep; will be woken by a fault arrival interrupt.
    Idle,
    /// A `DriverCheck` is scheduled for this instant. A new interrupt may
    /// supersede it with an earlier check; the later event is then stale
    /// and ignored when it fires.
    CheckScheduled(SimTime),
    /// Servicing a batch (`BatchDone` scheduled).
    Busy,
}

/// Memory-usage hints applied before a run: `cudaMemAdvise` per
/// allocation and explicit `cudaMemPrefetchAsync` calls executed before
/// the first kernel launch.
#[derive(Debug, Clone, Default)]
pub struct RunHints {
    /// Usage hints, applied to every VABlock of each allocation.
    pub advise: Vec<(Allocation, MemAdvise)>,
    /// Allocations to bulk-prefetch to the device before launch.
    pub prefetch: Vec<Allocation>,
}

/// The assembled system: GPU + driver + host OS + event queue.
#[derive(Debug)]
pub struct UvmSystem {
    config: SystemConfig,
    gpu: Gpu,
    driver: UvmDriver,
    host: HostMemory,
}

/// What one [`RunInProgress::advance_batch`] step accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Progress {
    /// A fault batch was serviced; the value is the total number of
    /// batches serviced so far (i.e. the just-finished batch is number
    /// `n`, 1-based).
    Batch(u64),
    /// All kernels completed; call [`RunInProgress::into_result`].
    Finished,
}

/// Serialized run-loop state: everything [`RunInProgress`] holds beyond the
/// three subsystem models. Captured into the `run` tree of a
/// [`SystemSnapshot`].
#[derive(Debug, Serialize, Deserialize)]
struct RunState {
    /// Virtual clock of the event queue (time of the last popped event).
    now: SimTime,
    /// The queue's monotone scheduling counter (FIFO tie-break state).
    seq: u64,
    /// Pending events with their original sequence numbers.
    entries: Vec<(SimTime, u64, Event)>,
    worker: Worker,
    kernel_spans: Vec<(SimTime, SimTime)>,
    events: u64,
    kernel_cursor: usize,
    current_kernel_start: Option<SimTime>,
    t0: SimTime,
}

/// A mid-flight system run: the event loop hoisted into a value, advanced
/// one serviced batch at a time.
///
/// Obtained from [`UvmSystem::start`] (a fresh run) or
/// [`RunInProgress::restore`] (continuing a checkpoint). The workload is
/// *not* owned — callers pass the same `&Workload` to every method, and a
/// restore validates the workload digest so state from one workload can
/// never silently continue under another.
#[derive(Debug)]
pub struct RunInProgress {
    system: UvmSystem,
    queue: EventQueue<Event>,
    worker: Worker,
    kernel_spans: Vec<(SimTime, SimTime)>,
    events: u64,
    /// Index of the next kernel (in `workload.kernels()` order) to launch.
    kernel_cursor: usize,
    /// Launch time of the kernel currently in flight, if any.
    current_kernel_start: Option<SimTime>,
    /// Earliest launch time for the first kernel (end of upfront
    /// prefetches).
    t0: SimTime,
    /// Reused batch-formation buffer (not run state; never snapshotted).
    batch_buf: Vec<FaultRecord>,
    /// Reused per-batch servicing working memory (likewise pure scratch).
    scratch: ServiceScratch,
}

impl UvmSystem {
    /// Assemble a system from a configuration. When the config carries an
    /// enabled fault plan, seeded injectors are wired into the subsystems
    /// that own each injection point; a disabled plan wires nothing and
    /// adds no cost or RNG draws.
    pub fn new(config: SystemConfig) -> Self {
        let mut gpu = Gpu::new_seeded(config.gpu.clone(), config.cost.clone(), config.seed);
        let mut driver = UvmDriver::new(
            config.policy.clone(),
            config.cost.clone(),
            config.capacity_blocks(),
            config.seed,
        );
        let mut host = match &config.numa {
            Some(topo) => HostMemory::with_numa(topo.clone(), config.worker_core),
            None => HostMemory::new(),
        };
        if config.fault_plan.is_enabled() {
            let mut inj = Injector::new(&config.fault_plan, config.seed);
            gpu.fault_buffer
                .set_injector(inj.take(InjectionPoint::FaultBufferOverflow));
            host.set_injector(inj.take(InjectionPoint::HostPopulateFailure));
            driver.set_injectors(&mut inj);
        }
        UvmSystem {
            config,
            gpu,
            driver,
            host,
        }
    }

    /// Run `workload` to completion and return the instrumentation.
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds its event budget (a hung workload —
    /// always a bug, never an expected outcome), or if the servicing
    /// pipeline fails unrecoverably (only possible with fault injection
    /// enabled — use [`Self::try_run`] to handle that as a value).
    pub fn run(self, workload: &Workload) -> RunResult {
        self.run_with_hints(workload, &RunHints::default())
    }

    /// Like [`Self::run`], but an unrecoverable pipeline failure returns
    /// the typed [`UvmError`] instead of panicking.
    pub fn try_run(self, workload: &Workload) -> Result<RunResult, UvmError> {
        self.try_run_with_hints(workload, &RunHints::default())
    }

    /// Run `workload` after applying memory-usage hints: `cudaMemAdvise`
    /// settings and explicit upfront `cudaMemPrefetchAsync` migrations
    /// (whose driver operations appear in the records flagged
    /// `driver_prefetch_op`, and whose time delays the first kernel
    /// launch, as a synchronized prefetch would).
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::run`].
    pub fn run_with_hints(self, workload: &Workload, hints: &RunHints) -> RunResult {
        self.try_run_with_hints(workload, hints)
            .unwrap_or_else(|e| panic!("UVM servicing pipeline failed unrecoverably: {e}"))
    }

    /// Like [`Self::run_with_hints`], but an unrecoverable pipeline
    /// failure returns the typed [`UvmError`] instead of panicking.
    ///
    /// This is the path every full run takes, and it consults the
    /// process-global [`runctl`] checkpoint policy: when auto-checkpointing
    /// is configured the run's state is written out every N batches, and
    /// when a matching resume snapshot is pending the run restores from it
    /// instead of starting fresh — producing output byte-identical to the
    /// uninterrupted run.
    pub fn try_run_with_hints(
        self,
        workload: &Workload,
        hints: &RunHints,
    ) -> Result<RunResult, UvmError> {
        let config_digest = digest_value(&self.config.to_value());
        let workload_digest = digest_value(&workload.to_value());
        let mut session = runctl::begin_run(workload_digest, config_digest);
        let mut run = match session.take_resume() {
            Some(snap) => RunInProgress::restore(&snap, workload)?,
            None => self.start(workload, hints)?,
        };
        loop {
            match run.advance_batch(workload)? {
                Progress::Finished => break,
                Progress::Batch(n) => {
                    if session.should_checkpoint(n) {
                        session.write_checkpoint(&run.snapshot(workload, session.run_key()));
                    }
                }
            }
        }
        session.finish();
        Ok(run.into_result(workload))
    }

    /// Begin an incremental run: apply allocations, CPU initialization,
    /// hints and upfront prefetches, launch the first kernel, and return
    /// the paused event loop. Drive it with
    /// [`RunInProgress::advance_batch`].
    pub fn start(
        mut self,
        workload: &Workload,
        hints: &RunHints,
    ) -> Result<RunInProgress, UvmError> {
        // Separates batch-id spaces when one trace covers several runs
        // (batch sequence numbers restart per driver instance).
        uvm_trace::emit_instant(0, || uvm_trace::TraceEvent::RunBegin {
            workload: workload.name.clone(),
        });

        // Register managed allocations, then replay CPU-side
        // initialization (first-touch mapping + host-data tracking).
        for alloc in &workload.allocations {
            self.driver.managed_alloc(*alloc);
        }
        for t in &workload.cpu_init {
            self.driver.cpu_touch(&mut self.host, t.page, t.core, t.write);
        }
        for (alloc, advise) in &hints.advise {
            self.driver.set_advise(alloc, *advise);
        }

        // The oracle prefetcher needs the workload's future access list:
        // per VABlock, every page any program will touch. Built only when
        // the oracle is configured (other policies never consult it), and
        // installed before the first batch so snapshots carry it.
        if self.driver.policy().prefetch_policy == uvm_driver::PrefetchPolicyKind::Oracle {
            let mut future: std::collections::BTreeMap<_, uvm_driver::PageBitmap> =
                std::collections::BTreeMap::new();
            for page in workload.programs.iter().flat_map(|p| p.touched_pages()) {
                future.entry(page.va_block()).or_default().set(page.index_in_block());
            }
            self.driver.set_future_accesses(future);
        }

        // Explicit prefetches run (synchronously) before the first launch.
        let mut t0 = SimTime::ZERO;
        for alloc in &hints.prefetch {
            t0 = self.driver.prefetch_async(alloc, &mut self.gpu, &mut self.host, t0)?;
        }

        let mut run = RunInProgress {
            system: self,
            queue: EventQueue::with_capacity(workload.num_warps() * 2),
            worker: Worker::Idle,
            kernel_spans: Vec::new(),
            events: 0,
            kernel_cursor: 0,
            current_kernel_start: None,
            t0,
            batch_buf: Vec::new(),
            scratch: ServiceScratch::default(),
        };
        run.launch_next_kernel(workload);
        Ok(run)
    }

    /// The explicit-management baseline (Fig. 1's comparison point): the
    /// programmer `cudaMemcpy`s every array to the device up front and the
    /// kernel runs fault-free. Kernel start is offset by the bulk-copy
    /// time; no faults, batches, or migrations occur.
    ///
    /// # Panics
    ///
    /// Panics if the workload does not fit in device memory (explicit
    /// management cannot oversubscribe).
    pub fn run_explicit(mut self, workload: &Workload) -> RunResult {
        assert!(
            workload.footprint_bytes() <= self.config.gpu.memory_bytes,
            "explicit management cannot oversubscribe device memory"
        );
        let copy_time = self.config.cost.h2d_time(workload.footprint_bytes());
        for alloc in &workload.allocations {
            self.gpu.map_pages((0..alloc.num_pages()).map(|i| alloc.page(i)));
        }

        let mut queue: EventQueue<Event> = EventQueue::with_capacity(workload.num_warps() * 2);
        let start = SimTime::ZERO + copy_time;
        for wid in self.gpu.launch(workload.programs.clone()) {
            queue.schedule(start, Event::WarpStep(wid));
        }
        while let Some((now, event)) = queue.pop() {
            match event {
                Event::WarpStep(wid) => match self.gpu.step_warp(wid, now) {
                    StepOutcome::Continue { at } => queue.schedule(at, Event::WarpStep(wid)),
                    StepOutcome::Blocked => unreachable!("no faults under explicit management"),
                    StepOutcome::Finished { at, activated } => {
                        if let Some(next) = activated {
                            queue.schedule(at, Event::WarpStep(next));
                        }
                    }
                },
                _ => unreachable!("no driver events under explicit management"),
            }
        }
        assert!(self.gpu.all_done());
        RunResult {
            workload: workload.name.clone(),
            kernel_time: self.gpu.kernel_end - start,
            total_batch_time: SimDuration::ZERO,
            num_batches: 0,
            records: Vec::new(),
            fault_log: Vec::new(),
            replays: 0,
            flush_drops: 0,
            overflow_drops: 0,
            total_faults_inserted: 0,
            evictions: 0,
            unmap_calls: 0,
            upfront_copy_time: copy_time,
            kernel_spans: vec![(start, self.gpu.kernel_end)],
        }
    }

    /// If the worker is asleep and faults are pending (deposited at the
    /// GMMU or already buffered), schedule its wake at the interrupt-path
    /// latency. Pending GMMU faults are *not* drained here: draining
    /// happens at fetch time so that μTLB queues that filled concurrently
    /// interleave round-robin, as the hardware write-port arbitration
    /// does.
    fn drain_and_wake(
        &mut self,
        queue: &mut EventQueue<Event>,
        worker: &mut Worker,
        now: SimTime,
    ) {
        if *worker == Worker::Busy {
            return;
        }
        let pending = self
            .gpu
            .gmmu
            .earliest_request()
            .map(|t| t + self.config.cost.fault_insert_latency);
        let buffered = self.gpu.fault_buffer.earliest_arrival();
        let earliest = match (pending, buffered) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        if let Some(arrival) = earliest {
            let wake = arrival.max(now)
                + self.config.cost.interrupt_latency
                + self.config.cost.worker_wake_latency;
            // A new interrupt supersedes a later-scheduled check (the
            // hardware re-interrupts; the worker must not sleep through a
            // fresh fault because an old spurious one scheduled a far
            // wake). The superseded event becomes stale and is ignored.
            match *worker {
                Worker::Idle => {
                    *worker = Worker::CheckScheduled(wake);
                    queue.schedule(wake, Event::DriverCheck);
                }
                Worker::CheckScheduled(t) if wake < t => {
                    *worker = Worker::CheckScheduled(wake);
                    queue.schedule(wake, Event::DriverCheck);
                }
                _ => {}
            }
        }
    }
}

impl RunInProgress {
    /// Launch the next sequential kernel, if any. Kernels launch
    /// sequentially: each waits for the previous one to complete and for
    /// the driver to go idle (the implicit stream synchronization between
    /// dependent launches).
    fn launch_next_kernel(&mut self, workload: &Workload) -> bool {
        let kernels = workload.kernels();
        if self.kernel_cursor >= kernels.len() {
            return false;
        }
        let range = kernels[self.kernel_cursor].clone();
        self.kernel_cursor += 1;
        let ordinal = (self.kernel_cursor - 1) as u64;
        let start = self.queue.now().max(self.t0);
        uvm_trace::emit_instant(start.0, || uvm_trace::TraceEvent::KernelLaunch {
            kernel: ordinal,
        });
        for wid in self.system.gpu.launch(workload.programs[range].to_vec()) {
            self.queue.schedule(start, Event::WarpStep(wid));
        }
        self.current_kernel_start = Some(start);
        true
    }

    /// Process events until the next fault batch has been serviced (its
    /// `BatchDone` is then pending in the queue) or the run finishes.
    /// `Err` aborts the run with the servicing pipeline's unrecoverable
    /// failure.
    pub fn advance_batch(&mut self, workload: &Workload) -> Result<Progress, UvmError> {
        loop {
            while let Some((now, event)) = self.queue.pop() {
                self.events += 1;
                assert!(
                    self.events <= MAX_EVENTS,
                    "simulation exceeded {MAX_EVENTS} events ({} warps done of {}, {} batches)",
                    self.system.gpu.warps_done(),
                    self.system.gpu.num_warps(),
                    self.system.driver.num_batches()
                );
                match event {
                    Event::WarpStep(wid) => {
                        match self.system.gpu.step_warp(wid, now) {
                            StepOutcome::Continue { at } => {
                                self.queue.schedule(at, Event::WarpStep(wid))
                            }
                            StepOutcome::Blocked => {}
                            StepOutcome::Finished { at, activated } => {
                                if let Some(next) = activated {
                                    self.queue.schedule(at, Event::WarpStep(next));
                                }
                            }
                        }
                        self.system.drain_and_wake(&mut self.queue, &mut self.worker, now);
                    }
                    Event::DriverCheck => {
                        // Ignore stale checks superseded by an earlier wake
                        // or overtaken by a batch already in service.
                        if self.worker != Worker::CheckScheduled(now) {
                            continue;
                        }
                        self.worker = Worker::Idle;
                        self.system.gpu.drain_faults();
                        // The driver's read loop races with fault insertion:
                        // it keeps reading "until the batch size limit is
                        // reached or no faults remain in the buffer"
                        // (Sec. 2.2), and reading itself takes time during
                        // which more faults arrive. Model it as an iterative
                        // fetch whose deadline advances by the per-fault
                        // fetch cost.
                        let limit = self.system.config.policy.batch_limit;
                        let batch = &mut self.batch_buf;
                        batch.clear();
                        let mut deadline = now;
                        loop {
                            let got = self.system.gpu.fault_buffer.fetch_into(
                                limit - batch.len(),
                                deadline,
                                batch,
                            );
                            if got == 0 {
                                break;
                            }
                            deadline += self.system.config.cost.fetch_per_fault * got as u64;
                            if batch.len() >= limit {
                                break;
                            }
                        }
                        if batch.is_empty() {
                            // Entries exist but have not arrived yet:
                            // re-check at the earliest arrival.
                            if let Some(arr) = self.system.gpu.fault_buffer.earliest_arrival() {
                                let at = arr.max(now);
                                self.worker = Worker::CheckScheduled(at);
                                self.queue.schedule(at, Event::DriverCheck);
                            } else if self.system.gpu.blocked_warps() > 0
                                && self.system.gpu.gmmu.earliest_request().is_none()
                            {
                                // Every fault behind this interrupt was
                                // dropped by an injected overflow storm and
                                // nothing else is in flight. Real hardware
                                // can only drop when the buffer is *full*,
                                // so the stock driver always has a batch to
                                // service and its end-of-batch replay wakes
                                // the dropped accesses; here that batch
                                // never forms, and without intervention the
                                // blocked warps would never wake. Issue the
                                // overflow-recovery replay directly: the
                                // dropped accesses re-fault, exactly as they
                                // do after drops during a serviced batch.
                                let replay_done =
                                    now + self.system.config.cost.replay_latency;
                                for (wid, wake) in self.system.gpu.replay(replay_done) {
                                    self.queue.schedule(wake, Event::WarpStep(wid));
                                }
                            }
                        } else {
                            let rec = self.system.driver.service_batch_with(
                                &self.batch_buf,
                                &mut self.system.gpu,
                                &mut self.system.host,
                                now,
                                &mut self.scratch,
                            )?;
                            let end = rec.end;
                            self.worker = Worker::Busy;
                            self.queue.schedule(end, Event::BatchDone);
                            // Pause between batches: this is the checkpoint
                            // boundary. All in-flight work is represented in
                            // the queue (the pending BatchDone) and the
                            // subsystem states, so a snapshot taken here
                            // captures a resumable instant.
                            return Ok(Progress::Batch(self.system.driver.num_batches()));
                        }
                    }
                    Event::BatchDone => {
                        debug_assert_eq!(self.worker, Worker::Busy);
                        self.worker = Worker::Idle;
                        // Flush the buffer (and in-flight GMMU entries),
                        // then replay: stalled warps wake once the replay
                        // reaches the GPU. (Flushing is the stock policy;
                        // the ablation keeps stale entries, which later
                        // batches then fetch.)
                        if self.system.config.policy.flush_on_replay {
                            let dropped = self.system.gpu.flush();
                            uvm_trace::emit_instant(now.0, || {
                                uvm_trace::TraceEvent::BufferFlush { dropped }
                            });
                        }
                        let replay_done = now + self.system.config.cost.replay_latency;
                        for (wid, wake) in self.system.gpu.replay(replay_done) {
                            self.queue.schedule(wake, Event::WarpStep(wid));
                        }
                    }
                }
            }
            // Queue drained: the in-flight kernel (if any) completed.
            if let Some(start) = self.current_kernel_start.take() {
                self.kernel_spans.push((start, self.system.gpu.kernel_end));
                let ordinal = (self.kernel_spans.len() - 1) as u64;
                uvm_trace::emit_instant(self.system.gpu.kernel_end.0, || {
                    uvm_trace::TraceEvent::KernelComplete { kernel: ordinal }
                });
            }
            if !self.launch_next_kernel(workload) {
                return Ok(Progress::Finished);
            }
        }
    }

    /// Number of batches serviced so far.
    pub fn batches(&self) -> u64 {
        self.system.driver.num_batches()
    }

    /// Read access to the driver mid-run (residency conservation checks in
    /// the invariant test layer).
    pub fn driver(&self) -> &UvmDriver {
        &self.system.driver
    }

    /// Read access to the GPU model mid-run (chaos-harness audits).
    pub fn gpu(&self) -> &Gpu {
        &self.system.gpu
    }

    /// Read access to the host-memory model mid-run (chaos-harness audits).
    pub fn host(&self) -> &HostMemory {
        &self.system.host
    }

    /// Finish the run: consume the paused loop and produce the
    /// [`RunResult`]. Call only after [`Self::advance_batch`] returned
    /// [`Progress::Finished`].
    ///
    /// # Panics
    ///
    /// Panics if warps are still unfinished (the run was not driven to
    /// completion).
    pub fn into_result(mut self, workload: &Workload) -> RunResult {
        assert!(
            self.system.gpu.all_done(),
            "event queue drained with {} of {} warps unfinished",
            self.system.gpu.num_warps() - self.system.gpu.warps_done(),
            self.system.gpu.num_warps()
        );
        RunResult {
            workload: workload.name.clone(),
            kernel_time: self.system.gpu.kernel_end - SimTime::ZERO,
            total_batch_time: self.system.driver.total_batch_time(),
            num_batches: self.system.driver.num_batches(),
            replays: self.system.gpu.replays,
            flush_drops: self.system.gpu.fault_buffer.flush_drops()
                + self.system.gpu.gmmu.flush_discards(),
            overflow_drops: self.system.gpu.fault_buffer.overflow_drops(),
            total_faults_inserted: self.system.gpu.fault_buffer.total_inserted(),
            evictions: self.system.driver.memory().evictions(),
            unmap_calls: self.system.host.unmap_calls(),
            records: std::mem::take(&mut self.system.driver.records),
            fault_log: std::mem::take(&mut self.system.driver.fault_log),
            upfront_copy_time: SimDuration::ZERO,
            kernel_spans: self.kernel_spans,
        }
    }

    /// Serialize the run-loop state (queue, worker, kernel progress).
    fn run_state_value(&self) -> Value {
        RunState {
            now: self.queue.now(),
            seq: self.queue.seq(),
            entries: self.queue.snapshot_entries(),
            worker: self.worker,
            kernel_spans: self.kernel_spans.clone(),
            events: self.events,
            kernel_cursor: self.kernel_cursor,
            current_kernel_start: self.current_kernel_start,
            t0: self.t0,
        }
        .to_value()
    }

    /// FNV-1a digests of the four serialized state trees. Two runs whose
    /// digests agree after every batch are in bit-identical states; the
    /// first disagreeing digest names the subsystem that diverged.
    pub fn subsystem_digests(&self) -> SubsystemDigests {
        SubsystemDigests {
            gpu: digest_value(&self.system.gpu.to_value()),
            driver: digest_value(&self.system.driver.to_value()),
            host: digest_value(&self.system.host.to_value()),
            run: digest_value(&self.run_state_value()),
        }
    }

    /// Capture the complete system state as a versioned checkpoint.
    /// `run_key` identifies this run within its harness process (see
    /// [`crate::snapshot::run_key`]); pass 0 for standalone snapshots.
    pub fn snapshot(&self, workload: &Workload, run_key: u64) -> SystemSnapshot {
        let gpu = self.system.gpu.to_value();
        let driver = self.system.driver.to_value();
        let host = self.system.host.to_value();
        let run = self.run_state_value();
        let digests = SubsystemDigests {
            gpu: digest_value(&gpu),
            driver: digest_value(&driver),
            host: digest_value(&host),
            run: digest_value(&run),
        };
        SystemSnapshot {
            version: SNAPSHOT_VERSION,
            run_key,
            batches: self.batches(),
            workload_name: workload.name.clone(),
            workload_digest: digest_value(&workload.to_value()),
            config: self.system.config.to_value(),
            gpu,
            driver,
            host,
            run,
            digests,
            // Ring-tracer state rides along (outside the digests) so a
            // resumed run continues tracing without duplicating or
            // dropping events; Null when tracing is off.
            trace: uvm_trace::snapshot_state()
                .map(|s| s.to_value())
                .unwrap_or(Value::Null),
        }
    }

    /// Rebuild a paused run from a checkpoint. Validates the format
    /// version, the stored per-subsystem digests (integrity), and that
    /// `workload` is byte-identical to the one the checkpoint was taken
    /// against; the restored run then continues exactly where the
    /// snapshotted one stopped, producing bit-identical results.
    pub fn restore(snap: &SystemSnapshot, workload: &Workload) -> Result<Self, UvmError> {
        if snap.version != SNAPSHOT_VERSION {
            return Err(UvmError::SnapshotInvalid {
                detail: format!(
                    "format version {} (this build reads version {})",
                    snap.version, SNAPSHOT_VERSION
                ),
            });
        }
        snap.verify_integrity()?;
        let workload_digest = digest_value(&workload.to_value());
        if workload_digest != snap.workload_digest {
            return Err(UvmError::SnapshotInvalid {
                detail: format!(
                    "checkpoint was taken against workload `{}` (digest {:#018x}), \
                     got digest {:#018x}",
                    snap.workload_name, snap.workload_digest, workload_digest
                ),
            });
        }
        let invalid = |what: &str, e: serde::DeError| UvmError::SnapshotInvalid {
            detail: format!("malformed {what} state: {e}"),
        };
        let config =
            SystemConfig::from_value(&snap.config).map_err(|e| invalid("config", e))?;
        let gpu = Gpu::from_value(&snap.gpu).map_err(|e| invalid("gpu", e))?;
        let driver = UvmDriver::from_value(&snap.driver).map_err(|e| invalid("driver", e))?;
        let host = HostMemory::from_value(&snap.host).map_err(|e| invalid("host", e))?;
        let run = RunState::from_value(&snap.run).map_err(|e| invalid("run", e))?;
        // Reinstate tracer state captured with the checkpoint. Restoring a
        // traced checkpoint with tracing disabled simply drops the buffered
        // events (the simulation itself is unaffected either way).
        let trace_state = Option::<uvm_trace::TraceState>::from_value(&snap.trace)
            .map_err(|e| invalid("trace", e))?;
        if let Some(state) = trace_state {
            uvm_trace::restore_state(state);
        }
        Ok(RunInProgress {
            system: UvmSystem {
                config,
                gpu,
                driver,
                host,
            },
            queue: EventQueue::restore(run.now, run.seq, run.entries),
            worker: run.worker,
            kernel_spans: run.kernel_spans,
            events: run.events,
            kernel_cursor: run.kernel_cursor,
            current_kernel_start: run.current_kernel_start,
            t0: run.t0,
            batch_buf: Vec::new(),
            scratch: ServiceScratch::default(),
        })
    }

    /// Divergence-demo hook: burn one draw from the driver's jitter RNG,
    /// modelling a bug that consumes randomness on one side of a lockstep
    /// pair. See [`uvm_driver::service::UvmDriver::perturb_rng`].
    pub fn perturb_driver_rng(&mut self) {
        self.system.driver.perturb_rng();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvm_driver::policy::DriverPolicy;
    use uvm_workloads::cpu_init::CpuInitPolicy;
    use uvm_workloads::stream::{self, StreamParams};
    use uvm_workloads::vecadd::{self, VecAddParams};

    const MB: u64 = 1024 * 1024;

    #[test]
    fn vecadd_reproduces_fig3_batching() {
        let config = SystemConfig::test_small(64 * MB);
        let result = UvmSystem::new(config).run(&vecadd::build(VecAddParams::default()));
        // Fig. 3: first batch is the 56-fault μTLB fill (all A reads, most
        // B reads); the second is the remaining 8 B reads.
        assert_eq!(result.records[0].raw_faults, 56);
        assert_eq!(result.records[0].write_faults, 0);
        assert_eq!(result.records[1].raw_faults, 8);
        // Writes appear only from the third batch on.
        assert!(result.records[2].write_faults > 0);
        // 288 distinct pages must all migrate eventually.
        let migrated: u64 = result.records.iter().map(|r| r.pages_migrated).sum();
        assert_eq!(migrated, 288);
        assert!(result.num_batches >= 5);
        assert_eq!(result.overflow_drops, 0);
    }

    #[test]
    fn run_is_deterministic() {
        let w = stream::build(StreamParams {
            warps: 16,
            pages_per_warp: 8,
            iters: 1,
            warps_per_page: 1,
            cpu_init: Some(CpuInitPolicy::SingleThread),
        });
        let r1 = UvmSystem::new(SystemConfig::test_small(64 * MB)).run(&w);
        let r2 = UvmSystem::new(SystemConfig::test_small(64 * MB)).run(&w);
        assert_eq!(r1.kernel_time, r2.kernel_time);
        assert_eq!(r1.num_batches, r2.num_batches);
        let t1: Vec<_> = r1.records.iter().map(|r| (r.start, r.raw_faults)).collect();
        let t2: Vec<_> = r2.records.iter().map(|r| (r.start, r.raw_faults)).collect();
        assert_eq!(t1, t2);
    }

    #[test]
    fn different_seed_changes_timings_not_faults() {
        let w = stream::build(StreamParams {
            warps: 16,
            pages_per_warp: 8,
            iters: 1,
            warps_per_page: 1,
            cpu_init: None,
        });
        let r1 = UvmSystem::new(SystemConfig::test_small(64 * MB).with_seed(1)).run(&w);
        let r2 = UvmSystem::new(SystemConfig::test_small(64 * MB).with_seed(2)).run(&w);
        let migrated1: u64 = r1.records.iter().map(|r| r.pages_migrated).sum();
        let migrated2: u64 = r2.records.iter().map(|r| r.pages_migrated).sum();
        assert_eq!(migrated1, migrated2, "page coverage is seed-independent");
        assert_ne!(
            r1.kernel_time, r2.kernel_time,
            "service jitter differs across seeds"
        );
    }

    #[test]
    fn stream_covers_all_pages_and_finishes() {
        let w = stream::build(StreamParams {
            warps: 32,
            pages_per_warp: 16,
            iters: 1,
            warps_per_page: 1,
            cpu_init: Some(CpuInitPolicy::SingleThread),
        });
        let total_pages = w.footprint_pages();
        let result = UvmSystem::new(SystemConfig::test_small(64 * MB)).run(&w);
        let migrated: u64 = result.records.iter().map(|r| r.pages_migrated).sum();
        assert_eq!(migrated, total_pages, "every page of a/b/c migrates exactly once");
        assert!(result.kernel_time > SimDuration::ZERO);
        assert!(result.total_batch_time > SimDuration::ZERO);
        assert!(
            result.total_batch_time < result.kernel_time,
            "batch time is a subset of kernel time"
        );
        // a and b had CPU data (transferred); c was populate-only.
        assert_eq!(result.total_bytes_migrated(), 2 * total_pages / 3 * 4096);
    }

    #[test]
    fn oversubscription_triggers_evictions() {
        // 16 MiB GPU (8 blocks) and a ~24 MiB workload.
        let w = stream::build(StreamParams {
            warps: 32,
            pages_per_warp: 64,
            iters: 1,
            warps_per_page: 1,
            cpu_init: Some(CpuInitPolicy::SingleThread),
        });
        assert!(w.footprint_bytes() > 16 * MB);
        let result = UvmSystem::new(SystemConfig::test_small(16 * MB)).run(&w);
        assert!(result.evictions > 0, "oversubscribed run must evict");
        assert!(result.records.iter().any(|r| r.evictions > 0));
    }

    #[test]
    fn prefetch_reduces_batches() {
        let mk = || {
            stream::build(StreamParams {
                warps: 32,
                pages_per_warp: 32,
                iters: 1,
                warps_per_page: 1,
                cpu_init: Some(CpuInitPolicy::SingleThread),
            })
        };
        let base = UvmSystem::new(SystemConfig::test_small(256 * MB)).run(&mk());
        let pf = UvmSystem::new(
            SystemConfig::test_small(256 * MB).with_policy(DriverPolicy::with_prefetch()),
        )
        .run(&mk());
        assert!(
            pf.num_batches * 2 < base.num_batches,
            "prefetch should cut batches sharply: {} vs {}",
            pf.num_batches,
            base.num_batches
        );
        assert!(pf.kernel_time < base.kernel_time, "prefetch speeds up the kernel");
        assert!(pf.records.iter().map(|r| r.prefetched_pages).sum::<u64>() > 0);
    }

    #[test]
    fn flush_drops_occur_with_concurrent_warps() {
        // With a batch limit well below the per-cycle fault supply, each
        // fetch leaves arrivals in the buffer, and the pre-replay flush
        // must drop them (paper Sec. 4.2) — the dropped non-duplicates
        // re-fault and still complete.
        let w = stream::build(StreamParams {
            warps: 512,
            pages_per_warp: 4,
            iters: 1,
            warps_per_page: 1,
            cpu_init: None,
        });
        let config = SystemConfig::test_small(64 * MB)
            .with_policy(DriverPolicy::default().batch_limit(64));
        let result = UvmSystem::new(config).run(&w);
        assert!(result.flush_drops > 0, "expected flush-dropped faults");
        // Dropped non-duplicates re-fault and still get serviced.
        let migrated: u64 = result.records.iter().map(|r| r.pages_migrated).sum();
        assert_eq!(migrated, w.footprint_pages());
    }

    #[test]
    fn sequential_kernels_synchronize_and_reuse_residency() {
        // Kernel 1 streams a+b -> c; kernel 2 re-reads c (warm) and writes d.
        let mut b = uvm_workloads::workload::Workload::builder("pipeline");
        let a = b.alloc(32 * 4096);
        let c = b.alloc(32 * 4096);
        let d = b.alloc(32 * 4096);
        for w in 0..4u64 {
            let mut p = uvm_gpu::isa::WarpProgram::new();
            for i in 0..8u64 {
                p.push(uvm_gpu::isa::Instr::load1(a.page(w * 8 + i)));
                p.push(uvm_gpu::isa::Instr::store1(c.page(w * 8 + i)));
            }
            b.warp(p);
        }
        b.end_kernel();
        for w in 0..4u64 {
            let mut p = uvm_gpu::isa::WarpProgram::new();
            for i in 0..8u64 {
                p.push(uvm_gpu::isa::Instr::load1(c.page(w * 8 + i)));
                p.push(uvm_gpu::isa::Instr::store1(d.page(w * 8 + i)));
            }
            b.warp(p);
        }
        let w = b.build();
        let result = UvmSystem::new(SystemConfig::test_small(64 * MB)).run(&w);

        assert_eq!(result.kernel_spans.len(), 2);
        let (s1, e1) = result.kernel_spans[0];
        let (s2, e2) = result.kernel_spans[1];
        assert!(s2 >= e1, "kernel 2 launches only after kernel 1 completes");
        assert!(e2 >= e1);
        assert_eq!(s1, uvm_sim::time::SimTime::ZERO);
        // Kernel 2 re-reads c without faulting: total migrations = a+c+d.
        let migrated: u64 = result.records.iter().map(|r| r.pages_migrated).sum();
        assert_eq!(migrated, 3 * 32);
        // No fault for c pages in kernel-2 batches (those after e1).
        let k2_migrations: u64 = result
            .records
            .iter()
            .filter(|r| r.start >= e1)
            .map(|r| r.pages_migrated)
            .sum();
        assert_eq!(k2_migrations, 32, "kernel 2 migrates only d");
    }

    #[test]
    fn numa_topology_inflates_cross_node_unmap() {
        use uvm_hostos::numa::NumaTopology;
        // Same striped-init workload; worker on core 0. Remote-node
        // mappers make the NUMA host's unmap strictly costlier.
        let mk = || {
            stream::build(StreamParams {
                warps: 32,
                pages_per_warp: 16,
                iters: 1,
                warps_per_page: 1,
                cpu_init: Some(CpuInitPolicy::Striped { threads: 32 }),
            })
        };
        let unmap_of = |numa: Option<NumaTopology>| {
            let mut config = SystemConfig::test_small(64 * MB);
            config.numa = numa;
            let r = UvmSystem::new(config).run(&mk());
            r.records.iter().map(|b| b.t_unmap.as_nanos()).sum::<u64>()
        };
        let uniform = unmap_of(None);
        let numa = unmap_of(Some(NumaTopology::epyc_7551p()));
        assert!(
            numa > uniform,
            "cross-node mappers inflate unmap: {numa} <= {uniform}"
        );
        assert!((numa as f64) < uniform as f64 * 2.0, "bounded by the distance matrix");
    }

    #[test]
    fn injected_run_recovers_and_is_seed_deterministic() -> Result<(), UvmError> {
        use uvm_sim::inject::FaultPlan;
        let mk_w = || {
            stream::build(StreamParams {
                warps: 32,
                pages_per_warp: 16,
                iters: 1,
                warps_per_page: 1,
                cpu_init: Some(CpuInitPolicy::SingleThread),
            })
        };
        let mk_c = || {
            SystemConfig::test_small(64 * MB)
                .with_policy(DriverPolicy::default().audited(true))
                .with_fault_plan(FaultPlan::uniform(0.05))
        };
        let r1 = UvmSystem::new(mk_c()).try_run(&mk_w())?;
        let r2 = UvmSystem::new(mk_c()).try_run(&mk_w())?;
        let injected: u64 = r1.records.iter().map(|r| r.injected_faults).sum();
        let retries: u64 = r1.records.iter().map(|r| r.retries).sum();
        assert!(injected > 0, "a 5% rate must fire across a whole run");
        assert!(retries > 0, "transient failures must be retried");
        // Every page still ends up served (migrated or remote) despite
        // injection: the run completed, so all warps finished.
        assert_eq!(
            serde_json::to_string(&r1.records).expect("records serialize"),
            serde_json::to_string(&r2.records).expect("records serialize"),
            "same seed + same plan = byte-identical record streams"
        );
        Ok(())
    }

    #[test]
    fn disabled_plan_matches_baseline_run_exactly() {
        use uvm_sim::inject::FaultPlan;
        let mk_w = || {
            stream::build(StreamParams {
                warps: 16,
                pages_per_warp: 8,
                iters: 1,
                warps_per_page: 1,
                cpu_init: Some(CpuInitPolicy::SingleThread),
            })
        };
        let base = UvmSystem::new(SystemConfig::test_small(64 * MB)).run(&mk_w());
        let off = UvmSystem::new(
            SystemConfig::test_small(64 * MB).with_fault_plan(FaultPlan::none()),
        )
        .run(&mk_w());
        assert_eq!(base.kernel_time, off.kernel_time);
        assert_eq!(
            serde_json::to_string(&base.records).expect("records serialize"),
            serde_json::to_string(&off.records).expect("records serialize"),
            "a disabled plan must not perturb the baseline"
        );
    }

    #[test]
    fn audited_baseline_run_passes_all_invariants() {
        // The auditor runs after every batch and any violation would turn
        // into an Err; a clean baseline run proves the pipeline keeps the
        // four state holders consistent.
        let w = stream::build(StreamParams {
            warps: 32,
            pages_per_warp: 64,
            iters: 1,
            warps_per_page: 1,
            cpu_init: Some(CpuInitPolicy::SingleThread),
        });
        // Oversubscribed so evictions are exercised too.
        let config = SystemConfig::test_small(16 * MB)
            .with_policy(DriverPolicy::default().audited(true));
        let r = UvmSystem::new(config).try_run(&w).expect("audited run stays consistent");
        assert!(r.evictions > 0);
    }

    #[test]
    fn fault_metadata_collected_when_requested() {
        let config = SystemConfig::test_small(64 * MB)
            .with_policy(DriverPolicy::default().log_faults(true));
        let result = UvmSystem::new(config).run(&vecadd::build(VecAddParams::default()));
        assert!(!result.fault_log.is_empty());
        assert_eq!(
            result.fault_log.len() as u64,
            result.records.iter().map(|r| r.raw_faults).sum::<u64>()
        );
        // Arrival timestamps are monotone within a batch (Fig. 4).
        for pair in result.fault_log.windows(2) {
            if pair[0].batch_seq == pair[1].batch_seq {
                assert!(pair[0].arrival <= pair[1].arrival);
            }
        }
    }

    // ---- checkpoint / restore ----

    fn ckpt_workload() -> Workload {
        stream::build(StreamParams {
            warps: 32,
            pages_per_warp: 16,
            iters: 1,
            warps_per_page: 1,
            cpu_init: Some(CpuInitPolicy::Striped { threads: 8 }),
        })
    }

    fn result_json(r: &RunResult) -> String {
        serde_json::to_string(r).expect("run result serializes")
    }

    #[test]
    fn incremental_run_matches_monolithic_run() -> Result<(), UvmError> {
        let w = ckpt_workload();
        let straight = UvmSystem::new(SystemConfig::test_small(16 * MB)).run(&w);
        let mut run =
            UvmSystem::new(SystemConfig::test_small(16 * MB)).start(&w, &RunHints::default())?;
        while run.advance_batch(&w)? != Progress::Finished {}
        let stepped = run.into_result(&w);
        assert_eq!(result_json(&straight), result_json(&stepped));
        Ok(())
    }

    #[test]
    fn snapshot_restore_continues_bit_identically() -> Result<(), UvmError> {
        let w = ckpt_workload();
        let straight = UvmSystem::new(SystemConfig::test_small(16 * MB)).run(&w);

        let mut run =
            UvmSystem::new(SystemConfig::test_small(16 * MB)).start(&w, &RunHints::default())?;
        // Advance past a few batches, snapshot, and throw the original away.
        for _ in 0..5 {
            assert!(matches!(run.advance_batch(&w)?, Progress::Batch(_)));
        }
        let snap = run.snapshot(&w, 0);
        assert_eq!(snap.batches, 5);
        drop(run);

        let mut resumed = RunInProgress::restore(&snap, &w)?;
        while resumed.advance_batch(&w)? != Progress::Finished {}
        let result = resumed.into_result(&w);
        assert_eq!(
            result_json(&straight),
            result_json(&result),
            "restored run must be byte-identical to the uninterrupted run"
        );
        Ok(())
    }

    #[test]
    fn snapshot_round_trips_through_json() -> Result<(), UvmError> {
        let w = ckpt_workload();
        let mut run =
            UvmSystem::new(SystemConfig::test_small(16 * MB)).start(&w, &RunHints::default())?;
        for _ in 0..3 {
            run.advance_batch(&w)?;
        }
        let snap = run.snapshot(&w, 42);
        let json = serde_json::to_string(&snap).expect("snapshot serializes");
        let back: SystemSnapshot = serde_json::from_str(&json).expect("snapshot deserializes");
        assert_eq!(back.run_key, 42);
        assert_eq!(back.digests, snap.digests);
        back.verify_integrity()?;
        // The restored instance digests identically to the live one.
        let restored = RunInProgress::restore(&back, &w)?;
        assert_eq!(restored.subsystem_digests(), run.subsystem_digests());
        Ok(())
    }

    #[test]
    fn restore_rejects_wrong_workload_and_version() -> Result<(), UvmError> {
        let w = ckpt_workload();
        let mut run =
            UvmSystem::new(SystemConfig::test_small(16 * MB)).start(&w, &RunHints::default())?;
        run.advance_batch(&w)?;
        let snap = run.snapshot(&w, 0);

        // A different workload must be rejected by digest.
        let other = vecadd::build(VecAddParams::default());
        let err =
            RunInProgress::restore(&snap, &other).expect_err("wrong workload must be rejected");
        assert!(matches!(err, UvmError::SnapshotInvalid { .. }));

        // A future format version must be rejected.
        let mut wrong = snap.clone();
        wrong.version += 1;
        let err =
            RunInProgress::restore(&wrong, &w).expect_err("future version must be rejected");
        assert!(matches!(err, UvmError::SnapshotInvalid { .. }));

        // A tampered state tree must fail the integrity check.
        let mut tampered = snap.clone();
        tampered.gpu = Value::Null;
        let err =
            RunInProgress::restore(&tampered, &w).expect_err("tampered tree must be rejected");
        assert!(matches!(err, UvmError::SnapshotInvalid { .. }));
        Ok(())
    }

    #[test]
    fn snapshot_restore_preserves_injected_run() -> Result<(), UvmError> {
        use uvm_sim::inject::FaultPlan;
        // Injection exercises every serialized RNG stream and injector:
        // a restored run must replay the identical failure schedule.
        let w = ckpt_workload();
        let mk_c = || {
            SystemConfig::test_small(16 * MB).with_fault_plan(FaultPlan::uniform(0.05))
        };
        let straight = UvmSystem::new(mk_c()).try_run(&w)?;

        let mut run = UvmSystem::new(mk_c()).start(&w, &RunHints::default())?;
        for _ in 0..7 {
            assert!(matches!(run.advance_batch(&w)?, Progress::Batch(_)));
        }
        let snap = run.snapshot(&w, 0);
        let mut resumed = RunInProgress::restore(&snap, &w)?;
        while resumed.advance_batch(&w)? != Progress::Finished {}
        let result = resumed.into_result(&w);
        assert_eq!(result_json(&straight), result_json(&result));
        Ok(())
    }
}
