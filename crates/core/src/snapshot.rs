//! Versioned whole-system checkpoints.
//!
//! A [`SystemSnapshot`] is the serialized form of a paused
//! [`RunInProgress`](crate::system::RunInProgress): one [`Value`] tree per
//! subsystem (GPU, driver, host OS) plus the run-loop state (event queue,
//! virtual clock, worker state, kernel progress), a format version, the
//! digest of the workload it was taken against, and FNV-1a digests of each
//! state tree.
//!
//! ## Format and versioning
//!
//! The on-disk encoding is JSON (via the vendored `serde_json` shim). The
//! shape of the tree is defined entirely by the `Serialize` derives of the
//! subsystem types; [`SNAPSHOT_VERSION`] must be bumped whenever any of
//! those shapes change, and
//! [`RunInProgress::restore`](crate::system::RunInProgress::restore)
//! rejects a version mismatch outright — replaying a snapshot through
//! changed code would not crash, it would *silently diverge*, which is
//! worse.
//!
//! The stored [`SubsystemDigests`] serve two purposes: restore recomputes
//! them over the embedded trees as an integrity check (a truncated or
//! hand-edited file fails closed), and the divergence detector
//! ([`crate::divergence`]) compares them per batch across two runs.

use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize, Value};
use uvm_sim::error::UvmError;
use uvm_sim::snapshot::digest_value;
pub use uvm_sim::snapshot::SNAPSHOT_VERSION;

/// FNV-1a digests of the four serialized state trees of a run. Two runs in
/// bit-identical states have equal digests in every field; the first field
/// that disagrees names the subsystem that diverged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubsystemDigests {
    /// GPU state: μTLBs, GMMU, fault buffer, warp scoreboards, page map.
    pub gpu: u64,
    /// Driver state: VA space, eviction LRU, DMA space, RNG, injectors,
    /// batch log.
    pub driver: u64,
    /// Host-OS state: page tables, reverse map, NUMA accounting.
    pub host: u64,
    /// Run-loop state: event queue, virtual clock, worker, kernel spans.
    pub run: u64,
}

impl SubsystemDigests {
    /// Names of the subsystems whose digests differ between `self` and
    /// `other`, in fixed order. Empty exactly when the states are
    /// identical.
    pub fn diff(&self, other: &SubsystemDigests) -> Vec<&'static str> {
        let mut out = Vec::new();
        if self.gpu != other.gpu {
            out.push("gpu");
        }
        if self.driver != other.driver {
            out.push("driver");
        }
        if self.host != other.host {
            out.push("host");
        }
        if self.run != other.run {
            out.push("run");
        }
        out
    }
}

/// A complete, versioned checkpoint of a mid-flight system run.
///
/// Produced by [`RunInProgress::snapshot`](crate::system::RunInProgress::snapshot)
/// at a batch boundary; consumed by
/// [`RunInProgress::restore`](crate::system::RunInProgress::restore).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemSnapshot {
    /// Snapshot format version ([`SNAPSHOT_VERSION`] at capture time).
    pub version: u32,
    /// Identity of the run within its harness process (see [`run_key`]);
    /// 0 for standalone snapshots.
    pub run_key: u64,
    /// Batches serviced when the snapshot was taken.
    pub batches: u64,
    /// Name of the workload the snapshot was taken against (diagnostic
    /// only — the digest is what restore validates).
    pub workload_name: String,
    /// Digest of the serialized workload; restore refuses any other.
    pub workload_digest: u64,
    /// Serialized [`SystemConfig`](crate::config::SystemConfig).
    pub config: Value,
    /// Serialized GPU state.
    pub gpu: Value,
    /// Serialized driver state.
    pub driver: Value,
    /// Serialized host-OS state.
    pub host: Value,
    /// Serialized run-loop state.
    pub run: Value,
    /// Digests of the four state trees, for integrity checking and
    /// divergence comparison.
    pub digests: SubsystemDigests,
    /// Serialized tracer state ([`uvm_trace::TraceState`]) when the run
    /// was captured with a ring tracer installed; `Null` otherwise (and
    /// in snapshots written before tracing existed, which deserialize the
    /// missing field as `Null`). Deliberately excluded from the
    /// subsystem digests: the tracer observes the simulation without
    /// being part of its state, so traced and untraced checkpoints of
    /// the same run remain digest-identical.
    pub trace: Value,
}

impl SystemSnapshot {
    /// Write the snapshot to `path` as JSON, atomically: the bytes land in
    /// a `.tmp` sibling first and are renamed into place, so a crash
    /// mid-write never leaves a torn checkpoint where a good one stood.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        self.save_with(path, |p, bytes| fs::write(p, bytes))
    }

    /// [`Self::save`] with a pluggable byte sink for the tmp-file write.
    /// The crash-consistency tests inject partial writes and I/O errors
    /// here; the rename only happens after the sink reports success, so a
    /// failed (even torn) tmp write leaves any previous checkpoint at
    /// `path` untouched.
    pub fn save_with<W>(&self, path: &Path, write_tmp: W) -> std::io::Result<()>
    where
        W: FnOnce(&Path, &[u8]) -> std::io::Result<()>,
    {
        let json = serde_json::to_string(self).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("snapshot serialization failed: {e}"),
            )
        })?;
        let tmp = path.with_extension("tmp");
        write_tmp(&tmp, json.as_bytes())?;
        fs::rename(&tmp, path)
    }

    /// Read a snapshot back from `path`. I/O and parse failures surface as
    /// [`UvmError::SnapshotInvalid`]; integrity is *not* checked here (it
    /// is checked by restore).
    pub fn load(path: &Path) -> Result<Self, UvmError> {
        let text = fs::read_to_string(path).map_err(|e| UvmError::SnapshotInvalid {
            detail: format!("cannot read {}: {e}", path.display()),
        })?;
        serde_json::from_str(&text).map_err(|e| UvmError::SnapshotInvalid {
            detail: format!("cannot parse {}: {e}", path.display()),
        })
    }

    /// Verify that the stored digests match the state trees they describe.
    /// A mismatch means the file was truncated, edited, or corrupted.
    pub fn verify_integrity(&self) -> Result<(), UvmError> {
        let actual = SubsystemDigests {
            gpu: digest_value(&self.gpu),
            driver: digest_value(&self.driver),
            host: digest_value(&self.host),
            run: digest_value(&self.run),
        };
        if actual != self.digests {
            return Err(UvmError::SnapshotInvalid {
                detail: format!(
                    "integrity check failed: stored digests disagree with state trees \
                     in [{}]",
                    self.digests.diff(&actual).join(", ")
                ),
            });
        }
        Ok(())
    }
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// The identity of one system run within a harness process: FNV-1a over
/// the run's ordinal (how many runs the process started before it), the
/// workload digest, and the config digest.
///
/// Because the harness is deterministic, re-executing it reproduces the
/// same sequence of run keys; a resume replays runs until the key stored
/// in the checkpoint comes up, then restores mid-run.
pub fn run_key(ordinal: u64, workload_digest: u64, config_digest: u64) -> u64 {
    let mut h = FNV_OFFSET;
    for word in [ordinal, workload_digest, config_digest] {
        for b in word.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_diff_names_disagreeing_subsystems() {
        let a = SubsystemDigests { gpu: 1, driver: 2, host: 3, run: 4 };
        assert!(a.diff(&a).is_empty());
        let b = SubsystemDigests { gpu: 1, driver: 9, host: 3, run: 8 };
        assert_eq!(a.diff(&b), vec!["driver", "run"]);
    }

    #[test]
    fn run_key_separates_ordinal_workload_and_config() {
        let base = run_key(0, 10, 20);
        assert_ne!(base, run_key(1, 10, 20));
        assert_ne!(base, run_key(0, 11, 20));
        assert_ne!(base, run_key(0, 10, 21));
        assert_eq!(base, run_key(0, 10, 20));
    }

    #[test]
    fn save_and_load_round_trip() {
        let snap = SystemSnapshot {
            version: SNAPSHOT_VERSION,
            run_key: 7,
            batches: 3,
            workload_name: "t".into(),
            workload_digest: 11,
            config: Value::Null,
            gpu: Value::NumU(1),
            driver: Value::NumU(2),
            host: Value::NumU(3),
            run: Value::NumU(4),
            digests: SubsystemDigests {
                gpu: digest_value(&Value::NumU(1)),
                driver: digest_value(&Value::NumU(2)),
                host: digest_value(&Value::NumU(3)),
                run: digest_value(&Value::NumU(4)),
            },
            trace: Value::Null,
        };
        let dir = std::env::temp_dir().join("uvm-snap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        snap.save(&path).unwrap();
        let back = SystemSnapshot::load(&path).unwrap();
        assert_eq!(back.run_key, 7);
        back.verify_integrity().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn integrity_failure_names_the_subsystem() {
        let mut snap = SystemSnapshot {
            version: SNAPSHOT_VERSION,
            run_key: 0,
            batches: 0,
            workload_name: "t".into(),
            workload_digest: 0,
            config: Value::Null,
            gpu: Value::NumU(1),
            driver: Value::NumU(2),
            host: Value::NumU(3),
            run: Value::NumU(4),
            digests: SubsystemDigests {
                gpu: digest_value(&Value::NumU(1)),
                driver: digest_value(&Value::NumU(2)),
                host: digest_value(&Value::NumU(3)),
                run: digest_value(&Value::NumU(4)),
            },
            trace: Value::Null,
        };
        snap.driver = Value::NumU(99);
        let err = snap.verify_integrity().unwrap_err();
        assert!(err.to_string().contains("driver"), "got: {err}");
    }

    #[test]
    fn torn_tmp_write_preserves_previous_checkpoint() {
        // The crash-consistency contract: an I/O failure partway through
        // the tmp-file write (a full disk, a kill) must leave the previous
        // checkpoint loadable — the rename into place never happens.
        let mk = |batches: u64| SystemSnapshot {
            version: SNAPSHOT_VERSION,
            run_key: 1,
            batches,
            workload_name: "t".into(),
            workload_digest: 5,
            config: Value::Null,
            gpu: Value::NumU(batches),
            driver: Value::NumU(2),
            host: Value::NumU(3),
            run: Value::NumU(4),
            digests: SubsystemDigests {
                gpu: digest_value(&Value::NumU(batches)),
                driver: digest_value(&Value::NumU(2)),
                host: digest_value(&Value::NumU(3)),
                run: digest_value(&Value::NumU(4)),
            },
            trace: Value::Null,
        };
        let dir = std::env::temp_dir().join("uvm-snap-crash-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");

        mk(10).save(&path).unwrap();

        // The next save dies mid-write: half the bytes land, then Err.
        let err = mk(20)
            .save_with(&path, |tmp, bytes| {
                std::fs::write(tmp, &bytes[..bytes.len() / 2])?;
                Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "disk full (injected)",
                ))
            })
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WriteZero);

        // The previous checkpoint is intact and loadable; the torn bytes
        // only ever existed in the tmp sibling.
        let back = SystemSnapshot::load(&path).unwrap();
        assert_eq!(back.batches, 10, "torn write must not clobber the old checkpoint");
        back.verify_integrity().unwrap();

        // A subsequent healthy save still goes through cleanly.
        mk(30).save(&path).unwrap();
        assert_eq!(SystemSnapshot::load(&path).unwrap().batches, 30);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(path.with_extension("tmp")).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("uvm-snap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(matches!(
            SystemSnapshot::load(&path),
            Err(UvmError::SnapshotInvalid { .. })
        ));
        assert!(matches!(
            SystemSnapshot::load(&dir.join("does-not-exist.json")),
            Err(UvmError::SnapshotInvalid { .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}
