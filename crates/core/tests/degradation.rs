//! Graceful-degradation coverage: blocks whose migration keeps failing are
//! degraded to remote (sysmem) mappings, and every later access pays the
//! remote-access PTE path instead of re-attempting migration.
//!
//! These tests pin the accounting (`BatchRecord::degraded_blocks`,
//! `UvmDriver::degraded_total`) and the remote-path behavior across
//! checkpoint/restore and under non-stock policy stacks.

use uvm_core::driver::engine::{EvictionPolicyKind, PrefetchPolicyKind};
use uvm_core::driver::policy::DriverPolicy;
use uvm_core::sim::inject::{FaultPlan, InjectionPoint, PointPlan};
use uvm_core::sim::time::SimDuration;
use uvm_core::workloads::cpu_init::CpuInitPolicy;
use uvm_core::workloads::stream::{self, StreamParams};
use uvm_core::workloads::workload::Workload;
use uvm_core::{Progress, RunHints, RunInProgress, RunResult, SystemConfig, UvmSystem};

const MB: u64 = 1024 * 1024;

/// A stream workload that revisits its pages (`iters: 2`), so blocks
/// degraded during the first pass are re-accessed — and must take the
/// remote path — in the second.
fn revisiting_workload() -> Workload {
    stream::build(StreamParams {
        warps: 32,
        pages_per_warp: 16,
        iters: 2,
        warps_per_page: 1,
        cpu_init: Some(CpuInitPolicy::Striped { threads: 8 }),
    })
}

/// Copy-engine faults aggressive enough to exhaust `retries(1)` on several
/// blocks, forcing degradations.
fn degrading_config(policy: DriverPolicy) -> SystemConfig {
    let plan = FaultPlan::none()
        .with(InjectionPoint::CopyEngineFault, PointPlan::with_probability(0.35));
    SystemConfig::test_small(16 * MB)
        .with_policy(policy.retries(1).audited(true))
        .with_fault_plan(plan)
}

/// Run uninterrupted; panics on servicing errors (the copy-engine plan is
/// recoverable by design: failed blocks degrade instead of erroring).
fn run_reference(config: &SystemConfig, workload: &Workload) -> (RunResult, u64) {
    let mut run = UvmSystem::new(config.clone())
        .start(workload, &RunHints::default())
        .expect("run starts");
    while !matches!(
        run.advance_batch(workload).expect("batch services"),
        Progress::Finished
    ) {}
    let degraded_total = run.driver().degraded_total();
    (run.into_result(workload), degraded_total)
}

/// Run with a snapshot → JSON → restore cycle at every batch in `kills`.
fn run_tortured(config: &SystemConfig, workload: &Workload, kills: &[u64]) -> (RunResult, u64) {
    let mut run = UvmSystem::new(config.clone())
        .start(workload, &RunHints::default())
        .expect("run starts");
    loop {
        match run.advance_batch(workload).expect("batch services") {
            Progress::Finished => break,
            Progress::Batch(n) if kills.contains(&n) => {
                let snap = run.snapshot(workload, 0);
                let json = serde_json::to_string(&snap).expect("snapshot serializes");
                drop(run);
                let back = serde_json::from_str(&json).expect("snapshot parses");
                run = RunInProgress::restore(&back, workload).expect("snapshot restores");
            }
            Progress::Batch(_) => {}
        }
    }
    let degraded_total = run.driver().degraded_total();
    (run.into_result(workload), degraded_total)
}

/// The core assertions shared by every policy stack under test.
fn assert_degradation_behavior(policy: DriverPolicy) {
    let workload = revisiting_workload();
    let config = degrading_config(policy);
    let (reference, degraded_total) = run_reference(&config, &workload);

    // Accounting: the run must actually degrade blocks, per-batch records
    // must sum to the driver's cumulative counter, and the batch that
    // degrades a block also remote-maps its pages.
    let per_batch: u64 = reference.records.iter().map(|r| r.degraded_blocks).sum();
    assert!(per_batch > 0, "plan must force at least one degradation");
    assert_eq!(per_batch, degraded_total, "records must sum to degraded_total");
    for rec in reference.records.iter().filter(|r| r.degraded_blocks > 0) {
        assert!(
            rec.remote_mapped_pages > 0,
            "degrading batch {} must remote-map the failed block's pages",
            rec.seq
        );
    }

    // Remote-access latency: after the first degradation, revisits to the
    // degraded blocks take the remote path — later batches keep paying
    // remote PTE mappings (t_pte with remote_mapped_pages), never a
    // re-migration of a degraded block.
    let first = reference
        .records
        .iter()
        .position(|r| r.degraded_blocks > 0)
        .expect("a degrading batch exists");
    let later_remote: u64 = reference.records[first + 1..]
        .iter()
        .map(|r| r.remote_mapped_pages)
        .sum();
    assert!(
        later_remote > 0,
        "revisits after degradation must be remotely mapped, not migrated"
    );
    for rec in &reference.records[first..] {
        if rec.remote_mapped_pages > 0 {
            assert!(
                rec.t_pte > SimDuration::ZERO,
                "remote mappings in batch {} must charge PTE latency",
                rec.seq
            );
        }
    }

    // Checkpoint/restore transparency: killing and restoring mid-run —
    // including right at/after the first degradation — must reproduce the
    // identical record stream and cumulative degraded count.
    let kills = [first as u64 + 1, first as u64 + 3];
    let (tortured, tortured_total) = run_tortured(&config, &workload, &kills);
    assert_eq!(tortured_total, degraded_total, "degraded_total must survive restore");
    let a = serde_json::to_string(&reference.records).expect("records serialize");
    let b = serde_json::to_string(&tortured.records).expect("records serialize");
    assert_eq!(a, b, "restored run's batch records must be byte-identical");
}

#[test]
fn degradation_accounting_and_remote_path_stock_policy() {
    assert_degradation_behavior(DriverPolicy::default());
}

#[test]
fn degradation_survives_restore_under_stride_prefetch_random_eviction() {
    assert_degradation_behavior(
        DriverPolicy::with_prefetch()
            .prefetcher(PrefetchPolicyKind::SequentialStride)
            .evictor(EvictionPolicyKind::Random),
    );
}

#[test]
fn degradation_survives_restore_under_lfu_small_batches() {
    assert_degradation_behavior(
        DriverPolicy::default()
            .evictor(EvictionPolicyKind::Lfu)
            .batch_limit(64),
    );
}
