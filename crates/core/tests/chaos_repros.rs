//! Replay every committed chaos reproducer in `tests/repros/`.
//!
//! Each file is a shrunk [`uvm_core::chaos::Scenario`] that once exposed a
//! real bug (its `description` says which). Replaying them here pins the
//! fixes: a regression flips the trial verdict (or panics outright), and
//! this test names the offending file.
//!
//! To add one: run `paper chaos` until a trial fails — the harness writes
//! the shrunk scenario as `chaos-repro-<trial>.json` — then commit it here
//! with a description of the root cause once fixed.

use std::path::PathBuf;

use uvm_core::chaos::{run_trial, ReproFile, TrialVerdict};

fn repro_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/repros")
}

#[test]
fn committed_repros_all_pass() {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(repro_dir())
        .expect("tests/repros must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no committed repro files found");
    for path in paths {
        let repro = ReproFile::load(&path)
            .unwrap_or_else(|e| panic!("cannot load {}: {e}", path.display()));
        let verdict = run_trial(&repro.scenario);
        assert_eq!(
            verdict,
            TrialVerdict::Pass,
            "repro {} regressed ({})",
            path.display(),
            repro.description
        );
    }
}
