#![warn(missing_docs)]

//! # uvm-stats — analysis utilities for experiment output
//!
//! The paper reports its findings as descriptive statistics (Tables 2–4),
//! linear best fits (Fig. 6), and binned scatter/time series (most other
//! figures). This crate provides those primitives:
//!
//! * [`descriptive`] — [`Summary`]: mean, standard deviation, min/max,
//!   median, percentiles.
//! * [`regression`] — least-squares [`LinearFit`] with r².
//! * [`histogram`] — fixed-width [`Histogram`] bucketing.
//! * [`series`] — time-series binning and downsampling for figure data.
//! * [`plot`] — terminal scatter plots ([`ScatterPlot`]) for figure shapes.
//! * [`table`] — fixed-width text table rendering in the paper's style.

pub mod descriptive;
pub mod histogram;
pub mod plot;
pub mod regression;
pub mod series;
pub mod table;

pub use descriptive::{percentile, Summary};
pub use histogram::Histogram;
pub use plot::ScatterPlot;
pub use regression::{linear_fit, LinearFit};
pub use series::bin_series;
pub use table::Table;
