//! Fixed-width text tables in the paper's reporting style.

use std::fmt::Write as _;

/// A simple left-aligned text table builder.
///
/// ```
/// use uvm_stats::Table;
///
/// let mut t = Table::new(vec!["Benchmark", "Avg", "Max"]);
/// t.row(vec!["sgemm".into(), "0.85".into(), "3.20".into()]);
/// let s = t.render();
/// assert!(s.contains("Benchmark"));
/// assert!(s.contains("sgemm"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let sep = if i + 1 == cols { "\n" } else { "  " };
            let _ = write!(out, "{:<w$}{}", h, sep, w = widths[i]);
        }
        for (i, &w) in widths.iter().enumerate() {
            let sep = if i + 1 == cols { "\n" } else { "  " };
            let _ = write!(out, "{}{}", "-".repeat(w), sep);
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                let sep = if i + 1 == cols { "\n" } else { "  " };
                let _ = write!(out, "{:<w$}{}", cell, sep, w = widths[i]);
            }
        }
        out
    }
}

/// Format a float with 2 decimal places (the paper's table precision).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["a", "bb"]);
        t.row(vec!["xxxx".into(), "y".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a     bb"));
        assert!(lines[1].starts_with("----  --"));
        assert!(lines[2].starts_with("xxxx  y"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn f2_formats() {
        assert_eq!(f2(12.3456), "12.35");
        assert_eq!(f2(0.0), "0.00");
    }
}
