//! Descriptive statistics.

use serde::{Deserialize, Serialize};

/// Summary statistics over a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (interpolated).
    pub median: f64,
}

impl Summary {
    /// Compute a summary. Returns a zeroed summary for an empty sample.
    pub fn of(values: &[f64]) -> Summary {
        let n = values.len();
        if n == 0 {
            return Summary {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: percentile_sorted(&sorted, 50.0),
        }
    }

    /// Convenience: summary over an iterator of integers.
    pub fn of_ints<I: IntoIterator<Item = u64>>(values: I) -> Summary {
        let v: Vec<f64> = values.into_iter().map(|x| x as f64).collect();
        Summary::of(&v)
    }
}

/// The `p`-th percentile (0–100) of a sample, with linear interpolation.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    percentile_sorted(&sorted, p)
}

fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = (p / 100.0).clamp(0.0, 1.0) * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.138089935299395).abs() < 1e-9);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        let e = Summary::of(&[]);
        assert_eq!(e.n, 0);
        assert_eq!(e.mean, 0.0);
        let s = Summary::of(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 3.5);
    }

    #[test]
    fn percentiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert!((percentile(&v, 50.0) - 2.5).abs() < 1e-12);
        assert!((percentile(&v, 25.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn of_ints_converts() {
        let s = Summary::of_ints([1u64, 2, 3]);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }
}
