//! Least-squares linear regression (the Fig. 6 best fits).

use serde::{Deserialize, Serialize};

/// A fitted line `y = slope * x + intercept` with goodness of fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination (r²), in `[0, 1]` for least squares.
    pub r_squared: f64,
    /// Sample size.
    pub n: usize,
}

impl LinearFit {
    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fit a line to `(x, y)` pairs. Returns `None` for fewer than two points
/// or zero x-variance.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LinearFit> {
    let n = points.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = points.iter().map(|(x, _)| x).sum::<f64>() / nf;
    let mean_y = points.iter().map(|(_, y)| y).sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for &(x, y) in points {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 { 1.0 } else { (sxy * sxy) / (sxx * syy) };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line_recovers_parameters() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 7.0)).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept - 7.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(100.0) - 307.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_fits_approximately() {
        let pts: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let x = i as f64;
                // Deterministic "noise".
                let noise = ((i * 37) % 11) as f64 - 5.0;
                (x, 2.0 * x + 10.0 + noise)
            })
            .collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 2.0).abs() < 0.05, "slope {}", fit.slope);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[(1.0, 2.0)]).is_none());
        assert!(linear_fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none(), "zero x-variance");
    }

    #[test]
    fn horizontal_line_has_r2_one() {
        let pts = [(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)];
        let fit = linear_fit(&pts).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r_squared, 1.0);
    }
}
