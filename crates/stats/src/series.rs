//! Time-series binning.
//!
//! The paper's time-series figures (Figs. 8, 12–17) plot per-batch values
//! over execution time. For reporting we bin `(t, y)` samples into
//! equal-width time buckets and reduce each bucket (mean or max), which is
//! also how the figure data files are generated.

/// Reduction applied within each time bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinReduce {
    /// Mean of the samples in the bin.
    Mean,
    /// Maximum sample in the bin.
    Max,
    /// Sum of the samples in the bin.
    Sum,
}

/// Bin `(t, y)` samples into `bins` equal-width buckets over the observed
/// time span, reducing each bucket. Empty buckets are omitted. Returns
/// `(bin_center_t, reduced_y)` pairs in time order.
pub fn bin_series(samples: &[(f64, f64)], bins: usize, reduce: BinReduce) -> Vec<(f64, f64)> {
    if samples.is_empty() || bins == 0 {
        return Vec::new();
    }
    let t_min = samples.iter().map(|&(t, _)| t).fold(f64::INFINITY, f64::min);
    let t_max = samples.iter().map(|&(t, _)| t).fold(f64::NEG_INFINITY, f64::max);
    if t_max <= t_min {
        // All samples simultaneous: a single bin.
        let ys: Vec<f64> = samples.iter().map(|&(_, y)| y).collect();
        return vec![(t_min, reduce_vals(&ys, reduce))];
    }
    let width = (t_max - t_min) / bins as f64;
    let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); bins];
    for &(t, y) in samples {
        let idx = (((t - t_min) / width) as usize).min(bins - 1);
        buckets[idx].push(y);
    }
    buckets
        .iter()
        .enumerate()
        .filter(|(_, b)| !b.is_empty())
        .map(|(i, b)| (t_min + (i as f64 + 0.5) * width, reduce_vals(b, reduce)))
        .collect()
}

fn reduce_vals(vals: &[f64], reduce: BinReduce) -> f64 {
    match reduce {
        BinReduce::Mean => vals.iter().sum::<f64>() / vals.len() as f64,
        BinReduce::Max => vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        BinReduce::Sum => vals.iter().sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_reduce_means() {
        let samples = vec![(0.0, 1.0), (0.1, 3.0), (9.9, 10.0)];
        let out = bin_series(&samples, 10, BinReduce::Mean);
        assert_eq!(out.len(), 2);
        assert!((out[0].1 - 2.0).abs() < 1e-12);
        assert!((out[1].1 - 10.0).abs() < 1e-12);
    }

    #[test]
    fn max_and_sum_reductions() {
        let samples = vec![(0.0, 1.0), (0.1, 3.0), (0.2, 2.0)];
        let max = bin_series(&samples, 1, BinReduce::Max);
        assert_eq!(max[0].1, 3.0);
        let sum = bin_series(&samples, 1, BinReduce::Sum);
        assert_eq!(sum[0].1, 6.0);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert!(bin_series(&[], 5, BinReduce::Mean).is_empty());
        assert!(bin_series(&[(1.0, 2.0)], 0, BinReduce::Mean).is_empty());
        let single_t = bin_series(&[(5.0, 1.0), (5.0, 3.0)], 4, BinReduce::Mean);
        assert_eq!(single_t, vec![(5.0, 2.0)]);
    }

    #[test]
    fn last_sample_lands_in_last_bin() {
        let samples = vec![(0.0, 1.0), (10.0, 2.0)];
        let out = bin_series(&samples, 2, BinReduce::Mean);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].1, 2.0);
    }
}
