//! Fixed-width histograms.

use serde::{Deserialize, Serialize};

/// A histogram over `[lo, hi)` with equal-width bins. Values outside the
/// range are clamped into the first/last bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// A histogram over `[lo, hi)` with `bins` buckets.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Add one observation.
    pub fn add(&mut self, value: f64) {
        let bins = self.counts.len();
        let idx = if value <= self.lo {
            0
        } else if value >= self.hi {
            bins - 1
        } else {
            (((value - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
        self.total += 1;
    }

    /// Count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// `(bin_center, count)` pairs.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * w, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_expected_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(0.5);
        h.add(5.5);
        h.add(9.5);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(5), 1);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add(-3.0);
        h.add(42.0);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(4), 1);
    }

    #[test]
    fn centers_are_midpoints() {
        let h = Histogram::new(0.0, 10.0, 5);
        let centers: Vec<f64> = h.centers().iter().map(|&(c, _)| c).collect();
        assert_eq!(centers, vec![1.0, 3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
