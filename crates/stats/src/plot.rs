//! Terminal scatter / time-series plots.
//!
//! The paper's evaluation is mostly scatter plots (batch time vs migrated
//! bytes, batch size over time). [`ScatterPlot`] renders `(x, y)` point
//! sets — optionally in multiple series — onto a character grid so the
//! regeneration harness can show the figure shapes directly in the
//! terminal, alongside the JSON dumps meant for real plotting tools.

/// Glyphs assigned to series, in order.
const GLYPHS: &[char] = &['*', 'o', '+', 'x', '#', '@'];

/// A multi-series scatter plot on a character canvas.
#[derive(Debug, Clone)]
pub struct ScatterPlot {
    title: String,
    x_label: String,
    y_label: String,
    width: usize,
    height: usize,
    series: Vec<(String, Vec<(f64, f64)>)>,
    log_y: bool,
}

impl ScatterPlot {
    /// A plot with the given title and axis labels (default 72×20 canvas).
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Self {
        ScatterPlot {
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            width: 72,
            height: 20,
            series: Vec::new(),
            log_y: false,
        }
    }

    /// Override the canvas size (columns × rows of the plotting area).
    pub fn size(mut self, width: usize, height: usize) -> Self {
        self.width = width.max(8);
        self.height = height.max(4);
        self
    }

    /// Use a logarithmic y axis (the paper's batch-time plots are
    /// log-scale). Non-positive values are dropped.
    pub fn log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Add a named series of `(x, y)` points.
    pub fn series(mut self, name: &str, points: Vec<(f64, f64)>) -> Self {
        self.series.push((name.to_string(), points));
        self
    }

    /// Render the plot to a string.
    pub fn render(&self) -> String {
        let y_map = |y: f64| if self.log_y { y.ln() } else { y };
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, pts)| pts.iter().copied())
            .filter(|&(_, y)| !self.log_y || y > 0.0)
            .collect();
        if all.is_empty() {
            return format!("{}\n(no data)\n", self.title);
        }
        let x_min = all.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        let x_max = all.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
        let y_min = all.iter().map(|p| y_map(p.1)).fold(f64::INFINITY, f64::min);
        let y_max = all.iter().map(|p| y_map(p.1)).fold(f64::NEG_INFINITY, f64::max);
        let x_span = (x_max - x_min).max(f64::MIN_POSITIVE);
        let y_span = (y_max - y_min).max(f64::MIN_POSITIVE);

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, (_, pts)) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for &(x, y) in pts {
                if self.log_y && y <= 0.0 {
                    continue;
                }
                let cx = (((x - x_min) / x_span) * (self.width - 1) as f64).round() as usize;
                let cy = (((y_map(y) - y_min) / y_span) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy.min(self.height - 1);
                grid[row][cx.min(self.width - 1)] = glyph;
            }
        }

        let y_hi = if self.log_y { y_max.exp() } else { y_max };
        let y_lo = if self.log_y { y_min.exp() } else { y_min };
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        let legend: Vec<String> = self
            .series
            .iter()
            .enumerate()
            .map(|(i, (name, pts))| format!("{} {} ({})", GLYPHS[i % GLYPHS.len()], name, pts.len()))
            .collect();
        if self.series.len() > 1 || !legend.is_empty() {
            out.push_str(&format!("  [{}]\n", legend.join("  ")));
        }
        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                format!("{y_hi:>9.3}")
            } else if i == self.height - 1 {
                format!("{y_lo:>9.3}")
            } else {
                " ".repeat(9)
            };
            out.push_str(&format!("{label} |{}\n", row.iter().collect::<String>()));
        }
        out.push_str(&format!(
            "{} +{}\n{:>9}  {:<width$.3}{:>rest$.3}\n",
            " ".repeat(9),
            "-".repeat(self.width),
            self.y_label,
            x_min,
            x_max,
            width = self.width / 2,
            rest = self.width - self.width / 2,
        ));
        out.push_str(&format!("{:>width$}\n", self.x_label, width = 10 + self.width / 2));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_within_canvas() {
        let p = ScatterPlot::new("test", "x", "y")
            .size(40, 10)
            .series("a", vec![(0.0, 0.0), (1.0, 1.0), (0.5, 0.5)]);
        let s = p.render();
        assert!(s.contains("test"));
        assert_eq!(s.matches('*').count(), 3 + 1, "3 points plus legend glyph");
        // 10 plot rows.
        assert_eq!(s.lines().filter(|l| l.contains('|')).count(), 10);
    }

    #[test]
    fn multiple_series_use_distinct_glyphs() {
        let p = ScatterPlot::new("t", "x", "y")
            .series("a", vec![(0.0, 0.0)])
            .series("b", vec![(1.0, 1.0)]);
        let s = p.render();
        assert!(s.contains('*') && s.contains('o'));
        assert!(s.contains("a (1)") && s.contains("b (1)"));
    }

    #[test]
    fn log_scale_drops_nonpositive() {
        let p = ScatterPlot::new("t", "x", "y")
            .log_y()
            .series("a", vec![(0.0, 0.0), (1.0, 10.0), (2.0, 1000.0)]);
        let s = p.render();
        assert_eq!(s.matches('*').count(), 2 + 1, "zero-y point dropped");
    }

    #[test]
    fn empty_plot_says_so() {
        let p = ScatterPlot::new("t", "x", "y");
        assert!(p.render().contains("no data"));
    }

    #[test]
    fn identical_points_collapse_to_one_cell() {
        let p = ScatterPlot::new("t", "x", "y").series("a", vec![(1.0, 1.0); 50]);
        let s = p.render();
        assert_eq!(s.matches('*').count(), 1 + 1);
    }
}
