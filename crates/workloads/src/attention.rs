//! ML-style batched-gather attention access pattern.
//!
//! Models the memory behaviour of batched attention / embedding lookup
//! inference (the DL-workload class Long et al. target with learned
//! prefetching): each batch is one kernel whose warps stream their query
//! pages *sequentially*, then gather rows of a large KV table with a
//! skewed hot/cold distribution — a small working set of hot rows absorbs
//! most lookups while the long tail scatters over the whole table. The
//! mix (regular query streaming + skewed irregular gathers, repeated
//! across batches) is what distinguishes it from uniform-random access:
//! hot pages are worth caching, cold pages thrash, and batch boundaries
//! re-touch the hot set.

use uvm_gpu::isa::{Instr, WarpProgram};
use uvm_sim::mem::PAGE_SIZE;
use uvm_sim::rng::DetRng;
use uvm_sim::time::SimDuration;

use crate::cpu_init::CpuInitPolicy;
use crate::workload::Workload;

/// Parameters for the attention workload.
#[derive(Debug, Clone, Copy)]
pub struct AttentionParams {
    /// Rows in the KV table (one 4 KiB page per row: a 512-float head).
    pub kv_rows: u64,
    /// Batches; each is one kernel launch.
    pub batches: u32,
    /// Queries (warps) per batch.
    pub queries_per_batch: u32,
    /// Query pages streamed sequentially by each warp.
    pub query_pages: u64,
    /// KV-row gathers per query.
    pub gathers_per_query: u32,
    /// Fraction of gathers hitting the hot row set.
    pub hot_fraction: f64,
    /// Size of the hot row set.
    pub hot_rows: u64,
    /// Compute time charged per query.
    pub compute_per_query: SimDuration,
    /// Pattern seed.
    pub seed: u64,
    /// Host-side initialization of the KV table and query buffer.
    pub cpu_init: Option<CpuInitPolicy>,
}

impl Default for AttentionParams {
    fn default() -> Self {
        AttentionParams {
            kv_rows: 4096,
            batches: 8,
            queries_per_batch: 16,
            query_pages: 2,
            gathers_per_query: 32,
            hot_fraction: 0.8,
            hot_rows: 256,
            compute_per_query: SimDuration::from_micros(2),
            seed: 0xA77,
            cpu_init: Some(CpuInitPolicy::SingleThread),
        }
    }
}

/// Build the attention workload.
pub fn build(params: AttentionParams) -> Workload {
    let rows = params.kv_rows.max(1);
    let hot_rows = params.hot_rows.clamp(1, rows);
    let batches = params.batches.max(1);
    let queries = params.queries_per_batch.max(1);
    let qp = params.query_pages.max(1);
    let mut rng = DetRng::new(params.seed);

    let mut b = Workload::builder("attention");
    // One page per KV row; queries and outputs are per-warp-per-batch.
    let kv = b.alloc(rows * PAGE_SIZE);
    let q = b.alloc(u64::from(batches) * u64::from(queries) * qp * PAGE_SIZE);
    let out = b.alloc(u64::from(batches) * u64::from(queries) * PAGE_SIZE);

    for batch in 0..u64::from(batches) {
        for query in 0..u64::from(queries) {
            let warp_idx = batch * u64::from(queries) + query;
            let mut prog = WarpProgram::new();
            // Sequential query streaming.
            let q0 = warp_idx * qp;
            prog.push(Instr::Load { pages: (q0..q0 + qp).map(|i| q.page(i)).collect() });
            // Skewed KV gathers: hot set with probability `hot_fraction`,
            // uniform over the whole table otherwise.
            let mut gathers = Vec::with_capacity(params.gathers_per_query as usize);
            for _ in 0..params.gathers_per_query.max(1) {
                let row = if rng.chance(params.hot_fraction) {
                    rng.below(hot_rows)
                } else {
                    rng.below(rows)
                };
                gathers.push(kv.page(row));
            }
            gathers.sort_unstable();
            gathers.dedup();
            prog.push(Instr::Load { pages: gathers });
            if params.compute_per_query > SimDuration::ZERO {
                prog.push(Instr::Delay(params.compute_per_query));
            }
            prog.push(Instr::Store { pages: vec![out.page(warp_idx)] });
            b.warp(prog);
        }
        b.end_kernel();
    }

    if let Some(policy) = params.cpu_init {
        let touches: Vec<_> = policy
            .touches(&kv)
            .into_iter()
            .chain(policy.touches(&q))
            .collect();
        b.cpu_touches(touches);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> AttentionParams {
        AttentionParams {
            kv_rows: 512,
            batches: 3,
            queries_per_batch: 4,
            query_pages: 1,
            gathers_per_query: 16,
            hot_fraction: 0.75,
            hot_rows: 32,
            compute_per_query: SimDuration::ZERO,
            seed: 9,
            cpu_init: None,
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = build(small());
        let b = build(small());
        assert_eq!(a.programs, b.programs);
        let c = build(AttentionParams { seed: 10, ..small() });
        assert_ne!(a.programs, c.programs);
    }

    #[test]
    fn one_kernel_per_batch() {
        let w = build(small());
        let kernels = w.kernels();
        assert_eq!(kernels.len(), 3);
        for k in kernels {
            assert_eq!(k.len(), 4, "each batch launches queries_per_batch warps");
        }
    }

    #[test]
    fn all_pages_within_allocations() {
        let w = build(small());
        let end = w.allocations.iter().map(|a| a.end().0).max().unwrap();
        for p in w.programs.iter().flat_map(|p| p.touched_pages()) {
            assert!(p.base_addr().0 < end);
        }
    }

    #[test]
    fn gathers_are_skewed_toward_hot_rows() {
        let w = build(small());
        let kv = w.allocations[0];
        let hot_end = kv.page(0).0 + 32; // hot_rows pages from the table base
        let (mut hot, mut cold) = (0usize, 0usize);
        for p in w.programs.iter().flat_map(|p| p.touched_pages()) {
            if kv.contains(p.base_addr()) {
                if p.0 < hot_end {
                    hot += 1;
                } else {
                    cold += 1;
                }
            }
        }
        assert!(hot > cold, "hot set should absorb most gathers: hot={hot} cold={cold}");
        assert!(cold > 0, "the cold tail must still scatter: hot={hot} cold={cold}");
    }

    #[test]
    fn query_stream_is_sequential_and_disjoint_per_warp() {
        let w = build(small());
        let q = w.allocations[1];
        let mut seen = std::collections::BTreeSet::new();
        for p in w.programs.iter() {
            for page in p.touched_pages() {
                if q.contains(page.base_addr()) {
                    assert!(seen.insert(page), "query pages are private per warp");
                }
            }
        }
        assert_eq!(seen.len(), 12, "batches x queries x query_pages");
    }
}
