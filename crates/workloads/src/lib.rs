#![warn(missing_docs)]

//! # uvm-workloads — benchmark access-pattern generators
//!
//! The UVM driver's workload is fully determined by the *page-access
//! structure* of the kernels running above it. This crate generates, for
//! every benchmark in the paper's Table 1 plus its synthetic kernels, the
//! per-warp instruction streams with the same page-touch structure the real
//! codes produce:
//!
//! | module | paper benchmark | structure |
//! |---|---|---|
//! | [`vecadd`] | Listing 1 microbenchmark | page-strided vector addition, scoreboard-gated writes |
//! | [`prefetch_ub`] | Fig. 5 microbenchmark | single-warp software-prefetch burst |
//! | [`regular`] | "Regular" synthetic | contiguous streaming, all SMs |
//! | [`random`] | "Random" synthetic | uniform-random single-page touches |
//! | [`stream`] | BabelStream triad | coalesced a/b/c streaming |
//! | [`sgemm`] | cuBLAS sgemm/dgemm | tiled GEMM with A/B tile reuse across warps |
//! | [`fft`] | cuFFT | butterfly passes with power-of-two strides |
//! | [`gauss_seidel`] | Gauss-Seidel | row-sweep 2-D stencil, multiple iterations |
//! | [`hpgmg`] | HPGMG-FV | multigrid V-cycles over a level hierarchy |
//! | [`spmv`] | (extension) CSR SpMV | banded + scattered gathers, the irregular class of EMOGI / adaptive-migration work |
//! | [`graph_bfs`] | (extension) graph BFS | pointer-chasing level-synchronous traversal, one kernel per level |
//! | [`attention`] | (extension) batched attention | sequential query streaming + skewed hot/cold KV-table gathers per batch |
//!
//! Each generator returns a self-contained [`Workload`]: managed
//! allocations, per-warp programs, and the CPU-side initialization touches
//! (which thread first-touched which page — the input to the Fig. 11
//! host-OS unmap analysis).

pub mod attention;
pub mod cpu_init;
pub mod fft;
pub mod gauss_seidel;
pub mod graph_bfs;
pub mod hpgmg;
pub mod prefetch_ub;
pub mod random;
pub mod regular;
pub mod sgemm;
pub mod spmv;
pub mod stream;
pub mod vecadd;
pub mod workload;

pub use cpu_init::{CpuInitPolicy, CpuTouch};
pub use workload::Workload;
