//! Host-side initialization models.
//!
//! HPC codes initialize their data on the CPU before launching GPU kernels.
//! *How* they do it — one thread or an OpenMP parallel loop — determines
//! how many CPU cores end up as mappers of each page, which in turn
//! determines the fault-path `unmap_mapping_range` cost (paper Fig. 11:
//! default OpenMP threading roughly halves HPGMG's UVM performance).

use serde::{Deserialize, Serialize};
use uvm_sim::mem::{Allocation, PageNum};

/// One CPU first-touch: `core` touched `page` (write = stores during init).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuTouch {
    /// Touched page.
    pub page: PageNum,
    /// Touching CPU core.
    pub core: u32,
    /// Whether the touch dirtied the page.
    pub write: bool,
}

/// How the host parallelizes initialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuInitPolicy {
    /// One thread initializes everything (the paper's
    /// `OMP_NUM_THREADS=1` configuration).
    SingleThread,
    /// `threads` threads, OpenMP `schedule(static)` with large contiguous
    /// chunks: each VABlock mostly sees one mapper core.
    Chunked {
        /// Thread count.
        threads: u32,
    },
    /// `threads` threads, fine-grained interleaving (e.g. OpenMP
    /// `schedule(static, 1)` over rows smaller than a VABlock): every
    /// VABlock sees many mapper cores. This is the configuration that
    /// exaggerates unmap cost.
    Striped {
        /// Thread count.
        threads: u32,
    },
}

impl CpuInitPolicy {
    /// Generate the touch sequence initializing every page of `alloc`.
    pub fn touches(&self, alloc: &Allocation) -> Vec<CpuTouch> {
        let n = alloc.num_pages();
        match *self {
            CpuInitPolicy::SingleThread => (0..n)
                .map(|i| CpuTouch {
                    page: alloc.page(i),
                    core: 0,
                    write: true,
                })
                .collect(),
            CpuInitPolicy::Chunked { threads } => {
                let threads = threads.max(1) as u64;
                let chunk = n.div_ceil(threads);
                (0..n)
                    .map(|i| CpuTouch {
                        page: alloc.page(i),
                        core: (i / chunk).min(threads - 1) as u32,
                        write: true,
                    })
                    .collect()
            }
            CpuInitPolicy::Striped { threads } => {
                let threads = threads.max(1) as u64;
                (0..n)
                    .map(|i| CpuTouch {
                        page: alloc.page(i),
                        core: (i % threads) as u32,
                        write: true,
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvm_sim::mem::{AddressSpaceAllocator, VABLOCK_SIZE};

    fn alloc(blocks: u64) -> Allocation {
        AddressSpaceAllocator::new().alloc(blocks * VABLOCK_SIZE)
    }

    fn cores_in_first_block(touches: &[CpuTouch]) -> std::collections::HashSet<u32> {
        touches
            .iter()
            .filter(|t| t.page.va_block() == touches[0].page.va_block())
            .map(|t| t.core)
            .collect()
    }

    #[test]
    fn single_thread_uses_core_zero() {
        let a = alloc(2);
        let touches = CpuInitPolicy::SingleThread.touches(&a);
        assert_eq!(touches.len(), 1024);
        assert!(touches.iter().all(|t| t.core == 0 && t.write));
    }

    #[test]
    fn chunked_keeps_blocks_single_mapper() {
        let a = alloc(8);
        let touches = CpuInitPolicy::Chunked { threads: 4 }.touches(&a);
        // 8 blocks / 4 threads = 2 blocks per thread: each block sees one
        // core.
        assert_eq!(cores_in_first_block(&touches).len(), 1);
        let all_cores: std::collections::HashSet<u32> = touches.iter().map(|t| t.core).collect();
        assert_eq!(all_cores.len(), 4);
    }

    #[test]
    fn striped_spreads_mappers_across_each_block() {
        let a = alloc(2);
        let touches = CpuInitPolicy::Striped { threads: 32 }.touches(&a);
        assert_eq!(cores_in_first_block(&touches).len(), 32);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let a = alloc(1);
        let t1 = CpuInitPolicy::Striped { threads: 0 }.touches(&a);
        assert!(t1.iter().all(|t| t.core == 0));
        let t2 = CpuInitPolicy::Chunked { threads: 0 }.touches(&a);
        assert!(t2.iter().all(|t| t.core == 0));
    }

    #[test]
    fn every_page_touched_exactly_once() {
        let a = alloc(3);
        for policy in [
            CpuInitPolicy::SingleThread,
            CpuInitPolicy::Chunked { threads: 8 },
            CpuInitPolicy::Striped { threads: 8 },
        ] {
            let touches = policy.touches(&a);
            assert_eq!(touches.len() as u64, a.num_pages());
            let distinct: std::collections::HashSet<_> =
                touches.iter().map(|t| t.page).collect();
            assert_eq!(distinct.len() as u64, a.num_pages());
        }
    }
}
