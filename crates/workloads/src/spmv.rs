//! Sparse matrix–vector multiply (CSR): `y = A·x`.
//!
//! The irregular-application class the UVM literature worries most about
//! (graph traversal, sparse solvers — the paper cites EMOGI and the
//! adaptive-migration work for exactly this shape). Row data streams
//! regularly, but gathers into `x` follow the sparsity pattern: a banded
//! fraction of nonzeros lands near the diagonal (local) and the rest
//! scatter uniformly (remote), producing the mixed VABlock locality that
//! stresses the driver's per-block servicing.

use uvm_gpu::isa::{Instr, WarpProgram};
use uvm_sim::mem::PAGE_SIZE;
use uvm_sim::rng::DetRng;
use uvm_sim::time::SimDuration;

use crate::cpu_init::CpuInitPolicy;
use crate::workload::Workload;

/// Parameters for the SpMV workload.
#[derive(Debug, Clone, Copy)]
pub struct SpmvParams {
    /// Matrix rows (= columns; square).
    pub rows: u64,
    /// Pages of row data (values + column indices) per warp-chunk of rows.
    pub row_pages_per_chunk: u64,
    /// Rows per warp.
    pub rows_per_warp: u64,
    /// Gathers into `x` per row.
    pub nnz_per_row: u32,
    /// Fraction of gathers landing within the diagonal band (the rest
    /// scatter uniformly over `x`).
    pub band_fraction: f64,
    /// Half-width of the diagonal band, in elements.
    pub bandwidth: u64,
    /// Compute time per row.
    pub compute_per_row: SimDuration,
    /// Pattern seed.
    pub seed: u64,
    /// Host-side initialization of the matrix and `x`.
    pub cpu_init: Option<CpuInitPolicy>,
}

impl Default for SpmvParams {
    fn default() -> Self {
        SpmvParams {
            rows: 8192,
            row_pages_per_chunk: 4,
            rows_per_warp: 32,
            nnz_per_row: 8,
            band_fraction: 0.7,
            bandwidth: 512,
            compute_per_row: SimDuration::from_micros(1),
            seed: 0x5B3C,
            cpu_init: Some(CpuInitPolicy::SingleThread),
        }
    }
}

/// Elements of `x` per 4 KiB page (f64 values).
const X_PER_PAGE: u64 = PAGE_SIZE / 8;

/// Build the SpMV workload.
pub fn build(params: SpmvParams) -> Workload {
    let rows = params.rows.max(1);
    let rpw = params.rows_per_warp.max(1);
    let warps = rows.div_ceil(rpw);
    let mut rng = DetRng::new(params.seed);

    let mut b = Workload::builder("spmv");
    // Row data (values + colidx interleaved) sized so each warp-chunk
    // spans `row_pages_per_chunk` pages; x and y as dense vectors.
    let row_data = b.alloc(warps * params.row_pages_per_chunk.max(1) * PAGE_SIZE);
    let x = b.alloc(rows.div_ceil(X_PER_PAGE) * PAGE_SIZE);
    let y = b.alloc(rows.div_ceil(X_PER_PAGE) * PAGE_SIZE);

    for w in 0..warps {
        let mut prog = WarpProgram::new();
        let r0 = w * rpw;
        let r1 = (r0 + rpw).min(rows);
        // Stream this warp's row data.
        let chunk0 = w * params.row_pages_per_chunk.max(1);
        let row_pages: Vec<_> = (0..params.row_pages_per_chunk.max(1))
            .map(|i| row_data.page(chunk0 + i))
            .collect();
        prog.push(Instr::Load { pages: row_pages });

        for r in r0..r1 {
            // Gathers into x: banded (local) or scattered (uniform).
            let mut gathers = Vec::with_capacity(params.nnz_per_row as usize);
            for _ in 0..params.nnz_per_row.max(1) {
                let col = if rng.chance(params.band_fraction) {
                    let lo = r.saturating_sub(params.bandwidth);
                    let hi = (r + params.bandwidth).min(rows - 1);
                    lo + rng.below(hi - lo + 1)
                } else {
                    rng.below(rows)
                };
                gathers.push(x.page(col / X_PER_PAGE));
            }
            gathers.sort_unstable();
            gathers.dedup();
            prog.push(Instr::Load { pages: gathers });
            if params.compute_per_row > SimDuration::ZERO {
                prog.push(Instr::Delay(params.compute_per_row));
            }
            prog.push(Instr::Store { pages: vec![y.page(r / X_PER_PAGE)] });
        }
        b.warp(prog);
    }

    if let Some(policy) = params.cpu_init {
        let touches: Vec<_> = policy
            .touches(&row_data)
            .into_iter()
            .chain(policy.touches(&x))
            .collect();
        b.cpu_touches(touches);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SpmvParams {
        SpmvParams {
            rows: 256,
            row_pages_per_chunk: 2,
            rows_per_warp: 32,
            nnz_per_row: 4,
            band_fraction: 0.5,
            bandwidth: 32,
            compute_per_row: SimDuration::ZERO,
            seed: 1,
            cpu_init: None,
        }
    }

    #[test]
    fn warp_count_covers_rows() {
        let w = build(small());
        assert_eq!(w.num_warps(), 8);
        assert_eq!(w.allocations.len(), 3);
    }

    #[test]
    fn deterministic_for_same_seed() {
        assert_eq!(build(small()).programs, build(small()).programs);
        // With a footprint spanning many x pages, seeds change the pattern.
        let big = SpmvParams { rows: 8192, ..small() };
        let a = build(big);
        let b = build(SpmvParams { seed: 2, ..big });
        assert_ne!(a.programs, b.programs);
    }

    #[test]
    fn gathers_stay_within_x() {
        let w = build(small());
        let x = w.allocations[1];
        for p in w.programs.iter().flat_map(|p| p.touched_pages()) {
            if x.contains(p.base_addr()) {
                assert!(p.0 < x.page(0).0 + x.num_pages());
            }
        }
    }

    #[test]
    fn banded_pattern_is_more_local_than_scattered() {
        // With a pure band, each warp's x-gathers stay near its rows; with
        // pure scatter they span the whole vector.
        let banded = build(SpmvParams { band_fraction: 1.0, ..small() });
        let scattered = build(SpmvParams { band_fraction: 0.0, ..small() });
        let x_span = |w: &crate::workload::Workload| {
            let x = w.allocations[1];
            let pages: Vec<u64> = w.programs[0]
                .touched_pages()
                .into_iter()
                .filter(|p| x.contains(p.base_addr()))
                .map(|p| p.0)
                .collect();
            pages.iter().max().unwrap() - pages.iter().min().unwrap()
        };
        assert!(x_span(&banded) <= x_span(&scattered));
    }

    #[test]
    fn each_row_stores_its_y_page() {
        let w = build(small());
        let y = w.allocations[2];
        let stores: usize = w
            .programs
            .iter()
            .flat_map(|p| &p.instrs)
            .filter(|i| i.is_store() && y.contains(i.pages()[0].base_addr()))
            .count();
        assert_eq!(stores, 256);
    }
}
