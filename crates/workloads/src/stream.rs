//! BabelStream triad: `c[i] = a[i] + s * b[i]`.
//!
//! Fully coalesced streaming over three equal vectors. Each warp owns a
//! contiguous chunk and walks it page by page: two loads and one
//! scoreboard-gated store per page triple. Table 3 shows this workload's
//! batches concentrated in few VABlocks (≈3.9) with many faults each
//! (≈15).

use uvm_gpu::isa::{Instr, WarpProgram};
use uvm_sim::mem::PAGE_SIZE;

use crate::cpu_init::CpuInitPolicy;
use crate::workload::Workload;

/// Parameters for the stream triad.
#[derive(Debug, Clone, Copy)]
pub struct StreamParams {
    /// Number of warps.
    pub warps: u32,
    /// Pages per vector per warp.
    pub pages_per_warp: u64,
    /// Triad iterations (BabelStream repeats the kernel many times; >1
    /// makes evicted blocks get re-touched under oversubscription).
    pub iters: u32,
    /// Warps sharing each page triple. A warp covers 32 floats = 128 B, so
    /// on real hardware 32 warps' accesses coalesce into every 4 KiB page;
    /// shared faulting is the source of stream's duplicate faults (Fig. 8).
    pub warps_per_page: u32,
    /// Host-side initialization of `a` and `b`.
    pub cpu_init: Option<CpuInitPolicy>,
}

impl Default for StreamParams {
    fn default() -> Self {
        StreamParams {
            warps: 128,
            pages_per_warp: 32,
            iters: 1,
            warps_per_page: 1,
            cpu_init: None,
        }
    }
}

/// Build the triad workload.
pub fn build(params: StreamParams) -> Workload {
    let warps = params.warps.max(1) as u64;
    let ppw = params.pages_per_warp.max(1);
    let share = params.warps_per_page.max(1) as u64;
    let groups = warps.div_ceil(share);
    let pages_per_vec = groups * ppw;
    let mut b = Workload::builder("stream");
    let a = b.alloc(pages_per_vec * PAGE_SIZE);
    let bb = b.alloc(pages_per_vec * PAGE_SIZE);
    let c = b.alloc(pages_per_vec * PAGE_SIZE);

    for w in 0..warps {
        let mut prog = WarpProgram::new();
        let group = w / share;
        for _iter in 0..params.iters.max(1) {
            for i in 0..ppw {
                let idx = group * ppw + i;
                prog.push(Instr::load1(a.page(idx)));
                prog.push(Instr::load1(bb.page(idx)));
                prog.push(Instr::store1(c.page(idx)));
            }
        }
        b.warp(prog);
    }

    if let Some(policy) = params.cpu_init {
        let touches: Vec<_> = policy
            .touches(&a)
            .into_iter()
            .chain(policy.touches(&bb))
            .collect();
        b.cpu_touches(touches);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triad_structure() {
        let w = build(StreamParams {
            warps: 2,
            pages_per_warp: 3,
            iters: 1,
            warps_per_page: 1,
            cpu_init: None,
        });
        assert_eq!(w.num_warps(), 2);
        let instrs = &w.programs[0].instrs;
        assert_eq!(instrs.len(), 9);
        assert!(matches!(instrs[0], Instr::Load { .. }));
        assert!(matches!(instrs[1], Instr::Load { .. }));
        assert!(instrs[2].is_store());
    }

    #[test]
    fn three_equal_vectors() {
        let w = build(StreamParams::default());
        assert_eq!(w.allocations.len(), 3);
        assert_eq!(w.allocations[0].len, w.allocations[1].len);
        assert_eq!(w.allocations[1].len, w.allocations[2].len);
    }

    #[test]
    fn chunks_are_contiguous_and_disjoint() {
        let w = build(StreamParams {
            warps: 4,
            pages_per_warp: 8,
            iters: 1,
            warps_per_page: 1,
            cpu_init: None,
        });
        let a = w.allocations[0];
        let w0: Vec<_> = w.programs[0]
            .touched_pages()
            .into_iter()
            .filter(|p| a.contains(p.base_addr()))
            .collect();
        assert_eq!(w0.len(), 8);
        assert_eq!(w0[0], a.page(0));
        assert_eq!(w0[7], a.page(7));
        let w1: Vec<_> = w.programs[1]
            .touched_pages()
            .into_iter()
            .filter(|p| a.contains(p.base_addr()))
            .collect();
        assert_eq!(w1[0], a.page(8));
    }
}
