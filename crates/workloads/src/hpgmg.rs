//! HPGMG-FV: geometric multigrid V-cycles.
//!
//! The proxy app sweeps a hierarchy of grid levels: smooth on the fine
//! level, restrict the residual to the next-coarser level, recurse, then
//! prolong corrections back up and smooth again. Each level's arrays are
//! separate managed allocations. The V-cycle structure is what produces
//! the paper's Fig. 17 behaviour: the fine level (allocated first) is
//! re-touched at the *end* of every cycle, so under oversubscription the
//! migration-order LRU keeps evicting exactly the data about to be needed.

use uvm_gpu::isa::{Instr, WarpProgram};
use uvm_sim::mem::{Allocation, PageNum, PAGE_SIZE};
use uvm_sim::time::SimDuration;

use crate::cpu_init::CpuInitPolicy;
use crate::workload::Workload;

/// Parameters for the HPGMG workload.
#[derive(Debug, Clone, Copy)]
pub struct HpgmgParams {
    /// Pages per array at the finest level.
    pub level0_pages: u64,
    /// Number of levels (each coarser level is 4× smaller).
    pub levels: u32,
    /// Number of V-cycles.
    pub vcycles: u32,
    /// Number of warps (each owns a slab of every level).
    pub warps: u32,
    /// Pages per load/store instruction.
    pub pages_per_instr: usize,
    /// Compute time per smooth phase per warp.
    pub compute_per_phase: SimDuration,
    /// Host-side initialization of all levels (the Fig. 11 knob).
    pub cpu_init: Option<CpuInitPolicy>,
}

impl Default for HpgmgParams {
    fn default() -> Self {
        HpgmgParams {
            level0_pages: 2048,
            levels: 4,
            vcycles: 2,
            warps: 64,
            pages_per_instr: 8,
            compute_per_phase: SimDuration::from_micros(10),
            cpu_init: Some(CpuInitPolicy::SingleThread),
        }
    }
}

/// Pages of warp `w`'s slab of an allocation divided among `warps` warps.
fn slab(alloc: &Allocation, w: u64, warps: u64) -> Vec<PageNum> {
    let n = alloc.num_pages();
    let per = n.div_ceil(warps);
    let lo = (w * per).min(n);
    let hi = ((w + 1) * per).min(n);
    (lo..hi).map(|i| alloc.page(i)).collect()
}


/// Deterministic per-warp compute-time factor in [0.7, 1.3]: real blocks
/// experience uneven SM scheduling and cache behaviour, desynchronizing
/// their access phases — without this, simulated warps fault in lockstep
/// and every batch saturates.
fn warp_compute_factor(w: u64) -> f64 {
    let h = w.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56;
    0.7 + 0.6 * (h as f64 / 255.0)
}

/// Build the HPGMG workload.
pub fn build(params: HpgmgParams) -> Workload {
    let levels = params.levels.max(2);
    let warps = params.warps.max(1) as u64;
    let per = params.pages_per_instr.max(1);

    let mut b = Workload::builder("hpgmg");
    // Two arrays per level: solution u and residual r.
    let mut u = Vec::new();
    let mut r = Vec::new();
    for l in 0..levels {
        let pages = (params.level0_pages.max(4) >> (2 * l)).max(1);
        u.push(b.alloc(pages * PAGE_SIZE));
        r.push(b.alloc(pages * PAGE_SIZE));
    }

    for w in 0..warps {
        let mut prog = WarpProgram::new();
        let smooth = |prog: &mut WarpProgram, l: usize| {
            let up = slab(&u[l], w, warps);
            let rp = slab(&r[l], w, warps);
            if up.is_empty() {
                return;
            }
            let mut loads = up.clone();
            loads.extend(rp);
            for chunk in loads.chunks(per) {
                prog.push(Instr::Load { pages: chunk.to_vec() });
            }
            if params.compute_per_phase > SimDuration::ZERO {
                prog.push(Instr::Delay(params.compute_per_phase.mul_f64(warp_compute_factor(w))));
            }
            for chunk in up.chunks(per) {
                prog.push(Instr::Store { pages: chunk.to_vec() });
            }
        };

        for _cycle in 0..params.vcycles.max(1) {
            // Downstroke: smooth each level, then restrict to the coarser.
            for l in 0..(levels as usize - 1) {
                smooth(&mut prog, l);
                let fine = slab(&r[l], w, warps);
                let coarse = slab(&r[l + 1], w, warps);
                for chunk in fine.chunks(per) {
                    prog.push(Instr::Load { pages: chunk.to_vec() });
                }
                if !coarse.is_empty() {
                    for chunk in coarse.chunks(per) {
                        prog.push(Instr::Store { pages: chunk.to_vec() });
                    }
                }
            }
            // Coarsest solve.
            smooth(&mut prog, levels as usize - 1);
            // Upstroke: prolong corrections and smooth.
            for l in (0..(levels as usize - 1)).rev() {
                let coarse = slab(&u[l + 1], w, warps);
                let fine = slab(&u[l], w, warps);
                for chunk in coarse.chunks(per) {
                    prog.push(Instr::Load { pages: chunk.to_vec() });
                }
                if !fine.is_empty() {
                    for chunk in fine.chunks(per) {
                        prog.push(Instr::Store { pages: chunk.to_vec() });
                    }
                }
                smooth(&mut prog, l);
            }
        }
        b.warp(prog);
    }

    if let Some(policy) = params.cpu_init {
        let mut touches = Vec::new();
        for alloc in u.iter().chain(r.iter()) {
            touches.extend(policy.touches(alloc));
        }
        b.cpu_touches(touches);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> HpgmgParams {
        HpgmgParams {
            level0_pages: 256,
            levels: 3,
            vcycles: 1,
            warps: 4,
            pages_per_instr: 8,
            compute_per_phase: SimDuration::ZERO,
            cpu_init: None,
        }
    }

    #[test]
    fn level_hierarchy_shrinks_4x() {
        let w = build(small());
        // 3 levels x 2 arrays = 6 allocations: 256, 256, 64, 64, 16, 16 pages.
        assert_eq!(w.allocations.len(), 6);
        assert_eq!(w.allocations[0].num_pages(), 256);
        assert_eq!(w.allocations[2].num_pages(), 64);
        assert_eq!(w.allocations[4].num_pages(), 16);
    }

    #[test]
    fn vcycle_retouches_fine_level_last() {
        let w = build(small());
        let u0 = w.allocations[0];
        let prog = &w.programs[0];
        let touches_u0: Vec<usize> = prog
            .instrs
            .iter()
            .enumerate()
            .filter(|(_, i)| i.pages().iter().any(|p| u0.contains(p.base_addr())))
            .map(|(idx, _)| idx)
            .collect();
        // The fine level is touched both early (downstroke) and at the very
        // end (final smooth of the upstroke).
        assert!(*touches_u0.first().unwrap() < prog.instrs.len() / 4);
        assert!(*touches_u0.last().unwrap() > 3 * prog.instrs.len() / 4);
    }

    #[test]
    fn vcycles_scale_work() {
        let one = build(small());
        let two = build(HpgmgParams {
            vcycles: 2,
            ..small()
        });
        assert_eq!(two.total_accesses(), 2 * one.total_accesses());
    }

    #[test]
    fn slabs_partition_each_level() {
        let w = build(small());
        let u0 = w.allocations[0];
        let mut pages: Vec<_> = w
            .programs
            .iter()
            .flat_map(|p| p.touched_pages())
            .filter(|p| u0.contains(p.base_addr()))
            .collect();
        pages.sort_unstable();
        pages.dedup();
        assert_eq!(pages.len() as u64, u0.num_pages(), "every fine page touched");
    }

    #[test]
    fn cpu_init_covers_all_levels() {
        let w = build(HpgmgParams {
            cpu_init: Some(CpuInitPolicy::Striped { threads: 8 }),
            ..small()
        });
        let total: u64 = w.allocations.iter().map(|a| a.num_pages()).sum();
        assert_eq!(w.cpu_init.len() as u64, total);
    }
}
