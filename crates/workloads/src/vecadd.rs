//! The Listing 1 vector-addition microbenchmark.
//!
//! Each thread computes `c[i] = a[i] + b[i]` for indices one page apart, so
//! every lane of every warp touches its own page — the configuration the
//! paper uses to expose the 56-fault μTLB limit (Fig. 3) and the
//! scoreboard-gated write behaviour (Listing 2). The `coalesced` variant
//! instead walks consecutive elements (one page per warp instruction), the
//! shape real streaming kernels produce.

use uvm_gpu::isa::{Instr, WarpProgram};
use uvm_sim::mem::PAGE_SIZE;

use crate::cpu_init::CpuInitPolicy;
use crate::workload::Workload;

/// Parameters for the vector-addition microbenchmark.
#[derive(Debug, Clone, Copy)]
pub struct VecAddParams {
    /// Number of warps (the paper's Listing 1 uses one).
    pub warps: u32,
    /// Statements per thread (`c[pN] = a[pN] + b[pN]`; the paper uses 3).
    pub statements: u32,
    /// Coalesced variant: lanes touch consecutive elements instead of
    /// one page per lane.
    pub coalesced: bool,
    /// Host-side initialization of `a` and `b` (the GPU writes `c` first).
    pub cpu_init: Option<CpuInitPolicy>,
}

impl Default for VecAddParams {
    fn default() -> Self {
        VecAddParams {
            warps: 1,
            statements: 3,
            coalesced: false,
            cpu_init: None,
        }
    }
}

/// Build the vector-addition workload.
pub fn build(params: VecAddParams) -> Workload {
    let lanes = 32u64;
    let warps = params.warps.max(1) as u64;
    let statements = params.statements.max(1) as u64;
    // Page-strided: each (warp, statement, lane) has its own page.
    // Coalesced: each (warp, statement) touches one page.
    let pages_per_vec = if params.coalesced {
        warps * statements
    } else {
        warps * statements * lanes
    };

    let mut b = Workload::builder(if params.coalesced { "vecadd-coalesced" } else { "vecadd" });
    let a = b.alloc(pages_per_vec * PAGE_SIZE);
    let bb = b.alloc(pages_per_vec * PAGE_SIZE);
    let c = b.alloc(pages_per_vec * PAGE_SIZE);

    for w in 0..warps {
        let mut prog = WarpProgram::new();
        for s in 0..statements {
            let pages = |vec: &uvm_sim::mem::Allocation| -> Vec<uvm_sim::mem::PageNum> {
                if params.coalesced {
                    vec![vec.page(w * statements + s)]
                } else {
                    // Lane l of statement s touches page (s*warps + w)*32 + l,
                    // matching Listing 1's `page0 + FPSIZE*TSIZE*stmt` layout.
                    (0..lanes).map(|l| vec.page((s * warps + w) * lanes + l)).collect()
                }
            };
            prog.push(Instr::Load { pages: pages(&a) });
            prog.push(Instr::Load { pages: pages(&bb) });
            prog.push(Instr::Store { pages: pages(&c) });
        }
        b.warp(prog);
    }

    if let Some(policy) = params.cpu_init {
        let touches: Vec<_> = policy
            .touches(&a)
            .into_iter()
            .chain(policy.touches(&bb))
            .collect();
        b.cpu_touches(touches);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing1_shape() {
        let w = build(VecAddParams::default());
        assert_eq!(w.num_warps(), 1);
        // 3 statements x 3 instructions.
        assert_eq!(w.programs[0].instrs.len(), 9);
        // 3 vectors x 3 statements x 32 lanes = 288 distinct pages.
        assert_eq!(w.programs[0].touched_pages().len(), 288);
        assert_eq!(w.total_accesses(), 288);
        assert!(w.cpu_init.is_empty());
    }

    #[test]
    fn store_follows_loads_each_statement() {
        let w = build(VecAddParams::default());
        let instrs = &w.programs[0].instrs;
        for s in 0..3 {
            assert!(!instrs[s * 3].is_store());
            assert!(!instrs[s * 3 + 1].is_store());
            assert!(instrs[s * 3 + 2].is_store());
        }
    }

    #[test]
    fn coalesced_touches_one_page_per_instr() {
        let w = build(VecAddParams {
            coalesced: true,
            ..Default::default()
        });
        for instr in &w.programs[0].instrs {
            assert_eq!(instr.pages().len(), 1);
        }
        assert_eq!(w.programs[0].touched_pages().len(), 9);
    }

    #[test]
    fn multi_warp_pages_are_disjoint() {
        let w = build(VecAddParams {
            warps: 4,
            ..Default::default()
        });
        let mut all: Vec<_> = w.programs.iter().flat_map(|p| p.touched_pages()).collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "warps must not share pages in this microbenchmark");
    }

    #[test]
    fn cpu_init_covers_inputs_only() {
        let w = build(VecAddParams {
            cpu_init: Some(CpuInitPolicy::SingleThread),
            ..Default::default()
        });
        // a and b fully touched; c untouched.
        assert_eq!(w.cpu_init.len() as u64, w.allocations[0].num_pages() * 2);
    }
}
