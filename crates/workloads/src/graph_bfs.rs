//! Pointer-chasing graph BFS (level-synchronous, one kernel per level).
//!
//! The canonical irregular workload UVMBench and the EMOGI line of work
//! use to stress UVM: traversal order is data-dependent, so page touches
//! follow the graph's edge structure instead of any stride a reactive
//! prefetcher can learn. A deterministic random graph is generated from
//! the seed, BFS levels are computed host-side, and each level becomes one
//! kernel whose warps (a) stream their frontier vertices' adjacency
//! lists, (b) *gather* the scattered per-neighbor vertex data — the
//! pointer chase — and (c) store visit marks. Early levels touch a
//! handful of pages; the wavefront levels touch most of the vertex-data
//! allocation in near-random order.

use uvm_gpu::isa::{Instr, WarpProgram};
use uvm_sim::mem::PAGE_SIZE;
use uvm_sim::rng::DetRng;
use uvm_sim::time::SimDuration;

use crate::cpu_init::CpuInitPolicy;
use crate::workload::Workload;

/// Parameters for the BFS workload.
#[derive(Debug, Clone, Copy)]
pub struct GraphBfsParams {
    /// Vertices in the graph.
    pub vertices: u64,
    /// Average out-degree (each vertex draws `1..=2*avg_degree` edges).
    pub avg_degree: u32,
    /// Bytes of per-vertex payload in the vertex-data array (the gather
    /// target; larger payloads spread vertices over more pages).
    pub vdata_bytes: u64,
    /// Frontier vertices assigned to one warp within a level.
    pub frontier_per_warp: u64,
    /// Cap on BFS levels (and therefore kernels); the traversal stops
    /// early once the frontier empties.
    pub max_levels: u32,
    /// Compute time charged per processed vertex.
    pub compute_per_vertex: SimDuration,
    /// Graph seed.
    pub seed: u64,
    /// Host-side initialization of the adjacency and vertex-data arrays.
    pub cpu_init: Option<CpuInitPolicy>,
}

impl Default for GraphBfsParams {
    fn default() -> Self {
        GraphBfsParams {
            vertices: 32_768,
            avg_degree: 8,
            vdata_bytes: 128,
            frontier_per_warp: 64,
            max_levels: 16,
            compute_per_vertex: SimDuration::from_nanos(200),
            seed: 0xBF5,
            cpu_init: Some(CpuInitPolicy::SingleThread),
        }
    }
}

/// Adjacency entries (8-byte neighbor ids) per 4 KiB page.
const ADJ_PER_PAGE: u64 = PAGE_SIZE / 8;

/// Build the BFS workload.
pub fn build(params: GraphBfsParams) -> Workload {
    let n = params.vertices.max(2);
    let vdata_bytes = params.vdata_bytes.max(8);
    let verts_per_page = (PAGE_SIZE / vdata_bytes).max(1);
    let mut rng = DetRng::new(params.seed);

    // Deterministic random graph: per-vertex edge lists, stored CSR-style
    // in the adjacency array (cumulative offsets → page addresses).
    let mut adjacency: Vec<Vec<u64>> = Vec::with_capacity(n as usize);
    let mut offsets: Vec<u64> = Vec::with_capacity(n as usize + 1);
    offsets.push(0);
    for _ in 0..n {
        let deg = 1 + rng.below(u64::from(params.avg_degree.max(1)) * 2);
        let mut edges: Vec<u64> = (0..deg).map(|_| rng.below(n)).collect();
        edges.sort_unstable();
        edges.dedup();
        offsets.push(offsets.last().unwrap() + edges.len() as u64);
        adjacency.push(edges);
    }
    let total_edges = *offsets.last().unwrap();

    let mut b = Workload::builder("graph-bfs");
    let adj = b.alloc(total_edges.div_ceil(ADJ_PER_PAGE).max(1) * PAGE_SIZE);
    let vdata = b.alloc(n.div_ceil(verts_per_page) * PAGE_SIZE);
    let visited = b.alloc(n.div_ceil(ADJ_PER_PAGE).max(1) * PAGE_SIZE);

    // Host-side level-synchronous BFS from vertex 0; each level's frontier
    // becomes one kernel.
    let mut seen = vec![false; n as usize];
    seen[0] = true;
    let mut frontier: Vec<u64> = vec![0];
    let mut level = 0u32;
    while !frontier.is_empty() && level < params.max_levels.max(1) {
        for chunk in frontier.chunks(params.frontier_per_warp.max(1) as usize) {
            let mut prog = WarpProgram::new();
            for &v in chunk {
                // Stream this vertex's adjacency slice.
                let (lo, hi) = (offsets[v as usize], offsets[v as usize + 1]);
                let mut adj_pages: Vec<_> =
                    (lo / ADJ_PER_PAGE..=(hi.saturating_sub(1)) / ADJ_PER_PAGE)
                        .map(|p| adj.page(p))
                        .collect();
                adj_pages.dedup();
                prog.push(Instr::Load { pages: adj_pages });
                // The pointer chase: gather every neighbor's vertex data.
                let mut gathers: Vec<_> = adjacency[v as usize]
                    .iter()
                    .map(|&u| vdata.page(u / verts_per_page))
                    .collect();
                gathers.sort_unstable();
                gathers.dedup();
                prog.push(Instr::Load { pages: gathers });
                if params.compute_per_vertex > SimDuration::ZERO {
                    prog.push(Instr::Delay(params.compute_per_vertex));
                }
                prog.push(Instr::Store { pages: vec![visited.page(v / ADJ_PER_PAGE)] });
            }
            b.warp(prog);
        }
        b.end_kernel();
        // Next frontier: unseen neighbors, in deterministic ascending order.
        let mut next: Vec<u64> = Vec::new();
        for &v in &frontier {
            for &u in &adjacency[v as usize] {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    next.push(u);
                }
            }
        }
        next.sort_unstable();
        frontier = next;
        level += 1;
    }

    if let Some(policy) = params.cpu_init {
        let touches: Vec<_> = policy
            .touches(&adj)
            .into_iter()
            .chain(policy.touches(&vdata))
            .collect();
        b.cpu_touches(touches);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GraphBfsParams {
        GraphBfsParams {
            vertices: 2048,
            avg_degree: 4,
            vdata_bytes: 64,
            frontier_per_warp: 32,
            max_levels: 8,
            compute_per_vertex: SimDuration::ZERO,
            seed: 3,
            cpu_init: None,
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = build(small());
        let b = build(small());
        assert_eq!(a.programs, b.programs);
        assert_eq!(a.kernel_ends, b.kernel_ends);
        let c = build(GraphBfsParams { seed: 4, ..small() });
        assert_ne!(a.programs, c.programs);
    }

    #[test]
    fn traversal_is_level_synchronous_and_multi_kernel() {
        let w = build(small());
        let kernels = w.kernels();
        assert!(kernels.len() >= 3, "BFS should take several levels: {}", kernels.len());
        // Level 0 is the single root vertex: exactly one warp.
        assert_eq!(kernels[0].len(), 1);
        // The wavefront grows before the traversal ends.
        let widest = kernels.iter().map(std::ops::Range::len).max().unwrap();
        assert!(widest > kernels[0].len(), "frontier never grew: {kernels:?}");
    }

    #[test]
    fn all_pages_within_allocations() {
        let w = build(small());
        let end = w.allocations.iter().map(|a| a.end().0).max().unwrap();
        for p in w.programs.iter().flat_map(|p| p.touched_pages()) {
            assert!(p.base_addr().0 < end);
        }
    }

    #[test]
    fn gathers_are_scattered_across_vdata() {
        // The pointer chase must touch many distinct vertex-data pages —
        // the irregularity the workload exists to produce.
        let w = build(small());
        let vdata = w.allocations[1];
        let pages: std::collections::BTreeSet<_> = w
            .programs
            .iter()
            .flat_map(|p| p.touched_pages())
            .filter(|p| vdata.contains(p.base_addr()))
            .collect();
        assert!(pages.len() > 10, "expected scattered vdata gathers: {}", pages.len());
    }
}
