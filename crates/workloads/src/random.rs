//! The "Random" synthetic benchmark.
//!
//! Warps touch uniformly random pages across a large region — the
//! worst case for the driver's VABlock-oriented servicing: Table 3 shows
//! ≈233 distinct VABlocks per batch at ≈1 fault per VABlock, i.e. no
//! spatial locality whatsoever.

use uvm_gpu::isa::{Instr, WarpProgram};
use uvm_sim::mem::PAGE_SIZE;
use uvm_sim::rng::DetRng;

use crate::cpu_init::CpuInitPolicy;
use crate::workload::Workload;

/// Parameters for the random-access benchmark.
#[derive(Debug, Clone, Copy)]
pub struct RandomParams {
    /// Number of warps.
    pub warps: u32,
    /// Random single-page accesses per warp.
    pub accesses_per_warp: u32,
    /// Footprint in pages.
    pub footprint_pages: u64,
    /// Seed for the access pattern.
    pub seed: u64,
    /// Host-side initialization.
    pub cpu_init: Option<CpuInitPolicy>,
}

impl Default for RandomParams {
    fn default() -> Self {
        RandomParams {
            warps: 160,
            accesses_per_warp: 64,
            footprint_pages: 16 * 1024, // 64 MiB
            seed: 0xBAD5EED,
            cpu_init: None,
        }
    }
}

/// Build the random-access workload.
pub fn build(params: RandomParams) -> Workload {
    let mut rng = DetRng::new(params.seed);
    let mut b = Workload::builder("random");
    let region = b.alloc(params.footprint_pages.max(1) * PAGE_SIZE);
    for _ in 0..params.warps.max(1) {
        let mut prog = WarpProgram::new();
        for _ in 0..params.accesses_per_warp.max(1) {
            let p = region.page(rng.below(params.footprint_pages.max(1)));
            prog.push(Instr::Load { pages: vec![p] });
        }
        b.warp(prog);
    }
    if let Some(policy) = params.cpu_init {
        let touches = policy.touches(&region);
        b.cpu_touches(touches);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = build(RandomParams::default());
        let b = build(RandomParams::default());
        assert_eq!(a.programs, b.programs);
    }

    #[test]
    fn different_seeds_differ() {
        let a = build(RandomParams::default());
        let b = build(RandomParams {
            seed: 123,
            ..Default::default()
        });
        assert_ne!(a.programs, b.programs);
    }

    #[test]
    fn accesses_spread_over_many_blocks() {
        let w = build(RandomParams {
            warps: 32,
            accesses_per_warp: 32,
            footprint_pages: 8192,
            seed: 7,
            cpu_init: None,
        });
        let blocks: std::collections::HashSet<_> = w
            .programs
            .iter()
            .flat_map(|p| p.touched_pages())
            .map(|p| p.va_block())
            .collect();
        assert!(blocks.len() > 10, "random accesses span many VABlocks: {}", blocks.len());
    }

    #[test]
    fn all_pages_within_allocation() {
        let w = build(RandomParams::default());
        let region = w.allocations[0];
        for p in w.programs.iter().flat_map(|p| p.touched_pages()) {
            assert!(p >= region.page(0));
            assert!(p.0 < region.page(0).0 + region.num_pages());
        }
    }
}
