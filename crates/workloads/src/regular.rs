//! The "Regular" synthetic benchmark.
//!
//! Every warp streams through its own contiguous page range — maximal
//! regularity, every SM faulting continuously. In Tables 2 and 3 this
//! workload shows the highest per-SM fault density (≈3.2, the fair-share
//! cap) and faults spread across many VABlocks per batch.

use uvm_gpu::isa::{Instr, WarpProgram};
use uvm_sim::mem::PAGE_SIZE;

use crate::cpu_init::CpuInitPolicy;
use crate::workload::Workload;

/// Parameters for the regular streaming benchmark.
#[derive(Debug, Clone, Copy)]
pub struct RegularParams {
    /// Number of warps (spread across all SMs).
    pub warps: u32,
    /// Contiguous pages each warp streams through.
    pub pages_per_warp: u64,
    /// Pages touched per warp instruction (page-strided lanes).
    pub pages_per_instr: usize,
    /// Host-side initialization.
    pub cpu_init: Option<CpuInitPolicy>,
}

impl Default for RegularParams {
    fn default() -> Self {
        RegularParams {
            warps: 160,
            pages_per_warp: 64,
            pages_per_instr: 4,
            cpu_init: None,
        }
    }
}

/// Build the regular streaming workload.
pub fn build(params: RegularParams) -> Workload {
    let warps = params.warps.max(1) as u64;
    let ppw = params.pages_per_warp.max(1);
    let per = params.pages_per_instr.max(1);
    let mut b = Workload::builder("regular");
    let region = b.alloc(warps * ppw * PAGE_SIZE);
    for w in 0..warps {
        let mut prog = WarpProgram::new();
        let pages: Vec<_> = (0..ppw).map(|i| region.page(w * ppw + i)).collect();
        for chunk in pages.chunks(per) {
            prog.push(Instr::Load { pages: chunk.to_vec() });
        }
        b.warp(prog);
    }
    if let Some(policy) = params.cpu_init {
        let touches = policy.touches(&region);
        b.cpu_touches(touches);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_whole_region_exactly_once() {
        let w = build(RegularParams {
            warps: 8,
            pages_per_warp: 16,
            pages_per_instr: 4,
            cpu_init: Some(CpuInitPolicy::SingleThread),
        });
        assert_eq!(w.num_warps(), 8);
        assert_eq!(w.total_accesses(), 128);
        let mut pages: Vec<_> = w.programs.iter().flat_map(|p| p.touched_pages()).collect();
        pages.sort_unstable();
        pages.dedup();
        assert_eq!(pages.len(), 128, "no sharing between warps");
        assert_eq!(w.cpu_init.len(), 128);
    }

    #[test]
    fn default_footprint_is_multi_block() {
        let w = build(RegularParams::default());
        assert!(w.footprint_blocks() >= 20);
    }
}
