//! Gauss-Seidel 2-D stencil sweeps.
//!
//! The GPU formulation is *row-parallel, sweep-sequential*: every warp owns
//! a column slice and all warps cooperate on row `r` — reading rows
//! `r-1..r+1` and the right-hand side, writing row `r` — before the sweep
//! advances (the row dependency rides on the store scoreboard: a warp
//! cannot store row `r` until its reads are fulfilled, and it cannot read
//! row `r+1`'s new values before issuing that store).
//!
//! This structure produces the paper's Table 3 signature for Gauss-Seidel:
//! the highest locality of the suite — a couple of VABlocks per batch with
//! dozens of faults each — plus heavy cross-warp page sharing (the warps
//! of a row straddle the same pages), and re-sweeps that re-touch early
//! rows late (the Fig. 16 eviction churn).

use uvm_gpu::isa::{Instr, WarpProgram};
use uvm_sim::mem::PAGE_SIZE;
use uvm_sim::time::SimDuration;

use crate::cpu_init::CpuInitPolicy;
use crate::workload::Workload;

/// Parameters for the Gauss-Seidel workload.
#[derive(Debug, Clone, Copy)]
pub struct GaussSeidelParams {
    /// Grid rows.
    pub rows: u64,
    /// Pages per row (grid width × element size / 4 KiB).
    pub pages_per_row: u64,
    /// Warps cooperating on each row (each owns a column slice).
    pub warps: u32,
    /// Number of sweeps.
    pub iters: u32,
    /// Compute time per row update (per warp).
    pub compute_per_row: SimDuration,
    /// Host-side initialization of `u` and `rhs`.
    pub cpu_init: Option<CpuInitPolicy>,
}

impl Default for GaussSeidelParams {
    fn default() -> Self {
        GaussSeidelParams {
            rows: 1024,
            pages_per_row: 2,
            warps: 64,
            iters: 2,
            compute_per_row: SimDuration::from_micros(2),
            cpu_init: Some(CpuInitPolicy::SingleThread),
        }
    }
}

/// Deterministic per-warp compute-time factor in [0.85, 1.15]: cooperating
/// warps stay roughly in step but not in lockstep.
fn warp_compute_factor(w: u64) -> f64 {
    let h = w.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56;
    0.85 + 0.3 * (h as f64 / 255.0)
}

/// Build the Gauss-Seidel workload.
pub fn build(params: GaussSeidelParams) -> Workload {
    let rows = params.rows.max(2);
    let ppr = params.pages_per_row.max(1);
    let warps = params.warps.max(1) as u64;
    let mut b = Workload::builder("gauss-seidel");
    let u = b.alloc(rows * ppr * PAGE_SIZE);
    let rhs = b.alloc(rows * ppr * PAGE_SIZE);

    // The page of row `r` that warp `w`'s column slice falls in.
    let slice_page = |alloc: &uvm_sim::mem::Allocation, r: u64, w: u64| {
        alloc.page(r * ppr + (w * ppr) / warps)
    };

    for w in 0..warps {
        let mut prog = WarpProgram::new();
        for _iter in 0..params.iters.max(1) {
            for r in 0..rows {
                let above = r.saturating_sub(1);
                let below = (r + 1).min(rows - 1);
                let mut loads = vec![
                    slice_page(&u, above, w),
                    slice_page(&u, r, w),
                    slice_page(&u, below, w),
                    slice_page(&rhs, r, w),
                ];
                loads.sort_unstable();
                loads.dedup();
                prog.push(Instr::Load { pages: loads });
                if params.compute_per_row > SimDuration::ZERO {
                    prog.push(Instr::Delay(
                        params.compute_per_row.mul_f64(warp_compute_factor(w)),
                    ));
                }
                prog.push(Instr::Store { pages: vec![slice_page(&u, r, w)] });
            }
        }
        b.warp(prog);
    }

    if let Some(policy) = params.cpu_init {
        let touches: Vec<_> = policy
            .touches(&u)
            .into_iter()
            .chain(policy.touches(&rhs))
            .collect();
        b.cpu_touches(touches);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GaussSeidelParams {
        GaussSeidelParams {
            rows: 16,
            pages_per_row: 2,
            warps: 4,
            iters: 1,
            compute_per_row: SimDuration::ZERO,
            cpu_init: None,
        }
    }

    #[test]
    fn every_warp_sweeps_every_row() {
        let w = build(small());
        assert_eq!(w.num_warps(), 4);
        // Per warp: 16 rows x (1 load + 1 store).
        for p in &w.programs {
            assert_eq!(p.instrs.len(), 32);
        }
    }

    #[test]
    fn warps_split_rows_into_column_slices() {
        let w = build(small());
        let u = w.allocations[0];
        // 2 pages per row, 4 warps: warps 0-1 take page 0, warps 2-3 page 1.
        let first_store = |i: usize| {
            w.programs[i]
                .instrs
                .iter()
                .find(|ins| ins.is_store())
                .unwrap()
                .pages()[0]
        };
        assert_eq!(first_store(0), u.page(0));
        assert_eq!(first_store(1), u.page(0));
        assert_eq!(first_store(2), u.page(1));
        assert_eq!(first_store(3), u.page(1));
    }

    #[test]
    fn stencil_reads_neighbour_rows_and_rhs() {
        let w = build(small());
        let u = w.allocations[0];
        let rhs = w.allocations[1];
        // Warp 0, row 1 (instruction index 2 = row 1's load).
        let load = &w.programs[0].instrs[2];
        let pages = load.pages();
        assert!(pages.contains(&u.page(0)), "row above");
        assert!(pages.contains(&u.page(2)), "row itself");
        assert!(pages.contains(&u.page(4)), "row below");
        assert!(pages.contains(&rhs.page(2)), "rhs");
    }

    #[test]
    fn iterations_multiply_accesses() {
        let one = build(small());
        let two = build(GaussSeidelParams { iters: 2, ..small() });
        assert_eq!(two.total_accesses(), 2 * one.total_accesses());
    }

    #[test]
    fn rows_shared_across_warps() {
        let w = build(small());
        let u0 = w.allocations[0].page(0);
        let sharers = w
            .programs
            .iter()
            .filter(|p| p.touched_pages().contains(&u0))
            .count();
        assert!(sharers >= 2, "pages are shared by cooperating warps: {sharers}");
    }
}
