//! cuFFT-like butterfly access structure.
//!
//! A radix-2 FFT performs `log2(chunks)` passes; in pass `s` each work
//! chunk exchanges data with the partner chunk at XOR-distance `2^s`. At
//! small strides partners are adjacent (high locality); at large strides
//! they are far apart — which is why Table 3 shows cuFFT's faults spread
//! over many VABlocks (≈25 per batch) at low per-block density (≈2.9).

use uvm_gpu::isa::{Instr, WarpProgram};
use uvm_sim::mem::PAGE_SIZE;
use uvm_sim::time::SimDuration;

use crate::cpu_init::CpuInitPolicy;
use crate::workload::Workload;

/// Parameters for the FFT workload.
#[derive(Debug, Clone, Copy)]
pub struct FftParams {
    /// Number of work chunks (power of two); one warp per chunk.
    pub chunks: u64,
    /// Pages per chunk.
    pub pages_per_chunk: u64,
    /// Pages per load/store instruction.
    pub pages_per_instr: usize,
    /// Compute time per butterfly pass.
    pub compute_per_pass: SimDuration,
    /// Host-side initialization of the signal.
    pub cpu_init: Option<CpuInitPolicy>,
}

impl Default for FftParams {
    fn default() -> Self {
        FftParams {
            chunks: 64,
            pages_per_chunk: 16,
            pages_per_instr: 8,
            compute_per_pass: SimDuration::from_micros(20),
            cpu_init: Some(CpuInitPolicy::SingleThread),
        }
    }
}


/// Deterministic per-warp compute-time factor in [0.7, 1.3]: real blocks
/// experience uneven SM scheduling and cache behaviour, desynchronizing
/// their access phases — without this, simulated warps fault in lockstep
/// and every batch saturates.
fn warp_compute_factor(w: u64) -> f64 {
    let h = w.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56;
    0.7 + 0.6 * (h as f64 / 255.0)
}

/// Build the FFT workload.
pub fn build(params: FftParams) -> Workload {
    let chunks = params.chunks.next_power_of_two().max(2);
    let ppc = params.pages_per_chunk.max(1);
    let per = params.pages_per_instr.max(1);
    let passes = chunks.trailing_zeros();

    let mut b = Workload::builder("cufft");
    let x = b.alloc(chunks * ppc * PAGE_SIZE);

    for w in 0..chunks {
        let mut prog = WarpProgram::new();
        let own: Vec<_> = (0..ppc).map(|i| x.page(w * ppc + i)).collect();
        for s in 0..passes {
            let partner = w ^ (1u64 << s);
            let theirs: Vec<_> = (0..ppc).map(|i| x.page(partner * ppc + i)).collect();
            for chunk in own.chunks(per) {
                prog.push(Instr::Load { pages: chunk.to_vec() });
            }
            for chunk in theirs.chunks(per) {
                prog.push(Instr::Load { pages: chunk.to_vec() });
            }
            if params.compute_per_pass > SimDuration::ZERO {
                prog.push(Instr::Delay(params.compute_per_pass.mul_f64(warp_compute_factor(w))));
            }
            for chunk in own.chunks(per) {
                prog.push(Instr::Store { pages: chunk.to_vec() });
            }
        }
        b.warp(prog);
    }

    if let Some(policy) = params.cpu_init {
        let touches = policy.touches(&x);
        b.cpu_touches(touches);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_count_is_log2_chunks() {
        let w = build(FftParams {
            chunks: 8,
            pages_per_chunk: 4,
            pages_per_instr: 4,
            compute_per_pass: SimDuration::ZERO,
            cpu_init: None,
        });
        assert_eq!(w.num_warps(), 8);
        // 3 passes x (1 own load + 1 partner load + 1 store) instructions.
        assert_eq!(w.programs[0].instrs.len(), 9);
    }

    #[test]
    fn partners_follow_xor_pattern() {
        let w = build(FftParams {
            chunks: 4,
            pages_per_chunk: 1,
            pages_per_instr: 1,
            compute_per_pass: SimDuration::ZERO,
            cpu_init: None,
        });
        // Warp 0, pass 0 partner = chunk 1; pass 1 partner = chunk 2.
        let prog = &w.programs[0];
        let x = w.allocations[0];
        let loads: Vec<u64> = prog
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Load { .. }))
            .map(|i| i.pages()[0].0 - x.page(0).0)
            .collect();
        assert_eq!(loads, vec![0, 1, 0, 2]);
    }

    #[test]
    fn chunks_rounded_to_power_of_two() {
        let w = build(FftParams {
            chunks: 5,
            pages_per_chunk: 1,
            pages_per_instr: 1,
            compute_per_pass: SimDuration::ZERO,
            cpu_init: None,
        });
        assert_eq!(w.num_warps(), 8);
    }

    #[test]
    fn late_passes_touch_distant_pages() {
        let w = build(FftParams {
            chunks: 64,
            pages_per_chunk: 16,
            pages_per_instr: 16,
            compute_per_pass: SimDuration::ZERO,
            cpu_init: None,
        });
        let prog = &w.programs[0];
        let x = w.allocations[0];
        // The last pass's partner load should be 32 chunks away.
        let loads: Vec<u64> = prog
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Load { .. }))
            .map(|i| (i.pages()[0].0 - x.page(0).0) / 16)
            .collect();
        assert_eq!(*loads.last().unwrap(), 32);
    }
}
