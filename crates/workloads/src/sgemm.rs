//! Tiled GEMM (cuBLAS sgemm/dgemm access structure).
//!
//! `C = A × B` with square matrices, processed in `tile × tile` blocks.
//! One warp owns one C tile and, for each k-step, reads the corresponding
//! A and B tiles before finally storing its C tile. The structure creates
//! exactly the driver-visible properties the paper reports for sgemm:
//!
//! * heavy tile reuse across warps in the same row/column → cross-μTLB
//!   duplicate faults;
//! * per-k-step "phases" in the batch time series (Fig. 8);
//! * the write burst to C at the end of each warp's work;
//! * moderate VABlock spread (Table 3: ≈7 blocks/batch).

use std::collections::BTreeSet;

use uvm_gpu::isa::{Instr, WarpProgram};
use uvm_sim::mem::{Allocation, PageNum, PAGE_SIZE};
use uvm_sim::time::SimDuration;

use crate::cpu_init::CpuInitPolicy;
use crate::workload::Workload;

/// Parameters for the tiled GEMM workload.
#[derive(Debug, Clone, Copy)]
pub struct GemmParams {
    /// Matrix dimension (n × n).
    pub n: u64,
    /// Tile edge (paper-era cuBLAS uses 128 on Volta).
    pub tile: u64,
    /// Element size in bytes: 4 for sgemm, 8 for dgemm.
    pub elem_size: u64,
    /// Pages per load/store instruction (lane coalescing width).
    pub pages_per_instr: usize,
    /// Compute time per k-step (tile FMA work between access phases).
    pub compute_per_ktile: SimDuration,
    /// Host-side initialization of A and B.
    pub cpu_init: Option<CpuInitPolicy>,
}

impl Default for GemmParams {
    fn default() -> Self {
        GemmParams {
            n: 1024,
            tile: 128,
            elem_size: 4,
            pages_per_instr: 32,
            compute_per_ktile: SimDuration::from_micros(40),
            cpu_init: Some(CpuInitPolicy::SingleThread),
        }
    }
}

impl GemmParams {
    /// dgemm: 8-byte elements.
    pub fn dgemm(self) -> Self {
        GemmParams {
            elem_size: 8,
            ..self
        }
    }
}

/// The distinct pages a `tile × tile` sub-matrix at `(row0, col0)` of a
/// row-major `n × n` matrix with `elem_size`-byte elements occupies.
pub fn tile_pages(
    alloc: &Allocation,
    n: u64,
    elem_size: u64,
    row0: u64,
    col0: u64,
    tile: u64,
) -> Vec<PageNum> {
    let mut pages = BTreeSet::new();
    for r in row0..(row0 + tile).min(n) {
        let start = (r * n + col0) * elem_size;
        let end = start + tile.min(n - col0) * elem_size;
        let first = start / PAGE_SIZE;
        let last = (end - 1) / PAGE_SIZE;
        for p in first..=last {
            pages.insert(PageNum(alloc.page(0).0 + p));
        }
    }
    pages.into_iter().collect()
}


/// Deterministic per-warp compute-time factor in [0.7, 1.3]: real blocks
/// experience uneven SM scheduling and cache behaviour, desynchronizing
/// their access phases — without this, simulated warps fault in lockstep
/// and every batch saturates.
fn warp_compute_factor(w: u64) -> f64 {
    let h = w.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56;
    0.7 + 0.6 * (h as f64 / 255.0)
}

/// Build the tiled GEMM workload.
pub fn build(params: GemmParams) -> Workload {
    let n = params.n.max(params.tile);
    let tile = params.tile.max(1);
    let tiles = n / tile;
    let bytes = n * n * params.elem_size;
    let name = if params.elem_size == 8 { "dgemm" } else { "sgemm" };

    let mut b = Workload::builder(name);
    let a = b.alloc(bytes);
    let bm = b.alloc(bytes);
    let c = b.alloc(bytes);

    let per = params.pages_per_instr.max(1);
    for ti in 0..tiles {
        for tj in 0..tiles {
            let mut prog = WarpProgram::new();
            for tk in 0..tiles {
                let a_pages = tile_pages(&a, n, params.elem_size, ti * tile, tk * tile, tile);
                for chunk in a_pages.chunks(per) {
                    prog.push(Instr::Load { pages: chunk.to_vec() });
                }
                let b_pages = tile_pages(&bm, n, params.elem_size, tk * tile, tj * tile, tile);
                for chunk in b_pages.chunks(per) {
                    prog.push(Instr::Load { pages: chunk.to_vec() });
                }
                if params.compute_per_ktile > SimDuration::ZERO {
                    let d = params
                        .compute_per_ktile
                        .mul_f64(warp_compute_factor(ti * tiles + tj));
                    prog.push(Instr::Delay(d));
                }
            }
            let c_pages = tile_pages(&c, n, params.elem_size, ti * tile, tj * tile, tile);
            for chunk in c_pages.chunks(per) {
                prog.push(Instr::Store { pages: chunk.to_vec() });
            }
            b.warp(prog);
        }
    }

    if let Some(policy) = params.cpu_init {
        let touches: Vec<_> = policy
            .touches(&a)
            .into_iter()
            .chain(policy.touches(&bm))
            .collect();
        b.cpu_touches(touches);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_pages_one_page_per_row_when_row_is_page() {
        // n=1024, f32: one row = 4096 B = exactly one page.
        let alloc = uvm_sim::mem::AddressSpaceAllocator::new().alloc(1024 * 1024 * 4);
        let pages = tile_pages(&alloc, 1024, 4, 0, 0, 128);
        assert_eq!(pages.len(), 128);
        // Tile at column 512 touches the same row pages (different offsets).
        let pages2 = tile_pages(&alloc, 1024, 4, 0, 512, 128);
        assert_eq!(pages, pages2);
    }

    #[test]
    fn warp_count_is_tile_grid() {
        let w = build(GemmParams::default());
        assert_eq!(w.num_warps(), 64); // (1024/128)^2
        assert_eq!(w.allocations.len(), 3);
        assert_eq!(w.footprint_bytes(), 3 * 1024 * 1024 * 4);
    }

    #[test]
    fn warps_share_a_and_b_tiles() {
        let w = build(GemmParams::default());
        // Warps 0 and 1 (same tile row) share all their A pages.
        let a = w.allocations[0];
        let a_pages = |i: usize| -> std::collections::BTreeSet<_> {
            w.programs[i]
                .touched_pages()
                .into_iter()
                .filter(|p| a.contains(p.base_addr()))
                .collect()
        };
        assert_eq!(a_pages(0), a_pages(1), "row-mates reuse A tiles");
    }

    #[test]
    fn stores_come_last() {
        let w = build(GemmParams::default());
        let instrs = &w.programs[0].instrs;
        let first_store = instrs.iter().position(|i| i.is_store()).unwrap();
        assert!(instrs[first_store..].iter().all(|i| i.is_store()));
    }

    #[test]
    fn dgemm_touches_more_pages_than_sgemm() {
        let s = build(GemmParams {
            cpu_init: None,
            ..Default::default()
        });
        let d = build(GemmParams {
            cpu_init: None,
            ..Default::default()
        }
        .dgemm());
        assert_eq!(d.footprint_bytes(), 2 * s.footprint_bytes());
        assert!(d.name == "dgemm" && s.name == "sgemm");
    }

    #[test]
    fn cpu_init_covers_a_and_b() {
        let w = build(GemmParams::default());
        let expected = 2 * (1024u64 * 1024 * 4 / PAGE_SIZE);
        assert_eq!(w.cpu_init.len() as u64, expected);
    }
}
