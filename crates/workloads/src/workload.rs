//! The [`Workload`] container shared by all generators.

use serde::{Deserialize, Serialize};
use uvm_gpu::isa::WarpProgram;
use uvm_sim::mem::{AddressSpaceAllocator, Allocation, PAGE_SIZE};

use crate::cpu_init::CpuTouch;

/// A complete benchmark instance: allocations, per-warp GPU programs, and
/// host-side initialization touches.
///
/// Workloads serialize, so a checkpoint can embed a digest of the exact
/// workload it was taken against and refuse to resume under a different one.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workload {
    /// Benchmark name (used in reports).
    pub name: String,
    /// Managed allocations (registered with the driver before launch).
    pub allocations: Vec<Allocation>,
    /// One instruction stream per warp.
    pub programs: Vec<WarpProgram>,
    /// Host-side first-touch initialization, replayed into `HostMemory`
    /// before the kernel launches.
    pub cpu_init: Vec<CpuTouch>,
    /// Kernel boundaries: `kernel_ends[k]` is the index one past the last
    /// warp program of kernel `k`. Empty means a single kernel covering
    /// all programs. Kernels launch sequentially with an implicit device
    /// synchronization between them, as CUDA kernel launches on one stream
    /// do.
    pub kernel_ends: Vec<usize>,
}

impl Workload {
    /// A new, empty workload with its own address space.
    pub fn builder(name: &str) -> WorkloadBuilder {
        WorkloadBuilder {
            workload: Workload {
                name: name.to_string(),
                allocations: Vec::new(),
                programs: Vec::new(),
                cpu_init: Vec::new(),
                kernel_ends: Vec::new(),
            },
            asa: AddressSpaceAllocator::new(),
        }
    }

    /// Total managed bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.allocations.iter().map(|a| a.len).sum()
    }

    /// Total managed 4 KiB pages.
    pub fn footprint_pages(&self) -> u64 {
        self.footprint_bytes() / PAGE_SIZE
    }

    /// Total VABlocks across allocations.
    pub fn footprint_blocks(&self) -> u64 {
        self.allocations.iter().map(|a| a.num_va_blocks()).sum()
    }

    /// Number of warps.
    pub fn num_warps(&self) -> usize {
        self.programs.len()
    }

    /// Total page accesses across all warp programs.
    pub fn total_accesses(&self) -> usize {
        self.programs.iter().map(|p| p.total_accesses()).sum()
    }

    /// The program index ranges of each sequential kernel launch.
    #[allow(clippy::single_range_in_vec_init)] // a 1-kernel workload really is vec![0..n]
    pub fn kernels(&self) -> Vec<std::ops::Range<usize>> {
        if self.kernel_ends.is_empty() {
            return vec![0..self.programs.len()];
        }
        let mut out = Vec::with_capacity(self.kernel_ends.len());
        let mut start = 0;
        for &end in &self.kernel_ends {
            out.push(start..end);
            start = end;
        }
        if start < self.programs.len() {
            out.push(start..self.programs.len());
        }
        out
    }
}

/// Incremental constructor used by the generators.
#[derive(Debug)]
pub struct WorkloadBuilder {
    workload: Workload,
    asa: AddressSpaceAllocator,
}

impl WorkloadBuilder {
    /// Allocate a managed region of `bytes`.
    pub fn alloc(&mut self, bytes: u64) -> Allocation {
        let a = self.asa.alloc(bytes);
        self.workload.allocations.push(a);
        a
    }

    /// Add a warp program.
    pub fn warp(&mut self, program: WarpProgram) -> &mut Self {
        self.workload.programs.push(program);
        self
    }

    /// Add CPU initialization touches.
    pub fn cpu_touches<I: IntoIterator<Item = CpuTouch>>(&mut self, touches: I) -> &mut Self {
        self.workload.cpu_init.extend(touches);
        self
    }

    /// Close the current kernel: programs added so far (since the last
    /// boundary) launch together; programs added afterwards form the next
    /// kernel, launched only after this one completes.
    pub fn end_kernel(&mut self) -> &mut Self {
        let end = self.workload.programs.len();
        if self.workload.kernel_ends.last() != Some(&end) {
            self.workload.kernel_ends.push(end);
        }
        self
    }

    /// Finish.
    pub fn build(self) -> Workload {
        self.workload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvm_gpu::isa::Instr;
    use uvm_sim::mem::{PageNum, VABLOCK_SIZE};

    #[test]
    fn builder_accumulates() {
        let mut b = Workload::builder("test");
        let a = b.alloc(VABLOCK_SIZE);
        let c = b.alloc(2 * VABLOCK_SIZE);
        b.warp(WarpProgram {
            instrs: vec![Instr::load1(a.page(0)), Instr::store1(c.page(0))],
        });
        let w = b.build();
        assert_eq!(w.name, "test");
        assert_eq!(w.allocations.len(), 2);
        assert_eq!(w.footprint_bytes(), 3 * VABLOCK_SIZE);
        assert_eq!(w.footprint_blocks(), 3);
        assert_eq!(w.num_warps(), 1);
        assert_eq!(w.total_accesses(), 2);
        assert_eq!(w.kernels(), vec![0..1], "single kernel by default");
    }

    #[test]
    fn kernel_boundaries_partition_programs() {
        let mut b = Workload::builder("multi");
        let a = b.alloc(VABLOCK_SIZE);
        b.warp(WarpProgram { instrs: vec![Instr::load1(a.page(0))] });
        b.warp(WarpProgram { instrs: vec![Instr::load1(a.page(1))] });
        b.end_kernel();
        b.warp(WarpProgram { instrs: vec![Instr::load1(a.page(2))] });
        b.end_kernel();
        b.end_kernel(); // duplicate boundary is a no-op
        let w = b.build();
        assert_eq!(w.kernels(), vec![0..2, 2..3]);
    }

    #[test]
    fn trailing_programs_form_final_kernel() {
        let mut b = Workload::builder("tail");
        let a = b.alloc(VABLOCK_SIZE);
        b.warp(WarpProgram { instrs: vec![Instr::load1(a.page(0))] });
        b.end_kernel();
        b.warp(WarpProgram { instrs: vec![Instr::load1(a.page(1))] });
        let w = b.build();
        assert_eq!(w.kernels(), vec![0..1, 1..2]);
    }

    #[test]
    fn allocations_are_disjoint() {
        let mut b = Workload::builder("disjoint");
        let x = b.alloc(VABLOCK_SIZE);
        let y = b.alloc(VABLOCK_SIZE);
        assert!(x.end().0 <= y.base.0);
        let _ = PageNum(0); // silence unused import in some cfgs
    }
}
