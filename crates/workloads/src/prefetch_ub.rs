//! The Fig. 5 software-prefetch microbenchmark.
//!
//! A single warp issues `prefetch.global.L2` over a large region. Because
//! prefetches need no registers, they bypass the scoreboard and the μTLB
//! outstanding-fault slots, so one warp can generate faults up to the
//! driver's batch-size limit in a single batch.

use uvm_gpu::isa::{Instr, WarpProgram};
use uvm_sim::mem::PAGE_SIZE;

use crate::workload::Workload;

/// Parameters for the prefetch microbenchmark.
#[derive(Debug, Clone, Copy)]
pub struct PrefetchUbParams {
    /// Pages to prefetch (the paper's example exceeds the 256 batch limit).
    pub pages: u64,
    /// Pages per prefetch instruction (PTX emits one per access; grouping
    /// only affects instruction count, not fault generation).
    pub pages_per_instr: usize,
}

impl Default for PrefetchUbParams {
    fn default() -> Self {
        PrefetchUbParams {
            pages: 300,
            pages_per_instr: 32,
        }
    }
}

/// Build the prefetch microbenchmark.
pub fn build(params: PrefetchUbParams) -> Workload {
    let pages = params.pages.max(1);
    let per = params.pages_per_instr.max(1);
    let mut b = Workload::builder("prefetch-ub");
    let region = b.alloc(pages * PAGE_SIZE);
    let mut prog = WarpProgram::new();
    let all: Vec<_> = (0..pages).map(|i| region.page(i)).collect();
    for chunk in all.chunks(per) {
        prog.push(Instr::Prefetch { pages: chunk.to_vec() });
    }
    b.warp(prog);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_warp_prefetches_all_pages() {
        let w = build(PrefetchUbParams::default());
        assert_eq!(w.num_warps(), 1);
        assert_eq!(w.total_accesses(), 300);
        assert!(w.programs[0]
            .instrs
            .iter()
            .all(|i| matches!(i, Instr::Prefetch { .. })));
    }

    #[test]
    fn chunking_preserves_page_count() {
        let w = build(PrefetchUbParams {
            pages: 100,
            pages_per_instr: 7,
        });
        assert_eq!(w.total_accesses(), 100);
        assert_eq!(w.programs[0].instrs.len(), 15);
    }
}
