//! NUMA topology.
//!
//! The paper's testbed CPU (AMD Epyc 7551P) is a 4-die NUMA package; the
//! authors list "NUMA and other memory-adjacent issues" among the likely
//! contributors to host-OS unmap cost. We model topology as a node-distance
//! matrix plus a core→node assignment. CPU-side initialization policies in
//! `uvm-workloads` use it to decide thread placement, and the unmap cost
//! model charges a remote-access factor when the unmapping core and the
//! page's home node differ.

use serde::{Deserialize, Serialize};

/// A NUMA topology: `nodes` nodes with `cores_per_node` cores each, and a
/// symmetric distance matrix in the usual Linux convention (10 = local).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NumaTopology {
    nodes: u32,
    cores_per_node: u32,
    /// Row-major `nodes x nodes` distances.
    distances: Vec<u32>,
}

impl NumaTopology {
    /// A uniform (single-node) topology with `cores` cores.
    pub fn flat(cores: u32) -> Self {
        NumaTopology {
            nodes: 1,
            cores_per_node: cores,
            distances: vec![10],
        }
    }

    /// The paper's testbed: Epyc 7551P — 4 NUMA nodes, 8 cores each (SMT
    /// off), intra-package remote distance 16.
    pub fn epyc_7551p() -> Self {
        let nodes = 4;
        let mut distances = vec![16u32; (nodes * nodes) as usize];
        for i in 0..nodes as usize {
            distances[i * nodes as usize + i] = 10;
        }
        NumaTopology {
            nodes,
            cores_per_node: 8,
            distances,
        }
    }

    /// Number of NUMA nodes.
    pub fn num_nodes(&self) -> u32 {
        self.nodes
    }

    /// Total core count.
    pub fn num_cores(&self) -> u32 {
        self.nodes * self.cores_per_node
    }

    /// The node a core belongs to (cores are numbered node-major).
    pub fn node_of_core(&self, core: u32) -> u32 {
        (core / self.cores_per_node).min(self.nodes - 1)
    }

    /// Distance between two nodes (10 = local).
    pub fn distance(&self, a: u32, b: u32) -> u32 {
        let a = a.min(self.nodes - 1) as usize;
        let b = b.min(self.nodes - 1) as usize;
        self.distances[a * self.nodes as usize + b]
    }

    /// Relative access-cost factor between two *cores*: 1.0 when both are on
    /// the same node, `distance/10` otherwise.
    pub fn core_distance_factor(&self, core_a: u32, core_b: u32) -> f64 {
        let d = self.distance(self.node_of_core(core_a), self.node_of_core(core_b));
        d as f64 / 10.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_topology_is_uniform() {
        let t = NumaTopology::flat(32);
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.num_cores(), 32);
        assert_eq!(t.node_of_core(31), 0);
        assert_eq!(t.distance(0, 0), 10);
        assert_eq!(t.core_distance_factor(0, 31), 1.0);
    }

    #[test]
    fn epyc_layout() {
        let t = NumaTopology::epyc_7551p();
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.num_cores(), 32);
        assert_eq!(t.node_of_core(0), 0);
        assert_eq!(t.node_of_core(7), 0);
        assert_eq!(t.node_of_core(8), 1);
        assert_eq!(t.node_of_core(31), 3);
        assert_eq!(t.distance(0, 0), 10);
        assert_eq!(t.distance(0, 3), 16);
        assert_eq!(t.core_distance_factor(0, 1), 1.0);
        assert_eq!(t.core_distance_factor(0, 8), 1.6);
    }

    #[test]
    fn out_of_range_core_clamps() {
        let t = NumaTopology::epyc_7551p();
        assert_eq!(t.node_of_core(1000), 3);
        assert_eq!(t.distance(99, 0), 16);
    }
}
