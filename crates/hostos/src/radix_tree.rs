//! A Linux-style radix tree.
//!
//! The mainline kernel stores reverse DMA address mappings in a radix tree
//! (`lib/radix-tree.c`); the UVM driver inserts one entry per page when it
//! creates DMA mappings for a VABlock on first GPU touch. Allen & Ge observe
//! that the *radix-tree portion* of DMA setup dominates the high-cost
//! batches, and that the cost is intermittent — consistent with tree growth
//! (height extension and interior-node allocation) happening only on some
//! inserts.
//!
//! This implementation mirrors the kernel structure: 64-slot nodes
//! (`RADIX_TREE_MAP_SHIFT = 6`), height grows lazily with the largest stored
//! key, and every insert reports how many nodes it allocated so the cost
//! model can charge for exactly the allocation work a real insert would do.

use serde::{DeError, Deserialize, Serialize, Value};

/// log2 of the node fan-out (64 slots per node, as in Linux).
pub const MAP_SHIFT: u32 = 6;
/// Slots per node.
pub const MAP_SIZE: usize = 1 << MAP_SHIFT;
/// Slot-index mask.
pub const MAP_MASK: u64 = (MAP_SIZE as u64) - 1;

#[derive(Debug)]
struct Node<V> {
    /// Inline 64-slot array (as in the kernel's `struct radix_tree_node`):
    /// one cache-friendly block per node, no second pointer hop through a
    /// heap-allocated slot vector on every level of every walk.
    slots: [Option<Slot<V>>; MAP_SIZE],
    /// Number of occupied slots; nodes free themselves when it reaches zero.
    count: u32,
}

#[derive(Debug)]
enum Slot<V> {
    Inner(Box<Node<V>>),
    Leaf(V),
}

impl<V> Node<V> {
    fn new() -> Box<Self> {
        Box::new(Node {
            slots: std::array::from_fn(|_| None),
            count: 0,
        })
    }
}

/// Statistics accumulated over the tree's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RadixStats {
    /// Total interior/leaf-level nodes currently allocated.
    pub nodes: u64,
    /// Total node allocations ever performed (monotone).
    pub total_allocs: u64,
    /// Total node frees ever performed (monotone).
    pub total_frees: u64,
    /// Number of stored entries.
    pub entries: u64,
}

/// A radix tree mapping `u64` keys to values `V`.
///
/// ```
/// use uvm_hostos::RadixTree;
///
/// let mut t: RadixTree<&str> = RadixTree::new();
/// let r = t.insert(0x1234, "page");
/// assert!(r.nodes_allocated >= 1);
/// assert_eq!(t.get(0x1234), Some(&"page"));
/// assert_eq!(t.get(0x9999), None);
/// ```
#[derive(Debug)]
pub struct RadixTree<V> {
    root: Option<Box<Node<V>>>,
    /// Number of MAP_SHIFT-sized digit positions covered by the current
    /// root (i.e. tree height). Zero when the tree is empty.
    height: u32,
    stats: RadixStats,
}

/// Work report for one insert.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InsertReport {
    /// Interior/leaf nodes newly allocated by this insert (tree growth).
    pub nodes_allocated: u64,
    /// Whether the key replaced an existing entry.
    pub replaced: bool,
}

impl<V> Default for RadixTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> RadixTree<V> {
    /// An empty tree.
    pub fn new() -> Self {
        RadixTree {
            root: None,
            height: 0,
            stats: RadixStats::default(),
        }
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> RadixStats {
        self.stats
    }

    /// Number of stored entries.
    pub fn len(&self) -> u64 {
        self.stats.entries
    }

    /// Whether the tree stores no entries.
    pub fn is_empty(&self) -> bool {
        self.stats.entries == 0
    }

    /// Height required to index `key`: the number of 6-bit digits.
    fn height_for(key: u64) -> u32 {
        let mut h = 1;
        let mut k = key >> MAP_SHIFT;
        while k != 0 {
            h += 1;
            k >>= MAP_SHIFT;
        }
        h
    }

    fn alloc_node(&mut self) -> Box<Node<V>> {
        self.stats.nodes += 1;
        self.stats.total_allocs += 1;
        Node::new()
    }

    /// Insert `value` at `key`, returning the work performed.
    pub fn insert(&mut self, key: u64, value: V) -> InsertReport {
        let mut report = InsertReport::default();
        let need = Self::height_for(key);

        // Grow the tree upward until the root covers `key` — each extension
        // allocates a new root whose slot 0 points at the old root. This is
        // the "growing of the underlying radix tree" the paper points to for
        // intermittent high-cost DMA-setup batches.
        if self.root.is_none() {
            self.root = Some(self.alloc_node());
            report.nodes_allocated += 1;
            self.height = need;
        } else {
            while self.height < need {
                let mut new_root = self.alloc_node();
                report.nodes_allocated += 1;
                let old_root = self.root.take().expect("root present while growing");
                new_root.slots[0] = Some(Slot::Inner(old_root));
                new_root.count = 1;
                self.root = Some(new_root);
                self.height += 1;
            }
        }

        // Descend, allocating interior nodes along the path as needed.
        let height = self.height;
        // Split borrows: we need &mut self for alloc accounting, so count
        // allocations locally and fold them into stats at the end.
        let mut local_allocs = 0u64;
        let root = self.root.as_mut().expect("root allocated above");
        let mut node = root.as_mut();
        for level in (1..height).rev() {
            let shift = level * MAP_SHIFT;
            let idx = ((key >> shift) & MAP_MASK) as usize;
            if node.slots[idx].is_none() {
                node.slots[idx] = Some(Slot::Inner(Node::new()));
                node.count += 1;
                local_allocs += 1;
            }
            node = match node.slots[idx].as_mut() {
                Some(Slot::Inner(n)) => n.as_mut(),
                _ => unreachable!("interior slot holds a leaf"),
            };
        }
        let idx = (key & MAP_MASK) as usize;
        match &mut node.slots[idx] {
            Some(Slot::Leaf(v)) => {
                *v = value;
                report.replaced = true;
            }
            slot @ None => {
                *slot = Some(Slot::Leaf(value));
                node.count += 1;
                self.stats.entries += 1;
            }
            Some(Slot::Inner(_)) => unreachable!("leaf slot holds an interior node"),
        }
        self.stats.nodes += local_allocs;
        self.stats.total_allocs += local_allocs;
        report.nodes_allocated += local_allocs;
        report
    }

    /// Look up `key`.
    pub fn get(&self, key: u64) -> Option<&V> {
        if Self::height_for(key) > self.height {
            return None;
        }
        let mut node = self.root.as_deref()?;
        for level in (1..self.height).rev() {
            let shift = level * MAP_SHIFT;
            let idx = ((key >> shift) & MAP_MASK) as usize;
            node = match node.slots[idx].as_ref()? {
                Slot::Inner(n) => n,
                Slot::Leaf(_) => return None,
            };
        }
        match node.slots[(key & MAP_MASK) as usize].as_ref()? {
            Slot::Leaf(v) => Some(v),
            Slot::Inner(_) => None,
        }
    }

    /// Remove `key`, returning its value and freeing now-empty nodes along
    /// the path (as the kernel's `radix_tree_delete` does).
    pub fn remove(&mut self, key: u64) -> Option<V> {
        if Self::height_for(key) > self.height {
            return None;
        }
        let height = self.height;
        let root = self.root.as_mut()?;
        let mut freed = 0u64;
        let value = Self::remove_rec(root.as_mut(), key, height, &mut freed)?;
        self.stats.entries -= 1;
        if root.count == 0 {
            self.root = None;
            self.height = 0;
            freed += 1;
        }
        self.stats.nodes -= freed;
        self.stats.total_frees += freed;
        Some(value)
    }

    fn remove_rec(node: &mut Node<V>, key: u64, height: u32, freed: &mut u64) -> Option<V> {
        let shift = (height - 1) * MAP_SHIFT;
        let idx = ((key >> shift) & MAP_MASK) as usize;
        if height == 1 {
            match node.slots[idx].take() {
                Some(Slot::Leaf(v)) => {
                    node.count -= 1;
                    Some(v)
                }
                other => {
                    node.slots[idx] = other;
                    None
                }
            }
        } else {
            let child_empty;
            let value = match node.slots[idx].as_mut()? {
                Slot::Inner(child) => {
                    let v = Self::remove_rec(child, key, height - 1, freed)?;
                    child_empty = child.count == 0;
                    Some(v)
                }
                Slot::Leaf(_) => return None,
            };
            if child_empty {
                node.slots[idx] = None;
                node.count -= 1;
                *freed += 1;
            }
            value
        }
    }

    /// Iterate over all `(key, value)` pairs in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        let mut out = Vec::new();
        if let Some(root) = self.root.as_deref() {
            Self::collect(root, 0, self.height, &mut out);
        }
        out.into_iter()
    }

    fn collect<'a>(node: &'a Node<V>, prefix: u64, height: u32, out: &mut Vec<(u64, &'a V)>) {
        for (i, slot) in node.slots.iter().enumerate() {
            match slot {
                None => {}
                Some(Slot::Leaf(v)) => {
                    debug_assert_eq!(height, 1);
                    out.push(((prefix << MAP_SHIFT) | i as u64, v));
                }
                Some(Slot::Inner(child)) => {
                    Self::collect(child, (prefix << MAP_SHIFT) | i as u64, height - 1, out);
                }
            }
        }
    }
}

// The node structure cannot carry a serde derive (it is generic and
// recursive), but it does not need to: given a height and a key set, the
// set of allocated nodes is fully determined — interior nodes exist exactly
// on the paths of live keys, and `remove` frees emptied nodes eagerly. A
// tree therefore serializes as `(height, items, stats)` and restores by
// pre-growing to the snapshot height and reinserting. Height is recorded
// explicitly because it can exceed `height_for(max live key)` when a larger
// key has since been removed — reinsertion alone would rebuild a shorter
// tree whose future growth costs diverge from the original's.
impl<V: Serialize> Serialize for RadixTree<V> {
    fn to_value(&self) -> Value {
        let items: Vec<Value> = self
            .iter()
            .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
            .collect();
        Value::Object(vec![
            ("height".to_string(), self.height.to_value()),
            ("items".to_string(), Value::Array(items)),
            ("stats".to_string(), self.stats.to_value()),
        ])
    }
}

impl<V: Deserialize> Deserialize for RadixTree<V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = serde::__object_fields(v, "RadixTree")?;
        let height: u32 = serde::__field(fields, "height")?;
        let items: Vec<(u64, V)> = serde::__field(fields, "items")?;
        let stats: RadixStats = serde::__field(fields, "stats")?;
        if stats.entries != items.len() as u64 {
            return Err(DeError::custom(format!(
                "radix tree snapshot lists {} items but stats claim {} entries",
                items.len(),
                stats.entries
            )));
        }
        let mut tree = RadixTree::new();
        if height > 0 {
            tree.root = Some(tree.alloc_node());
            tree.height = height;
            for (k, v) in items {
                if Self::height_for(k) > height {
                    return Err(DeError::custom(format!(
                        "radix tree snapshot key {k} does not fit height {height}"
                    )));
                }
                tree.insert(k, v);
            }
        } else if !items.is_empty() {
            return Err(DeError::custom("radix tree snapshot has items but zero height"));
        }
        debug_assert_eq!(
            tree.stats.nodes, stats.nodes,
            "reinserted tree structure must match the snapshot"
        );
        tree.stats = stats;
        Ok(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_round_trip() {
        let mut t = RadixTree::new();
        for k in [0u64, 1, 63, 64, 65, 4095, 4096, 1 << 30, u64::MAX] {
            t.insert(k, k.wrapping_mul(2));
        }
        for k in [0u64, 1, 63, 64, 65, 4095, 4096, 1 << 30, u64::MAX] {
            assert_eq!(t.get(k), Some(&k.wrapping_mul(2)).as_ref().map(|v| *v), "key {k}");
        }
        assert_eq!(t.get(2), None);
        assert_eq!(t.len(), 9);
    }

    #[test]
    fn first_insert_allocates_root() {
        let mut t = RadixTree::new();
        let r = t.insert(5, ());
        assert_eq!(r.nodes_allocated, 1);
        assert!(!r.replaced);
    }

    #[test]
    fn replacing_allocates_nothing() {
        let mut t = RadixTree::new();
        t.insert(100, 1);
        let r = t.insert(100, 2);
        assert_eq!(r.nodes_allocated, 0);
        assert!(r.replaced);
        assert_eq!(t.get(100), Some(&2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn growth_is_intermittent() {
        // Sequential inserts: most allocate zero nodes, occasionally a new
        // leaf node (every 64 keys) or a height extension. This is exactly
        // the intermittency the paper attributes DMA-setup outliers to.
        let mut t = RadixTree::new();
        let reports: Vec<u64> = (0..4096u64).map(|k| t.insert(k, ()).nodes_allocated).collect();
        let zero = reports.iter().filter(|&&n| n == 0).count();
        let nonzero = reports.iter().filter(|&&n| n > 0).count();
        assert!(zero > 3900, "most inserts allocate nothing: {zero}");
        assert!(nonzero > 32, "but growth happens: {nonzero}");
    }

    #[test]
    fn height_extension_allocates_path() {
        let mut t = RadixTree::new();
        t.insert(0, ());
        // Jumping to a huge key forces several height extensions at once —
        // a burst of allocations.
        let r = t.insert(1 << 40, ());
        assert!(r.nodes_allocated >= 6, "got {}", r.nodes_allocated);
    }

    #[test]
    fn remove_frees_empty_nodes() {
        let mut t = RadixTree::new();
        for k in 0..128u64 {
            t.insert(k << 12, k);
        }
        let nodes_before = t.stats().nodes;
        for k in 0..128u64 {
            assert_eq!(t.remove(k << 12), Some(k));
        }
        assert!(t.is_empty());
        assert_eq!(t.stats().nodes, 0, "all nodes freed (had {nodes_before})");
        assert_eq!(t.stats().total_allocs, t.stats().total_frees);
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut t: RadixTree<u32> = RadixTree::new();
        assert_eq!(t.remove(3), None);
        t.insert(3, 1);
        assert_eq!(t.remove(4), None);
        assert_eq!(t.remove(1 << 50), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut t = RadixTree::new();
        let keys = [77u64, 3, 4096, 12, 1 << 20, 65];
        for &k in &keys {
            t.insert(k, k);
        }
        let got: Vec<u64> = t.iter().map(|(k, _)| k).collect();
        let mut want = keys.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn serde_round_trip_preserves_structure_and_stats() {
        let mut t = RadixTree::new();
        for k in 0..300u64 {
            t.insert(k * 97, k);
        }
        // Grow past the live maximum, then remove: height and lifetime
        // counters must survive the round trip even though reinsertion alone
        // would rebuild a shorter tree.
        t.insert(1 << 40, 0);
        t.remove(1 << 40);
        let back: RadixTree<u64> = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(back.stats(), t.stats());
        assert_eq!(back.height, t.height);
        for k in 0..300u64 {
            assert_eq!(back.get(k * 97), Some(&k));
        }
        // Identical serialized form (the digest property snapshots rely on).
        assert_eq!(back.to_value(), t.to_value());
    }

    #[test]
    fn node_accounting_is_consistent() {
        let mut t = RadixTree::new();
        for k in 0..1000u64 {
            t.insert(k * 37, ());
        }
        let s = t.stats();
        assert_eq!(s.total_allocs - s.total_frees, s.nodes);
        assert_eq!(s.entries, 1000);
    }
}
