#![warn(missing_docs)]

//! # uvm-hostos — host operating-system virtual-memory substrate
//!
//! The UVM driver does not manage host memory itself: it calls into the
//! Linux kernel's virtual-memory subsystem. Allen & Ge (SC '21) show that
//! these host-OS interactions — `unmap_mapping_range()` on the fault path and
//! DMA reverse-mapping storage in a radix tree — are among the dominant costs
//! of fault servicing. This crate implements that substrate:
//!
//! * [`page_table`] — a sparse x86-style 4-level page table with work
//!   accounting (PTEs written/cleared, intermediate tables allocated/freed).
//! * [`radix_tree`] — a Linux-style radix tree (as used by the kernel for
//!   reverse DMA address lookups), with per-insert node-allocation counts so
//!   the cost model can charge for tree growth.
//! * [`rmap`] — reverse mappings: which CPU cores have a page mapped, the
//!   state that makes multi-threaded first-touch expensive to unmap.
//! * [`tlb`] — per-core TLB residency and shootdown-IPI accounting.
//! * [`host`] — [`HostMemory`], the façade the UVM driver calls:
//!   `cpu_touch()` for host-side first-touch and `unmap_mapping_range()` for
//!   the fault-path unmap, returning [`UnmapReport`] work counts.
//! * [`dma`] — [`DmaSpace`], the IOMMU mapping layer storing reverse
//!   mappings in the radix tree and reporting allocation work.
//! * [`numa`] — NUMA topology used by CPU-side initialization policies.

pub mod dma;
pub mod host;
pub mod numa;
pub mod page_table;
pub mod radix_tree;
pub mod rmap;
pub mod tlb;

pub use dma::{DmaReport, DmaSpace};
pub use host::{HostMemory, UnmapReport};
pub use numa::NumaTopology;
pub use page_table::{PageTable, PteFlags, UnmapWork};
pub use radix_tree::RadixTree;
pub use rmap::CoreSet;
pub use tlb::TlbDirectory;
