//! IOMMU / DMA mapping layer.
//!
//! Before the GPU's copy engines can move a VABlock's data, the driver must
//! create DMA mappings for every page in the block and store *reverse*
//! mappings (DMA address → page) in a radix tree "implemented in the
//! mainline Linux kernel" (paper, Sec. 5.2). The paper traces the
//! highest-cost prefetching batches to exactly this step, with the radix
//! tree dominating. [`DmaSpace`] reproduces the structure: sequential DMA
//! address assignment, a forward map, and reverse entries inserted into
//! [`RadixTree`], reporting node-allocation work per block.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use uvm_sim::error::UvmError;
use uvm_sim::inject::PointInjector;
use uvm_sim::mem::{PageNum, VaBlockId};
use uvm_sim::time::SimTime;

use crate::radix_tree::RadixTree;

/// A DMA (IO virtual) address, in pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DmaAddr(pub u64);

/// Work report for mapping a set of pages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DmaReport {
    /// Pages that received new DMA mappings.
    pub pages_mapped: u64,
    /// Pages that were already mapped (no work).
    pub pages_already_mapped: u64,
    /// Radix-tree nodes allocated while storing reverse mappings.
    pub radix_nodes_allocated: u64,
}

/// The DMA address space for one GPU: forward page→DMA map plus the
/// kernel-side reverse radix tree.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct DmaSpace {
    forward: HashMap<PageNum, DmaAddr>,
    reverse: RadixTree<PageNum>,
    next_addr: u64,
    /// DMA-map failure injection (disabled by default).
    injector: PointInjector,
}

impl DmaSpace {
    /// An empty DMA space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install the DMA-map failure injector (the
    /// [`InjectionPoint::DmaMapFailure`](uvm_sim::inject::InjectionPoint)
    /// site).
    pub fn set_injector(&mut self, injector: PointInjector) {
        self.injector = injector;
    }

    /// Number of live DMA mappings.
    pub fn mapped_pages(&self) -> u64 {
        self.forward.len() as u64
    }

    /// Total radix-tree nodes currently allocated (tree footprint).
    pub fn radix_nodes(&self) -> u64 {
        self.reverse.stats().nodes
    }

    /// Fallible variant of [`DmaSpace::map_pages`]: consults the failure
    /// injector before touching the space. An injected failure models radix
    /// node allocation failing inside `dma_map_sgt` — nothing is mapped and
    /// the caller may retry (the failure is transient, so a retry re-rolls).
    pub fn try_map_pages<I: IntoIterator<Item = PageNum>>(
        &mut self,
        block: VaBlockId,
        pages: I,
        now: SimTime,
    ) -> Result<DmaReport, UvmError> {
        if self.injector.is_enabled() && self.injector.should_fail(now) {
            return Err(UvmError::DmaMapFailed { block: block.0 });
        }
        let report = self.map_pages(pages);
        uvm_trace::emit_instant(now.0, || uvm_trace::TraceEvent::DmaMap {
            block: block.0,
            pages: report.pages_mapped,
            already_mapped: report.pages_already_mapped,
            radix_nodes: report.radix_nodes_allocated,
        });
        Ok(report)
    }

    /// Create DMA mappings for `pages`, skipping pages already mapped.
    /// Returns the aggregate work report for the cost model.
    pub fn map_pages<I: IntoIterator<Item = PageNum>>(&mut self, pages: I) -> DmaReport {
        let mut report = DmaReport::default();
        for page in pages {
            if self.forward.contains_key(&page) {
                report.pages_already_mapped += 1;
                continue;
            }
            let addr = DmaAddr(self.next_addr);
            self.next_addr += 1;
            self.forward.insert(page, addr);
            let ins = self.reverse.insert(addr.0, page);
            report.pages_mapped += 1;
            report.radix_nodes_allocated += ins.nodes_allocated;
        }
        report
    }

    /// Look up the DMA address of a page.
    pub fn dma_of(&self, page: PageNum) -> Option<DmaAddr> {
        self.forward.get(&page).copied()
    }

    /// Reverse lookup: the page behind a DMA address.
    pub fn page_of(&self, addr: DmaAddr) -> Option<PageNum> {
        self.reverse.get(addr.0).copied()
    }

    /// Tear down mappings for `pages` (allocation teardown). Returns how
    /// many mappings were removed.
    pub fn unmap_pages<I: IntoIterator<Item = PageNum>>(&mut self, pages: I) -> u64 {
        let mut removed = 0;
        for page in pages {
            if let Some(addr) = self.forward.remove(&page) {
                let back = self.reverse.remove(addr.0);
                debug_assert_eq!(back, Some(page));
                removed += 1;
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvm_sim::mem::VaBlockId;

    #[test]
    fn mapping_a_block_reports_work() {
        let mut dma = DmaSpace::new();
        let block = VaBlockId(4);
        let report = dma.map_pages(block.pages());
        assert_eq!(report.pages_mapped, 512);
        assert_eq!(report.pages_already_mapped, 0);
        assert!(report.radix_nodes_allocated >= 8, "512 entries span >=8 leaf nodes");
        assert_eq!(dma.mapped_pages(), 512);
    }

    #[test]
    fn remapping_is_idempotent_and_free() {
        let mut dma = DmaSpace::new();
        let block = VaBlockId(4);
        dma.map_pages(block.pages());
        let report = dma.map_pages(block.pages());
        assert_eq!(report.pages_mapped, 0);
        assert_eq!(report.pages_already_mapped, 512);
        assert_eq!(report.radix_nodes_allocated, 0);
    }

    #[test]
    fn forward_and_reverse_agree() {
        let mut dma = DmaSpace::new();
        dma.map_pages([PageNum(10), PageNum(99), PageNum(5000)]);
        for p in [PageNum(10), PageNum(99), PageNum(5000)] {
            let addr = dma.dma_of(p).expect("mapped");
            assert_eq!(dma.page_of(addr), Some(p));
        }
        assert_eq!(dma.dma_of(PageNum(1)), None);
    }

    #[test]
    fn later_blocks_allocate_fewer_nodes_until_growth() {
        // As the reverse tree fills, per-block allocation work varies:
        // most blocks reuse existing interior structure, some trigger
        // height growth — the intermittency behind Fig. 14/15(d).
        let mut dma = DmaSpace::new();
        let mut allocs = Vec::new();
        for b in 0..64u64 {
            let r = dma.map_pages(VaBlockId(b).pages());
            allocs.push(r.radix_nodes_allocated);
        }
        let max = *allocs.iter().max().unwrap();
        let min = *allocs.iter().min().unwrap();
        assert!(max > min, "block-to-block DMA-setup work should vary: {allocs:?}");
    }

    #[test]
    fn injected_map_failure_leaves_space_untouched() {
        use uvm_sim::inject::PointPlan;
        use uvm_sim::DetRng;

        let mut dma = DmaSpace::new();
        dma.set_injector(PointInjector::new(
            &PointPlan::scheduled(SimTime(0), 1),
            DetRng::new(2),
        ));
        let block = VaBlockId(7);
        let err = dma.try_map_pages(block, block.pages(), SimTime(0)).unwrap_err();
        assert_eq!(err, UvmError::DmaMapFailed { block: 7 });
        assert_eq!(dma.mapped_pages(), 0, "failed map must not partially apply");
        // The trigger is one-shot: the retry succeeds.
        let report = dma.try_map_pages(block, block.pages(), SimTime(1)).unwrap();
        assert_eq!(report.pages_mapped, 512);
    }

    #[test]
    fn unmap_removes_both_directions() {
        let mut dma = DmaSpace::new();
        dma.map_pages([PageNum(1), PageNum(2)]);
        let addr1 = dma.dma_of(PageNum(1)).unwrap();
        assert_eq!(dma.unmap_pages([PageNum(1), PageNum(7)]), 1);
        assert_eq!(dma.dma_of(PageNum(1)), None);
        assert_eq!(dma.page_of(addr1), None);
        assert_eq!(dma.mapped_pages(), 1);
    }
}
