//! Sparse x86-style 4-level page table with work accounting.
//!
//! The host process's page table is what `unmap_mapping_range()` operates
//! on: clearing PTEs for every CPU-resident page of a VABlock before the
//! data migrates to the GPU. We model the standard x86-64 4-level layout
//! (PGD → PUD → PMD → PTE, 512 entries each, 9 bits per level) and report
//! the work each operation performs — PTEs set/cleared and intermediate
//! tables allocated/freed — so the cost model can charge for it.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use uvm_sim::mem::PageNum;

/// Per-PTE flag bits (subset relevant to the fault path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PteFlags {
    /// Page has been written since mapping (needs writeback consideration on
    /// unmap).
    pub dirty: bool,
    /// Page is mapped writable.
    pub writable: bool,
}

/// Work performed by an unmap operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnmapWork {
    /// PTEs cleared.
    pub ptes_cleared: u64,
    /// Of those, how many were dirty (incur writeback bookkeeping).
    pub dirty_pages: u64,
    /// Intermediate tables freed because they became empty.
    pub tables_freed: u64,
}

/// Bits per level (512-entry tables).
const LEVEL_BITS: u32 = 9;
const LEVEL_MASK: u64 = (1 << LEVEL_BITS) - 1;

/// A leaf table: 512 PTE slots.
#[derive(Debug, Serialize, Deserialize)]
struct PteTable {
    entries: HashMap<u16, PteFlags>,
}

/// A sparse 4-level page table keyed by [`PageNum`].
///
/// Interior levels are modelled as `HashMap`s from table index to child —
/// sparse, because a simulation touches a tiny fraction of the 2^36-page
/// space — but the *leaf* level retains the 512-slot granularity so that
/// table allocation/free work matches the real structure.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct PageTable {
    /// Leaf tables keyed by `page >> 9` (the PMD-entry coordinate).
    leaves: HashMap<u64, PteTable>,
    /// Count of interior tables currently allocated (PUD+PMD level), derived
    /// from distinct upper-level coordinates.
    upper: HashMap<u64, u32>,
    mapped: u64,
    /// Monotone counters.
    tables_allocated: u64,
    tables_freed: u64,
}

impl PageTable {
    /// An empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of currently mapped pages.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped
    }

    /// Monotone count of leaf tables ever allocated.
    pub fn tables_allocated(&self) -> u64 {
        self.tables_allocated
    }

    /// Monotone count of leaf tables ever freed.
    pub fn tables_freed(&self) -> u64 {
        self.tables_freed
    }

    fn coords(page: PageNum) -> (u64, u16) {
        (page.0 >> LEVEL_BITS, (page.0 & LEVEL_MASK) as u16)
    }

    /// Map `page` with `flags`. Returns the number of tables allocated
    /// (0 or 1 at leaf level plus upper-level tables). Re-mapping an
    /// already-mapped page just updates flags.
    pub fn map(&mut self, page: PageNum, flags: PteFlags) -> u64 {
        let (leaf_key, idx) = Self::coords(page);
        let mut allocated = 0;
        let leaf = self.leaves.entry(leaf_key).or_insert_with(|| {
            allocated += 1;
            PteTable { entries: HashMap::new() }
        });
        if leaf.entries.insert(idx, flags).is_none() {
            self.mapped += 1;
        }
        // Upper-level table accounting: one PUD/PMD coordinate per leaf
        // group of 512 leaves.
        if allocated > 0 {
            let upper_key = leaf_key >> LEVEL_BITS;
            let cnt = self.upper.entry(upper_key).or_insert(0);
            if *cnt == 0 {
                allocated += 1;
            }
            *cnt += 1;
        }
        self.tables_allocated += allocated;
        allocated
    }

    /// Whether `page` is currently mapped.
    pub fn is_mapped(&self, page: PageNum) -> bool {
        let (leaf_key, idx) = Self::coords(page);
        self.leaves
            .get(&leaf_key)
            .is_some_and(|t| t.entries.contains_key(&idx))
    }

    /// Flags of `page` if mapped.
    pub fn flags(&self, page: PageNum) -> Option<PteFlags> {
        let (leaf_key, idx) = Self::coords(page);
        self.leaves.get(&leaf_key).and_then(|t| t.entries.get(&idx)).copied()
    }

    /// Mark `page` dirty (a CPU write hit). No-op when unmapped.
    pub fn set_dirty(&mut self, page: PageNum) {
        let (leaf_key, idx) = Self::coords(page);
        if let Some(f) = self.leaves.get_mut(&leaf_key).and_then(|t| t.entries.get_mut(&idx)) {
            f.dirty = true;
        }
    }

    /// Unmap a single page. Returns work performed.
    pub fn unmap(&mut self, page: PageNum) -> UnmapWork {
        self.unmap_range(page, page.offset(1))
    }

    /// Unmap every mapped page in `[start, end)`, freeing leaf tables that
    /// become empty — the core of `unmap_mapping_range()`.
    pub fn unmap_range(&mut self, start: PageNum, end: PageNum) -> UnmapWork {
        let mut work = UnmapWork::default();
        if start >= end {
            return work;
        }
        let first_leaf = start.0 >> LEVEL_BITS;
        let last_leaf = (end.0 - 1) >> LEVEL_BITS;
        for leaf_key in first_leaf..=last_leaf {
            let Some(leaf) = self.leaves.get_mut(&leaf_key) else {
                continue;
            };
            let lo = if leaf_key == first_leaf { (start.0 & LEVEL_MASK) as u16 } else { 0 };
            let hi = if leaf_key == last_leaf {
                ((end.0 - 1) & LEVEL_MASK) as u16
            } else {
                (LEVEL_MASK) as u16
            };
            for idx in lo..=hi {
                if let Some(flags) = leaf.entries.remove(&idx) {
                    work.ptes_cleared += 1;
                    if flags.dirty {
                        work.dirty_pages += 1;
                    }
                    self.mapped -= 1;
                }
            }
            if leaf.entries.is_empty() {
                self.leaves.remove(&leaf_key);
                work.tables_freed += 1;
                let upper_key = leaf_key >> LEVEL_BITS;
                if let Some(cnt) = self.upper.get_mut(&upper_key) {
                    *cnt -= 1;
                    if *cnt == 0 {
                        self.upper.remove(&upper_key);
                        work.tables_freed += 1;
                    }
                }
            }
        }
        self.tables_freed += work.tables_freed;
        work
    }

    /// All mapped pages in `[start, end)`, ascending.
    pub fn mapped_in_range(&self, start: PageNum, end: PageNum) -> Vec<PageNum> {
        let mut out = Vec::new();
        if start >= end {
            return out;
        }
        let first_leaf = start.0 >> LEVEL_BITS;
        let last_leaf = (end.0 - 1) >> LEVEL_BITS;
        for leaf_key in first_leaf..=last_leaf {
            let Some(leaf) = self.leaves.get(&leaf_key) else { continue };
            for &idx in leaf.entries.keys() {
                let page = PageNum((leaf_key << LEVEL_BITS) | idx as u64);
                if page >= start && page < end {
                    out.push(page);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_then_query() {
        let mut pt = PageTable::new();
        let p = PageNum(12345);
        assert!(!pt.is_mapped(p));
        let alloc = pt.map(p, PteFlags { dirty: false, writable: true });
        assert!(alloc >= 1, "first map allocates tables");
        assert!(pt.is_mapped(p));
        assert_eq!(pt.mapped_pages(), 1);
        assert!(pt.flags(p).unwrap().writable);
    }

    #[test]
    fn second_map_in_same_leaf_allocates_nothing() {
        let mut pt = PageTable::new();
        pt.map(PageNum(1000), PteFlags::default());
        let alloc = pt.map(PageNum(1001), PteFlags::default());
        assert_eq!(alloc, 0);
    }

    #[test]
    fn remap_updates_flags_without_double_count() {
        let mut pt = PageTable::new();
        pt.map(PageNum(5), PteFlags { dirty: false, writable: false });
        pt.map(PageNum(5), PteFlags { dirty: false, writable: true });
        assert_eq!(pt.mapped_pages(), 1);
        assert!(pt.flags(PageNum(5)).unwrap().writable);
    }

    #[test]
    fn unmap_range_counts_work() {
        let mut pt = PageTable::new();
        for i in 0..512u64 {
            pt.map(PageNum(i), PteFlags { dirty: i % 4 == 0, writable: true });
        }
        let work = pt.unmap_range(PageNum(0), PageNum(512));
        assert_eq!(work.ptes_cleared, 512);
        assert_eq!(work.dirty_pages, 128);
        assert!(work.tables_freed >= 1);
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    fn unmap_partial_range_leaves_rest() {
        let mut pt = PageTable::new();
        for i in 0..100u64 {
            pt.map(PageNum(i), PteFlags::default());
        }
        let work = pt.unmap_range(PageNum(10), PageNum(20));
        assert_eq!(work.ptes_cleared, 10);
        assert_eq!(pt.mapped_pages(), 90);
        assert!(pt.is_mapped(PageNum(9)));
        assert!(!pt.is_mapped(PageNum(10)));
        assert!(!pt.is_mapped(PageNum(19)));
        assert!(pt.is_mapped(PageNum(20)));
    }

    #[test]
    fn unmap_range_spanning_leaves() {
        let mut pt = PageTable::new();
        // Map pages around a leaf boundary (512).
        for i in 500..530u64 {
            pt.map(PageNum(i), PteFlags::default());
        }
        let work = pt.unmap_range(PageNum(500), PageNum(530));
        assert_eq!(work.ptes_cleared, 30);
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    fn unmap_empty_range_is_noop() {
        let mut pt = PageTable::new();
        pt.map(PageNum(7), PteFlags::default());
        assert_eq!(pt.unmap_range(PageNum(10), PageNum(10)), UnmapWork::default());
        assert_eq!(pt.unmap_range(PageNum(20), PageNum(10)), UnmapWork::default());
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn mapped_in_range_is_sorted_and_bounded() {
        let mut pt = PageTable::new();
        for &i in &[5u64, 700, 3, 511, 512, 513] {
            pt.map(PageNum(i), PteFlags::default());
        }
        let got = pt.mapped_in_range(PageNum(4), PageNum(513));
        assert_eq!(got, vec![PageNum(5), PageNum(511), PageNum(512)]);
    }

    #[test]
    fn set_dirty_reflected_in_unmap() {
        let mut pt = PageTable::new();
        pt.map(PageNum(1), PteFlags::default());
        pt.set_dirty(PageNum(1));
        let work = pt.unmap(PageNum(1));
        assert_eq!(work.dirty_pages, 1);
    }

    #[test]
    fn table_alloc_free_counters_balance() {
        let mut pt = PageTable::new();
        for i in 0..2048u64 {
            pt.map(PageNum(i), PteFlags::default());
        }
        pt.unmap_range(PageNum(0), PageNum(2048));
        assert_eq!(pt.tables_allocated(), pt.tables_freed());
    }
}
