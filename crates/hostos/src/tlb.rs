//! Per-core TLB residency and shootdown accounting.
//!
//! When `unmap_mapping_range()` tears down PTEs, every core that may hold a
//! stale translation must be interrupted (an IPI) to flush its TLB. The
//! number of shootdown targets — not the number of pages — is what couples
//! unmap cost to the application's CPU-side parallelization, which is the
//! mechanism behind the paper's Fig. 11 observation that OpenMP
//! multithreading inflates fault-path unmap cost.
//!
//! We track TLB residency at VABlock granularity: fine enough to
//! distinguish "block initialized by one thread" from "block striped across
//! 32 threads", coarse enough to stay cheap for multi-gigabyte workloads.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use uvm_sim::mem::VaBlockId;

use crate::rmap::CoreSet;

/// Directory of which cores hold (possibly stale) translations per VABlock.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct TlbDirectory {
    entries: HashMap<VaBlockId, CoreSet>,
    /// Monotone count of shootdown IPIs issued.
    ipis_sent: u64,
    /// Monotone count of shootdown rounds (one per unmap affecting >= 1
    /// core).
    shootdown_rounds: u64,
}

impl TlbDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `core` touched (cached translations for) `block`.
    pub fn touch(&mut self, block: VaBlockId, core: u32) {
        self.entries.entry(block).or_default().insert(core);
    }

    /// Cores currently holding translations for `block`.
    pub fn holders(&self, block: VaBlockId) -> CoreSet {
        self.entries.get(&block).copied().unwrap_or(CoreSet::EMPTY)
    }

    /// Perform a shootdown for `block`: returns the number of IPI targets
    /// and clears residency. A round with zero holders costs nothing and is
    /// not counted.
    pub fn shootdown(&mut self, block: VaBlockId) -> u32 {
        let holders = self.entries.remove(&block).unwrap_or(CoreSet::EMPTY);
        let n = holders.len();
        if n > 0 {
            self.ipis_sent += n as u64;
            self.shootdown_rounds += 1;
        }
        n
    }

    /// Monotone count of IPIs issued so far.
    pub fn ipis_sent(&self) -> u64 {
        self.ipis_sent
    }

    /// Monotone count of non-empty shootdown rounds.
    pub fn shootdown_rounds(&self) -> u64 {
        self.shootdown_rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_accumulates_holders() {
        let mut tlb = TlbDirectory::new();
        let b = VaBlockId(3);
        tlb.touch(b, 0);
        tlb.touch(b, 5);
        tlb.touch(b, 5); // idempotent
        assert_eq!(tlb.holders(b).len(), 2);
        assert_eq!(tlb.holders(VaBlockId(9)).len(), 0);
    }

    #[test]
    fn shootdown_clears_and_counts() {
        let mut tlb = TlbDirectory::new();
        let b = VaBlockId(1);
        for c in 0..8 {
            tlb.touch(b, c);
        }
        assert_eq!(tlb.shootdown(b), 8);
        assert_eq!(tlb.holders(b).len(), 0);
        assert_eq!(tlb.ipis_sent(), 8);
        assert_eq!(tlb.shootdown_rounds(), 1);
        // Second shootdown finds nothing.
        assert_eq!(tlb.shootdown(b), 0);
        assert_eq!(tlb.shootdown_rounds(), 1);
    }

    #[test]
    fn blocks_are_independent() {
        let mut tlb = TlbDirectory::new();
        tlb.touch(VaBlockId(1), 0);
        tlb.touch(VaBlockId(2), 1);
        assert_eq!(tlb.shootdown(VaBlockId(1)), 1);
        assert_eq!(tlb.holders(VaBlockId(2)).len(), 1);
    }
}
