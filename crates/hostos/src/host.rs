//! The host-memory façade the UVM driver calls into.
//!
//! [`HostMemory`] combines the page table, reverse mappings, and TLB
//! directory into the two operations the fault path needs:
//!
//! * [`HostMemory::cpu_touch`] — a CPU thread first-touches (or writes) a
//!   page: the page is mapped, the touching core is recorded as a mapper,
//!   and its TLB caches the translation. This is what the workload
//!   generators call during host-side initialization.
//! * [`HostMemory::unmap_mapping_range`] — the fault-path teardown the UVM
//!   driver performs when the GPU touches a VABlock partially resident on
//!   the CPU. Returns an [`UnmapReport`] of the work done; the driver
//!   converts it to time via `CostModel::unmap_time`.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use uvm_sim::error::UvmError;
use uvm_sim::inject::PointInjector;
use uvm_sim::mem::{PageNum, VaBlockId};
use uvm_sim::time::SimTime;

use crate::numa::NumaTopology;
use crate::page_table::{PageTable, PteFlags};
use crate::rmap::CoreSet;
use crate::tlb::TlbDirectory;

/// Work performed by one `unmap_mapping_range()` call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnmapReport {
    /// CPU-resident pages actually unmapped.
    pub pages_unmapped: u64,
    /// Of those, pages dirtied by CPU writes.
    pub dirty_pages: u64,
    /// Distinct CPU cores that had the range mapped (drives the per-page
    /// inflation in the cost model).
    pub mapper_cores: u32,
    /// TLB-shootdown IPI targets.
    pub ipis: u32,
    /// Leaf page tables freed.
    pub tables_freed: u64,
    /// NUMA inflation factor for the unmapping core's remote accesses to
    /// the mappers' PTE state: 1.0 when all mappers share the unmapper's
    /// node, up to the topology's worst node distance otherwise.
    pub numa_factor: f64,
}

impl Default for UnmapReport {
    fn default() -> Self {
        UnmapReport {
            pages_unmapped: 0,
            dirty_pages: 0,
            mapper_cores: 0,
            ipis: 0,
            tables_freed: 0,
            numa_factor: 1.0,
        }
    }
}

impl UnmapReport {
    /// Whether the call found nothing to do.
    pub fn is_empty(&self) -> bool {
        self.pages_unmapped == 0
    }
}

/// Host process memory state visible to the UVM driver.
///
/// Serializable in full — page table, rmap, TLB directory, NUMA topology,
/// and injector state — for whole-system snapshot/restore.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct HostMemory {
    page_table: PageTable,
    /// Reverse map: which cores have each page mapped.
    rmap: HashMap<PageNum, CoreSet>,
    tlb: TlbDirectory,
    /// NUMA topology, when modelled (None = uniform memory).
    numa: Option<NumaTopology>,
    /// The core the UVM worker thread (which performs the unmaps) runs on.
    worker_core: u32,
    /// Monotone counter of `unmap_mapping_range` invocations.
    unmap_calls: u64,
    /// Pages written back into host memory by device evictions (normal
    /// and emergency). Pure accounting: the pages become CPU-touchable
    /// again lazily, so no page-table state changes here.
    writeback_pages: u64,
    /// Host page-table failure injection (disabled by default).
    injector: PointInjector,
}

impl HostMemory {
    /// Fresh (empty) host memory state with uniform memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Host memory on a NUMA machine: the unmap work the UVM worker (on
    /// `worker_core`) performs against PTE/rmap state homed on other
    /// nodes is inflated by the node distance.
    pub fn with_numa(topology: NumaTopology, worker_core: u32) -> Self {
        HostMemory {
            numa: Some(topology),
            worker_core,
            ..Self::default()
        }
    }

    /// A CPU thread on `core` touches `page`; `write` marks it dirty.
    /// First touch maps the page; repeat touches accumulate mapper cores
    /// and dirty state.
    pub fn cpu_touch(&mut self, page: PageNum, core: u32, write: bool) {
        if self.page_table.is_mapped(page) {
            if write {
                self.page_table.set_dirty(page);
            }
        } else {
            self.page_table.map(
                page,
                PteFlags {
                    dirty: write,
                    writable: true,
                },
            );
        }
        self.rmap.entry(page).or_default().insert(core);
        self.tlb.touch(page.va_block(), core);
    }

    /// Whether `page` is currently CPU-mapped.
    pub fn is_cpu_mapped(&self, page: PageNum) -> bool {
        self.page_table.is_mapped(page)
    }

    /// Number of CPU-mapped pages in a VABlock.
    pub fn mapped_pages_in_block(&self, block: VaBlockId) -> u64 {
        self.page_table
            .mapped_in_range(block.first_page(), PageNum(block.first_page().0 + 512))
            .len() as u64
    }

    /// Total CPU-mapped pages.
    pub fn mapped_pages(&self) -> u64 {
        self.page_table.mapped_pages()
    }

    /// Number of `unmap_mapping_range` calls made so far.
    pub fn unmap_calls(&self) -> u64 {
        self.unmap_calls
    }

    /// Record `pages` written back to host memory by a device eviction.
    /// The driver calls this whenever an evicted VABlock carries data the
    /// host does not already hold (i.e. the eviction performed a D2H
    /// transfer rather than a silent drop).
    pub fn note_writeback(&mut self, pages: u64) {
        self.writeback_pages += pages;
    }

    /// Total pages evictions have written back into host memory.
    pub fn writeback_pages(&self) -> u64 {
        self.writeback_pages
    }

    /// Install the host page-table failure injector (the
    /// [`InjectionPoint::HostPopulateFailure`](uvm_sim::inject::InjectionPoint)
    /// site).
    pub fn set_injector(&mut self, injector: PointInjector) {
        self.injector = injector;
    }

    /// Fallible variant of [`HostMemory::unmap_mapping_range`]: consults the
    /// failure injector before touching any state. An injected failure
    /// models a transient allocation failure inside the kernel's page-table
    /// walk; the attempt still counts as an invocation, and a retry re-rolls
    /// because the failure is transient.
    pub fn try_unmap_mapping_range(
        &mut self,
        block: VaBlockId,
        now: SimTime,
    ) -> Result<UnmapReport, UvmError> {
        if self.injector.is_enabled() && self.injector.should_fail(now) {
            self.unmap_calls += 1;
            return Err(UvmError::HostPopulateFailed { block: block.0 });
        }
        let report = self.unmap_mapping_range(block);
        uvm_trace::emit_instant(now.0, || uvm_trace::TraceEvent::HostUnmap {
            block: block.0,
            pages: report.pages_unmapped,
            dirty: report.dirty_pages,
            mapper_cores: report.mapper_cores as u64,
            ipis: report.ipis as u64,
        });
        Ok(report)
    }

    /// Fault-path unmap of every CPU-resident page in `block`
    /// (the driver always unmaps at VABlock granularity).
    pub fn unmap_mapping_range(&mut self, block: VaBlockId) -> UnmapReport {
        self.unmap_calls += 1;
        let start = block.first_page();
        let end = PageNum(start.0 + uvm_sim::mem::PAGES_PER_VABLOCK);

        // Collect mapper cores for the pages being torn down.
        let mut mappers = CoreSet::EMPTY;
        for page in self.page_table.mapped_in_range(start, end) {
            if let Some(set) = self.rmap.remove(&page) {
                mappers = mappers.union(set);
            }
        }

        let work = self.page_table.unmap_range(start, end);
        let ipis = if work.ptes_cleared > 0 {
            self.tlb.shootdown(block)
        } else {
            0
        };

        let numa_factor = match &self.numa {
            Some(topo) => mappers
                .iter()
                .map(|c| topo.core_distance_factor(self.worker_core, c))
                .fold(1.0, f64::max),
            None => 1.0,
        };

        UnmapReport {
            pages_unmapped: work.ptes_cleared,
            dirty_pages: work.dirty_pages,
            mapper_cores: mappers.len(),
            ipis,
            tables_freed: work.tables_freed,
            numa_factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_page(block: u64, idx: u64) -> PageNum {
        PageNum(block * 512 + idx)
    }

    #[test]
    fn touch_maps_and_tracks_mappers() {
        let mut hm = HostMemory::new();
        let p = block_page(1, 0);
        hm.cpu_touch(p, 3, true);
        hm.cpu_touch(p, 7, false);
        assert!(hm.is_cpu_mapped(p));
        assert_eq!(hm.mapped_pages(), 1);
        let report = hm.unmap_mapping_range(VaBlockId(1));
        assert_eq!(report.pages_unmapped, 1);
        assert_eq!(report.dirty_pages, 1);
        assert_eq!(report.mapper_cores, 2);
        assert_eq!(report.ipis, 2);
    }

    #[test]
    fn single_threaded_init_has_one_mapper() {
        let mut hm = HostMemory::new();
        for i in 0..512 {
            hm.cpu_touch(block_page(2, i), 0, true);
        }
        let report = hm.unmap_mapping_range(VaBlockId(2));
        assert_eq!(report.pages_unmapped, 512);
        assert_eq!(report.mapper_cores, 1);
        assert_eq!(report.ipis, 1);
    }

    #[test]
    fn striped_init_has_many_mappers() {
        // The Fig. 11 scenario: 32 OpenMP threads stripe a block's pages.
        let mut hm = HostMemory::new();
        for i in 0..512u64 {
            hm.cpu_touch(block_page(3, i), (i % 32) as u32, true);
        }
        let report = hm.unmap_mapping_range(VaBlockId(3));
        assert_eq!(report.pages_unmapped, 512);
        assert_eq!(report.mapper_cores, 32);
        assert_eq!(report.ipis, 32);
    }

    #[test]
    fn unmap_is_idempotent() {
        let mut hm = HostMemory::new();
        hm.cpu_touch(block_page(4, 10), 0, false);
        let first = hm.unmap_mapping_range(VaBlockId(4));
        assert_eq!(first.pages_unmapped, 1);
        let second = hm.unmap_mapping_range(VaBlockId(4));
        assert!(second.is_empty());
        assert_eq!(second.ipis, 0);
        assert_eq!(hm.unmap_calls(), 2);
    }

    #[test]
    fn unmap_only_touches_target_block() {
        let mut hm = HostMemory::new();
        hm.cpu_touch(block_page(5, 0), 0, false);
        hm.cpu_touch(block_page(6, 0), 0, false);
        hm.unmap_mapping_range(VaBlockId(5));
        assert!(!hm.is_cpu_mapped(block_page(5, 0)));
        assert!(hm.is_cpu_mapped(block_page(6, 0)));
    }

    #[test]
    fn numa_factor_reflects_remote_mappers() {
        use crate::numa::NumaTopology;
        // Worker on core 0 (node 0); Epyc remote distance is 16/10 = 1.6.
        let mut hm = HostMemory::with_numa(NumaTopology::epyc_7551p(), 0);
        hm.cpu_touch(block_page(8, 0), 1, true); // node 0 (cores 0-7)
        let local = hm.unmap_mapping_range(VaBlockId(8));
        assert_eq!(local.numa_factor, 1.0);

        hm.cpu_touch(block_page(9, 0), 30, true); // node 3
        let remote = hm.unmap_mapping_range(VaBlockId(9));
        assert!((remote.numa_factor - 1.6).abs() < 1e-9);

        // Uniform-memory hosts always report 1.0.
        let mut flat = HostMemory::new();
        flat.cpu_touch(block_page(10, 0), 30, true);
        assert_eq!(flat.unmap_mapping_range(VaBlockId(10)).numa_factor, 1.0);
    }

    #[test]
    fn injected_unmap_failure_preserves_mappings() {
        use uvm_sim::inject::PointPlan;
        use uvm_sim::DetRng;

        let mut hm = HostMemory::new();
        for i in 0..16 {
            hm.cpu_touch(block_page(11, i), 0, true);
        }
        hm.set_injector(PointInjector::new(
            &PointPlan::scheduled(SimTime(0), 1),
            DetRng::new(3),
        ));
        let err = hm.try_unmap_mapping_range(VaBlockId(11), SimTime(0)).unwrap_err();
        assert_eq!(err, UvmError::HostPopulateFailed { block: 11 });
        assert_eq!(hm.mapped_pages(), 16, "failed unmap must not partially apply");
        assert_eq!(hm.unmap_calls(), 1, "the failed attempt still counts");
        // One-shot trigger consumed: the retry succeeds.
        let report = hm.try_unmap_mapping_range(VaBlockId(11), SimTime(1)).unwrap();
        assert_eq!(report.pages_unmapped, 16);
    }

    #[test]
    fn writeback_accounting_accumulates() {
        let mut hm = HostMemory::new();
        assert_eq!(hm.writeback_pages(), 0);
        hm.note_writeback(512);
        hm.note_writeback(12);
        assert_eq!(hm.writeback_pages(), 524);
        // Accounting is orthogonal to the page table: nothing is mapped.
        assert_eq!(hm.mapped_pages(), 0);
    }

    #[test]
    fn partial_residency_counts_only_mapped_pages() {
        let mut hm = HostMemory::new();
        for i in 0..100 {
            hm.cpu_touch(block_page(7, i), 1, false);
        }
        assert_eq!(hm.mapped_pages_in_block(VaBlockId(7)), 100);
        let report = hm.unmap_mapping_range(VaBlockId(7));
        assert_eq!(report.pages_unmapped, 100);
        assert_eq!(report.dirty_pages, 0);
    }
}
