//! Reverse-mapping core sets.
//!
//! The kernel's rmap answers "who has this page mapped?". For the fault-path
//! unmap cost, what matters is *how many CPU cores* have live mappings/TLB
//! entries for the pages being torn down — the paper's Fig. 11 shows that
//! OpenMP-parallel initialization (many mapper cores) roughly doubles batch
//! cost versus single-threaded initialization. We track mappers as a 128-bit
//! core bitmask (the Epyc 7551P testbed exposes 64 logical cores; 128 gives
//! headroom).

use serde::{Deserialize, Serialize};

/// A set of CPU core IDs in `0..128`, stored as two 64-bit words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct CoreSet {
    bits: [u64; 2],
}

/// Maximum representable core ID + 1.
pub const MAX_CORES: u32 = 128;

impl CoreSet {
    /// The empty set.
    pub const EMPTY: CoreSet = CoreSet { bits: [0, 0] };

    /// A set containing a single core.
    pub fn single(core: u32) -> Self {
        let mut s = Self::EMPTY;
        s.insert(core);
        s
    }

    /// Insert `core`. Panics if `core >= MAX_CORES`.
    #[inline]
    pub fn insert(&mut self, core: u32) {
        assert!(core < MAX_CORES, "core id {core} out of range");
        self.bits[(core / 64) as usize] |= 1u64 << (core % 64);
    }

    /// Remove `core`.
    #[inline]
    pub fn remove(&mut self, core: u32) {
        if core < MAX_CORES {
            self.bits[(core / 64) as usize] &= !(1u64 << (core % 64));
        }
    }

    /// Whether `core` is present.
    #[inline]
    pub fn contains(&self, core: u32) -> bool {
        core < MAX_CORES && self.bits[(core / 64) as usize] & (1u64 << (core % 64)) != 0
    }

    /// Number of cores in the set.
    #[inline]
    pub fn len(&self) -> u32 {
        self.bits[0].count_ones() + self.bits[1].count_ones()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits == [0, 0]
    }

    /// Set union.
    #[inline]
    pub fn union(self, other: CoreSet) -> CoreSet {
        CoreSet {
            bits: [self.bits[0] | other.bits[0], self.bits[1] | other.bits[1]],
        }
    }

    /// Iterate core IDs in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..MAX_CORES).filter(move |&c| self.contains(c))
    }

    /// Clear all cores.
    pub fn clear(&mut self) {
        self.bits = [0, 0];
    }
}

impl FromIterator<u32> for CoreSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let mut s = CoreSet::EMPTY;
        for c in iter {
            s.insert(c);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = CoreSet::EMPTY;
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(127);
        assert_eq!(s.len(), 4);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(127));
        assert!(!s.contains(1));
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn union_merges() {
        let a: CoreSet = [1u32, 2, 3].into_iter().collect();
        let b: CoreSet = [3u32, 4].into_iter().collect();
        let u = a.union(b);
        assert_eq!(u.len(), 4);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn single_and_clear() {
        let mut s = CoreSet::single(42);
        assert_eq!(s.len(), 1);
        assert!(s.contains(42));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        let mut s = CoreSet::EMPTY;
        s.insert(128);
    }

    #[test]
    fn remove_out_of_range_is_noop() {
        let mut s = CoreSet::single(1);
        s.remove(500);
        assert_eq!(s.len(), 1);
    }
}
