//! Batch-level instrumentation records.
//!
//! One [`BatchRecord`] per serviced fault batch, with the same fields the
//! paper's instrumented driver logs: raw and deduplicated fault counts,
//! duplicate classification, VABlock counts, migrated/evicted bytes, and a
//! per-component time breakdown (fetch, preprocess, DMA setup, CPU unmap,
//! population, transfer, eviction, PTE updates). Every figure and table in
//! the evaluation is computed from sequences of these records.

use serde::{Deserialize, Serialize};
use uvm_sim::time::{SimDuration, SimTime};

use crate::health::HealthState;

/// Instrumentation for one serviced batch.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BatchRecord {
    /// Batch sequence number (0-based).
    pub seq: u64,
    /// Service start time (fetch begins).
    pub start: SimTime,
    /// Service end time (replay issued).
    pub end: SimTime,

    // ---- fault composition ----
    /// Faults fetched from the buffer (raw batch size; upper series of
    /// Fig. 8).
    pub raw_faults: u64,
    /// Distinct pages after deduplication (lower series of Fig. 8).
    pub unique_pages: u64,
    /// Same-μTLB duplicates (type 1).
    pub dup_same_utlb: u64,
    /// Cross-μTLB duplicates (type 2).
    pub dup_cross_utlb: u64,
    /// Read faults in the raw batch.
    pub read_faults: u64,
    /// Write faults in the raw batch.
    pub write_faults: u64,
    /// Prefetch-instruction faults in the raw batch.
    pub prefetch_faults: u64,
    /// Distinct SMs contributing faults (Table 2's "combination of work
    /// across the GPU SMs").
    pub distinct_sms: u32,
    /// Distinct μTLBs contributing faults.
    pub distinct_utlbs: u32,

    // ---- VABlock composition ----
    /// Distinct VABlocks serviced (Table 3, Fig. 10).
    pub num_va_blocks: u64,
    /// Of those, blocks paying first-touch DMA-map setup.
    pub new_va_blocks: u64,
    /// The VABlocks serviced, in service (ascending block) order.
    pub served_blocks: Vec<u64>,
    /// Unique-fault count per serviced VABlock, aligned with
    /// `served_blocks` — the per-block distribution behind Table 3.
    pub per_block_faults: Vec<u32>,
    /// VABlocks evicted by this batch, in eviction order (Figs. 16c/17c).
    pub evicted_blocks: Vec<u64>,

    // ---- data movement ----
    /// Pages migrated host→device (including prefetched pages).
    pub pages_migrated: u64,
    /// Bytes migrated host→device.
    pub bytes_migrated: u64,
    /// Pages added by the prefetcher beyond the faulted set.
    pub prefetched_pages: u64,
    /// VABlocks evicted to make room.
    pub evictions: u64,
    /// Bytes written back device→host by evictions.
    pub bytes_evicted: u64,
    /// CPU pages unmapped via `unmap_mapping_range`.
    pub cpu_pages_unmapped: u64,
    /// Pages mapped remotely (PreferredLocationHost) instead of migrated.
    pub remote_mapped_pages: u64,
    /// Whether this record describes a driver-initiated
    /// `cudaMemPrefetchAsync` operation rather than a fault batch.
    pub driver_prefetch_op: bool,
    /// Blocks newly pinned host-side by the thrashing-mitigation
    /// extension in this batch.
    pub thrashing_pins: u64,

    // ---- fault injection & recovery ----
    /// Faults dropped by the hardware buffer (genuine overflow plus
    /// injected overflow storms) since the previous batch was serviced.
    pub dropped_faults: u64,
    /// Injected failures the driver observed while servicing this batch
    /// (DMA map, copy engine, host page table, fetch stall).
    pub injected_faults: u64,
    /// Retry attempts performed after transient failures.
    pub retries: u64,
    /// Blocks degraded to a remote (sysmem) mapping after migration
    /// retries were exhausted.
    pub degraded_blocks: u64,

    // ---- sustained failure domains & health ----
    /// Driver health state this batch was serviced under.
    pub health: HealthState,
    /// Device blocks reserved away from UVM at batch close (sustained
    /// memory pressure; 0 when no pressure window is active).
    pub pressure_reserved: u64,
    /// Blocks emergency-evicted this batch to fit a shrunken capacity.
    pub emergency_evictions: u64,
    /// GPU resets absorbed while servicing this batch.
    pub gpu_resets: u64,
    /// Fault entries destroyed by those resets (buffer + in-flight GMMU).
    pub reset_lost_faults: u64,

    // ---- component times ----
    /// Fetching fault entries from the GPU buffer.
    pub t_fetch: SimDuration,
    /// Parsing, sorting, deduplication.
    pub t_preprocess: SimDuration,
    /// DMA-map creation + reverse radix-tree inserts.
    pub t_dma_setup: SimDuration,
    /// `unmap_mapping_range` on the fault path.
    pub t_unmap: SimDuration,
    /// Zero-fill population of fresh GPU pages.
    pub t_populate: SimDuration,
    /// Host→device data transfer (copy engines).
    pub t_transfer: SimDuration,
    /// Eviction handling including device→host writeback.
    pub t_evict: SimDuration,
    /// GPU page-table updates.
    pub t_pte: SimDuration,
    /// Fixed per-batch and per-VABlock management overhead (+ jitter).
    pub t_fixed: SimDuration,
    /// Deterministic retry backoff after injected transient failures.
    pub t_backoff: SimDuration,
}

impl BatchRecord {
    /// Total service time.
    pub fn service_time(&self) -> SimDuration {
        self.end - self.start
    }

    /// Fraction of service time spent in host→device transfer (Fig. 7).
    pub fn transfer_fraction(&self) -> f64 {
        let total = self.service_time().as_nanos();
        if total == 0 {
            0.0
        } else {
            self.t_transfer.as_nanos() as f64 / total as f64
        }
    }

    /// Fraction of service time spent unmapping CPU pages (Fig. 11).
    pub fn unmap_fraction(&self) -> f64 {
        let total = self.service_time().as_nanos();
        if total == 0 {
            0.0
        } else {
            self.t_unmap.as_nanos() as f64 / total as f64
        }
    }

    /// Fraction of service time spent in DMA/VABlock state setup (Fig. 14).
    pub fn dma_fraction(&self) -> f64 {
        let total = self.service_time().as_nanos();
        if total == 0 {
            0.0
        } else {
            self.t_dma_setup.as_nanos() as f64 / total as f64
        }
    }

    /// Total duplicates.
    pub fn total_dups(&self) -> u64 {
        self.dup_same_utlb + self.dup_cross_utlb
    }

    /// The component times as nanoseconds in [`uvm_trace::COMPONENTS`]
    /// order — the vector carried by the `batch-close` trace event, and
    /// the exact quantity the trace-side breakdown reconciles against.
    pub fn component_ns(&self) -> [u64; 10] {
        [
            self.t_fetch.as_nanos(),
            self.t_preprocess.as_nanos(),
            self.t_dma_setup.as_nanos(),
            self.t_unmap.as_nanos(),
            self.t_populate.as_nanos(),
            self.t_transfer.as_nanos(),
            self.t_evict.as_nanos(),
            self.t_pte.as_nanos(),
            self.t_fixed.as_nanos(),
            self.t_backoff.as_nanos(),
        ]
    }

    /// Sum of the recorded component times (consistency check against
    /// `service_time`, which also includes rounding from jitter).
    pub fn component_sum(&self) -> SimDuration {
        self.t_fetch
            + self.t_preprocess
            + self.t_dma_setup
            + self.t_unmap
            + self.t_populate
            + self.t_transfer
            + self.t_evict
            + self.t_pte
            + self.t_fixed
            + self.t_backoff
    }
}

/// Access type recorded in per-fault metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Global load.
    Read,
    /// Global store.
    Write,
    /// Software prefetch instruction.
    Prefetch,
}

impl From<uvm_gpu::fault::AccessKind> for FaultKind {
    fn from(k: uvm_gpu::fault::AccessKind) -> Self {
        match k {
            uvm_gpu::fault::AccessKind::Read => FaultKind::Read,
            uvm_gpu::fault::AccessKind::Write => FaultKind::Write,
            uvm_gpu::fault::AccessKind::Prefetch => FaultKind::Prefetch,
        }
    }
}

/// Per-fault metadata (the paper's first instrumented-driver variant),
/// retained when `DriverPolicy::log_fault_metadata` is set.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FaultMeta {
    /// Batch that serviced (or dropped) the fault.
    pub batch_seq: u64,
    /// Faulting page.
    pub page: u64,
    /// Access type.
    pub kind: crate::batch::FaultKind,
    /// Originating SM.
    pub sm: u32,
    /// Originating μTLB.
    pub utlb: u32,
    /// Arrival time in the GPU fault buffer.
    pub arrival: SimTime,
    /// Whether dedup discarded it.
    pub was_duplicate: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_are_bounded() {
        let mut r = BatchRecord {
            start: SimTime(0),
            end: SimTime(1000),
            t_transfer: SimDuration(250),
            t_unmap: SimDuration(100),
            t_dma_setup: SimDuration(0),
            ..Default::default()
        };
        assert!((r.transfer_fraction() - 0.25).abs() < 1e-9);
        assert!((r.unmap_fraction() - 0.10).abs() < 1e-9);
        assert_eq!(r.dma_fraction(), 0.0);
        r.end = r.start;
        assert_eq!(r.transfer_fraction(), 0.0);
    }

    #[test]
    fn component_sum_adds_everything() {
        let r = BatchRecord {
            t_fetch: SimDuration(1),
            t_preprocess: SimDuration(2),
            t_dma_setup: SimDuration(3),
            t_unmap: SimDuration(4),
            t_populate: SimDuration(5),
            t_transfer: SimDuration(6),
            t_evict: SimDuration(7),
            t_pte: SimDuration(8),
            t_fixed: SimDuration(9),
            t_backoff: SimDuration(10),
            ..Default::default()
        };
        assert_eq!(r.component_sum(), SimDuration(55));
    }

    #[test]
    fn record_serializes() -> Result<(), serde_json::Error> {
        let r = BatchRecord {
            seq: 7,
            raw_faults: 256,
            unique_pages: 100,
            ..Default::default()
        };
        let json = serde_json::to_string(&r)?;
        assert!(json.contains("\"raw_faults\":256"));
        Ok(())
    }

    #[test]
    fn component_ns_matches_component_sum() {
        let r = BatchRecord {
            t_fetch: SimDuration(1),
            t_preprocess: SimDuration(2),
            t_dma_setup: SimDuration(3),
            t_unmap: SimDuration(4),
            t_populate: SimDuration(5),
            t_transfer: SimDuration(6),
            t_evict: SimDuration(7),
            t_pte: SimDuration(8),
            t_fixed: SimDuration(9),
            t_backoff: SimDuration(10),
            ..Default::default()
        };
        assert_eq!(r.component_ns().iter().sum::<u64>(), r.component_sum().as_nanos());
        assert_eq!(r.component_ns()[0], 1);
        assert_eq!(r.component_ns()[9], 10);
    }
}
