//! Batch duplicate-fault classification.
//!
//! The driver classifies duplicate faults within a batch into two types
//! (paper Sec. 4.2):
//!
//! * **type 1** — same address, same μTLB: high spatial locality within a
//!   warp/block, or an SM spuriously re-issuing a fault;
//! * **type 2** — same address, *different* μTLBs: data sharing across
//!   blocks scheduled on different SMs (more expensive to reconcile).
//!
//! Duplicates contribute no migrated bytes but are fetched, parsed, and
//! compared — pure overhead, which is why Fig. 8's deduplicated batch sizes
//! differ so much from the raw ones.

use std::collections::HashMap;

use uvm_gpu::fault::{AccessKind, FaultRecord};
use uvm_sim::mem::PageNum;

/// Outcome of deduplicating one batch.
#[derive(Debug, Clone)]
pub struct DedupResult {
    /// One representative fault per distinct page, in first-arrival order.
    /// The representative's kind is upgraded to `Write` if *any* fault on
    /// the page was a write (the page must migrate writable).
    pub unique: Vec<FaultRecord>,
    /// Count of same-μTLB duplicates discarded.
    pub dup_same_utlb: u64,
    /// Count of cross-μTLB duplicates discarded.
    pub dup_cross_utlb: u64,
}

impl DedupResult {
    /// Total duplicates discarded.
    pub fn total_dups(&self) -> u64 {
        self.dup_same_utlb + self.dup_cross_utlb
    }
}

/// Classify and collapse duplicate faults in a batch.
pub fn classify_duplicates(batch: &[FaultRecord]) -> DedupResult {
    // page -> (index into unique, set of utlbs seen)
    let mut seen: HashMap<PageNum, (usize, Vec<u32>)> = HashMap::with_capacity(batch.len());
    let mut unique: Vec<FaultRecord> = Vec::with_capacity(batch.len());
    let mut dup_same_utlb = 0u64;
    let mut dup_cross_utlb = 0u64;

    for fault in batch {
        match seen.get_mut(&fault.page) {
            None => {
                seen.insert(fault.page, (unique.len(), vec![fault.utlb]));
                unique.push(*fault);
            }
            Some((idx, utlbs)) => {
                if utlbs.contains(&fault.utlb) {
                    dup_same_utlb += 1;
                } else {
                    dup_cross_utlb += 1;
                    utlbs.push(fault.utlb);
                }
                if fault.kind == AccessKind::Write {
                    unique[*idx].kind = AccessKind::Write;
                }
            }
        }
    }

    DedupResult {
        unique,
        dup_same_utlb,
        dup_cross_utlb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvm_sim::time::SimTime;

    fn fault(page: u64, utlb: u32, kind: AccessKind) -> FaultRecord {
        FaultRecord {
            page: PageNum(page),
            kind,
            sm: utlb * 2,
            utlb,
            warp: 0,
            arrival: SimTime(0),
            dup_of_outstanding: false,
        }
    }

    #[test]
    fn no_duplicates_passes_through() {
        let batch = vec![
            fault(1, 0, AccessKind::Read),
            fault(2, 0, AccessKind::Read),
            fault(3, 1, AccessKind::Write),
        ];
        let r = classify_duplicates(&batch);
        assert_eq!(r.unique.len(), 3);
        assert_eq!(r.total_dups(), 0);
    }

    #[test]
    fn same_utlb_duplicate_classified_type1() {
        let batch = vec![fault(1, 0, AccessKind::Read), fault(1, 0, AccessKind::Read)];
        let r = classify_duplicates(&batch);
        assert_eq!(r.unique.len(), 1);
        assert_eq!(r.dup_same_utlb, 1);
        assert_eq!(r.dup_cross_utlb, 0);
    }

    #[test]
    fn cross_utlb_duplicate_classified_type2() {
        let batch = vec![fault(1, 0, AccessKind::Read), fault(1, 3, AccessKind::Read)];
        let r = classify_duplicates(&batch);
        assert_eq!(r.unique.len(), 1);
        assert_eq!(r.dup_same_utlb, 0);
        assert_eq!(r.dup_cross_utlb, 1);
    }

    #[test]
    fn third_fault_from_seen_utlb_is_type1() {
        // Once μTLB 3 has been recorded for the page, its next duplicate is
        // same-μTLB even though the first fault came from μTLB 0.
        let batch = vec![
            fault(1, 0, AccessKind::Read),
            fault(1, 3, AccessKind::Read),
            fault(1, 3, AccessKind::Read),
        ];
        let r = classify_duplicates(&batch);
        assert_eq!(r.dup_same_utlb, 1);
        assert_eq!(r.dup_cross_utlb, 1);
    }

    #[test]
    fn write_upgrades_representative() {
        let batch = vec![fault(1, 0, AccessKind::Read), fault(1, 1, AccessKind::Write)];
        let r = classify_duplicates(&batch);
        assert_eq!(r.unique[0].kind, AccessKind::Write);
    }

    #[test]
    fn first_arrival_order_preserved() {
        let batch = vec![
            fault(9, 0, AccessKind::Read),
            fault(1, 0, AccessKind::Read),
            fault(9, 1, AccessKind::Read),
            fault(5, 0, AccessKind::Read),
        ];
        let r = classify_duplicates(&batch);
        let pages: Vec<u64> = r.unique.iter().map(|f| f.page.0).collect();
        assert_eq!(pages, vec![9, 1, 5]);
    }

    #[test]
    fn empty_batch() {
        let r = classify_duplicates(&[]);
        assert!(r.unique.is_empty());
        assert_eq!(r.total_dups(), 0);
    }
}
