//! Batch duplicate-fault classification.
//!
//! The driver classifies duplicate faults within a batch into two types
//! (paper Sec. 4.2):
//!
//! * **type 1** — same address, same μTLB: high spatial locality within a
//!   warp/block, or an SM spuriously re-issuing a fault;
//! * **type 2** — same address, *different* μTLBs: data sharing across
//!   blocks scheduled on different SMs (more expensive to reconcile).
//!
//! Duplicates contribute no migrated bytes but are fetched, parsed, and
//! compared — pure overhead, which is why Fig. 8's deduplicated batch sizes
//! differ so much from the raw ones.

use std::collections::HashMap;

use uvm_gpu::fault::{AccessKind, FaultRecord};
use uvm_sim::mem::PageNum;

/// Outcome of deduplicating one batch.
#[derive(Debug, Clone, Default)]
pub struct DedupResult {
    /// One representative fault per distinct page, in first-arrival order.
    /// The representative's kind is upgraded to `Write` if *any* fault on
    /// the page was a write (the page must migrate writable).
    pub unique: Vec<FaultRecord>,
    /// Count of same-μTLB duplicates discarded.
    pub dup_same_utlb: u64,
    /// Count of cross-μTLB duplicates discarded.
    pub dup_cross_utlb: u64,
}

impl DedupResult {
    /// Total duplicates discarded.
    pub fn total_dups(&self) -> u64 {
        self.dup_same_utlb + self.dup_cross_utlb
    }
}

/// Reusable working memory for [`classify_duplicates_with`], so the
/// per-batch hot path allocates nothing in steady state.
#[derive(Debug, Default)]
pub struct DedupScratch {
    /// `(page, μTLB, batch index)` sort keys.
    keys: Vec<(u64, u32, u32)>,
    /// `(first-arrival batch index, any-write flag)` per distinct page.
    reps: Vec<(u32, bool)>,
}

/// Sort-based fast path of [`classify_duplicates`]: identical output,
/// no hashing, and all working memory reused across batches.
///
/// The reference's per-page counts are order-independent — a page faulted
/// `m` times from `k` distinct μTLBs always yields `k - 1` cross-μTLB and
/// `m - k` same-μTLB duplicates, whatever the interleaving — so grouping
/// by a `(page, μTLB, index)` sort reproduces them exactly, and re-sorting
/// the representatives by first-arrival index restores the reference's
/// output order.
pub fn classify_duplicates_with(
    batch: &[FaultRecord],
    scratch: &mut DedupScratch,
    out: &mut DedupResult,
) {
    out.unique.clear();
    out.dup_same_utlb = 0;
    out.dup_cross_utlb = 0;
    scratch.keys.clear();
    scratch.reps.clear();
    scratch
        .keys
        .extend(batch.iter().enumerate().map(|(i, f)| (f.page.0, f.utlb, i as u32)));
    scratch.keys.sort_unstable();

    let keys = &scratch.keys;
    let mut i = 0;
    while i < keys.len() {
        let page = keys[i].0;
        let mut distinct_utlbs = 0u64;
        let mut total = 0u64;
        let mut first_idx = u32::MAX;
        let mut any_write = false;
        let mut j = i;
        while j < keys.len() && keys[j].0 == page {
            if j == i || keys[j].1 != keys[j - 1].1 {
                distinct_utlbs += 1;
            }
            let bi = keys[j].2;
            first_idx = first_idx.min(bi);
            any_write |= batch[bi as usize].kind == AccessKind::Write;
            total += 1;
            j += 1;
        }
        out.dup_cross_utlb += distinct_utlbs - 1;
        out.dup_same_utlb += total - distinct_utlbs;
        scratch.reps.push((first_idx, any_write));
        i = j;
    }

    scratch.reps.sort_unstable_by_key(|&(idx, _)| idx);
    out.unique.extend(scratch.reps.iter().map(|&(idx, write)| {
        let mut f = batch[idx as usize];
        if write {
            f.kind = AccessKind::Write;
        }
        f
    }));
}

/// Classify and collapse duplicate faults in a batch.
///
/// This is the allocating reference implementation; the service loop uses
/// the scratch-reusing [`classify_duplicates_with`], which is checked
/// against this one by unit tests and a property test.
pub fn classify_duplicates(batch: &[FaultRecord]) -> DedupResult {
    // page -> (index into unique, set of utlbs seen)
    let mut seen: HashMap<PageNum, (usize, Vec<u32>)> = HashMap::with_capacity(batch.len());
    let mut unique: Vec<FaultRecord> = Vec::with_capacity(batch.len());
    let mut dup_same_utlb = 0u64;
    let mut dup_cross_utlb = 0u64;

    for fault in batch {
        match seen.get_mut(&fault.page) {
            None => {
                seen.insert(fault.page, (unique.len(), vec![fault.utlb]));
                unique.push(*fault);
            }
            Some((idx, utlbs)) => {
                if utlbs.contains(&fault.utlb) {
                    dup_same_utlb += 1;
                } else {
                    dup_cross_utlb += 1;
                    utlbs.push(fault.utlb);
                }
                if fault.kind == AccessKind::Write {
                    unique[*idx].kind = AccessKind::Write;
                }
            }
        }
    }

    DedupResult {
        unique,
        dup_same_utlb,
        dup_cross_utlb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvm_sim::time::SimTime;

    fn fault(page: u64, utlb: u32, kind: AccessKind) -> FaultRecord {
        FaultRecord {
            page: PageNum(page),
            kind,
            sm: utlb * 2,
            utlb,
            warp: 0,
            arrival: SimTime(0),
            dup_of_outstanding: false,
        }
    }

    #[test]
    fn no_duplicates_passes_through() {
        let batch = vec![
            fault(1, 0, AccessKind::Read),
            fault(2, 0, AccessKind::Read),
            fault(3, 1, AccessKind::Write),
        ];
        let r = classify_duplicates(&batch);
        assert_eq!(r.unique.len(), 3);
        assert_eq!(r.total_dups(), 0);
    }

    #[test]
    fn same_utlb_duplicate_classified_type1() {
        let batch = vec![fault(1, 0, AccessKind::Read), fault(1, 0, AccessKind::Read)];
        let r = classify_duplicates(&batch);
        assert_eq!(r.unique.len(), 1);
        assert_eq!(r.dup_same_utlb, 1);
        assert_eq!(r.dup_cross_utlb, 0);
    }

    #[test]
    fn cross_utlb_duplicate_classified_type2() {
        let batch = vec![fault(1, 0, AccessKind::Read), fault(1, 3, AccessKind::Read)];
        let r = classify_duplicates(&batch);
        assert_eq!(r.unique.len(), 1);
        assert_eq!(r.dup_same_utlb, 0);
        assert_eq!(r.dup_cross_utlb, 1);
    }

    #[test]
    fn third_fault_from_seen_utlb_is_type1() {
        // Once μTLB 3 has been recorded for the page, its next duplicate is
        // same-μTLB even though the first fault came from μTLB 0.
        let batch = vec![
            fault(1, 0, AccessKind::Read),
            fault(1, 3, AccessKind::Read),
            fault(1, 3, AccessKind::Read),
        ];
        let r = classify_duplicates(&batch);
        assert_eq!(r.dup_same_utlb, 1);
        assert_eq!(r.dup_cross_utlb, 1);
    }

    #[test]
    fn write_upgrades_representative() {
        let batch = vec![fault(1, 0, AccessKind::Read), fault(1, 1, AccessKind::Write)];
        let r = classify_duplicates(&batch);
        assert_eq!(r.unique[0].kind, AccessKind::Write);
    }

    #[test]
    fn first_arrival_order_preserved() {
        let batch = vec![
            fault(9, 0, AccessKind::Read),
            fault(1, 0, AccessKind::Read),
            fault(9, 1, AccessKind::Read),
            fault(5, 0, AccessKind::Read),
        ];
        let r = classify_duplicates(&batch);
        let pages: Vec<u64> = r.unique.iter().map(|f| f.page.0).collect();
        assert_eq!(pages, vec![9, 1, 5]);
    }

    #[test]
    fn empty_batch() {
        let r = classify_duplicates(&[]);
        assert!(r.unique.is_empty());
        assert_eq!(r.total_dups(), 0);
    }

    fn fast(batch: &[FaultRecord]) -> DedupResult {
        let mut scratch = DedupScratch::default();
        let mut out = DedupResult {
            unique: Vec::new(),
            dup_same_utlb: 0,
            dup_cross_utlb: 0,
        };
        classify_duplicates_with(batch, &mut scratch, &mut out);
        out
    }

    fn assert_agree(batch: &[FaultRecord]) {
        let a = classify_duplicates(batch);
        let b = fast(batch);
        assert_eq!(a.dup_same_utlb, b.dup_same_utlb);
        assert_eq!(a.dup_cross_utlb, b.dup_cross_utlb);
        assert_eq!(a.unique.len(), b.unique.len());
        for (x, y) in a.unique.iter().zip(&b.unique) {
            assert_eq!((x.page, x.utlb, x.sm, x.kind), (y.page, y.utlb, y.sm, y.kind));
        }
    }

    #[test]
    fn fast_path_matches_reference() {
        assert_agree(&[]);
        assert_agree(&[fault(1, 0, AccessKind::Read)]);
        assert_agree(&[
            fault(9, 0, AccessKind::Read),
            fault(1, 2, AccessKind::Write),
            fault(9, 1, AccessKind::Read),
            fault(9, 1, AccessKind::Read),
            fault(5, 0, AccessKind::Read),
            fault(1, 2, AccessKind::Read),
            fault(9, 0, AccessKind::Write),
        ]);
    }

    #[test]
    fn fast_path_scratch_reuse_is_clean() {
        let mut scratch = DedupScratch::default();
        let mut out = DedupResult {
            unique: Vec::new(),
            dup_same_utlb: 0,
            dup_cross_utlb: 0,
        };
        let b1 = vec![fault(1, 0, AccessKind::Read), fault(1, 1, AccessKind::Read)];
        classify_duplicates_with(&b1, &mut scratch, &mut out);
        assert_eq!(out.dup_cross_utlb, 1);
        // A second, unrelated batch through the same scratch must not see
        // any state from the first.
        let b2 = vec![fault(7, 3, AccessKind::Write)];
        classify_duplicates_with(&b2, &mut scratch, &mut out);
        assert_eq!(out.unique.len(), 1);
        assert_eq!(out.unique[0].page.0, 7);
        assert_eq!(out.total_dups(), 0);
    }
}
