#![warn(missing_docs)]

//! # uvm-driver — the UVM driver model
//!
//! This crate reimplements the documented logic of the `nvidia-uvm` driver
//! that Allen & Ge (SC '21) instrument and analyze: it is the paper's
//! subject, rebuilt as a deterministic state machine over the `uvm-gpu`
//! device model and the `uvm-hostos` substrate.
//!
//! * [`policy`] — driver tunables: batch size limit (256 by default),
//!   prefetching on/off, per-fault metadata logging.
//! * [`bitmap`] — 512-bit per-VABlock page bitmaps.
//! * [`va_block`] / [`va_space`] — the 2 MiB VABlock state machine and the
//!   managed-allocation registry.
//! * [`dedup`] — batch duplicate-fault classification: type 1 (same
//!   address, same μTLB) vs type 2 (same address, different μTLBs).
//! * [`prefetch`] — the reactive tree-based density prefetcher, confined to
//!   a single VABlock (64 KiB leaf regions, >50 % density threshold).
//! * [`engine`] — the pluggable policy engine: object-safe
//!   [`engine::PrefetchPolicy`] / [`engine::EvictionPolicy`] traits with
//!   the stock
//!   tree/LRU pair plus none/stride/oracle prefetchers and random/LFU
//!   evictors, all serde-configurable through [`DriverPolicy`].
//! * [`evict`] — the GPU physical-memory manager: VABlock-granular
//!   allocation with policy-selected eviction (stock: LRU, "effectively
//!   earliest-allocated", Sec. 5.4).
//! * [`batch`] — [`BatchRecord`], the batch-level instrumentation mirroring
//!   the paper's modified-driver logs: component times (fetch, DMA setup,
//!   CPU unmap, population, transfer, eviction), fault counts, duplicate
//!   counts, VABlock counts.
//! * [`service`] — [`UvmDriver`], the fault-servicing pipeline itself:
//!   fetch → deduplicate → per-VABlock service (DMA setup, CPU unmap,
//!   eviction, population, migration, page-table update, prefetch) →
//!   flush → replay. Fallible end to end: injected failures are retried
//!   with deterministic backoff or degrade the block to a remote mapping.
//! * [`health`] — the graceful-degradation state machine
//!   (`Healthy → Pressured → Degraded → Resetting`): the driver evaluates
//!   evidence at every batch boundary and adapts servicing (prefetch
//!   gating, emergency eviction, reset re-attach) to the device's regime.
//! * [`audit`] — the cross-layer invariant auditor, cross-checking driver
//!   state against the GPU page table, the memory manager, the DMA space,
//!   and host page tables after every batch.

pub mod advise;
pub mod audit;
pub mod batch;
pub mod bitmap;
pub mod dedup;
pub mod engine;
pub mod evict;
pub mod health;
pub mod policy;
pub mod prefetch;
pub mod service;
pub mod va_block;
pub mod va_space;

pub use advise::MemAdvise;
pub use batch::BatchRecord;
pub use bitmap::PageBitmap;
pub use dedup::{classify_duplicates, classify_duplicates_with, DedupResult, DedupScratch};
pub use engine::{
    EvictionPolicy, EvictionPolicyKind, PrefetchContext, PrefetchPolicy, PrefetchPolicyKind,
    VictimCandidate,
};
pub use evict::{EvictOutcome, GpuMemoryManager};
pub use health::{HealthEvidence, HealthMachine, HealthState};
pub use policy::DriverPolicy;
pub use prefetch::compute_prefetch;
pub use service::{ServiceScratch, UvmDriver};
pub use va_block::VaBlockState;
pub use va_space::VaSpace;
