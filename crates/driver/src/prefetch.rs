//! The tree-based density prefetcher.
//!
//! UVM's prefetcher (paper Sec. 5.2; described in detail in Allen & Ge
//! IPDPS'21 and Ganguly et al. ISCA'19) is *reactive* and confined to the
//! VABlock currently being serviced. It views the block as a binary tree:
//! 512 4 KiB pages → 32 leaves of 64 KiB ("big pages") → … → the 2 MiB
//! root. A subtree is flagged when strictly more than a threshold fraction
//! (half, by default) of its pages are already resident or faulting in this
//! batch; every page under a flagged subtree is prefetched. Because 64 KiB
//! leaves are the smallest prefetch unit, this also implements the 4 KiB →
//! 64 KiB page "upgrade" the driver performs on x86.

use crate::bitmap::PageBitmap;

/// Number of levels in the block tree: 16-page leaves (64 KiB), then 32,
/// 64, 128, 256, 512-page subtrees.
const LEAF_PAGES: usize = 16;
const LEAVES: usize = 32;

/// Compute the pages to prefetch for one VABlock.
///
/// * `resident` — pages already GPU-resident.
/// * `faulted` — pages being migrated by the current batch.
/// * `valid_pages` — number of usable pages in the block (partial final
///   blocks of an allocation prefetch only within their valid range).
/// * `threshold` — density above which a subtree is prefetched (default
///   0.5, strict).
///
/// Returns the bitmap of *additional* pages to migrate (never overlapping
/// `resident` or `faulted`).
pub fn compute_prefetch(
    resident: &PageBitmap,
    faulted: &PageBitmap,
    valid_pages: u32,
    threshold: f64,
) -> PageBitmap {
    let occupied = resident.or(faulted);
    if occupied.is_empty() {
        return PageBitmap::EMPTY;
    }
    let valid = valid_pages as usize;

    // Occupied-page counts per 16-page leaf.
    let mut counts = [0u32; LEAVES];
    for i in occupied.iter_set() {
        counts[i / LEAF_PAGES] += 1;
    }

    let mut prefetch = PageBitmap::EMPTY;
    // Walk levels from leaves (span 16 pages) up to the root (512).
    let mut span = LEAF_PAGES;
    let mut level_counts: Vec<u32> = counts.to_vec();
    while span <= 512 {
        for (node, &cnt) in level_counts.iter().enumerate() {
            let lo = node * span;
            let hi = ((node + 1) * span).min(valid);
            if lo >= valid {
                continue;
            }
            let node_valid = (hi - lo) as f64;
            if f64::from(cnt) > threshold * node_valid {
                prefetch.set_range(lo, hi);
            }
        }
        // Collapse pairs for the next level.
        if span == 512 {
            break;
        }
        level_counts = level_counts.chunks(2).map(|c| c.iter().sum()).collect();
        span *= 2;
    }

    // Only *new* pages: drop already-resident/faulted ones.
    prefetch.and_not(&occupied)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bm(pages: impl IntoIterator<Item = usize>) -> PageBitmap {
        pages.into_iter().collect()
    }

    #[test]
    fn empty_input_prefetches_nothing() {
        let p = compute_prefetch(&PageBitmap::EMPTY, &PageBitmap::EMPTY, 512, 0.5);
        assert!(p.is_empty());
    }

    #[test]
    fn sparse_faults_prefetch_nothing() {
        // One fault per 64 KiB leaf (1/16 density) is below threshold
        // everywhere.
        let faulted = bm((0..32).map(|l| l * 16));
        let p = compute_prefetch(&PageBitmap::EMPTY, &faulted, 512, 0.5);
        assert!(p.is_empty());
    }

    #[test]
    fn dense_leaf_upgrades_to_64k() {
        // 9 of 16 pages of leaf 0 faulted (> 50%): the whole 64 KiB leaf is
        // migrated — the 4 KiB → 64 KiB upgrade.
        let faulted = bm(0..9);
        let p = compute_prefetch(&PageBitmap::EMPTY, &faulted, 512, 0.5);
        assert_eq!(p.iter_set().collect::<Vec<_>>(), (9..16).collect::<Vec<_>>());
    }

    #[test]
    fn majority_of_block_prefetches_whole_block() {
        // 300 of 512 pages resident+faulted: the root is flagged, the rest
        // of the block prefetches (Fig. 14's ~2 MiB-scale batches).
        let resident = bm(0..200);
        let faulted = bm(200..300);
        let p = compute_prefetch(&resident, &faulted, 512, 0.5);
        assert_eq!(p.count(), 212);
        assert_eq!(p.iter_set().next(), Some(300));
    }

    #[test]
    fn prefetch_never_includes_occupied_pages() {
        let resident = bm(0..100);
        let faulted = bm(100..290);
        let p = compute_prefetch(&resident, &faulted, 512, 0.5);
        for i in 0..290 {
            assert!(!p.get(i), "page {i} is already occupied");
        }
    }

    #[test]
    fn partial_block_prefetches_only_valid_range() {
        // Block with 100 valid pages; 60 faulted → root density 60% of the
        // valid range; prefetch covers only valid pages.
        let faulted = bm(0..60);
        let p = compute_prefetch(&PageBitmap::EMPTY, &faulted, 100, 0.5);
        assert!(p.iter_set().all(|i| i < 100), "{:?}", p.iter_set().collect::<Vec<_>>());
        assert_eq!(p.count(), 40);
    }

    #[test]
    fn threshold_is_strict() {
        // Exactly half a leaf (8/16) must NOT trigger.
        let faulted = bm(0..8);
        let p = compute_prefetch(&PageBitmap::EMPTY, &faulted, 512, 0.5);
        assert!(p.is_empty());
        // One more page does.
        let faulted = bm(0..9);
        let p = compute_prefetch(&PageBitmap::EMPTY, &faulted, 512, 0.5);
        assert!(!p.is_empty());
    }

    #[test]
    fn resident_pages_drive_prefetch_of_neighbors() {
        // The prefetcher is reactive: residency from earlier batches plus a
        // few new faults can tip a subtree over threshold.
        let resident = bm(0..15); // leaf 0 nearly full
        let faulted = bm([16usize]); // one fault in leaf 1
        let p = compute_prefetch(&resident, &faulted, 512, 0.5);
        // Leaf 0's remaining page (15) prefetched via the 32-page subtree
        // (16/32 = exactly half — not flagged) or leaf 0 itself (15/16).
        assert!(p.get(15));
    }
}
