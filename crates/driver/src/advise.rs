//! Memory-usage hints (`cudaMemAdvise`) and explicit prefetch
//! (`cudaMemPrefetchAsync`).
//!
//! The paper's related work (Chien/Peng/Markidis, MCHPC'19) evaluates
//! UVM's "advanced features" — allocation hints and explicit prefetching —
//! as the escape hatches from the default fault-driven behaviour this
//! repository reproduces. The driver honors them as follows:
//!
//! * [`MemAdvise::ReadMostly`] — migrations *duplicate* read-only data:
//!   the CPU mapping survives a GPU read fault (no fault-path
//!   `unmap_mapping_range`), and evicting a duplicated block just drops
//!   the GPU copy (no device→host writeback). A write fault collapses the
//!   duplication and reverts the block to normal handling.
//! * [`MemAdvise::PreferredLocationHost`] — data stays in host memory:
//!   GPU faults establish *remote mappings* over the interconnect instead
//!   of migrating, consuming no device memory and creating no eviction
//!   pressure (the EMOGI/remote-DMA strategy for irregular apps).
//! * `UvmDriver::prefetch_async` — bulk, driver-initiated migration of a
//!   whole allocation: pages arrive before the kernel faults on them,
//!   paying the same DMA-setup/unmap/transfer costs but amortized into
//!   one operation per VABlock instead of a fault-driven batch sequence.

use serde::{Deserialize, Serialize};

/// A usage hint applied to all VABlocks of an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemAdvise {
    /// `cudaMemAdviseSetReadMostly`: duplicate on read, collapse on write.
    ReadMostly,
    /// `cudaMemAdviseSetPreferredLocation(cudaCpuDeviceId)`: map remotely,
    /// never migrate.
    PreferredLocationHost,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advise_serializes() -> Result<(), serde_json::Error> {
        let json = serde_json::to_string(&MemAdvise::ReadMostly)?;
        assert!(json.contains("ReadMostly"));
        let back: MemAdvise = serde_json::from_str(&json)?;
        assert_eq!(back, MemAdvise::ReadMostly);
        Ok(())
    }
}
