//! The pluggable policy engine: prefetch and eviction strategies behind
//! object-safe traits.
//!
//! The paper analyzes one hard-wired policy stack — the tree-based density
//! prefetcher (Sec. 5.2) and migration-order LRU eviction (Sec. 5.1) — but
//! frames both as points in a design space (UVMBench and the
//! DL-prefetching line of work explore it). This module turns each
//! decision into a trait with serde-configurable stock implementations, so
//! a policy study is a [`crate::policy::DriverPolicy`] change instead of a
//! driver change:
//!
//! * [`PrefetchPolicy`] — expands a block's faulted set before migration.
//!   Implementations: [`NonePrefetch`], [`TreeDensityPrefetch`] (stock),
//!   [`SequentialStridePrefetch`], and [`OraclePrefetch`] (reads the
//!   workload's future access list — the upper bound no reactive policy
//!   can beat).
//! * [`EvictionPolicy`] — picks the victim block when device memory is
//!   full. Implementations: [`LruEvict`] (stock migration-order LRU),
//!   [`RandomEvict`], and [`LfuEvict`] (fewest migrations first).
//!
//! ## Determinism and snapshot contract
//!
//! Policies themselves are stateless (unit structs): every input they may
//! consult arrives through [`PrefetchContext`] / the candidate slice, and
//! all mutable policy state lives in the serialized driver — the oracle's
//! future-access table on [`crate::service::UvmDriver`], the LFU touch
//! counters and the random evictor's [`DetRng`] on
//! [`crate::evict::GpuMemoryManager`]. A snapshot therefore captures every
//! bit a policy depends on, and a restored run continues bit-identically
//! under any policy stack, not just the stock one. Eviction candidates are
//! handed to the policy sorted by block id, so no `HashMap` iteration
//! order can leak into victim selection.

use serde::{Deserialize, Serialize};
use uvm_sim::mem::VaBlockId;
use uvm_sim::rng::DetRng;

use crate::bitmap::PageBitmap;
use crate::prefetch::compute_prefetch;

/// Serde-configurable prefetcher selection (the
/// [`crate::policy::DriverPolicy::prefetch_policy`] knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PrefetchPolicyKind {
    /// No expansion: migrate exactly the faulted pages.
    None,
    /// The stock tree-based density prefetcher
    /// ([`crate::prefetch::compute_prefetch`]).
    #[default]
    TreeDensity,
    /// Prefetch the next `stride_pages` pages after the highest faulted
    /// page (a classic next-line/stream prefetcher at page granularity).
    SequentialStride,
    /// Perfect knowledge: prefetch every page of the block the workload
    /// will ever touch. An upper bound, not implementable in a real
    /// driver.
    Oracle,
}

impl PrefetchPolicyKind {
    /// Every prefetcher, in sweep order.
    pub const ALL: [PrefetchPolicyKind; 4] = [
        PrefetchPolicyKind::None,
        PrefetchPolicyKind::TreeDensity,
        PrefetchPolicyKind::SequentialStride,
        PrefetchPolicyKind::Oracle,
    ];

    /// Stable lower-case name (sweep tables, trace events).
    pub fn name(self) -> &'static str {
        match self {
            PrefetchPolicyKind::None => "none",
            PrefetchPolicyKind::TreeDensity => "tree",
            PrefetchPolicyKind::SequentialStride => "stride",
            PrefetchPolicyKind::Oracle => "oracle",
        }
    }

    /// The policy object implementing this kind. All stock policies are
    /// stateless unit structs, so dispatch allocates nothing.
    pub fn as_policy(self) -> &'static dyn PrefetchPolicy {
        match self {
            PrefetchPolicyKind::None => &NonePrefetch,
            PrefetchPolicyKind::TreeDensity => &TreeDensityPrefetch,
            PrefetchPolicyKind::SequentialStride => &SequentialStridePrefetch,
            PrefetchPolicyKind::Oracle => &OraclePrefetch,
        }
    }
}

/// Serde-configurable evictor selection (the
/// [`crate::policy::DriverPolicy::eviction_policy`] knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EvictionPolicyKind {
    /// Stock migration-order LRU: least-recently-*migrated* block first
    /// (the driver never sees GPU-side hits — Sec. 5.4's "effectively
    /// earliest allocated").
    #[default]
    Lru,
    /// Uniform random victim from the resident set.
    Random,
    /// Least-frequently-migrated block first (migration count, ties by
    /// LRU key then block id).
    Lfu,
}

impl EvictionPolicyKind {
    /// Every evictor, in sweep order.
    pub const ALL: [EvictionPolicyKind; 3] = [
        EvictionPolicyKind::Lru,
        EvictionPolicyKind::Random,
        EvictionPolicyKind::Lfu,
    ];

    /// Stable lower-case name (sweep tables, trace events).
    pub fn name(self) -> &'static str {
        match self {
            EvictionPolicyKind::Lru => "lru",
            EvictionPolicyKind::Random => "random",
            EvictionPolicyKind::Lfu => "lfu",
        }
    }

    /// The policy object implementing this kind.
    pub fn as_policy(self) -> &'static dyn EvictionPolicy {
        match self {
            EvictionPolicyKind::Lru => &LruEvict,
            EvictionPolicyKind::Random => &RandomEvict,
            EvictionPolicyKind::Lfu => &LfuEvict,
        }
    }
}

/// Everything a prefetcher may consult for one VABlock of one batch.
#[derive(Debug)]
pub struct PrefetchContext<'a> {
    /// Pages already GPU-resident in this block.
    pub resident: &'a PageBitmap,
    /// Faulted, non-resident pages the current batch migrates.
    pub faulted: &'a PageBitmap,
    /// Usable pages in the block (partial final blocks prefetch only
    /// within their valid range).
    pub valid_pages: u32,
    /// Density threshold for [`TreeDensityPrefetch`].
    pub threshold: f64,
    /// Expansion depth for [`SequentialStridePrefetch`].
    pub stride_pages: u32,
    /// This block's future access list (pages the workload will touch),
    /// when the driver has one installed — consumed by [`OraclePrefetch`].
    pub future: Option<&'a PageBitmap>,
}

/// A prefetch strategy: expand a block's faulted set before migration.
///
/// Object-safe; implementations must be pure functions of the context
/// (all mutable policy state lives in the serialized driver, see the
/// module docs).
pub trait PrefetchPolicy: std::fmt::Debug + Send + Sync {
    /// Stable lower-case policy name.
    fn name(&self) -> &'static str;
    /// The *additional* pages to migrate. The engine masks the result to
    /// the valid range and removes already-occupied pages, so
    /// implementations cannot violate the prefetch contract.
    fn compute(&self, ctx: &PrefetchContext<'_>) -> PageBitmap;
}

/// No expansion.
#[derive(Debug)]
pub struct NonePrefetch;

impl PrefetchPolicy for NonePrefetch {
    fn name(&self) -> &'static str {
        "none"
    }
    fn compute(&self, _ctx: &PrefetchContext<'_>) -> PageBitmap {
        PageBitmap::EMPTY
    }
}

/// The stock tree-based density prefetcher.
#[derive(Debug)]
pub struct TreeDensityPrefetch;

impl PrefetchPolicy for TreeDensityPrefetch {
    fn name(&self) -> &'static str {
        "tree"
    }
    fn compute(&self, ctx: &PrefetchContext<'_>) -> PageBitmap {
        compute_prefetch(ctx.resident, ctx.faulted, ctx.valid_pages, ctx.threshold)
    }
}

/// Next-line prefetch: the `stride_pages` pages after the highest faulted
/// page, confined to the block's valid range.
#[derive(Debug)]
pub struct SequentialStridePrefetch;

impl PrefetchPolicy for SequentialStridePrefetch {
    fn name(&self) -> &'static str {
        "stride"
    }
    fn compute(&self, ctx: &PrefetchContext<'_>) -> PageBitmap {
        let Some(last) = ctx.faulted.iter_set().max() else {
            return PageBitmap::EMPTY;
        };
        let lo = last + 1;
        let hi = (lo + ctx.stride_pages as usize).min(ctx.valid_pages as usize);
        let mut p = PageBitmap::EMPTY;
        if lo < hi {
            p.set_range(lo, hi);
        }
        p
    }
}

/// Perfect-knowledge prefetch from the workload's future access list.
#[derive(Debug)]
pub struct OraclePrefetch;

impl PrefetchPolicy for OraclePrefetch {
    fn name(&self) -> &'static str {
        "oracle"
    }
    fn compute(&self, ctx: &PrefetchContext<'_>) -> PageBitmap {
        match ctx.future {
            Some(future) => *future,
            // No table installed (e.g. a raw service_batch call outside a
            // full-system run): degrade to no expansion.
            None => PageBitmap::EMPTY,
        }
    }
}

/// Dispatch one prefetch decision through `kind`, enforcing the engine
/// contract on the result: never a resident/faulted page, never beyond
/// `valid_pages`. The stock tree policy already satisfies both, so stock
/// outputs are bit-identical to the pre-engine driver.
pub fn run_prefetch_policy(kind: PrefetchPolicyKind, ctx: &PrefetchContext<'_>) -> PageBitmap {
    let raw = kind.as_policy().compute(ctx);
    if raw.is_empty() {
        return raw;
    }
    let mut valid = PageBitmap::EMPTY;
    valid.set_range(0, ctx.valid_pages as usize);
    raw.and(&valid).and_not(&ctx.resident.or(ctx.faulted))
}

/// One eviction candidate: a resident block and its bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimCandidate {
    /// The resident block.
    pub block: VaBlockId,
    /// Migration sequence number of the last batch that touched it (the
    /// LRU key).
    pub last_migrate: u64,
    /// How many batches have migrated pages into it (the LFU key).
    pub touches: u64,
}

/// An eviction strategy: pick the victim when device memory is full.
///
/// Object-safe. `candidates` is non-empty and sorted by block id
/// ascending (a deterministic order independent of map internals); `rng`
/// is the memory manager's serialized stream, so stochastic policies
/// survive snapshot/restore bit-identically.
pub trait EvictionPolicy: std::fmt::Debug + Send + Sync {
    /// Stable lower-case policy name.
    fn name(&self) -> &'static str;
    /// Index into `candidates` of the victim.
    fn select(&self, candidates: &[VictimCandidate], rng: &mut DetRng) -> usize;
}

/// Stock migration-order LRU (ties broken by block id).
#[derive(Debug)]
pub struct LruEvict;

impl EvictionPolicy for LruEvict {
    fn name(&self) -> &'static str {
        "lru"
    }
    fn select(&self, candidates: &[VictimCandidate], _rng: &mut DetRng) -> usize {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (c.last_migrate, c.block.0))
            .map_or(0, |(i, _)| i)
    }
}

/// Uniform random victim.
#[derive(Debug)]
pub struct RandomEvict;

impl EvictionPolicy for RandomEvict {
    fn name(&self) -> &'static str {
        "random"
    }
    fn select(&self, candidates: &[VictimCandidate], rng: &mut DetRng) -> usize {
        rng.below(candidates.len() as u64) as usize
    }
}

/// Least-frequently-migrated victim (ties by LRU key, then block id).
#[derive(Debug)]
pub struct LfuEvict;

impl EvictionPolicy for LfuEvict {
    fn name(&self) -> &'static str {
        "lfu"
    }
    fn select(&self, candidates: &[VictimCandidate], _rng: &mut DetRng) -> usize {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (c.touches, c.last_migrate, c.block.0))
            .map_or(0, |(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bm(pages: impl IntoIterator<Item = usize>) -> PageBitmap {
        pages.into_iter().collect()
    }

    fn ctx<'a>(
        resident: &'a PageBitmap,
        faulted: &'a PageBitmap,
        future: Option<&'a PageBitmap>,
    ) -> PrefetchContext<'a> {
        PrefetchContext {
            resident,
            faulted,
            valid_pages: 512,
            threshold: 0.5,
            stride_pages: 16,
            future,
        }
    }

    #[test]
    fn traits_are_object_safe() {
        // The tentpole contract: both traits box cleanly.
        let prefetchers: Vec<Box<dyn PrefetchPolicy>> = vec![
            Box::new(NonePrefetch),
            Box::new(TreeDensityPrefetch),
            Box::new(SequentialStridePrefetch),
            Box::new(OraclePrefetch),
        ];
        let names: Vec<_> = prefetchers.iter().map(|p| p.name()).collect();
        assert_eq!(names, ["none", "tree", "stride", "oracle"]);
        let evictors: Vec<Box<dyn EvictionPolicy>> =
            vec![Box::new(LruEvict), Box::new(RandomEvict), Box::new(LfuEvict)];
        let names: Vec<_> = evictors.iter().map(|p| p.name()).collect();
        assert_eq!(names, ["lru", "random", "lfu"]);
    }

    #[test]
    fn kinds_round_trip_through_serde_and_name_their_policies() {
        for k in PrefetchPolicyKind::ALL {
            let json = serde_json::to_string(&k).expect("serialize");
            let back: PrefetchPolicyKind = serde_json::from_str(&json).expect("round trip");
            assert_eq!(back, k);
            assert_eq!(k.as_policy().name(), k.name());
        }
        for k in EvictionPolicyKind::ALL {
            let json = serde_json::to_string(&k).expect("serialize");
            let back: EvictionPolicyKind = serde_json::from_str(&json).expect("round trip");
            assert_eq!(back, k);
            assert_eq!(k.as_policy().name(), k.name());
        }
        assert_eq!(PrefetchPolicyKind::default(), PrefetchPolicyKind::TreeDensity);
        assert_eq!(EvictionPolicyKind::default(), EvictionPolicyKind::Lru);
    }

    #[test]
    fn none_prefetches_nothing() {
        let faulted = bm(0..100);
        let p = run_prefetch_policy(PrefetchPolicyKind::None, &ctx(&PageBitmap::EMPTY, &faulted, None));
        assert!(p.is_empty());
    }

    #[test]
    fn tree_kind_matches_direct_compute_prefetch() {
        let resident = bm(0..200);
        let faulted = bm(200..300);
        let via_engine =
            run_prefetch_policy(PrefetchPolicyKind::TreeDensity, &ctx(&resident, &faulted, None));
        let direct = compute_prefetch(&resident, &faulted, 512, 0.5);
        assert_eq!(via_engine, direct, "engine dispatch must not perturb the stock policy");
    }

    #[test]
    fn stride_prefetches_next_pages_only() {
        let faulted = bm([10usize, 40]);
        let p = run_prefetch_policy(
            PrefetchPolicyKind::SequentialStride,
            &ctx(&PageBitmap::EMPTY, &faulted, None),
        );
        assert_eq!(p.iter_set().collect::<Vec<_>>(), (41..57).collect::<Vec<_>>());
    }

    #[test]
    fn stride_respects_valid_range_and_occupancy() {
        let resident = bm([505usize]);
        let faulted = bm([500usize]);
        let mut c = ctx(&resident, &faulted, None);
        c.valid_pages = 508;
        let p = run_prefetch_policy(PrefetchPolicyKind::SequentialStride, &c);
        // 501..508 minus the resident page 505.
        assert_eq!(p.iter_set().collect::<Vec<_>>(), vec![501, 502, 503, 504, 506, 507]);
    }

    #[test]
    fn oracle_prefetches_future_minus_occupied() {
        let resident = bm(0..8);
        let faulted = bm(8..16);
        let future = bm(0..64);
        let p = run_prefetch_policy(
            PrefetchPolicyKind::Oracle,
            &ctx(&resident, &faulted, Some(&future)),
        );
        assert_eq!(p.iter_set().collect::<Vec<_>>(), (16..64).collect::<Vec<_>>());
        // Without a table the oracle degrades to no expansion.
        let p = run_prefetch_policy(PrefetchPolicyKind::Oracle, &ctx(&resident, &faulted, None));
        assert!(p.is_empty());
    }

    #[test]
    fn engine_masks_a_misbehaving_policy() {
        // A policy returning FULL must still come back clipped to the
        // valid range minus occupied pages.
        let resident = bm(0..8);
        let faulted = bm(8..16);
        let future = PageBitmap::FULL;
        let mut c = ctx(&resident, &faulted, Some(&future));
        c.valid_pages = 100;
        let p = run_prefetch_policy(PrefetchPolicyKind::Oracle, &c);
        assert_eq!(p.iter_set().collect::<Vec<_>>(), (16..100).collect::<Vec<_>>());
    }

    fn cands() -> Vec<VictimCandidate> {
        vec![
            VictimCandidate { block: VaBlockId(1), last_migrate: 9, touches: 4 },
            VictimCandidate { block: VaBlockId(2), last_migrate: 3, touches: 7 },
            VictimCandidate { block: VaBlockId(3), last_migrate: 5, touches: 1 },
        ]
    }

    #[test]
    fn lru_picks_oldest_migration() {
        let mut rng = DetRng::new(0);
        assert_eq!(LruEvict.select(&cands(), &mut rng), 1);
    }

    #[test]
    fn lfu_picks_fewest_touches() {
        let mut rng = DetRng::new(0);
        assert_eq!(LfuEvict.select(&cands(), &mut rng), 2);
    }

    #[test]
    fn random_is_deterministic_per_stream() {
        let c = cands();
        let picks_a: Vec<usize> = {
            let mut rng = DetRng::new(7);
            (0..16).map(|_| RandomEvict.select(&c, &mut rng)).collect()
        };
        let picks_b: Vec<usize> = {
            let mut rng = DetRng::new(7);
            (0..16).map(|_| RandomEvict.select(&c, &mut rng)).collect()
        };
        assert_eq!(picks_a, picks_b);
        assert!(picks_a.iter().all(|&i| i < c.len()));
        // The stream actually varies its picks.
        let distinct: std::collections::HashSet<_> = picks_a.iter().collect();
        assert!(distinct.len() > 1, "16 draws over 3 candidates should vary: {picks_a:?}");
    }
}
