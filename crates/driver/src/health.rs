//! The driver's graceful-degradation health state machine.
//!
//! A production UVM driver does not only service faults on a healthy
//! device; it survives sustained memory pressure, accumulating block
//! degradations, and full GPU resets. [`HealthState`] makes that regime
//! explicit: the driver evaluates its health at every batch boundary and
//! adapts its servicing behavior per state (see
//! [`HealthState::prefetch_allowed`]) instead of pretending the device is
//! always pristine.
//!
//! State semantics, in escalation order:
//!
//! * **Healthy** — the stock paper pipeline. Every experiment with
//!   injection disabled runs its whole life here, so the machine is
//!   perturbation-free for all golden figures.
//! * **Pressured** — device memory is partially reserved away from UVM
//!   ([`crate::evict::GpuMemoryManager::pressure_reserved`] > 0). The
//!   driver has emergency-evicted down to the shrunken capacity and stops
//!   prefetching: speculative migrations into a shrinking device are how
//!   real drivers thrash themselves to death.
//! * **Degraded** — enough VABlocks have been permanently degraded to
//!   remote mappings ([`crate::policy::DriverPolicy::degraded_threshold`])
//!   that the driver treats the device as unreliable; prefetching stays
//!   off even after pressure lifts.
//! * **Resetting** — the GPU lost its fault buffer and μTLB state this
//!   batch; the driver pays the re-attach cost
//!   ([`crate::policy::DriverPolicy::reset_reattach_cost`], charged to
//!   `t_fixed`) and relies on the end-of-batch replay to regenerate the
//!   lost faults from the last consistent point.
//!
//! Transitions are recomputed from evidence each batch (reset observed →
//! `Resetting`; else degradations over threshold → `Degraded`; else
//! reservation active → `Pressured`; else `Healthy`), so the machine
//! recovers as naturally as it escalates. Every transition is counted and
//! emitted as a `health-transition` trace instant.

use serde::{Deserialize, Serialize};

/// The driver's operating regime, evaluated at every batch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum HealthState {
    /// Stock servicing; no failure domain active.
    #[default]
    Healthy,
    /// Device memory partially reserved away; emergency eviction done,
    /// prefetching suspended.
    Pressured,
    /// Accumulated block degradations crossed the policy threshold;
    /// prefetching suspended until the driver is rebuilt.
    Degraded,
    /// A GPU reset was absorbed this batch; re-attach cost paid, lost
    /// faults replay from the last consistent point.
    Resetting,
}

impl HealthState {
    /// Stable lower-case name (trace events, reports).
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Pressured => "pressured",
            HealthState::Degraded => "degraded",
            HealthState::Resetting => "resetting",
        }
    }

    /// Whether speculative prefetching is permitted in this state. Only a
    /// healthy driver speculates; every degraded regime services strictly
    /// on demand.
    pub fn prefetch_allowed(self) -> bool {
        self == HealthState::Healthy
    }
}

/// Evidence the driver gathered about one batch, from which the next
/// health state is derived.
#[derive(Debug, Clone, Copy, Default)]
pub struct HealthEvidence {
    /// A GPU reset was absorbed while servicing this batch.
    pub reset_absorbed: bool,
    /// Device blocks currently reserved away from UVM (0 = no pressure).
    pub pressure_reserved: u64,
    /// Cumulative VABlocks degraded to remote mappings over the run.
    pub total_degraded: u64,
    /// Policy threshold at which degradations escalate the state.
    pub degraded_threshold: u64,
}

/// The health machine: current state plus transition accounting. Fully
/// serialized, so a restored run continues in the exact regime the
/// snapshotted one was in.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HealthMachine {
    state: HealthState,
    /// Monotone count of state transitions.
    transitions: u64,
    /// Batches spent in each state, indexed Healthy/Pressured/Degraded/
    /// Resetting.
    batches_in_state: [u64; 4],
}

impl HealthMachine {
    /// A machine starting `Healthy` with zeroed accounting.
    pub fn new() -> Self {
        HealthMachine::default()
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Monotone transition count.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Batches observed while in `state`.
    pub fn batches_in(&self, state: HealthState) -> u64 {
        self.batches_in_state[Self::index(state)]
    }

    fn index(state: HealthState) -> usize {
        match state {
            HealthState::Healthy => 0,
            HealthState::Pressured => 1,
            HealthState::Degraded => 2,
            HealthState::Resetting => 3,
        }
    }

    /// Derive the state the evidence calls for, most severe condition
    /// first. Pure, so tests can probe the transition table directly.
    pub fn derive(evidence: &HealthEvidence) -> HealthState {
        if evidence.reset_absorbed {
            HealthState::Resetting
        } else if evidence.degraded_threshold > 0
            && evidence.total_degraded >= evidence.degraded_threshold
        {
            HealthState::Degraded
        } else if evidence.pressure_reserved > 0 {
            HealthState::Pressured
        } else {
            HealthState::Healthy
        }
    }

    /// Evaluate one batch's evidence: updates the state, accounts the
    /// batch, and returns `Some((from, to))` when a transition occurred.
    pub fn observe(&mut self, evidence: &HealthEvidence) -> Option<(HealthState, HealthState)> {
        let next = Self::derive(evidence);
        self.batches_in_state[Self::index(next)] += 1;
        if next == self.state {
            return None;
        }
        let from = self.state;
        self.state = next;
        self.transitions += 1;
        Some((from, next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(reset: bool, reserved: u64, degraded: u64, threshold: u64) -> HealthEvidence {
        HealthEvidence {
            reset_absorbed: reset,
            pressure_reserved: reserved,
            total_degraded: degraded,
            degraded_threshold: threshold,
        }
    }

    #[test]
    fn severity_order_reset_over_degraded_over_pressured() {
        assert_eq!(HealthMachine::derive(&ev(false, 0, 0, 4)), HealthState::Healthy);
        assert_eq!(HealthMachine::derive(&ev(false, 2, 0, 4)), HealthState::Pressured);
        assert_eq!(HealthMachine::derive(&ev(false, 2, 4, 4)), HealthState::Degraded);
        assert_eq!(HealthMachine::derive(&ev(true, 2, 4, 4)), HealthState::Resetting);
    }

    #[test]
    fn zero_threshold_disables_degraded_escalation() {
        assert_eq!(HealthMachine::derive(&ev(false, 0, 100, 0)), HealthState::Healthy);
    }

    #[test]
    fn machine_counts_transitions_and_recovers() {
        let mut m = HealthMachine::new();
        assert_eq!(m.observe(&ev(false, 0, 0, 4)), None);
        assert_eq!(
            m.observe(&ev(false, 3, 0, 4)),
            Some((HealthState::Healthy, HealthState::Pressured))
        );
        assert_eq!(m.observe(&ev(false, 3, 0, 4)), None);
        assert_eq!(
            m.observe(&ev(true, 3, 0, 4)),
            Some((HealthState::Pressured, HealthState::Resetting))
        );
        // Reset absorbed; pressure lifted: straight back to Healthy.
        assert_eq!(
            m.observe(&ev(false, 0, 0, 4)),
            Some((HealthState::Resetting, HealthState::Healthy))
        );
        assert_eq!(m.transitions(), 3);
        assert_eq!(m.batches_in(HealthState::Healthy), 2);
        assert_eq!(m.batches_in(HealthState::Pressured), 2);
        assert_eq!(m.batches_in(HealthState::Resetting), 1);
        assert_eq!(m.batches_in(HealthState::Degraded), 0);
    }

    #[test]
    fn only_healthy_allows_prefetch() {
        assert!(HealthState::Healthy.prefetch_allowed());
        assert!(!HealthState::Pressured.prefetch_allowed());
        assert!(!HealthState::Degraded.prefetch_allowed());
        assert!(!HealthState::Resetting.prefetch_allowed());
    }

    #[test]
    fn machine_serde_round_trips() {
        let mut m = HealthMachine::new();
        m.observe(&ev(false, 1, 0, 4));
        m.observe(&ev(false, 0, 0, 4));
        let json = serde_json::to_string(&m).expect("serialize");
        let back: HealthMachine = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.state(), m.state());
        assert_eq!(back.transitions(), 2);
        assert_eq!(back.batches_in(HealthState::Pressured), 1);
    }
}
