//! The managed-allocation registry.
//!
//! `VaSpace` is the driver's view of every `cudaMallocManaged` region: it
//! owns the per-VABlock states and answers "which block does this faulting
//! page belong to". Faults to addresses outside any managed allocation
//! would be fatal in the real driver; here they panic, which turns workload
//! generator bugs into immediate test failures.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use uvm_sim::error::UvmError;
use uvm_sim::mem::{Allocation, PageNum, VaBlockId, PAGES_PER_VABLOCK};

use crate::va_block::VaBlockState;

/// Registry of managed allocations and their VABlock states.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct VaSpace {
    blocks: HashMap<VaBlockId, VaBlockState>,
    allocations: Vec<Allocation>,
}

impl VaSpace {
    /// An empty managed address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a managed allocation, creating VABlock states for every
    /// block it spans.
    pub fn register(&mut self, alloc: Allocation) {
        let total_pages = alloc.num_pages();
        for (i, block) in alloc.va_blocks().enumerate() {
            let first_page_of_block = i as u64 * PAGES_PER_VABLOCK;
            let valid = (total_pages - first_page_of_block).min(PAGES_PER_VABLOCK) as u32;
            self.blocks.insert(block, VaBlockState::new(block, valid));
        }
        self.allocations.push(alloc);
    }

    /// All registered allocations.
    pub fn allocations(&self) -> &[Allocation] {
        &self.allocations
    }

    /// Number of managed VABlocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Whether `page` belongs to a managed allocation.
    pub fn contains_page(&self, page: PageNum) -> bool {
        self.blocks.contains_key(&page.va_block())
    }

    /// The block state for `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not part of any managed allocation (a fault
    /// outside managed memory).
    pub fn block(&self, id: VaBlockId) -> &VaBlockState {
        self.blocks
            .get(&id)
            .unwrap_or_else(|| panic!("fault outside managed memory: block {id:?}"))
    }

    /// Mutable block state for `id` (same panic contract as [`Self::block`]).
    pub fn block_mut(&mut self, id: VaBlockId) -> &mut VaBlockState {
        self.blocks
            .get_mut(&id)
            .unwrap_or_else(|| panic!("fault outside managed memory: block {id:?}"))
    }

    /// Fallible lookup used on the fault-servicing path: a GPU fault can
    /// carry a bogus address, and the driver must fail the batch with a
    /// typed error rather than take the process down.
    pub fn try_block(&self, id: VaBlockId) -> Result<&VaBlockState, UvmError> {
        self.blocks
            .get(&id)
            .ok_or(UvmError::UnmanagedAccess { block: id.0 })
    }

    /// Fallible mutable lookup (see [`Self::try_block`]).
    pub fn try_block_mut(&mut self, id: VaBlockId) -> Result<&mut VaBlockState, UvmError> {
        self.blocks
            .get_mut(&id)
            .ok_or(UvmError::UnmanagedAccess { block: id.0 })
    }

    /// Iterate all block states (unordered).
    pub fn blocks(&self) -> impl Iterator<Item = &VaBlockState> {
        self.blocks.values()
    }

    /// Total GPU-resident pages across all blocks.
    pub fn total_resident_pages(&self) -> u64 {
        self.blocks.values().map(|b| u64::from(b.resident_count())).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvm_sim::mem::{AddressSpaceAllocator, PAGE_SIZE, VABLOCK_SIZE};

    #[test]
    fn register_creates_block_states() {
        let mut asa = AddressSpaceAllocator::new();
        let mut vs = VaSpace::new();
        let alloc = asa.alloc(3 * VABLOCK_SIZE);
        vs.register(alloc);
        assert_eq!(vs.num_blocks(), 3);
        for block in alloc.va_blocks() {
            assert_eq!(vs.block(block).valid_pages, 512);
        }
    }

    #[test]
    fn partial_final_block_has_partial_valid_pages() {
        let mut asa = AddressSpaceAllocator::new();
        let mut vs = VaSpace::new();
        let alloc = asa.alloc(VABLOCK_SIZE + 10 * PAGE_SIZE);
        vs.register(alloc);
        let blocks: Vec<VaBlockId> = alloc.va_blocks().collect();
        assert_eq!(vs.block(blocks[0]).valid_pages, 512);
        assert_eq!(vs.block(blocks[1]).valid_pages, 10);
    }

    #[test]
    fn contains_page_discriminates() {
        let mut asa = AddressSpaceAllocator::new();
        let mut vs = VaSpace::new();
        let a = asa.alloc(VABLOCK_SIZE);
        let _gap = asa.alloc(VABLOCK_SIZE); // registered space skipped
        let b = asa.alloc(VABLOCK_SIZE);
        vs.register(a);
        vs.register(b);
        assert!(vs.contains_page(a.page(0)));
        assert!(vs.contains_page(b.page(0)));
        assert!(!vs.contains_page(PageNum(a.page(0).0 + 512))); // the gap
        assert_eq!(vs.allocations().len(), 2);
    }

    #[test]
    #[should_panic(expected = "outside managed memory")]
    fn unmanaged_block_panics() {
        let vs = VaSpace::new();
        let _ = vs.block(VaBlockId(99));
    }

    #[test]
    fn try_block_returns_typed_error() {
        let mut vs = VaSpace::new();
        assert_eq!(
            vs.try_block(VaBlockId(99)).unwrap_err(),
            UvmError::UnmanagedAccess { block: 99 }
        );
        assert_eq!(
            vs.try_block_mut(VaBlockId(99)).unwrap_err(),
            UvmError::UnmanagedAccess { block: 99 }
        );
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(VABLOCK_SIZE);
        vs.register(alloc);
        let id = alloc.va_blocks().next().expect("allocation spans a block");
        assert!(vs.try_block(id).is_ok());
    }
}
