//! Cross-layer invariant auditor.
//!
//! After every serviced batch (when `DriverPolicy::audit_enabled` is set)
//! the auditor cross-checks the four state holders the servicing pipeline
//! mutates — the driver's VABlock states, the GPU memory manager, the DMA
//! space, and the host page tables — and reports any disagreement as a
//! structured [`UvmError::InvariantViolation`]. The auditor is pure
//! observation: it charges no simulated time and draws no random numbers,
//! so enabling it cannot perturb an experiment's figures.
//!
//! Checked invariants, per managed VABlock:
//!
//! 1. `gpu_allocated` agrees with the GPU memory manager's resident set.
//! 2. Every page the driver believes GPU-accessible (`gpu_resident` or
//!    `remote_mapped`) is mapped in the GPU page table.
//! 3. A page is never both migrated and remote-mapped.
//! 4. A block with GPU-accessible pages holds DMA mappings for them.
//! 5. Unless read-duplicated, no GPU-resident page is still CPU-mapped
//!    (the fault path must have unmapped it).
//! 6. No state bit exists beyond the block's valid page range.
//!
//! And globally:
//!
//! 7. The GPU page table holds exactly the pages the driver accounts for.
//! 8. Residency never exceeds the memory manager's *effective* capacity
//!    (hardware capacity minus any sustained-pressure reservation).

use uvm_gpu::device::Gpu;
use uvm_hostos::host::HostMemory;
use uvm_sim::error::UvmError;

use crate::service::UvmDriver;
use crate::va_block::VaBlockState;

/// Audit every invariant and return all violations found (empty when the
/// system is consistent).
pub fn violations(driver: &UvmDriver, gpu: &Gpu, host: &HostMemory) -> Vec<UvmError> {
    let mut out = Vec::new();
    let mut accounted_pages: u64 = 0;

    for state in driver.va_space.blocks() {
        let id = state.id;
        let v = |subsystem: &'static str, detail: String| UvmError::InvariantViolation {
            subsystem,
            block: id.0,
            detail,
        };

        // 1. Allocation agreement with the GPU memory manager.
        if state.gpu_allocated != driver.memory().is_resident(id) {
            out.push(v(
                "gpu-mem",
                format!(
                    "driver gpu_allocated={} but memory manager resident={}",
                    state.gpu_allocated,
                    driver.memory().is_resident(id)
                ),
            ));
        }

        // 3. Migrated and remote-mapped are mutually exclusive.
        let both = state.gpu_resident.and(&state.remote_mapped);
        if !both.is_empty() {
            out.push(v(
                "va-block",
                format!("{} pages both gpu_resident and remote_mapped", both.count()),
            ));
        }

        // 6. No state beyond the valid page range.
        for (name, bm) in [
            ("gpu_resident", &state.gpu_resident),
            ("remote_mapped", &state.remote_mapped),
            ("host_data", &state.host_data),
        ] {
            if let Some(bad) = bm.iter_set().find(|&i| i as u32 >= state.valid_pages) {
                out.push(v(
                    "va-block",
                    format!("{name} bit {bad} beyond valid_pages={}", state.valid_pages),
                ));
            }
        }

        let accessible = state.gpu_resident.or(&state.remote_mapped);
        accounted_pages += u64::from(accessible.count());

        // 4. GPU-accessible pages require DMA mappings.
        if !accessible.is_empty() && !state.dma_mapped {
            out.push(v(
                "dma",
                format!("{} GPU-accessible pages but dma_mapped=false", accessible.count()),
            ));
        }

        for i in accessible.iter_set() {
            let page = id.page_at(i);
            // 2. GPU page table agreement.
            if !gpu.is_resident(page) {
                out.push(v(
                    "gpu-pt",
                    format!("page {} driver-accessible but absent from GPU page table", page.0),
                ));
            }
            // 4 (cont). Per-page DMA address exists.
            if driver.dma_space().dma_of(page).is_none() {
                out.push(v("dma", format!("page {} has no DMA mapping", page.0)));
            }
        }

        // 5. Migration implies the CPU mapping was torn down.
        out.extend(cpu_mapping_violations(state, host));
    }

    // 7. Global page accounting.
    let gpu_pages = gpu.resident_pages() as u64;
    if gpu_pages != accounted_pages {
        out.push(UvmError::InvariantViolation {
            subsystem: "gpu-pt",
            block: u64::MAX,
            detail: format!(
                "GPU page table holds {gpu_pages} pages but driver accounts for {accounted_pages}"
            ),
        });
    }

    // 8. Residency respects the effective (pressure-shrunken) capacity.
    let resident = driver.memory().resident_blocks();
    let effective = driver.memory().effective_capacity();
    if resident > effective {
        out.push(UvmError::InvariantViolation {
            subsystem: "gpu-mem",
            block: u64::MAX,
            detail: format!(
                "{resident} resident blocks exceed effective capacity {effective} \
                 (hardware {}, pressure-reserved {})",
                driver.memory().capacity_blocks(),
                driver.memory().pressure_reserved()
            ),
        });
    }

    out
}

/// Invariant 5: unless read-duplicated, a GPU-resident page must not stay
/// CPU-mapped.
fn cpu_mapping_violations(state: &VaBlockState, host: &HostMemory) -> Vec<UvmError> {
    if state.read_duplicated {
        return Vec::new();
    }
    state
        .gpu_resident
        .iter_set()
        .filter(|&i| host.is_cpu_mapped(state.id.page_at(i)))
        .map(|i| UvmError::InvariantViolation {
            subsystem: "host-pt",
            block: state.id.0,
            detail: format!(
                "page {} migrated to GPU but still CPU-mapped",
                state.id.page_at(i).0
            ),
        })
        .collect()
}

/// Audit and fail fast: `Err` carries the first violation found.
pub fn audit(driver: &UvmDriver, gpu: &Gpu, host: &HostMemory) -> Result<(), UvmError> {
    match violations(driver, gpu, host).into_iter().next() {
        None => Ok(()),
        Some(v) => Err(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DriverPolicy;
    use uvm_gpu::fault::{AccessKind, FaultRecord};
    use uvm_gpu::spec::GpuSpec;
    use uvm_sim::cost::CostModel;
    use uvm_sim::mem::{AddressSpaceAllocator, VABLOCK_SIZE};
    use uvm_sim::time::SimTime;

    fn setup() -> (UvmDriver, Gpu, HostMemory) {
        let cost = CostModel::titan_v();
        let driver = UvmDriver::new(DriverPolicy::default().audited(true), cost.clone(), 16, 42);
        let gpu = Gpu::new(GpuSpec::small(16 * VABLOCK_SIZE), cost);
        (driver, gpu, HostMemory::new())
    }

    fn fault(page: uvm_sim::mem::PageNum) -> FaultRecord {
        FaultRecord {
            page,
            kind: AccessKind::Read,
            sm: 0,
            utlb: 0,
            warp: 0,
            arrival: SimTime(0),
            dup_of_outstanding: false,
        }
    }

    #[test]
    fn consistent_system_has_no_violations() -> Result<(), UvmError> {
        let (mut driver, mut gpu, mut host) = setup();
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(2 * VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        for i in 0..600 {
            driver.cpu_touch(&mut host, alloc.page(i), 0, true);
        }
        let faults: Vec<_> = (0..100).map(|i| fault(alloc.page(i * 5))).collect();
        // service_batch itself audits (policy.audited(true)) and would
        // return Err on any violation.
        driver.service_batch(&faults, &mut gpu, &mut host, SimTime(0))?;
        assert!(violations(&driver, &gpu, &host).is_empty());
        Ok(())
    }

    #[test]
    fn desynced_gpu_page_table_is_reported() -> Result<(), UvmError> {
        let (mut driver, mut gpu, mut host) = setup();
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        driver.service_batch(&[fault(alloc.page(0))], &mut gpu, &mut host, SimTime(0))?;
        // Corrupt: drop the page from the GPU page table behind the
        // driver's back.
        gpu.unmap_pages([alloc.page(0)]);
        let vs = violations(&driver, &gpu, &host);
        assert!(!vs.is_empty());
        assert!(vs.iter().any(|e| matches!(
            e,
            UvmError::InvariantViolation { subsystem: "gpu-pt", .. }
        )));
        assert!(audit(&driver, &gpu, &host).is_err());
        Ok(())
    }

    #[test]
    fn desynced_memory_manager_is_reported() -> Result<(), UvmError> {
        let (mut driver, mut gpu, mut host) = setup();
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        driver.service_batch(&[fault(alloc.page(0))], &mut gpu, &mut host, SimTime(0))?;
        let id = alloc.va_blocks().next().expect("allocation spans a block");
        driver.mem.release(id); // behind the driver's back
        let vs = violations(&driver, &gpu, &host);
        assert!(vs.iter().any(|e| matches!(
            e,
            UvmError::InvariantViolation { subsystem: "gpu-mem", .. }
        )));
        Ok(())
    }

    #[test]
    fn residency_over_effective_capacity_is_reported() -> Result<(), UvmError> {
        let (mut driver, mut gpu, mut host) = setup();
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(4 * VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        let faults: Vec<_> = alloc.va_blocks().map(|b| fault(b.first_page())).collect();
        driver.service_batch(&faults, &mut gpu, &mut host, SimTime(0))?;
        assert!(violations(&driver, &gpu, &host).is_empty());
        // Corrupt: shrink capacity behind the driver's back without
        // shedding — 4 resident blocks now exceed effective capacity 2.
        driver.mem.set_pressure(14);
        let vs = violations(&driver, &gpu, &host);
        assert!(vs.iter().any(|e| matches!(
            e,
            UvmError::InvariantViolation { subsystem: "gpu-mem", block: u64::MAX, .. }
        )));
        Ok(())
    }

    #[test]
    fn lingering_cpu_mapping_is_reported() -> Result<(), UvmError> {
        let (mut driver, mut gpu, mut host) = setup();
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        driver.service_batch(&[fault(alloc.page(0))], &mut gpu, &mut host, SimTime(0))?;
        // Corrupt: CPU remaps a migrated page without the driver noticing.
        host.cpu_touch(alloc.page(0), 0, true);
        let vs = violations(&driver, &gpu, &host);
        assert!(vs.iter().any(|e| matches!(
            e,
            UvmError::InvariantViolation { subsystem: "host-pt", .. }
        )));
        Ok(())
    }
}
