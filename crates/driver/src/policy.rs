//! Driver tunables.

use serde::{Deserialize, Serialize};
use uvm_sim::time::SimDuration;

use crate::engine::{EvictionPolicyKind, PrefetchPolicyKind};

/// UVM driver policy knobs. Defaults match the stock `nvidia-uvm` driver
/// configuration the paper studies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriverPolicy {
    /// Maximum faults fetched into one batch. The stock driver uses 256;
    /// Fig. 9 sweeps this up to 6144.
    pub batch_limit: usize,
    /// Whether the tree-based density prefetcher is active (`uvm_perf_prefetch`).
    pub prefetch_enabled: bool,
    /// Density threshold for the prefetcher: a subtree is prefetched when
    /// strictly more than this fraction of its pages are faulted/resident.
    pub prefetch_threshold: f64,
    /// Which prefetcher runs when `prefetch_enabled` is set (the policy
    /// engine, [`crate::engine`]). `prefetch_enabled` remains the master
    /// gate so pre-engine configurations keep their meaning.
    pub prefetch_policy: PrefetchPolicyKind,
    /// Which evictor picks victims when device memory is full.
    pub eviction_policy: EvictionPolicyKind,
    /// Expansion depth (in pages) for the sequential-stride prefetcher.
    pub stride_pages: u32,
    /// Whether to retain per-fault metadata (the paper's first instrumented
    /// driver variant). Costs memory on long runs; batch-level records are
    /// always kept.
    pub log_fault_metadata: bool,
    /// Whether duplicate faults are collapsed before servicing (ablation
    /// knob; the stock driver always deduplicates). When disabled, every
    /// duplicate incurs redundant per-fault servicing work.
    pub dedup_enabled: bool,
    /// Whether the fault buffer is flushed before each replay (ablation
    /// knob; the stock driver always flushes). When disabled, stale
    /// in-flight faults survive into later batches instead of being
    /// dropped and re-generated.
    pub flush_on_replay: bool,
    /// Thrashing mitigation (the real driver's `uvm_perf_thrashing`
    /// module, simplified): a block refaulted within
    /// `thrashing_window` batches of its eviction is *pinned* host-side —
    /// mapped remotely instead of re-migrated — for `thrashing_pin`
    /// batches, breaking eviction ping-pong. Off by default (the paper's
    /// analysis runs without it).
    pub thrashing_mitigation: bool,
    /// Eviction→refault distance (in batches) that counts as thrashing.
    pub thrashing_window: u64,
    /// How long (in batches) a thrashing block stays pinned host-side.
    pub thrashing_pin: u64,
    /// Recovery: maximum retry attempts after a transient failure (DMA map,
    /// copy-engine fault, host page-table populate, batch-fetch stall)
    /// before the error escalates — to degradation for migration failures,
    /// to a hard [`UvmError`](uvm_sim::error::UvmError) otherwise.
    pub max_retries: u32,
    /// Recovery: deterministic base backoff charged to the batch per retry;
    /// attempt `n` (0-based) waits `retry_backoff << n`.
    pub retry_backoff: SimDuration,
    /// Run the cross-subsystem invariant audit (`uvm_driver::audit`) at the
    /// end of every serviced batch. Off by default: the audit costs real
    /// wall-clock time on large runs (it charges no *simulated* time).
    pub audit_enabled: bool,
    /// Health escalation: device blocks reserved away from UVM while the
    /// memory-pressure injection point fires (the sustained-pressure
    /// failure domain). Clamped so at least one block stays usable. Only
    /// consulted when the injector fires, so the default perturbs nothing.
    pub pressure_reserve_blocks: u64,
    /// Health escalation: cumulative degraded VABlocks at or above which
    /// the driver enters the `Degraded` state (0 disables escalation).
    pub degraded_threshold: u64,
    /// Recovery: fixed re-attach cost the driver pays (charged to
    /// `t_fixed`) in the batch that absorbs a GPU reset — channel
    /// re-initialization, fault-buffer re-registration, push-buffer
    /// re-binding.
    pub reset_reattach_cost: SimDuration,
}

impl Default for DriverPolicy {
    fn default() -> Self {
        DriverPolicy {
            batch_limit: 256,
            prefetch_enabled: false,
            prefetch_threshold: 0.5,
            prefetch_policy: PrefetchPolicyKind::default(),
            eviction_policy: EvictionPolicyKind::default(),
            stride_pages: 16,
            log_fault_metadata: false,
            dedup_enabled: true,
            flush_on_replay: true,
            thrashing_mitigation: false,
            thrashing_window: 16,
            thrashing_pin: 64,
            max_retries: 3,
            retry_backoff: SimDuration::from_micros(20),
            audit_enabled: false,
            pressure_reserve_blocks: 8,
            degraded_threshold: 4,
            reset_reattach_cost: SimDuration::from_micros(500),
        }
    }
}

impl DriverPolicy {
    /// Stock configuration with prefetching enabled (the driver default in
    /// production; the paper flips it per experiment).
    pub fn with_prefetch() -> Self {
        DriverPolicy {
            prefetch_enabled: true,
            ..Default::default()
        }
    }

    /// Builder-style prefetcher selection. Also sets `prefetch_enabled`
    /// so `prefetcher(kind)` alone is a complete configuration
    /// (`PrefetchPolicyKind::None` disables prefetching outright —
    /// equivalent to the stock `prefetch_enabled: false`).
    pub fn prefetcher(mut self, kind: PrefetchPolicyKind) -> Self {
        self.prefetch_policy = kind;
        self.prefetch_enabled = kind != PrefetchPolicyKind::None;
        self
    }

    /// Builder-style evictor selection.
    pub fn evictor(mut self, kind: EvictionPolicyKind) -> Self {
        self.eviction_policy = kind;
        self
    }

    /// Builder-style stride depth for the sequential-stride prefetcher.
    pub fn stride(mut self, pages: u32) -> Self {
        self.stride_pages = pages;
        self
    }

    /// Builder-style batch limit override (Fig. 9 sweep).
    pub fn batch_limit(mut self, limit: usize) -> Self {
        self.batch_limit = limit;
        self
    }

    /// Builder-style fault-metadata logging toggle.
    pub fn log_faults(mut self, on: bool) -> Self {
        self.log_fault_metadata = on;
        self
    }

    /// Builder-style dedup toggle (ablation).
    pub fn dedup(mut self, on: bool) -> Self {
        self.dedup_enabled = on;
        self
    }

    /// Builder-style flush-before-replay toggle (ablation).
    pub fn flush(mut self, on: bool) -> Self {
        self.flush_on_replay = on;
        self
    }

    /// Builder-style thrashing-mitigation toggle (extension).
    pub fn thrashing(mut self, on: bool) -> Self {
        self.thrashing_mitigation = on;
        self
    }

    /// Builder-style retry budget for transient-failure recovery.
    pub fn retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Builder-style base backoff per retry attempt.
    pub fn backoff(mut self, d: SimDuration) -> Self {
        self.retry_backoff = d;
        self
    }

    /// Builder-style per-batch invariant audit toggle.
    pub fn audited(mut self, on: bool) -> Self {
        self.audit_enabled = on;
        self
    }

    /// Builder-style pressure reservation size (blocks withheld while the
    /// memory-pressure point fires).
    pub fn pressure_reserve(mut self, blocks: u64) -> Self {
        self.pressure_reserve_blocks = blocks;
        self
    }

    /// Builder-style degraded-escalation threshold (0 disables).
    pub fn degraded_escalation(mut self, blocks: u64) -> Self {
        self.degraded_threshold = blocks;
        self
    }

    /// Builder-style GPU-reset re-attach cost.
    pub fn reattach_cost(mut self, d: SimDuration) -> Self {
        self.reset_reattach_cost = d;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_stock_driver() {
        let p = DriverPolicy::default();
        assert_eq!(p.batch_limit, 256);
        assert!(!p.prefetch_enabled);
        assert_eq!(p.prefetch_threshold, 0.5);
        assert!(p.dedup_enabled);
        assert!(p.flush_on_replay);
    }

    #[test]
    fn builders_compose() {
        let p = DriverPolicy::with_prefetch().batch_limit(1024).log_faults(true);
        assert!(p.prefetch_enabled);
        assert_eq!(p.batch_limit, 1024);
        assert!(p.log_fault_metadata);
    }

    #[test]
    fn policy_engine_defaults_match_stock_driver() {
        let p = DriverPolicy::default();
        assert_eq!(p.prefetch_policy, PrefetchPolicyKind::TreeDensity);
        assert_eq!(p.eviction_policy, EvictionPolicyKind::Lru);
        assert_eq!(p.stride_pages, 16);
        // with_prefetch() is exactly prefetcher(TreeDensity).
        assert_eq!(
            DriverPolicy::with_prefetch(),
            DriverPolicy::default().prefetcher(PrefetchPolicyKind::TreeDensity)
        );
    }

    #[test]
    fn prefetcher_builder_gates_on_none() {
        let p = DriverPolicy::default().prefetcher(PrefetchPolicyKind::Oracle);
        assert!(p.prefetch_enabled);
        assert_eq!(p.prefetch_policy, PrefetchPolicyKind::Oracle);
        let p = p.prefetcher(PrefetchPolicyKind::None);
        assert!(!p.prefetch_enabled);
        let p = DriverPolicy::default()
            .prefetcher(PrefetchPolicyKind::SequentialStride)
            .stride(64)
            .evictor(EvictionPolicyKind::Lfu);
        assert_eq!(p.stride_pages, 64);
        assert_eq!(p.eviction_policy, EvictionPolicyKind::Lfu);
    }

    #[test]
    fn recovery_defaults_and_builders() {
        let p = DriverPolicy::default();
        assert_eq!(p.max_retries, 3);
        assert_eq!(p.retry_backoff, SimDuration::from_micros(20));
        assert!(!p.audit_enabled);

        let p = DriverPolicy::default()
            .retries(5)
            .backoff(SimDuration::from_micros(7))
            .audited(true);
        assert_eq!(p.max_retries, 5);
        assert_eq!(p.retry_backoff, SimDuration::from_micros(7));
        assert!(p.audit_enabled);
    }

    #[test]
    fn health_defaults_and_builders() {
        let p = DriverPolicy::default();
        assert_eq!(p.pressure_reserve_blocks, 8);
        assert_eq!(p.degraded_threshold, 4);
        assert_eq!(p.reset_reattach_cost, SimDuration::from_micros(500));

        let p = DriverPolicy::default()
            .pressure_reserve(16)
            .degraded_escalation(0)
            .reattach_cost(SimDuration::from_micros(250));
        assert_eq!(p.pressure_reserve_blocks, 16);
        assert_eq!(p.degraded_threshold, 0);
        assert_eq!(p.reset_reattach_cost, SimDuration::from_micros(250));
    }
}
