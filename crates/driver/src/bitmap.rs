//! 512-bit page bitmaps.
//!
//! Each VABlock tracks page state (GPU residency, faulted-this-batch, …)
//! with one bit per 4 KiB page — 512 bits, eight `u64` words. The real
//! driver uses the same representation (`uvm_page_mask_t`).

use serde::{Deserialize, Serialize};
use uvm_sim::mem::PAGES_PER_VABLOCK;

const WORDS: usize = (PAGES_PER_VABLOCK as usize) / 64;

/// A fixed 512-bit bitmap indexed by page-in-block (0..512).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PageBitmap {
    words: [u64; WORDS],
}

impl PageBitmap {
    /// The empty bitmap.
    pub const EMPTY: PageBitmap = PageBitmap { words: [0; WORDS] };

    /// A bitmap with every page set.
    pub const FULL: PageBitmap = PageBitmap { words: [u64::MAX; WORDS] };

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < 512);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clear bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < 512);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Test bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < 512);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    #[inline]
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether no bits are set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether all 512 bits are set.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.words.iter().all(|&w| w == u64::MAX)
    }

    /// Bitwise OR.
    #[inline]
    pub fn or(&self, other: &PageBitmap) -> PageBitmap {
        let mut out = *self;
        for (w, o) in out.words.iter_mut().zip(other.words.iter()) {
            *w |= o;
        }
        out
    }

    /// Bitwise AND: bits set in both.
    #[inline]
    pub fn and(&self, other: &PageBitmap) -> PageBitmap {
        let mut out = *self;
        for (w, o) in out.words.iter_mut().zip(other.words.iter()) {
            *w &= o;
        }
        out
    }

    /// Bitwise AND-NOT: bits set in `self` but not in `other`.
    #[inline]
    pub fn and_not(&self, other: &PageBitmap) -> PageBitmap {
        let mut out = *self;
        for (w, o) in out.words.iter_mut().zip(other.words.iter()) {
            *w &= !o;
        }
        out
    }

    /// Set bits in `self` from `other` (in-place OR).
    #[inline]
    pub fn merge(&mut self, other: &PageBitmap) {
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w |= o;
        }
    }

    /// Clear all bits.
    pub fn reset(&mut self) {
        self.words = [0; WORDS];
    }

    /// Iterate indices of set bits, ascending.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Count set bits within `[lo, hi)`.
    pub fn count_range(&self, lo: usize, hi: usize) -> u32 {
        debug_assert!(lo <= hi && hi <= 512);
        self.iter_set().filter(|&i| i >= lo && i < hi).count() as u32
    }

    /// Set every bit in `[lo, hi)`.
    pub fn set_range(&mut self, lo: usize, hi: usize) {
        for i in lo..hi {
            self.set(i);
        }
    }
}

impl FromIterator<usize> for PageBitmap {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut bm = PageBitmap::EMPTY;
        for i in iter {
            bm.set(i);
        }
        bm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut bm = PageBitmap::EMPTY;
        assert!(bm.is_empty());
        bm.set(0);
        bm.set(63);
        bm.set(64);
        bm.set(511);
        assert_eq!(bm.count(), 4);
        assert!(bm.get(0) && bm.get(63) && bm.get(64) && bm.get(511));
        assert!(!bm.get(1));
        bm.clear(63);
        assert!(!bm.get(63));
        assert_eq!(bm.count(), 3);
    }

    #[test]
    fn full_and_empty() {
        assert!(PageBitmap::FULL.is_full());
        assert_eq!(PageBitmap::FULL.count(), 512);
        assert!(PageBitmap::EMPTY.is_empty());
        let mut bm = PageBitmap::EMPTY;
        bm.set_range(0, 512);
        assert!(bm.is_full());
    }

    #[test]
    fn iter_set_ascending() {
        let bm: PageBitmap = [511usize, 3, 64, 200].into_iter().collect();
        assert_eq!(bm.iter_set().collect::<Vec<_>>(), vec![3, 64, 200, 511]);
    }

    #[test]
    fn boolean_ops() {
        let a: PageBitmap = [1usize, 2, 3].into_iter().collect();
        let b: PageBitmap = [3usize, 4].into_iter().collect();
        assert_eq!(a.or(&b).count(), 4);
        assert_eq!(a.and_not(&b).iter_set().collect::<Vec<_>>(), vec![1, 2]);
        let mut c = a;
        c.merge(&b);
        assert_eq!(c.count(), 4);
        c.reset();
        assert!(c.is_empty());
    }

    #[test]
    fn count_range_bounds() {
        let bm: PageBitmap = [10usize, 20, 30].into_iter().collect();
        assert_eq!(bm.count_range(10, 30), 2);
        assert_eq!(bm.count_range(0, 512), 3);
        assert_eq!(bm.count_range(11, 20), 0);
    }
}
