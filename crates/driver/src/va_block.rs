//! Per-VABlock driver state.
//!
//! The driver splits every managed allocation into 2 MiB VABlocks and
//! services each batch one VABlock at a time (paper Sec. 2.2). A block's
//! state determines which servicing steps a batch touching it must pay:
//!
//! * no DMA mappings yet → compulsory DMA-map creation for all 512 pages
//!   plus radix-tree inserts (the high-cost "GPU VABlock state
//!   initialization" of Fig. 14);
//! * pages still CPU-mapped → `unmap_mapping_range()` on the fault path;
//! * not GPU-resident and memory full → eviction of an LRU victim;
//! * migrated pages always pay population (zero-fill) + transfer + PTE
//!   updates.

use serde::{Deserialize, Serialize};
use uvm_sim::mem::VaBlockId;

use crate::advise::MemAdvise;
use crate::bitmap::PageBitmap;

/// Driver-side state of one 2 MiB VABlock.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VaBlockState {
    /// The block's index.
    pub id: VaBlockId,
    /// Pages currently resident on the GPU.
    pub gpu_resident: PageBitmap,
    /// Pages whose data exists in host RAM (written by CPU initialization
    /// or by an eviction writeback). Migrating a page with host data pays
    /// a host→device transfer; migrating a never-touched page is
    /// populate-only (the driver zero-fills it directly on the GPU).
    pub host_data: PageBitmap,
    /// Whether DMA mappings (and reverse radix-tree entries) exist for this
    /// block. Created once, on first GPU touch, for all 512 pages.
    pub dma_mapped: bool,
    /// Whether the block currently holds a GPU physical 2 MiB allocation.
    pub gpu_allocated: bool,
    /// Monotone sequence number of the last batch that migrated pages into
    /// this block — the driver's LRU key ("the UVM driver has no
    /// information about page hits", Sec. 5.4, so recency means *migration*
    /// recency, effectively allocation order for dense access).
    pub last_migrate_seq: u64,
    /// How many times this block has been evicted.
    pub evict_count: u32,
    /// Number of pages of this allocation that are valid (the final block
    /// of an allocation may be partial).
    pub valid_pages: u32,
    /// Usage hint applied via `cudaMemAdvise`, if any.
    pub advise: Option<MemAdvise>,
    /// Pages mapped remotely (GPU accesses host memory over the
    /// interconnect) under `PreferredLocationHost`.
    pub remote_mapped: PageBitmap,
    /// Whether the block currently holds a read-duplicated copy
    /// (`ReadMostly`): the CPU mappings survived migration, and eviction
    /// needs no writeback.
    pub read_duplicated: bool,
    /// Batch sequence of the block's most recent eviction (thrashing
    /// detection input).
    pub last_evict_seq: Option<u64>,
    /// While set, faults map the block remotely instead of migrating —
    /// the thrashing-mitigation pin, expiring at this batch sequence.
    pub pinned_until: Option<u64>,
    /// Recovery state: migration retries were exhausted on this block, so
    /// the driver permanently degraded it to a remote (sysmem-mapped,
    /// non-migrated) block. Faults on a degraded block take the remote
    /// path, like `PreferredLocationHost`, without further copy-engine
    /// attempts.
    pub degraded: bool,
}

impl VaBlockState {
    /// Fresh state for a block with `valid_pages` usable pages.
    pub fn new(id: VaBlockId, valid_pages: u32) -> Self {
        assert!((1..=512).contains(&valid_pages));
        VaBlockState {
            id,
            gpu_resident: PageBitmap::EMPTY,
            host_data: PageBitmap::EMPTY,
            dma_mapped: false,
            gpu_allocated: false,
            last_migrate_seq: 0,
            evict_count: 0,
            valid_pages,
            advise: None,
            remote_mapped: PageBitmap::EMPTY,
            read_duplicated: false,
            last_evict_seq: None,
            pinned_until: None,
            degraded: false,
        }
    }

    /// Number of GPU-resident pages.
    pub fn resident_count(&self) -> u32 {
        self.gpu_resident.count()
    }

    /// Apply an eviction: the block loses its GPU allocation and residency.
    /// The evicted pages' data returns to host RAM (recorded in
    /// `host_data`) but is *not* re-mapped into CPU page tables — the
    /// basis of the Fig. 13 cost levels.
    pub fn evict(&mut self) {
        if !self.read_duplicated {
            // Normal blocks write their data back to host RAM; a
            // read-duplicated block already has an intact host copy.
            let evicted = self.gpu_resident;
            self.host_data.merge(&evicted);
        }
        self.gpu_resident.reset();
        self.gpu_allocated = false;
        self.read_duplicated = false;
        self.evict_count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_block_is_cold() {
        let b = VaBlockState::new(VaBlockId(5), 512);
        assert_eq!(b.resident_count(), 0);
        assert!(!b.dma_mapped);
        assert!(!b.gpu_allocated);
        assert_eq!(b.evict_count, 0);
    }

    #[test]
    fn evict_resets_residency_but_keeps_dma() {
        let mut b = VaBlockState::new(VaBlockId(1), 512);
        b.dma_mapped = true;
        b.gpu_allocated = true;
        b.gpu_resident.set_range(0, 100);
        b.evict();
        assert_eq!(b.resident_count(), 0);
        assert!(!b.gpu_allocated);
        assert!(b.dma_mapped, "DMA mappings survive eviction");
        assert_eq!(b.evict_count, 1);
        assert_eq!(b.host_data.count(), 100, "evicted pages now have host data");
    }

    #[test]
    #[should_panic]
    fn zero_valid_pages_rejected() {
        let _ = VaBlockState::new(VaBlockId(0), 0);
    }
}
