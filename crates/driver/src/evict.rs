//! GPU physical-memory management and LRU eviction.
//!
//! UVM tracks all physical GPU allocations and, under oversubscription,
//! evicts at VABlock (2 MiB) granularity (paper Sec. 2.2, 5.1). Because
//! the driver sees only *migrations*, never GPU-side page hits, its "LRU"
//! ordering is migration order — effectively *earliest allocated first*
//! for densely accessed workloads, which is exactly the eviction pattern
//! Fig. 17(c) visualizes.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use uvm_sim::error::UvmError;
use uvm_sim::mem::VaBlockId;

/// Outcome of a block-residency request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvictOutcome {
    /// The block already holds a GPU allocation.
    AlreadyResident,
    /// A free 2 MiB chunk was allocated.
    Allocated,
    /// Memory was full: the listed victims were evicted (in eviction
    /// order), then the allocation succeeded.
    Evicted(Vec<VaBlockId>),
}

/// The GPU physical-memory manager.
#[derive(Debug, Serialize, Deserialize)]
pub struct GpuMemoryManager {
    capacity_blocks: u64,
    /// Resident blocks → the LRU key (migration sequence number).
    resident: HashMap<VaBlockId, u64>,
    /// Monotone count of evictions performed.
    evictions: u64,
}

impl GpuMemoryManager {
    /// A manager over `capacity_blocks` 2 MiB chunks of device memory.
    pub fn new(capacity_blocks: u64) -> Self {
        assert!(capacity_blocks > 0, "GPU must have at least one block of memory");
        GpuMemoryManager {
            capacity_blocks,
            resident: HashMap::new(),
            evictions: 0,
        }
    }

    /// Device capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    /// Currently allocated blocks.
    pub fn resident_blocks(&self) -> u64 {
        self.resident.len() as u64
    }

    /// Whether `block` holds a GPU allocation.
    pub fn is_resident(&self, block: VaBlockId) -> bool {
        self.resident.contains_key(&block)
    }

    /// Monotone eviction count.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Record that a batch migrated pages into `block` at sequence `seq`
    /// (refreshes the LRU key).
    pub fn touch(&mut self, block: VaBlockId, seq: u64) {
        if let Some(k) = self.resident.get_mut(&block) {
            *k = seq;
        }
    }

    /// Ensure `block` holds a GPU allocation, evicting LRU victims if the
    /// device is full. `seq` is the requesting batch's sequence number
    /// (becomes the block's LRU key).
    ///
    /// `Err` is returned only on a broken internal invariant (an empty
    /// resident map while the device reports full) — a state the servicing
    /// pipeline treats as a structured [`UvmError::InvariantViolation`]
    /// rather than a panic.
    pub fn ensure_resident(&mut self, block: VaBlockId, seq: u64) -> Result<EvictOutcome, UvmError> {
        if let Some(k) = self.resident.get_mut(&block) {
            *k = seq;
            return Ok(EvictOutcome::AlreadyResident);
        }
        if (self.resident.len() as u64) < self.capacity_blocks {
            self.resident.insert(block, seq);
            return Ok(EvictOutcome::Allocated);
        }
        // Memory full: evict the least-recently-migrated block. One victim
        // frees exactly the one chunk we need, but we keep the loop for
        // robustness against future multi-chunk requests.
        //
        // The loop guard makes the `min_by_key` provably non-empty today
        // (`len >= capacity` and the constructor asserts `capacity > 0`);
        // the error path exists so a future capacity-0 or concurrent-release
        // bug surfaces as a typed error instead of a panic.
        let mut victims = Vec::new();
        while (self.resident.len() as u64) >= self.capacity_blocks {
            let Some(victim) = self
                .resident
                .iter()
                .min_by_key(|(id, &k)| (k, id.0))
                .map(|(&id, _)| id)
            else {
                return Err(UvmError::InvariantViolation {
                    subsystem: "gpu-mem",
                    block: block.0,
                    detail: "resident map empty while device reports full".into(),
                });
            };
            self.resident.remove(&victim);
            self.evictions += 1;
            victims.push(victim);
        }
        self.resident.insert(block, seq);
        Ok(EvictOutcome::Evicted(victims))
    }

    /// Release `block`'s allocation without counting an eviction (teardown).
    pub fn release(&mut self, block: VaBlockId) {
        self.resident.remove(&block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_until_full_then_evicts_lru() -> Result<(), UvmError> {
        let mut mm = GpuMemoryManager::new(3);
        assert_eq!(mm.ensure_resident(VaBlockId(1), 1)?, EvictOutcome::Allocated);
        assert_eq!(mm.ensure_resident(VaBlockId(2), 2)?, EvictOutcome::Allocated);
        assert_eq!(mm.ensure_resident(VaBlockId(3), 3)?, EvictOutcome::Allocated);
        // Full: block 1 is LRU.
        assert_eq!(
            mm.ensure_resident(VaBlockId(4), 4)?,
            EvictOutcome::Evicted(vec![VaBlockId(1)])
        );
        assert!(!mm.is_resident(VaBlockId(1)));
        assert!(mm.is_resident(VaBlockId(4)));
        assert_eq!(mm.evictions(), 1);
        Ok(())
    }

    #[test]
    fn touch_refreshes_lru_order() -> Result<(), UvmError> {
        let mut mm = GpuMemoryManager::new(2);
        mm.ensure_resident(VaBlockId(1), 1)?;
        mm.ensure_resident(VaBlockId(2), 2)?;
        mm.touch(VaBlockId(1), 3); // block 1 now most recent
        assert_eq!(
            mm.ensure_resident(VaBlockId(3), 4)?,
            EvictOutcome::Evicted(vec![VaBlockId(2)])
        );
        Ok(())
    }

    #[test]
    fn already_resident_refreshes_key() -> Result<(), UvmError> {
        let mut mm = GpuMemoryManager::new(2);
        mm.ensure_resident(VaBlockId(1), 1)?;
        mm.ensure_resident(VaBlockId(2), 2)?;
        assert_eq!(mm.ensure_resident(VaBlockId(1), 3)?, EvictOutcome::AlreadyResident);
        // Block 2 is now LRU.
        assert_eq!(
            mm.ensure_resident(VaBlockId(9), 4)?,
            EvictOutcome::Evicted(vec![VaBlockId(2)])
        );
        Ok(())
    }

    #[test]
    fn eviction_order_is_earliest_allocated_without_touches() -> Result<(), UvmError> {
        // The Sec. 5.4 observation: with no hit information, LRU degrades
        // to allocation order.
        let mut mm = GpuMemoryManager::new(4);
        for i in 1..=4u64 {
            mm.ensure_resident(VaBlockId(i), i)?;
        }
        let mut evicted = Vec::new();
        for i in 5..=8u64 {
            if let EvictOutcome::Evicted(v) = mm.ensure_resident(VaBlockId(i), i)? {
                evicted.extend(v);
            }
        }
        assert_eq!(
            evicted,
            vec![VaBlockId(1), VaBlockId(2), VaBlockId(3), VaBlockId(4)]
        );
        Ok(())
    }

    #[test]
    fn release_frees_without_counting_eviction() -> Result<(), UvmError> {
        let mut mm = GpuMemoryManager::new(1);
        mm.ensure_resident(VaBlockId(1), 1)?;
        mm.release(VaBlockId(1));
        assert_eq!(mm.resident_blocks(), 0);
        assert_eq!(mm.evictions(), 0);
        assert_eq!(mm.ensure_resident(VaBlockId(2), 2)?, EvictOutcome::Allocated);
        Ok(())
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_capacity_rejected() {
        let _ = GpuMemoryManager::new(0);
    }
}
