//! GPU physical-memory management and pluggable eviction.
//!
//! UVM tracks all physical GPU allocations and, under oversubscription,
//! evicts at VABlock (2 MiB) granularity (paper Sec. 2.2, 5.1). Because
//! the driver sees only *migrations*, never GPU-side page hits, its "LRU"
//! ordering is migration order — effectively *earliest allocated first*
//! for densely accessed workloads, which is exactly the eviction pattern
//! Fig. 17(c) visualizes.
//!
//! Victim selection is delegated to the policy engine
//! ([`crate::engine::EvictionPolicy`]). The stock LRU policy keeps its
//! original allocation-free fast path; alternative policies receive the
//! candidate set sorted by block id (so `HashMap` iteration order never
//! leaks into results) plus the manager's own serialized [`DetRng`]
//! stream (so stochastic policies replay bit-identically across
//! snapshot/restore).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use uvm_sim::error::UvmError;
use uvm_sim::mem::VaBlockId;
use uvm_sim::rng::DetRng;

use crate::engine::{EvictionPolicyKind, VictimCandidate};

/// Outcome of a block-residency request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvictOutcome {
    /// The block already holds a GPU allocation.
    AlreadyResident,
    /// A free 2 MiB chunk was allocated.
    Allocated,
    /// Memory was full: the listed victims were evicted (in eviction
    /// order), then the allocation succeeded.
    Evicted(Vec<VaBlockId>),
}

/// Per-resident-block bookkeeping consulted by eviction policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct BlockMeta {
    /// Migration sequence number of the last batch that touched the block
    /// (the LRU key).
    last_migrate: u64,
    /// How many batches have migrated pages into the block (the LFU key).
    touches: u64,
}

/// The GPU physical-memory manager.
#[derive(Debug, Serialize, Deserialize)]
pub struct GpuMemoryManager {
    capacity_blocks: u64,
    /// Resident blocks → their policy bookkeeping.
    resident: HashMap<VaBlockId, BlockMeta>,
    /// Monotone count of evictions performed.
    evictions: u64,
    /// Which eviction policy picks victims.
    policy: EvictionPolicyKind,
    /// The manager's own stream for stochastic policies. Serialized, so a
    /// restored run's random evictor continues exactly where it left off.
    rng: DetRng,
    /// Blocks currently reserved away from UVM by a sustained
    /// memory-pressure window; effective capacity shrinks by this much.
    pressure_reserved: u64,
    /// Monotone count of emergency evictions (evictions forced by a
    /// capacity shrink rather than by an allocation request).
    emergency_evictions: u64,
}

impl GpuMemoryManager {
    /// A manager over `capacity_blocks` 2 MiB chunks of device memory,
    /// with the stock LRU policy.
    pub fn new(capacity_blocks: u64) -> Self {
        GpuMemoryManager::with_policy(capacity_blocks, EvictionPolicyKind::Lru, 0)
    }

    /// A manager using `policy` for victim selection; `seed` keys the
    /// stream stochastic policies draw from.
    pub fn with_policy(capacity_blocks: u64, policy: EvictionPolicyKind, seed: u64) -> Self {
        assert!(capacity_blocks > 0, "GPU must have at least one block of memory");
        GpuMemoryManager {
            capacity_blocks,
            resident: HashMap::new(),
            evictions: 0,
            policy,
            rng: DetRng::new(seed ^ 0xE71C_7015_AB1E_5EED),
            pressure_reserved: 0,
            emergency_evictions: 0,
        }
    }

    /// Device capacity in blocks (hardware size, ignoring pressure).
    pub fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    /// Capacity actually usable by UVM right now: hardware capacity minus
    /// the pressure reservation, never below one block.
    pub fn effective_capacity(&self) -> u64 {
        (self.capacity_blocks - self.pressure_reserved).max(1)
    }

    /// Blocks currently reserved away by memory pressure.
    pub fn pressure_reserved(&self) -> u64 {
        self.pressure_reserved
    }

    /// Monotone count of emergency evictions forced by capacity shrinks.
    pub fn emergency_evictions(&self) -> u64 {
        self.emergency_evictions
    }

    /// Set the pressure reservation (clamped so at least one block stays
    /// usable). Shrinking capacity does not evict by itself — call
    /// [`GpuMemoryManager::shed_over_capacity`] to pick the victims, so
    /// the caller can run the full writeback path per victim.
    pub fn set_pressure(&mut self, blocks: u64) {
        self.pressure_reserved = blocks.min(self.capacity_blocks - 1);
    }

    /// Emergency eviction: victims (policy-selected, in eviction order)
    /// that must be written back so residency fits the effective capacity.
    /// Removes them from the resident set and counts them as both regular
    /// and emergency evictions; returns them for writeback.
    pub fn shed_over_capacity(&mut self) -> Vec<VaBlockId> {
        let mut victims = Vec::new();
        while (self.resident.len() as u64) > self.effective_capacity() {
            let Some(victim) = self.select_victim() else { break };
            self.resident.remove(&victim);
            self.evictions += 1;
            self.emergency_evictions += 1;
            victims.push(victim);
        }
        victims
    }

    /// Currently allocated blocks.
    pub fn resident_blocks(&self) -> u64 {
        self.resident.len() as u64
    }

    /// Whether `block` holds a GPU allocation.
    pub fn is_resident(&self, block: VaBlockId) -> bool {
        self.resident.contains_key(&block)
    }

    /// Monotone eviction count.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The active eviction policy.
    pub fn policy(&self) -> EvictionPolicyKind {
        self.policy
    }

    /// Record that a batch migrated pages into `block` at sequence `seq`
    /// (refreshes the LRU key and bumps the LFU count).
    pub fn touch(&mut self, block: VaBlockId, seq: u64) {
        if let Some(m) = self.resident.get_mut(&block) {
            m.last_migrate = seq;
            m.touches += 1;
        }
    }

    /// Pick the victim for one eviction. LRU keeps the original
    /// allocation-free scan; other policies get an id-sorted candidate
    /// vector and the manager's rng.
    fn select_victim(&mut self) -> Option<VaBlockId> {
        if self.policy == EvictionPolicyKind::Lru {
            return self
                .resident
                .iter()
                .min_by_key(|(id, m)| (m.last_migrate, id.0))
                .map(|(&id, _)| id);
        }
        let mut candidates: Vec<VictimCandidate> = self
            .resident
            .iter()
            .map(|(&block, m)| VictimCandidate {
                block,
                last_migrate: m.last_migrate,
                touches: m.touches,
            })
            .collect();
        if candidates.is_empty() {
            return None;
        }
        candidates.sort_unstable_by_key(|c| c.block.0);
        let idx = self.policy.as_policy().select(&candidates, &mut self.rng);
        Some(candidates[idx.min(candidates.len() - 1)].block)
    }

    /// Ensure `block` holds a GPU allocation, evicting policy-selected
    /// victims if the device is full. `seq` is the requesting batch's
    /// sequence number (becomes the block's LRU key).
    ///
    /// `Err` is returned only on a broken internal invariant (an empty
    /// resident map while the device reports full) — a state the servicing
    /// pipeline treats as a structured [`UvmError::InvariantViolation`]
    /// rather than a panic.
    pub fn ensure_resident(&mut self, block: VaBlockId, seq: u64) -> Result<EvictOutcome, UvmError> {
        if let Some(m) = self.resident.get_mut(&block) {
            m.last_migrate = seq;
            m.touches += 1;
            return Ok(EvictOutcome::AlreadyResident);
        }
        if (self.resident.len() as u64) < self.effective_capacity() {
            self.resident.insert(block, BlockMeta { last_migrate: seq, touches: 1 });
            return Ok(EvictOutcome::Allocated);
        }
        // Memory full: evict the policy's victim. One victim frees exactly
        // the one chunk we need, but we keep the loop for robustness
        // against future multi-chunk requests.
        //
        // The loop guard makes the victim scan provably non-empty today
        // (`len >= capacity` and the constructor asserts `capacity > 0`);
        // the error path exists so a future capacity-0 or concurrent-release
        // bug surfaces as a typed error instead of a panic.
        let mut victims = Vec::new();
        while (self.resident.len() as u64) >= self.effective_capacity() {
            let Some(victim) = self.select_victim() else {
                return Err(UvmError::InvariantViolation {
                    subsystem: "gpu-mem",
                    block: block.0,
                    detail: "resident map empty while device reports full".into(),
                });
            };
            self.resident.remove(&victim);
            self.evictions += 1;
            victims.push(victim);
        }
        self.resident.insert(block, BlockMeta { last_migrate: seq, touches: 1 });
        Ok(EvictOutcome::Evicted(victims))
    }

    /// Release `block`'s allocation without counting an eviction (teardown).
    pub fn release(&mut self, block: VaBlockId) {
        self.resident.remove(&block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_until_full_then_evicts_lru() -> Result<(), UvmError> {
        let mut mm = GpuMemoryManager::new(3);
        assert_eq!(mm.ensure_resident(VaBlockId(1), 1)?, EvictOutcome::Allocated);
        assert_eq!(mm.ensure_resident(VaBlockId(2), 2)?, EvictOutcome::Allocated);
        assert_eq!(mm.ensure_resident(VaBlockId(3), 3)?, EvictOutcome::Allocated);
        // Full: block 1 is LRU.
        assert_eq!(
            mm.ensure_resident(VaBlockId(4), 4)?,
            EvictOutcome::Evicted(vec![VaBlockId(1)])
        );
        assert!(!mm.is_resident(VaBlockId(1)));
        assert!(mm.is_resident(VaBlockId(4)));
        assert_eq!(mm.evictions(), 1);
        Ok(())
    }

    #[test]
    fn touch_refreshes_lru_order() -> Result<(), UvmError> {
        let mut mm = GpuMemoryManager::new(2);
        mm.ensure_resident(VaBlockId(1), 1)?;
        mm.ensure_resident(VaBlockId(2), 2)?;
        mm.touch(VaBlockId(1), 3); // block 1 now most recent
        assert_eq!(
            mm.ensure_resident(VaBlockId(3), 4)?,
            EvictOutcome::Evicted(vec![VaBlockId(2)])
        );
        Ok(())
    }

    #[test]
    fn already_resident_refreshes_key() -> Result<(), UvmError> {
        let mut mm = GpuMemoryManager::new(2);
        mm.ensure_resident(VaBlockId(1), 1)?;
        mm.ensure_resident(VaBlockId(2), 2)?;
        assert_eq!(mm.ensure_resident(VaBlockId(1), 3)?, EvictOutcome::AlreadyResident);
        // Block 2 is now LRU.
        assert_eq!(
            mm.ensure_resident(VaBlockId(9), 4)?,
            EvictOutcome::Evicted(vec![VaBlockId(2)])
        );
        Ok(())
    }

    #[test]
    fn eviction_order_is_earliest_allocated_without_touches() -> Result<(), UvmError> {
        // The Sec. 5.4 observation: with no hit information, LRU degrades
        // to allocation order.
        let mut mm = GpuMemoryManager::new(4);
        for i in 1..=4u64 {
            mm.ensure_resident(VaBlockId(i), i)?;
        }
        let mut evicted = Vec::new();
        for i in 5..=8u64 {
            if let EvictOutcome::Evicted(v) = mm.ensure_resident(VaBlockId(i), i)? {
                evicted.extend(v);
            }
        }
        assert_eq!(
            evicted,
            vec![VaBlockId(1), VaBlockId(2), VaBlockId(3), VaBlockId(4)]
        );
        Ok(())
    }

    #[test]
    fn release_frees_without_counting_eviction() -> Result<(), UvmError> {
        let mut mm = GpuMemoryManager::new(1);
        mm.ensure_resident(VaBlockId(1), 1)?;
        mm.release(VaBlockId(1));
        assert_eq!(mm.resident_blocks(), 0);
        assert_eq!(mm.evictions(), 0);
        assert_eq!(mm.ensure_resident(VaBlockId(2), 2)?, EvictOutcome::Allocated);
        Ok(())
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_capacity_rejected() {
        let _ = GpuMemoryManager::new(0);
    }

    #[test]
    fn lfu_evicts_least_migrated_block() -> Result<(), UvmError> {
        let mut mm = GpuMemoryManager::with_policy(3, EvictionPolicyKind::Lfu, 0);
        mm.ensure_resident(VaBlockId(1), 1)?;
        mm.ensure_resident(VaBlockId(2), 2)?;
        mm.ensure_resident(VaBlockId(3), 3)?;
        // Blocks 1 and 3 accumulate extra migrations; block 2 stays cold.
        mm.touch(VaBlockId(1), 4);
        mm.touch(VaBlockId(3), 5);
        mm.touch(VaBlockId(1), 6);
        assert_eq!(
            mm.ensure_resident(VaBlockId(9), 7)?,
            EvictOutcome::Evicted(vec![VaBlockId(2)])
        );
        Ok(())
    }

    #[test]
    fn random_eviction_is_seed_deterministic_and_valid() -> Result<(), UvmError> {
        let run = |seed: u64| -> Result<Vec<VaBlockId>, UvmError> {
            let mut mm = GpuMemoryManager::with_policy(4, EvictionPolicyKind::Random, seed);
            for i in 1..=4u64 {
                mm.ensure_resident(VaBlockId(i), i)?;
            }
            let mut evicted = Vec::new();
            for i in 5..=20u64 {
                if let EvictOutcome::Evicted(v) = mm.ensure_resident(VaBlockId(i), i)? {
                    evicted.extend(v);
                }
            }
            Ok(evicted)
        };
        let a = run(0x5C21)?;
        let b = run(0x5C21)?;
        assert_eq!(a, b, "same seed must evict the same victims");
        assert_eq!(a.len(), 16);
        let c = run(0x5C22)?;
        assert_ne!(a, c, "different seeds should pick different victim orders");
        Ok(())
    }

    #[test]
    fn pressure_shrinks_effective_capacity_and_sheds_residents() -> Result<(), UvmError> {
        let mut mm = GpuMemoryManager::new(8);
        for i in 1..=8u64 {
            mm.ensure_resident(VaBlockId(i), i)?;
        }
        assert_eq!(mm.resident_blocks(), 8);
        assert_eq!(mm.effective_capacity(), 8);

        // Reserve 3 blocks away: effective capacity drops, nothing is
        // evicted until the caller sheds.
        mm.set_pressure(3);
        assert_eq!(mm.pressure_reserved(), 3);
        assert_eq!(mm.effective_capacity(), 5);
        assert_eq!(mm.resident_blocks(), 8);

        let victims = mm.shed_over_capacity();
        assert_eq!(victims.len(), 3, "must shed down to effective capacity");
        assert_eq!(mm.resident_blocks(), 5);
        assert_eq!(mm.emergency_evictions(), 3);
        // LRU sheds the earliest-migrated blocks first.
        assert_eq!(victims, vec![VaBlockId(1), VaBlockId(2), VaBlockId(3)]);

        // New allocations now respect the shrunken capacity.
        if let EvictOutcome::Evicted(v) = mm.ensure_resident(VaBlockId(9), 9)? {
            assert_eq!(v.len(), 1);
        } else {
            panic!("full-at-effective-capacity must evict");
        }
        assert_eq!(mm.resident_blocks(), 5);

        // Pressure lifts: capacity restores, no further shedding needed.
        mm.set_pressure(0);
        assert_eq!(mm.effective_capacity(), 8);
        assert!(mm.shed_over_capacity().is_empty());
        Ok(())
    }

    #[test]
    fn pressure_is_clamped_to_leave_one_block() {
        let mut mm = GpuMemoryManager::new(4);
        mm.set_pressure(100);
        assert_eq!(mm.pressure_reserved(), 3);
        assert_eq!(mm.effective_capacity(), 1);
    }

    #[test]
    fn manager_snapshot_round_trips_with_policy_state() -> Result<(), UvmError> {
        // Serialize a mid-run random-policy manager; the restored copy must
        // continue with the identical victim stream (rng + meta survive).
        let mut mm = GpuMemoryManager::with_policy(3, EvictionPolicyKind::Random, 7);
        for i in 1..=3u64 {
            mm.ensure_resident(VaBlockId(i), i)?;
        }
        for i in 4..=9u64 {
            mm.ensure_resident(VaBlockId(i), i)?;
        }
        let json = serde_json::to_string(&mm).expect("serialize");
        let mut restored: GpuMemoryManager = serde_json::from_str(&json).expect("deserialize");
        let mut next_live = Vec::new();
        let mut next_restored = Vec::new();
        for i in 10..=20u64 {
            if let EvictOutcome::Evicted(v) = mm.ensure_resident(VaBlockId(i), i)? {
                next_live.extend(v);
            }
            if let EvictOutcome::Evicted(v) = restored.ensure_resident(VaBlockId(i), i)? {
                next_restored.extend(v);
            }
        }
        assert_eq!(next_live, next_restored);
        Ok(())
    }
}
