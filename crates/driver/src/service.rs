//! The fault-servicing pipeline.
//!
//! [`UvmDriver::service_batch`] is the model of the driver's per-batch work
//! loop (paper Secs. 2.2, 4, 5): fetch the batch, deduplicate it, then
//! service each distinct VABlock — first-touch DMA-map setup, fault-path
//! CPU unmap, eviction under memory pressure, population, migration,
//! page-table updates, and (optionally) tree-based prefetch expansion. All
//! state transitions are applied to the GPU device model and the host OS
//! substrate, and a [`BatchRecord`] capturing the component costs is
//! appended to the driver's log.
//!
//! The pipeline is *fallible*: every stage that can fail in a real driver
//! (DMA-map creation, the copy engine, host page-table operations, the
//! batch fetch itself) returns a typed [`UvmError`], and
//! [`UvmDriver::service_batch`] applies the recovery policy from
//! [`DriverPolicy`] — bounded retry with deterministic exponential backoff
//! for transient failures, and graceful degradation of a block to a remote
//! (sysmem-mapped) state when migration keeps failing. Only unrecoverable
//! failures propagate to the caller.

use std::collections::{BTreeMap, HashSet};

use serde::{Deserialize, Serialize};
use uvm_gpu::device::Gpu;
use uvm_gpu::fault::{AccessKind, FaultRecord};
use uvm_hostos::dma::DmaSpace;
use uvm_hostos::host::HostMemory;
use uvm_sim::cost::CostModel;
use uvm_sim::error::UvmError;
use uvm_sim::inject::{InjectionPoint, Injector, PointInjector};
use uvm_sim::mem::{Allocation, VaBlockId, PAGE_SIZE};
use uvm_sim::rng::DetRng;
use uvm_sim::time::{SimDuration, SimTime};

use uvm_trace::TraceEvent;

use crate::advise::MemAdvise;
use crate::batch::{BatchRecord, FaultMeta};

/// Emit a component span for a duration just added to `rec`.
///
/// Must be called immediately after `rec.t_* += dur`: the record's
/// component times only grow, in program order, so placing the span at
/// `rec.start + component_sum − dur` tiles the batch's service interval
/// contiguously, and the per-component span sums equal the record's final
/// `t_*` fields exactly — the invariant the trace-side breakdown
/// reconciliation relies on. Purely observational: no driver state (and
/// no RNG stream) is touched.
#[inline]
fn span(rec: &BatchRecord, dur: SimDuration, event: impl FnOnce() -> TraceEvent) {
    if uvm_trace::enabled() {
        let end = rec.start.0 + rec.component_sum().as_nanos();
        uvm_trace::emit_span(end - dur.as_nanos(), dur.as_nanos(), event);
    }
}

/// Emit an instant at the batch's current accumulated position.
#[inline]
fn mark(rec: &BatchRecord, event: impl FnOnce() -> TraceEvent) {
    if uvm_trace::enabled() {
        uvm_trace::emit_instant(rec.start.0 + rec.component_sum().as_nanos(), event);
    }
}
use crate::bitmap::PageBitmap;
use crate::dedup::{classify_duplicates_with, DedupResult, DedupScratch};
use crate::engine::{run_prefetch_policy, PrefetchContext};
use crate::evict::{EvictOutcome, GpuMemoryManager};
use crate::health::{HealthEvidence, HealthMachine};
use crate::policy::DriverPolicy;
use crate::va_space::VaSpace;

/// Reusable per-batch working memory for [`UvmDriver::service_batch_with`].
///
/// Pure scratch: contents are cleared at each use site and never influence
/// results. Kept outside [`UvmDriver`] so driver snapshots are unaffected;
/// the run loop owns one instance for the lifetime of a simulation.
#[derive(Debug, Default)]
pub struct ServiceScratch {
    /// Sort/dedup working memory for duplicate classification.
    dedup: DedupScratch,
    /// Dedup output (reused `unique` vector).
    dedup_out: DedupResult,
    /// Distinct-SM attribution buffer.
    sms: Vec<u32>,
    /// Distinct-μTLB attribution buffer.
    utlbs: Vec<u32>,
    /// First-occurrence tracking for the per-fault metadata log.
    seen_pages: HashSet<uvm_sim::mem::PageNum>,
    /// `(VABlock, unique index)` grouping keys.
    groups: Vec<(VaBlockId, u32)>,
}

/// The UVM driver: policy, managed-memory registry, GPU memory manager,
/// DMA space, and the batch log.
///
/// The driver is fully serializable: a snapshot captures the VA-space and
/// VABlock trees, the eviction bookkeeping (including the evictor's own
/// RNG stream and LFU counters), the oracle prefetcher's future-access
/// table, the DMA space (including the reverse radix tree), the jitter RNG
/// mid-stream, every driver-owned injector (transient and sustained), the
/// health machine, and the complete batch log, so
/// a restored driver continues bit-identically under any policy stack.
#[derive(Debug, Serialize, Deserialize)]
pub struct UvmDriver {
    policy: DriverPolicy,
    cost: CostModel,
    /// Managed allocations and VABlock states.
    pub va_space: VaSpace,
    pub(crate) mem: GpuMemoryManager,
    pub(crate) dma: DmaSpace,
    rng: DetRng,
    batch_seq: u64,
    /// Batch-level instrumentation (one record per serviced batch).
    pub records: Vec<BatchRecord>,
    /// Per-fault metadata, kept when `policy.log_fault_metadata`.
    pub fault_log: Vec<FaultMeta>,
    /// Copy-engine (migration) failure injection.
    inj_copy: PointInjector,
    /// Batch-fetch stall injection.
    inj_fetch: PointInjector,
    /// Sustained device-memory-pressure injection: consulted once per
    /// batch; while it fires, `pressure_reserve_blocks` are withheld from
    /// the memory manager and residency is emergency-evicted to fit.
    inj_pressure: PointInjector,
    /// Sustained GPU-reset injection: consulted once per batch; a fire
    /// destroys the fault buffer, in-flight GMMU state, and μTLB entries,
    /// and charges the re-attach cost.
    inj_reset: PointInjector,
    /// The graceful-degradation health machine, re-evaluated from evidence
    /// at every batch boundary.
    health: HealthMachine,
    /// Cumulative VABlocks degraded to remote mappings over the run — the
    /// evidence behind the `Degraded` escalation.
    degraded_total: u64,
    /// Fault-buffer overflow drops already attributed to earlier batches.
    overflow_seen: u64,
    /// The oracle prefetcher's future-access table: per VABlock, every
    /// page the workload will touch. Installed by the system layer before
    /// the run starts ([`Self::set_future_accesses`]); empty for every
    /// other prefetch policy. Serialized with the driver so a restored
    /// oracle run keeps its foresight.
    oracle_future: BTreeMap<VaBlockId, PageBitmap>,
}

impl UvmDriver {
    /// A driver managing a GPU with `capacity_blocks` 2 MiB chunks.
    pub fn new(policy: DriverPolicy, cost: CostModel, capacity_blocks: u64, seed: u64) -> Self {
        let mem = GpuMemoryManager::with_policy(capacity_blocks, policy.eviction_policy, seed);
        UvmDriver {
            policy,
            cost,
            va_space: VaSpace::new(),
            mem,
            dma: DmaSpace::new(),
            rng: DetRng::new(seed ^ 0xD21A_55E5),
            batch_seq: 0,
            records: Vec::new(),
            fault_log: Vec::new(),
            inj_copy: PointInjector::disabled(),
            inj_fetch: PointInjector::disabled(),
            inj_pressure: PointInjector::disabled(),
            inj_reset: PointInjector::disabled(),
            health: HealthMachine::new(),
            degraded_total: 0,
            overflow_seen: 0,
            oracle_future: BTreeMap::new(),
        }
    }

    /// Install the oracle prefetcher's future-access table: for each
    /// VABlock, the set of pages the workload will ever touch. A no-op
    /// for every other prefetch policy (the table is only consulted by
    /// [`crate::engine::OraclePrefetch`]).
    pub fn set_future_accesses(&mut self, future: BTreeMap<VaBlockId, PageBitmap>) {
        self.oracle_future = future;
    }

    /// Install the driver-owned fault injectors — the transient points
    /// (DMA map, copy engine, batch fetch) and the sustained failure
    /// domains (device memory pressure, GPU reset) — from a wired
    /// [`Injector`]. Points not taken here belong to other subsystems (the
    /// GPU fault buffer, the host OS).
    pub fn set_injectors(&mut self, inj: &mut Injector) {
        self.dma.set_injector(inj.take(InjectionPoint::DmaMapFailure));
        self.inj_copy = inj.take(InjectionPoint::CopyEngineFault);
        self.inj_fetch = inj.take(InjectionPoint::BatchFetchStall);
        self.inj_pressure = inj.take(InjectionPoint::DeviceMemoryPressure);
        self.inj_reset = inj.take(InjectionPoint::GpuReset);
    }

    /// The health machine (read access for experiments and the harness).
    pub fn health(&self) -> &HealthMachine {
        &self.health
    }

    /// Driver policy.
    pub fn policy(&self) -> &DriverPolicy {
        &self.policy
    }

    /// Cumulative VABlocks degraded to remote mappings over the run.
    pub fn degraded_total(&self) -> u64 {
        self.degraded_total
    }

    /// The GPU memory manager (read access for experiments).
    pub fn memory(&self) -> &GpuMemoryManager {
        &self.mem
    }

    /// The DMA space (read access for experiments and the auditor).
    pub fn dma_space(&self) -> &DmaSpace {
        &self.dma
    }

    /// Deterministic exponential backoff for retry `attempt` (0-based),
    /// charged to the batch record. Pure policy — no RNG.
    fn backoff(&self, attempt: u32) -> SimDuration {
        self.policy.retry_backoff * (1u64 << attempt.min(20))
    }

    /// Burn one draw from the driver's jitter RNG, silently knocking the
    /// stream out of phase with an identically-seeded driver. This is a
    /// divergence-demo hook: it models the class of bug the lockstep
    /// detector exists to catch (a code path consuming randomness it
    /// shouldn't), and has no other effect on driver state.
    pub fn perturb_rng(&mut self) {
        let _ = self.rng.unit();
    }

    /// Register a managed allocation (the `cudaMallocManaged` entry point).
    pub fn managed_alloc(&mut self, alloc: Allocation) {
        self.va_space.register(alloc);
    }

    /// A CPU thread on `core` touches `page` of managed memory: the host OS
    /// maps it, and the driver records that host data now exists for the
    /// page (so a later migration pays a real transfer, not just
    /// population).
    ///
    /// # Panics
    ///
    /// Panics if `page` lies outside every registered managed allocation.
    pub fn cpu_touch(
        &mut self,
        host: &mut HostMemory,
        page: uvm_sim::mem::PageNum,
        core: u32,
        write: bool,
    ) {
        host.cpu_touch(page, core, write);
        let state = self.va_space.block_mut(page.va_block());
        state.host_data.set(page.index_in_block());
    }

    /// Apply a `cudaMemAdvise` hint to every VABlock of `alloc`.
    ///
    /// # Panics
    ///
    /// Panics if `alloc` was not registered via [`Self::managed_alloc`].
    pub fn set_advise(&mut self, alloc: &Allocation, advise: MemAdvise) {
        for block in alloc.va_blocks() {
            self.va_space.block_mut(block).advise = Some(advise);
        }
    }

    /// `cudaMemPrefetchAsync(alloc, device)`: driver-initiated bulk
    /// migration of the whole allocation, block by block, before any GPU
    /// fault. Pays the same compulsory costs a fault-driven first touch
    /// would (DMA setup, CPU unmap, population, transfer, PTE updates) but
    /// amortized into one operation per VABlock. Appends one record
    /// (flagged `driver_prefetch_op`) and returns its end time.
    ///
    /// Blocks already degraded to a remote mapping are skipped (they are
    /// permanently non-migratable). Unrecoverable failures propagate as
    /// [`UvmError`]; transient injected failures are retried under the
    /// same policy as fault-driven servicing.
    ///
    /// # Panics
    ///
    /// Panics if `alloc` was not registered via [`Self::managed_alloc`].
    pub fn prefetch_async(
        &mut self,
        alloc: &Allocation,
        gpu: &mut Gpu,
        host: &mut HostMemory,
        start: SimTime,
    ) -> Result<SimTime, UvmError> {
        let seq = self.batch_seq;
        self.batch_seq += 1;
        let mut rec = BatchRecord {
            seq,
            start,
            driver_prefetch_op: true,
            ..Default::default()
        };
        uvm_trace::emit_instant(start.0, || TraceEvent::BatchOpen {
            batch: seq,
            raw_faults: 0,
            prefetch_op: true,
        });
        for block_id in alloc.va_blocks() {
            let state = self.va_space.try_block(block_id)?;
            if state.degraded {
                continue;
            }
            let valid = state.valid_pages;
            let migrate = Self::range_bitmap_of(valid).and_not(&state.gpu_resident);
            if migrate.is_empty() {
                continue;
            }
            rec.num_va_blocks += 1;
            rec.served_blocks.push(block_id.0);
            rec.per_block_faults.push(0);
            rec.t_fixed += self.cost.per_vablock_fixed;
            span(&rec, self.cost.per_vablock_fixed, || TraceEvent::VaBlockLock {
                batch: seq,
                block: block_id.0,
                faults: 0,
            });
            self.ensure_block_allocated(block_id, seq, gpu, &mut rec)?;
            self.setup_block_dma(block_id, &mut rec)?;
            self.unmap_block_if_needed(block_id, host, &mut rec)?;
            self.try_migrate_with_recovery(block_id, &migrate, gpu, &mut rec)?;
        }
        rec.t_fixed += self.cost.per_batch_fixed;
        span(&rec, self.cost.per_batch_fixed, || TraceEvent::Fixed { batch: seq });
        host.note_writeback(rec.bytes_evicted / PAGE_SIZE);
        rec.end = start + rec.component_sum();
        uvm_trace::emit_instant(rec.end.0, || TraceEvent::BatchClose {
            batch: seq,
            raw_faults: rec.raw_faults,
            unique_pages: rec.unique_pages,
            pages_migrated: rec.pages_migrated,
            bytes_migrated: rec.bytes_migrated,
            components: rec.component_ns().to_vec(),
        });
        let end = rec.end;
        self.records.push(rec);
        Ok(end)
    }

    /// Sum of all batch service times (the paper's "Batch" column in
    /// Table 4).
    pub fn total_batch_time(&self) -> SimDuration {
        self.records.iter().map(BatchRecord::service_time).sum()
    }

    /// Number of batches serviced.
    pub fn num_batches(&self) -> u64 {
        self.batch_seq
    }

    /// Service one fetched batch starting at `start`. Applies all state
    /// changes to `gpu` and `host`, appends and returns the batch record.
    /// The caller (engine) is responsible for the subsequent buffer flush
    /// and replay.
    ///
    /// Transient injected failures (batch-fetch stalls, DMA-map failures,
    /// host page-table failures, copy-engine faults) are retried up to
    /// [`DriverPolicy::max_retries`] times with deterministic exponential
    /// backoff; a block whose migration keeps failing is degraded to a
    /// remote mapping. `Err` means the recovery policy was exhausted on a
    /// non-degradable stage, or an internal invariant broke.
    pub fn service_batch(
        &mut self,
        faults: &[FaultRecord],
        gpu: &mut Gpu,
        host: &mut HostMemory,
        start: SimTime,
    ) -> Result<&BatchRecord, UvmError> {
        let mut scratch = ServiceScratch::default();
        self.service_batch_with(faults, gpu, host, start, &mut scratch)
    }

    /// [`UvmDriver::service_batch`] with caller-owned working memory.
    ///
    /// The run loop holds one [`ServiceScratch`] for the whole simulation,
    /// so the per-batch pipeline performs no steady-state allocations for
    /// dedup keys, μTLB/SM attribution, or VABlock grouping. Scratch
    /// contents never outlive the call and have no effect on the result —
    /// the output is bit-identical to a fresh-scratch call.
    pub fn service_batch_with(
        &mut self,
        faults: &[FaultRecord],
        gpu: &mut Gpu,
        host: &mut HostMemory,
        start: SimTime,
        scratch: &mut ServiceScratch,
    ) -> Result<&BatchRecord, UvmError> {
        let seq = self.batch_seq;
        self.batch_seq += 1;

        let mut rec = BatchRecord {
            seq,
            start,
            raw_faults: faults.len() as u64,
            ..Default::default()
        };

        uvm_trace::emit_instant(start.0, || TraceEvent::BatchOpen {
            batch: seq,
            raw_faults: faults.len() as u64,
            prefetch_op: false,
        });

        // ---- attribute hardware-buffer drops since the last batch ----
        let total_drops = gpu.fault_buffer.overflow_drops();
        rec.dropped_faults = total_drops.saturating_sub(self.overflow_seen);
        self.overflow_seen = total_drops;

        // ---- sustained failure domains (consulted once per batch) ----
        // Every point owns an independent forked RNG stream and disabled
        // points draw nothing, so stock runs are bit-identical to the
        // pre-chaos pipeline.
        let mut reset_absorbed = false;
        if self.inj_reset.is_enabled() && self.inj_reset.should_fail(start) {
            // The GPU lost its fault buffer, in-flight GMMU state, and
            // μTLB entries. The driver pays the re-attach cost and relies
            // on the end-of-batch replay to wake the blocked warps; the
            // destroyed faults then regenerate from the last consistent
            // point, exactly like overflow-dropped entries.
            let lost = gpu.reset(start);
            rec.gpu_resets += 1;
            rec.reset_lost_faults += lost;
            rec.t_fixed += self.policy.reset_reattach_cost;
            span(&rec, self.policy.reset_reattach_cost, || TraceEvent::Fixed { batch: seq });
            reset_absorbed = true;
        }
        // Consult while the point can still fire OR a reservation is
        // active: an exhausted schedule must still close its window (an
        // exhausted injector draws nothing, so the guard stays zero-draw).
        if self.inj_pressure.is_enabled() || self.mem.pressure_reserved() > 0 {
            if self.inj_pressure.is_enabled() && self.inj_pressure.should_fail(start) {
                self.mem.set_pressure(self.policy.pressure_reserve_blocks);
            } else {
                self.mem.set_pressure(0);
            }
            let victims = self.mem.shed_over_capacity();
            if self.mem.pressure_reserved() > 0 || !victims.is_empty() {
                let reserved = self.mem.pressure_reserved();
                let evicted = victims.len() as u64;
                mark(&rec, || TraceEvent::MemoryPressure { batch: seq, reserved, evicted });
            }
            // Emergency eviction: each victim takes the full writeback
            // path (device→host transfer charged to `t_evict`), same as a
            // capacity eviction minus the allocation-failure surcharge —
            // nothing asked for memory; the memory shrank.
            for victim in victims {
                rec.evicted_blocks.push(victim.0);
                let vstate = self.va_space.try_block_mut(victim)?;
                let evict_pages: Vec<_> =
                    vstate.gpu_resident.iter_set().map(|i| victim.page_at(i)).collect();
                let bytes = if vstate.read_duplicated {
                    0
                } else {
                    evict_pages.len() as u64 * PAGE_SIZE
                };
                rec.emergency_evictions += 1;
                rec.bytes_evicted += bytes;
                let d = self.cost.evict_fixed + self.cost.d2h_time(bytes);
                rec.t_evict += d;
                span(&rec, d, || TraceEvent::Evict {
                    batch: seq,
                    victim: Some(victim.0),
                    bytes,
                });
                gpu.unmap_pages(evict_pages);
                vstate.evict();
                vstate.last_evict_seq = Some(seq);
            }
        }

        // ---- health evaluation (batch boundary, before servicing, so the
        // state gates this batch's speculation) ----
        let evidence = HealthEvidence {
            reset_absorbed,
            pressure_reserved: self.mem.pressure_reserved(),
            total_degraded: self.degraded_total,
            degraded_threshold: self.policy.degraded_threshold,
        };
        if let Some((from, to)) = self.health.observe(&evidence) {
            mark(&rec, || TraceEvent::HealthTransition {
                batch: seq,
                from: from.name().into(),
                to: to.name().into(),
            });
        }
        rec.health = self.health.state();
        rec.pressure_reserved = self.mem.pressure_reserved();
        let speculation_allowed = self.health.state().prefetch_allowed();

        // ---- injected batch-fetch stall: retry the fetch, bounded ----
        let mut attempt = 0u32;
        while self.inj_fetch.is_enabled() && self.inj_fetch.should_fail(start) {
            rec.injected_faults += 1;
            if attempt >= self.policy.max_retries {
                return Err(UvmError::BatchFetchStall { batch: seq });
            }
            rec.retries += 1;
            let d = self.backoff(attempt);
            rec.t_backoff += d;
            span(&rec, d, || TraceEvent::Backoff { batch: seq, stage: "fetch".into() });
            attempt += 1;
        }

        // ---- fetch + composition accounting ----
        rec.t_fetch = self.cost.fetch_per_fault * faults.len() as u64;
        span(&rec, rec.t_fetch, || TraceEvent::Fetch {
            batch: seq,
            faults: faults.len() as u64,
        });
        scratch.sms.clear();
        scratch.utlbs.clear();
        for f in faults {
            scratch.sms.push(f.sm);
            scratch.utlbs.push(f.utlb);
            match f.kind {
                AccessKind::Read => rec.read_faults += 1,
                AccessKind::Write => rec.write_faults += 1,
                AccessKind::Prefetch => rec.prefetch_faults += 1,
            }
        }
        scratch.sms.sort_unstable();
        scratch.sms.dedup();
        scratch.utlbs.sort_unstable();
        scratch.utlbs.dedup();
        rec.distinct_sms = scratch.sms.len() as u32;
        rec.distinct_utlbs = scratch.utlbs.len() as u32;

        // ---- per-fault metadata (paper's first driver variant) ----
        if self.policy.log_fault_metadata {
            let seen = &mut scratch.seen_pages;
            seen.clear();
            for f in faults {
                let was_duplicate = !seen.insert(f.page);
                self.fault_log.push(FaultMeta {
                    batch_seq: seq,
                    page: f.page.0,
                    kind: f.kind.into(),
                    sm: f.sm,
                    utlb: f.utlb,
                    arrival: f.arrival,
                    was_duplicate,
                });
            }
        }

        // ---- deduplicate ----
        classify_duplicates_with(faults, &mut scratch.dedup, &mut scratch.dedup_out);
        let dedup = &scratch.dedup_out;
        rec.dup_same_utlb = dedup.dup_same_utlb;
        rec.dup_cross_utlb = dedup.dup_cross_utlb;
        rec.unique_pages = dedup.unique.len() as u64;
        rec.t_preprocess = self.cost.preprocess_per_fault * faults.len() as u64;
        if !self.policy.dedup_enabled {
            // Ablation: without dedup, every duplicate walks the servicing
            // path redundantly — block lookup, residency check, page-table
            // no-op — before being discovered already-handled.
            let redundant = dedup.total_dups();
            rec.t_preprocess += (self.cost.preprocess_per_fault
                + self.cost.pte_update_per_page)
                * redundant;
        }
        span(&rec, rec.t_preprocess, || TraceEvent::Preprocess {
            batch: seq,
            faults: faults.len() as u64,
        });
        mark(&rec, || TraceEvent::DedupHit {
            batch: seq,
            same_utlb: dedup.dup_same_utlb,
            cross_utlb: dedup.dup_cross_utlb,
            unique: dedup.unique.len() as u64,
        });
        if uvm_trace::enabled() {
            // Lifetime anchors: one per unique fault entering service, with
            // its buffer-arrival time (joined to this batch's close by the
            // fault-lifetime exporter).
            for f in &dedup.unique {
                uvm_trace::emit_instant(start.0, || TraceEvent::FaultServiced {
                    batch: seq,
                    page: f.page.0,
                    sm: f.sm,
                    utlb: f.utlb,
                    arrival_ns: f.arrival.0,
                });
            }
        }

        // ---- group by VABlock (sorted keys: deterministic service order,
        // identical to the previous BTreeMap — blocks ascend, and within a
        // block the stable index tie-break keeps first-arrival order) ----
        scratch.groups.clear();
        scratch.groups.extend(
            dedup
                .unique
                .iter()
                .enumerate()
                .map(|(i, f)| (f.page.va_block(), i as u32)),
        );
        scratch.groups.sort_unstable();

        // ---- per-VABlock servicing ----
        rec.num_va_blocks = 0;
        let mut gi = 0;
        while gi < scratch.groups.len() {
            let block_id = scratch.groups[gi].0;
            let mut ge = gi;
            while ge < scratch.groups.len() && scratch.groups[ge].0 == block_id {
                ge += 1;
            }
            let group = &scratch.groups[gi..ge];
            gi = ge;
            rec.num_va_blocks += 1;

            rec.t_fixed += self.cost.per_vablock_fixed;
            span(&rec, self.cost.per_vablock_fixed, || TraceEvent::VaBlockLock {
                batch: seq,
                block: block_id.0,
                faults: group.len() as u64,
            });
            rec.served_blocks.push(block_id.0);
            rec.per_block_faults.push(group.len() as u32);

            // Faulted pages not already resident (or remote-mapped) on the
            // GPU.
            let (valid, advise, resident_now, degraded) = {
                let state = self.va_space.try_block(block_id)?;
                (
                    state.valid_pages,
                    state.advise,
                    state.gpu_resident.or(&state.remote_mapped),
                    state.degraded,
                )
            };
            let any_write = group
                .iter()
                .any(|&(_, i)| dedup.unique[i as usize].kind == AccessKind::Write);
            let mut faulted = PageBitmap::EMPTY;
            for &(_, i) in group {
                let idx = dedup.unique[i as usize].page.index_in_block();
                debug_assert!(
                    (idx as u32) < valid,
                    "fault beyond allocation end in block {block_id:?}"
                );
                faulted.set(idx);
            }
            let faulted = faulted.and_not(&resident_now);

            // Thrashing mitigation (extension, off by default): a block
            // refaulted shortly after its eviction ping-pongs; pin it
            // host-side for a while instead of re-migrating.
            if self.policy.thrashing_mitigation {
                let state = self.va_space.block_mut(block_id);
                if let Some(evicted_at) = state.last_evict_seq {
                    if state.pinned_until.is_none()
                        && seq.saturating_sub(evicted_at) <= self.policy.thrashing_window
                    {
                        state.pinned_until = Some(seq + self.policy.thrashing_pin);
                        rec.thrashing_pins += 1;
                    }
                }
                if let Some(until) = state.pinned_until {
                    if seq >= until {
                        // Pin expired: unmap the remote mappings so the
                        // next faults migrate normally.
                        state.pinned_until = None;
                        let remote = state.remote_mapped;
                        state.remote_mapped.reset();
                        gpu.unmap_pages(remote.iter_set().map(|i| block_id.page_at(i)));
                    }
                }
            }
            let pinned = self.va_space.block_mut(block_id).pinned_until.is_some();

            // PreferredLocationHost — and blocks degraded by exhausted
            // migration retries — establish remote mappings over the
            // interconnect instead of migrating: no device memory, no
            // eviction pressure, but every access crosses PCIe.
            if pinned || degraded || advise == Some(MemAdvise::PreferredLocationHost) {
                if faulted.is_empty() {
                    continue;
                }
                self.setup_block_dma(block_id, &mut rec)?;
                let n = u64::from(faulted.count());
                rec.t_pte += self.cost.pte_time(n);
                span(&rec, self.cost.pte_time(n), || TraceEvent::PteUpdate {
                    batch: seq,
                    block: block_id.0,
                    pages: n,
                });
                rec.remote_mapped_pages += n;
                let state = self.va_space.block_mut(block_id);
                state.remote_mapped.merge(&faulted);
                gpu.map_pages(faulted.iter_set().map(|i| block_id.page_at(i)));
                continue;
            }

            // Prefetch expansion, confined to this block, dispatched
            // through the policy engine. The engine's invariant mask is an
            // identity for the stock tree policy, so TreeDensity output is
            // bit-identical to a direct `compute_prefetch` call. Any
            // non-Healthy regime suspends speculation: migrating pages
            // nobody asked for into a pressured or resetting device is how
            // real drivers thrash.
            let prefetched = if self.policy.prefetch_enabled && speculation_allowed {
                run_prefetch_policy(
                    self.policy.prefetch_policy,
                    &PrefetchContext {
                        resident: &self.va_space.block(block_id).gpu_resident,
                        faulted: &faulted,
                        valid_pages: valid,
                        threshold: self.policy.prefetch_threshold,
                        stride_pages: self.policy.stride_pages,
                        future: self.oracle_future.get(&block_id),
                    },
                )
            } else {
                PageBitmap::EMPTY
            };
            rec.prefetched_pages += u64::from(prefetched.count());
            mark(&rec, || TraceEvent::PrefetchDecision {
                batch: seq,
                block: block_id.0,
                faulted: u64::from(faulted.count()),
                prefetched: u64::from(prefetched.count()),
            });
            let migrate = faulted.or(&prefetched);
            if migrate.is_empty() {
                // Stale faults for already-resident pages: management cost
                // only.
                continue;
            }

            self.ensure_block_allocated(block_id, seq, gpu, &mut rec)?;
            self.setup_block_dma(block_id, &mut rec)?;

            // Fault-path CPU unmap — skipped under ReadMostly duplication
            // unless a write collapses it. (Simplification: the GPU page
            // table carries no write permissions, so a write to an
            // already-duplicated *resident* page does not re-fault; the
            // collapse happens only when the write itself faults. Data
            // values are not modelled, so the stale CPU copy is cost-
            // neutral.)
            let read_mostly = advise == Some(MemAdvise::ReadMostly) && !any_write;
            if !read_mostly {
                self.unmap_block_if_needed(block_id, host, &mut rec)?;
            }
            if !self.try_migrate_with_recovery(block_id, &migrate, gpu, &mut rec)? {
                // The block was degraded to a remote mapping instead of
                // migrated; read duplication is moot.
                continue;
            }
            let state = self.va_space.try_block_mut(block_id)?;
            state.read_duplicated = read_mostly;
        }

        rec.t_fixed += self.cost.per_batch_fixed;

        // Host-side scheduling noise on the management portion (everything
        // but the DMA transfers, which are hardware-paced, and the retry
        // backoff, which is deterministic policy).
        let mgmt = rec.component_sum() - rec.t_transfer - rec.t_evict - rec.t_backoff;
        let jitter = self.rng.jitter_factor(self.cost.service_jitter);
        let jittered_extra = mgmt.mul_f64(jitter).saturating_sub(mgmt);
        rec.t_fixed += jittered_extra;
        // One span covering the per-batch fixed overhead plus its jitter.
        span(&rec, self.cost.per_batch_fixed + jittered_extra, || TraceEvent::Fixed {
            batch: seq,
        });

        // Host-side accounting of this batch's eviction writebacks (normal,
        // emergency, and degradation paths all accumulate bytes_evicted).
        host.note_writeback(rec.bytes_evicted / PAGE_SIZE);
        rec.end = start + rec.component_sum();
        uvm_trace::emit_instant(rec.end.0, || TraceEvent::BatchClose {
            batch: seq,
            raw_faults: rec.raw_faults,
            unique_pages: rec.unique_pages,
            pages_migrated: rec.pages_migrated,
            bytes_migrated: rec.bytes_migrated,
            components: rec.component_ns().to_vec(),
        });
        self.records.push(rec);
        if self.policy.audit_enabled {
            crate::audit::audit(self, gpu, host)?;
        }
        // Infallible: the record was pushed two statements above and the
        // auditor does not mutate `records`.
        Ok(self.records.last().expect("just pushed"))
    }

    /// A bitmap covering pages `0..valid`.
    fn range_bitmap_of(valid: u32) -> PageBitmap {
        let mut bm = PageBitmap::EMPTY;
        bm.set_range(0, valid as usize);
        bm
    }

    /// Ensure `block_id` holds a GPU physical allocation, performing LRU
    /// evictions (with their fail/writeback/restart costs) if the device
    /// is full.
    fn ensure_block_allocated(
        &mut self,
        block_id: VaBlockId,
        seq: u64,
        gpu: &mut Gpu,
        rec: &mut BatchRecord,
    ) -> Result<(), UvmError> {
        match self.mem.ensure_resident(block_id, seq)? {
            EvictOutcome::AlreadyResident => {}
            EvictOutcome::Allocated => {
                self.va_space.try_block_mut(block_id)?.gpu_allocated = true;
            }
            EvictOutcome::Evicted(victims) => {
                let policy_name = self.mem.policy().name();
                mark(rec, || TraceEvent::EvictDecision {
                    batch: seq,
                    policy: policy_name.into(),
                    victims: victims.len() as u64,
                });
                for victim in victims {
                    rec.evicted_blocks.push(victim.0);
                    let vstate = self.va_space.try_block_mut(victim)?;
                    let evict_pages: Vec<_> =
                        vstate.gpu_resident.iter_set().map(|i| victim.page_at(i)).collect();
                    // Read-duplicated victims have an intact host copy:
                    // dropping the GPU copy needs no writeback.
                    let bytes = if vstate.read_duplicated {
                        0
                    } else {
                        evict_pages.len() as u64 * PAGE_SIZE
                    };
                    rec.evictions += 1;
                    rec.bytes_evicted += bytes;
                    // Fail the allocation, write the victim back, and
                    // restart the migration step (Sec. 5.1). The data
                    // returns to host RAM but is NOT re-mapped into CPU
                    // page tables — so a re-migration later skips the
                    // unmap cost (the Fig. 13 levels).
                    let d = self.cost.alloc_fail
                        + self.cost.evict_fixed
                        + self.cost.d2h_time(bytes);
                    rec.t_evict += d;
                    span(rec, d, || TraceEvent::Evict {
                        batch: rec.seq,
                        victim: Some(victim.0),
                        bytes,
                    });
                    gpu.unmap_pages(evict_pages);
                    vstate.evict();
                    vstate.last_evict_seq = Some(rec.seq);
                }
                rec.t_evict += self.cost.service_restart;
                // Victimless span: the service-restart surcharge.
                span(rec, self.cost.service_restart, || TraceEvent::Evict {
                    batch: rec.seq,
                    victim: None,
                    bytes: 0,
                });
                self.va_space.try_block_mut(block_id)?.gpu_allocated = true;
            }
        }
        Ok(())
    }

    /// First GPU touch of a block: create DMA mappings for every valid
    /// page and store reverse mappings in the kernel radix tree.
    /// Compulsory; prefetching cannot eliminate it (Sec. 5.2). An injected
    /// DMA-map failure is retried with backoff; exhaustion is fatal for
    /// the batch (the block cannot be serviced at all without mappings).
    fn setup_block_dma(&mut self, block_id: VaBlockId, rec: &mut BatchRecord) -> Result<(), UvmError> {
        let state = self.va_space.try_block(block_id)?;
        if state.dma_mapped {
            return Ok(());
        }
        let valid = state.valid_pages;
        let mut attempt = 0u32;
        let report = loop {
            let pages = (0..valid as usize).map(|i| block_id.page_at(i));
            match self.dma.try_map_pages(block_id, pages, rec.start) {
                Ok(report) => break report,
                Err(e) => {
                    rec.injected_faults += 1;
                    if attempt >= self.policy.max_retries {
                        return Err(e);
                    }
                    rec.retries += 1;
                    let d = self.backoff(attempt);
                    rec.t_backoff += d;
                    span(rec, d, || TraceEvent::Backoff {
                        batch: rec.seq,
                        stage: "dma".into(),
                    });
                    attempt += 1;
                }
            }
        };
        let base = self
            .cost
            .dma_setup_time(report.pages_mapped, report.radix_nodes_allocated);
        // Drawn only after a successful mapping, so the injection-off RNG
        // stream is identical to the pre-injection pipeline.
        let tail = self
            .rng
            .heavy_tail(self.cost.dma_tail_prob, self.cost.dma_tail_max_factor);
        let d = base.mul_f64(tail);
        rec.t_dma_setup += d;
        span(rec, d, || TraceEvent::DmaSetup { batch: rec.seq, block: block_id.0 });
        self.va_space.try_block_mut(block_id)?.dma_mapped = true;
        rec.new_va_blocks += 1;
        Ok(())
    }

    /// Fault-path CPU unmap: tear down every CPU mapping in the block
    /// before migrating. An injected host page-table failure is retried
    /// with backoff; exhaustion is fatal (migrating while CPU mappings
    /// persist would alias the page).
    fn unmap_block_if_needed(
        &mut self,
        block_id: VaBlockId,
        host: &mut HostMemory,
        rec: &mut BatchRecord,
    ) -> Result<(), UvmError> {
        if host.mapped_pages_in_block(block_id) == 0 {
            return Ok(());
        }
        let mut attempt = 0u32;
        let report = loop {
            match host.try_unmap_mapping_range(block_id, rec.start) {
                Ok(report) => break report,
                Err(e) => {
                    rec.injected_faults += 1;
                    if attempt >= self.policy.max_retries {
                        return Err(e);
                    }
                    rec.retries += 1;
                    let d = self.backoff(attempt);
                    rec.t_backoff += d;
                    span(rec, d, || TraceEvent::Backoff {
                        batch: rec.seq,
                        stage: "unmap".into(),
                    });
                    attempt += 1;
                }
            }
        };
        rec.cpu_pages_unmapped += report.pages_unmapped;
        let d = self
            .cost
            .unmap_time(report.pages_unmapped, report.mapper_cores)
            .mul_f64(report.numa_factor);
        rec.t_unmap += d;
        span(rec, d, || TraceEvent::CpuUnmap {
            batch: rec.seq,
            block: block_id.0,
            pages: report.pages_unmapped,
        });
        Ok(())
    }

    /// Run the copy engine for `migrate` pages of `block_id`, retrying
    /// injected copy-engine faults with backoff. Returns `Ok(true)` when
    /// the migration happened, `Ok(false)` when retries were exhausted and
    /// the block was degraded to a remote mapping instead.
    fn try_migrate_with_recovery(
        &mut self,
        block_id: VaBlockId,
        migrate: &PageBitmap,
        gpu: &mut Gpu,
        rec: &mut BatchRecord,
    ) -> Result<bool, UvmError> {
        let mut attempt = 0u32;
        while self.inj_copy.is_enabled() && self.inj_copy.should_fail(rec.start) {
            rec.injected_faults += 1;
            if attempt >= self.policy.max_retries {
                self.degrade_to_remote(block_id, migrate, gpu, rec)?;
                return Ok(false);
            }
            rec.retries += 1;
            let d = self.backoff(attempt);
            rec.t_backoff += d;
            span(rec, d, || TraceEvent::Backoff {
                batch: rec.seq,
                stage: "copy".into(),
            });
            attempt += 1;
        }
        self.migrate_pages(block_id, migrate, gpu, rec)?;
        Ok(true)
    }

    /// Last-resort recovery when migration keeps failing: give up the
    /// block's device allocation (writing any resident data back) and map
    /// the pages remotely from sysmem, permanently. Mirrors the real
    /// driver's fallback of leaving pages at their current location when
    /// the copy engine is unusable.
    fn degrade_to_remote(
        &mut self,
        block_id: VaBlockId,
        pages: &PageBitmap,
        gpu: &mut Gpu,
        rec: &mut BatchRecord,
    ) -> Result<(), UvmError> {
        let (resident, had_alloc, read_dup) = {
            let state = self.va_space.try_block(block_id)?;
            (state.gpu_resident, state.gpu_allocated, state.read_duplicated)
        };
        if had_alloc {
            // Release the device allocation: resident data writes back to
            // host RAM (free under read duplication), and the chunk frees
            // without counting as an LRU eviction.
            let bytes = if read_dup {
                0
            } else {
                u64::from(resident.count()) * PAGE_SIZE
            };
            rec.bytes_evicted += bytes;
            let d = self.cost.evict_fixed + self.cost.d2h_time(bytes);
            rec.t_evict += d;
            // Degradation writeback: the block gives up its own allocation.
            span(rec, d, || TraceEvent::Evict {
                batch: rec.seq,
                victim: Some(block_id.0),
                bytes,
            });
            gpu.unmap_pages(resident.iter_set().map(|i| block_id.page_at(i)));
            self.mem.release(block_id);
        }
        let remote = pages.or(&resident);
        let n = u64::from(remote.count());
        rec.t_pte += self.cost.pte_time(n);
        span(rec, self.cost.pte_time(n), || TraceEvent::PteUpdate {
            batch: rec.seq,
            block: block_id.0,
            pages: n,
        });
        rec.remote_mapped_pages += n;
        rec.degraded_blocks += 1;
        self.degraded_total += 1;
        let state = self.va_space.try_block_mut(block_id)?;
        if !read_dup {
            let evicted = state.gpu_resident;
            state.host_data.merge(&evicted);
        }
        state.gpu_resident.reset();
        state.gpu_allocated = false;
        state.read_duplicated = false;
        state.degraded = true;
        state.remote_mapped.merge(&remote);
        gpu.map_pages(remote.iter_set().map(|i| block_id.page_at(i)));
        Ok(())
    }

    /// Population (zero-fill of fresh GPU pages), migration, and
    /// page-table updates for `migrate` pages of `block_id`. Only pages
    /// with host data pay a transfer; never-touched pages are populated
    /// directly on the GPU.
    fn migrate_pages(
        &mut self,
        block_id: VaBlockId,
        migrate: &PageBitmap,
        gpu: &mut Gpu,
        rec: &mut BatchRecord,
    ) -> Result<(), UvmError> {
        let state = self.va_space.try_block_mut(block_id)?;
        let n_pages = u64::from(migrate.count());
        let data_pages = u64::from(migrate.and(&state.host_data).count());
        let bytes = data_pages * PAGE_SIZE;
        rec.t_populate += self.cost.populate_time(n_pages);
        span(rec, self.cost.populate_time(n_pages), || TraceEvent::Populate {
            batch: rec.seq,
            block: block_id.0,
            pages: n_pages,
        });
        rec.t_transfer += self.cost.h2d_time(bytes);
        span(rec, self.cost.h2d_time(bytes), || TraceEvent::Transfer {
            batch: rec.seq,
            block: block_id.0,
            bytes,
        });
        rec.t_pte += self.cost.pte_time(n_pages);
        span(rec, self.cost.pte_time(n_pages), || TraceEvent::PteUpdate {
            batch: rec.seq,
            block: block_id.0,
            pages: n_pages,
        });
        rec.pages_migrated += n_pages;
        rec.bytes_migrated += bytes;

        state.gpu_resident.merge(migrate);
        state.last_migrate_seq = rec.seq;
        gpu.map_pages(migrate.iter_set().map(|i| block_id.page_at(i)));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvm_gpu::spec::GpuSpec;
    use uvm_sim::mem::{AddressSpaceAllocator, VABLOCK_SIZE};

    fn setup(capacity_blocks: u64, policy: DriverPolicy) -> (UvmDriver, Gpu, HostMemory) {
        let cost = CostModel::titan_v();
        let driver = UvmDriver::new(policy, cost.clone(), capacity_blocks, 42);
        let gpu = Gpu::new(GpuSpec::small(capacity_blocks * VABLOCK_SIZE), cost);
        (driver, gpu, HostMemory::new())
    }

    fn fault(page: uvm_sim::mem::PageNum, utlb: u32, kind: AccessKind) -> FaultRecord {
        FaultRecord {
            page,
            kind,
            sm: utlb * 2,
            utlb,
            warp: 0,
            arrival: SimTime(0),
            dup_of_outstanding: false,
        }
    }

    #[test]
    fn simple_batch_migrates_faulted_pages() -> Result<(), UvmError> {
        let (mut driver, mut gpu, mut host) = setup(16, DriverPolicy::default());
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        for i in 0..alloc.num_pages() {
            driver.cpu_touch(&mut host, alloc.page(i), 0, true);
        }

        let faults: Vec<_> = (0..10).map(|i| fault(alloc.page(i), 0, AccessKind::Read)).collect();
        let rec = driver.service_batch(&faults, &mut gpu, &mut host, SimTime(1000))?;
        assert_eq!(rec.raw_faults, 10);
        assert_eq!(rec.unique_pages, 10);
        assert_eq!(rec.pages_migrated, 10);
        assert_eq!(rec.bytes_migrated, 10 * PAGE_SIZE);
        assert_eq!(rec.num_va_blocks, 1);
        assert_eq!(rec.new_va_blocks, 1);
        assert!(rec.t_dma_setup > SimDuration::ZERO, "first touch pays DMA setup");
        assert!(gpu.is_resident(alloc.page(0)));
        assert!(gpu.is_resident(alloc.page(9)));
        assert!(!gpu.is_resident(alloc.page(10)));
        assert!(rec.end > rec.start);
        Ok(())
    }

    #[test]
    fn untouched_pages_migrate_without_transfer() -> Result<(), UvmError> {
        // Pages never written by the CPU have no host data: the driver
        // populates them directly on the GPU, moving zero bytes.
        let (mut driver, mut gpu, mut host) = setup(16, DriverPolicy::default());
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        let faults: Vec<_> = (0..10).map(|i| fault(alloc.page(i), 0, AccessKind::Write)).collect();
        let rec = driver.service_batch(&faults, &mut gpu, &mut host, SimTime(0))?;
        assert_eq!(rec.pages_migrated, 10);
        assert_eq!(rec.bytes_migrated, 0, "no host data, nothing to transfer");
        assert_eq!(rec.t_transfer, SimDuration::ZERO);
        assert!(rec.t_populate > SimDuration::ZERO);
        assert!(gpu.is_resident(alloc.page(0)));
        Ok(())
    }

    #[test]
    fn second_batch_same_block_skips_dma_setup() -> Result<(), UvmError> {
        let (mut driver, mut gpu, mut host) = setup(16, DriverPolicy::default());
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(VABLOCK_SIZE);
        driver.managed_alloc(alloc);

        let f1: Vec<_> = (0..4).map(|i| fault(alloc.page(i), 0, AccessKind::Read)).collect();
        driver.service_batch(&f1, &mut gpu, &mut host, SimTime(0))?;
        let f2: Vec<_> = (4..8).map(|i| fault(alloc.page(i), 0, AccessKind::Read)).collect();
        let rec = driver.service_batch(&f2, &mut gpu, &mut host, SimTime(1_000_000))?;
        assert_eq!(rec.new_va_blocks, 0);
        assert_eq!(rec.t_dma_setup, SimDuration::ZERO);
        Ok(())
    }

    #[test]
    fn duplicates_counted_but_not_migrated() -> Result<(), UvmError> {
        let (mut driver, mut gpu, mut host) = setup(16, DriverPolicy::default());
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(VABLOCK_SIZE);
        driver.managed_alloc(alloc);

        let p = alloc.page(0);
        let faults = vec![
            fault(p, 0, AccessKind::Read),
            fault(p, 0, AccessKind::Read), // type 1
            fault(p, 2, AccessKind::Read), // type 2
        ];
        let rec = driver.service_batch(&faults, &mut gpu, &mut host, SimTime(0))?;
        assert_eq!(rec.raw_faults, 3);
        assert_eq!(rec.unique_pages, 1);
        assert_eq!(rec.dup_same_utlb, 1);
        assert_eq!(rec.dup_cross_utlb, 1);
        assert_eq!(rec.pages_migrated, 1);
        Ok(())
    }

    #[test]
    fn cpu_resident_block_pays_unmap_once() -> Result<(), UvmError> {
        let (mut driver, mut gpu, mut host) = setup(16, DriverPolicy::default());
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        // CPU initializes the first 100 pages from core 0.
        for i in 0..100 {
            driver.cpu_touch(&mut host, alloc.page(i), 0, true);
        }

        let f1 = vec![fault(alloc.page(0), 0, AccessKind::Read)];
        let r1 = driver.service_batch(&f1, &mut gpu, &mut host, SimTime(0))?.clone();
        assert_eq!(r1.cpu_pages_unmapped, 100, "whole block range unmapped");
        assert!(r1.t_unmap > SimDuration::ZERO);

        let f2 = vec![fault(alloc.page(1), 0, AccessKind::Read)];
        let r2 = driver.service_batch(&f2, &mut gpu, &mut host, SimTime(1_000_000))?.clone();
        assert_eq!(r2.cpu_pages_unmapped, 0, "second touch pays no unmap");
        assert_eq!(r2.t_unmap, SimDuration::ZERO);
        Ok(())
    }

    #[test]
    fn multithreaded_init_inflates_unmap_cost() -> Result<(), UvmError> {
        // Fig. 11: same pages, same faults — more mapper cores, higher cost.
        let run = |threads: u32| {
            let (mut driver, mut gpu, mut host) = setup(16, DriverPolicy::default());
            let mut asa = AddressSpaceAllocator::new();
            let alloc = asa.alloc(VABLOCK_SIZE);
            driver.managed_alloc(alloc);
            for i in 0..512 {
                driver.cpu_touch(&mut host, alloc.page(i), (i as u32) % threads, true);
            }
            let f = vec![fault(alloc.page(0), 0, AccessKind::Read)];
            Ok::<_, UvmError>(driver.service_batch(&f, &mut gpu, &mut host, SimTime(0))?.t_unmap)
        };
        let single = run(1)?;
        let multi = run(32)?;
        assert!(multi > single * 2, "single {single}, multi {multi}");
        Ok(())
    }

    #[test]
    fn oversubscription_evicts_lru_block() -> Result<(), UvmError> {
        let (mut driver, mut gpu, mut host) = setup(2, DriverPolicy::default());
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(3 * VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        let blocks: Vec<VaBlockId> = alloc.va_blocks().collect();

        // Touch blocks 0, 1, then 2: block 0 must be evicted.
        for (i, &b) in blocks.iter().enumerate() {
            let f = vec![fault(b.first_page(), 0, AccessKind::Read)];
            let rec = driver.service_batch(&f, &mut gpu, &mut host, SimTime(i as u64 * 1_000_000))?;
            if i < 2 {
                assert_eq!(rec.evictions, 0);
            } else {
                assert_eq!(rec.evictions, 1);
                assert!(rec.t_evict > SimDuration::ZERO);
                assert!(rec.bytes_evicted > 0);
            }
        }
        assert!(!gpu.is_resident(blocks[0].first_page()));
        assert!(gpu.is_resident(blocks[2].first_page()));
        assert_eq!(driver.va_space.block(blocks[0]).evict_count, 1);
        Ok(())
    }

    #[test]
    fn re_migration_after_eviction_skips_unmap() -> Result<(), UvmError> {
        // Fig. 13's cost levels: the first migration pays unmap; after an
        // eviction, re-migration does not (data is in host RAM, unmapped).
        let (mut driver, mut gpu, mut host) = setup(1, DriverPolicy::default());
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(2 * VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        let blocks: Vec<VaBlockId> = alloc.va_blocks().collect();
        for i in 0..1024 {
            driver.cpu_touch(&mut host, alloc.page(i), 0, true);
        }

        // Migrate block 0 (pays unmap), then block 1 (evicts 0, pays its
        // own unmap), then block 0 again (evicts 1, NO unmap).
        let r0 = driver
            .service_batch(&[fault(blocks[0].first_page(), 0, AccessKind::Read)], &mut gpu, &mut host, SimTime(0))?
            .clone();
        let r1 = driver
            .service_batch(&[fault(blocks[1].first_page(), 0, AccessKind::Read)], &mut gpu, &mut host, SimTime(1_000_000))?
            .clone();
        let r2 = driver
            .service_batch(&[fault(blocks[0].first_page(), 0, AccessKind::Read)], &mut gpu, &mut host, SimTime(2_000_000))?
            .clone();
        assert!(r0.t_unmap > SimDuration::ZERO);
        assert!(r1.t_unmap > SimDuration::ZERO);
        assert_eq!(r1.evictions, 1);
        assert_eq!(r2.evictions, 1);
        assert_eq!(r2.t_unmap, SimDuration::ZERO, "re-migration skips unmap");
        Ok(())
    }

    #[test]
    fn prefetch_expands_dense_faults() -> Result<(), UvmError> {
        let (mut driver, mut gpu, mut host) = setup(16, DriverPolicy::with_prefetch());
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(VABLOCK_SIZE);
        driver.managed_alloc(alloc);

        // 12 of the first 16 pages fault: the 64 KiB leaf upgrades.
        let faults: Vec<_> = (0..12).map(|i| fault(alloc.page(i), 0, AccessKind::Read)).collect();
        let rec = driver.service_batch(&faults, &mut gpu, &mut host, SimTime(0))?;
        assert_eq!(rec.prefetched_pages, 4);
        assert_eq!(rec.pages_migrated, 16);
        assert!(gpu.is_resident(alloc.page(15)));
        Ok(())
    }

    #[test]
    fn prefetch_disabled_migrates_only_faulted() -> Result<(), UvmError> {
        let (mut driver, mut gpu, mut host) = setup(16, DriverPolicy::default());
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        let faults: Vec<_> = (0..12).map(|i| fault(alloc.page(i), 0, AccessKind::Read)).collect();
        let rec = driver.service_batch(&faults, &mut gpu, &mut host, SimTime(0))?;
        assert_eq!(rec.prefetched_pages, 0);
        assert_eq!(rec.pages_migrated, 12);
        assert!(!gpu.is_resident(alloc.page(15)));
        Ok(())
    }

    #[test]
    fn transfer_is_minority_of_batch_time() -> Result<(), UvmError> {
        // Fig. 7: transfer at most ~25% of batch time.
        let (mut driver, mut gpu, mut host) = setup(16, DriverPolicy::default());
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(4 * VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        for i in 0..alloc.num_pages() {
            driver.cpu_touch(&mut host, alloc.page(i), 0, true);
        }
        // A realistic batch: 200 faults spread over 4 blocks.
        let faults: Vec<_> = (0..200)
            .map(|i| fault(alloc.page(i * 10), (i % 4) as u32, AccessKind::Read))
            .collect();
        let rec = driver.service_batch(&faults, &mut gpu, &mut host, SimTime(0))?;
        assert!(
            rec.transfer_fraction() < 0.30,
            "transfer fraction {}",
            rec.transfer_fraction()
        );
        Ok(())
    }

    #[test]
    fn fault_metadata_logged_when_enabled() -> Result<(), UvmError> {
        let policy = DriverPolicy::default().log_faults(true);
        let (mut driver, mut gpu, mut host) = setup(16, policy);
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        let p = alloc.page(0);
        let faults = vec![fault(p, 0, AccessKind::Read), fault(p, 0, AccessKind::Read)];
        driver.service_batch(&faults, &mut gpu, &mut host, SimTime(0))?;
        assert_eq!(driver.fault_log.len(), 2);
        assert!(!driver.fault_log[0].was_duplicate);
        assert!(driver.fault_log[1].was_duplicate);
        Ok(())
    }

    #[test]
    fn read_mostly_skips_unmap_and_writeback() -> Result<(), UvmError> {
        let (mut driver, mut gpu, mut host) = setup(1, DriverPolicy::default());
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(2 * VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        driver.set_advise(&alloc, crate::advise::MemAdvise::ReadMostly);
        for i in 0..1024 {
            driver.cpu_touch(&mut host, alloc.page(i), 0, true);
        }
        let blocks: Vec<VaBlockId> = alloc.va_blocks().collect();

        // Read fault: migrates WITHOUT unmapping the CPU copy.
        let r0 = driver
            .service_batch(&[fault(blocks[0].first_page(), 0, AccessKind::Read)], &mut gpu, &mut host, SimTime(0))?
            .clone();
        assert_eq!(r0.t_unmap, SimDuration::ZERO, "read duplication keeps CPU mapping");
        assert_eq!(r0.cpu_pages_unmapped, 0);
        assert!(r0.bytes_migrated > 0, "data still transfers");
        assert!(host.is_cpu_mapped(blocks[0].first_page()), "CPU copy intact");

        // Evicting the duplicated block (capacity 1) writes nothing back.
        let r1 = driver
            .service_batch(&[fault(blocks[1].first_page(), 0, AccessKind::Read)], &mut gpu, &mut host, SimTime(1_000_000))?
            .clone();
        assert_eq!(r1.evictions, 1);
        assert_eq!(r1.bytes_evicted, 0, "dropping a duplicate needs no writeback");
        Ok(())
    }

    #[test]
    fn read_mostly_write_collapses_duplication() -> Result<(), UvmError> {
        let (mut driver, mut gpu, mut host) = setup(4, DriverPolicy::default());
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        driver.set_advise(&alloc, crate::advise::MemAdvise::ReadMostly);
        for i in 0..512 {
            driver.cpu_touch(&mut host, alloc.page(i), 0, true);
        }
        let rec = driver
            .service_batch(&[fault(alloc.page(0), 0, AccessKind::Write)], &mut gpu, &mut host, SimTime(0))?
            .clone();
        assert!(rec.t_unmap > SimDuration::ZERO, "a write collapses the duplication");
        assert!(rec.cpu_pages_unmapped > 0);
        Ok(())
    }

    #[test]
    fn preferred_location_host_maps_remotely() -> Result<(), UvmError> {
        // Capacity 1 block, but the advised allocation never consumes it.
        let (mut driver, mut gpu, mut host) = setup(1, DriverPolicy::default());
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(2 * VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        driver.set_advise(&alloc, crate::advise::MemAdvise::PreferredLocationHost);
        for i in 0..1024 {
            driver.cpu_touch(&mut host, alloc.page(i), 0, true);
        }
        let faults: Vec<_> = (0..1024)
            .step_by(64)
            .map(|i| fault(alloc.page(i as u64), 0, AccessKind::Read))
            .collect();
        let rec = driver.service_batch(&faults, &mut gpu, &mut host, SimTime(0))?.clone();
        assert_eq!(rec.pages_migrated, 0, "no migration under host preference");
        assert_eq!(rec.bytes_migrated, 0);
        assert_eq!(rec.remote_mapped_pages, 16);
        assert_eq!(rec.evictions, 0, "no device memory consumed");
        assert_eq!(rec.t_unmap, SimDuration::ZERO, "CPU mappings survive");
        assert!(rec.t_dma_setup > SimDuration::ZERO, "remote access needs DMA maps");
        assert!(gpu.is_resident(alloc.page(0)), "remote mapping satisfies accesses");
        assert_eq!(driver.memory().resident_blocks(), 0);
        Ok(())
    }

    #[test]
    fn prefetch_async_migrates_everything_upfront() -> Result<(), UvmError> {
        let (mut driver, mut gpu, mut host) = setup(16, DriverPolicy::default());
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(2 * VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        for i in 0..1024 {
            driver.cpu_touch(&mut host, alloc.page(i), 0, true);
        }
        let end = driver.prefetch_async(&alloc, &mut gpu, &mut host, SimTime(0))?;
        assert!(end > SimTime(0));
        let rec = driver.records.last().expect("operation logged a record").clone();
        assert!(rec.driver_prefetch_op);
        assert_eq!(rec.pages_migrated, 1024);
        assert_eq!(rec.num_va_blocks, 2);
        assert!(rec.cpu_pages_unmapped == 1024, "prefetch pays the unmap too");
        assert!(rec.t_dma_setup > SimDuration::ZERO);
        // Subsequent faults are all hits: a batch of stale faults migrates
        // nothing.
        let rec2 = driver
            .service_batch(&[fault(alloc.page(5), 0, AccessKind::Read)], &mut gpu, &mut host, end)
            ?
            .clone();
        assert_eq!(rec2.pages_migrated, 0);
        Ok(())
    }

    #[test]
    fn prefetch_async_is_idempotent() -> Result<(), UvmError> {
        let (mut driver, mut gpu, mut host) = setup(16, DriverPolicy::default());
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        driver.prefetch_async(&alloc, &mut gpu, &mut host, SimTime(0))?;
        let first = driver.records.last().expect("operation logged a record").pages_migrated;
        driver.prefetch_async(&alloc, &mut gpu, &mut host, SimTime(10_000_000))?;
        let second = driver.records.last().expect("operation logged a record");
        assert_eq!(first, 512);
        assert_eq!(second.pages_migrated, 0, "already resident");
        assert_eq!(second.num_va_blocks, 0);
        Ok(())
    }

    #[test]
    fn thrashing_pin_breaks_eviction_ping_pong() -> Result<(), UvmError> {
        // Capacity 1, two blocks faulted alternately: without mitigation
        // every access cycle evicts; with it, the re-faulted block pins
        // host-side and evictions stop.
        let run = |mitigate: bool| {
            let policy = DriverPolicy::default().thrashing(mitigate);
            let (mut driver, mut gpu, mut host) = setup(1, policy);
            let mut asa = AddressSpaceAllocator::new();
            let alloc = asa.alloc(2 * VABLOCK_SIZE);
            driver.managed_alloc(alloc);
            let blocks: Vec<VaBlockId> = alloc.va_blocks().collect();
            for round in 0..12u64 {
                let block = blocks[(round % 2) as usize];
                let page = block.page_at((round % 512) as usize);
                driver.service_batch(
                    &[fault(page, 0, AccessKind::Read)],
                    &mut gpu,
                    &mut host,
                    SimTime(round * 1_000_000),
                )?;
            }
            Ok::<_, UvmError>((
                driver.memory().evictions(),
                driver.records.iter().map(|r| r.thrashing_pins).sum::<u64>(),
            ))
        };
        let (evictions_off, pins_off) = run(false)?;
        let (evictions_on, pins_on) = run(true)?;
        assert_eq!(pins_off, 0);
        assert!(pins_on > 0, "thrashing detected and pinned");
        assert!(
            evictions_on < evictions_off,
            "pinning reduces evictions: {evictions_on} vs {evictions_off}"
        );
        Ok(())
    }

    // ---- fault-injection recovery ----

    use uvm_sim::inject::{FaultPlan, InjectionPoint, Injector, PointPlan};

    fn inject_setup(
        capacity_blocks: u64,
        policy: DriverPolicy,
        plan: &FaultPlan,
    ) -> (UvmDriver, Gpu, HostMemory) {
        let (mut driver, mut gpu, mut host) = setup(capacity_blocks, policy);
        let mut inj = Injector::new(plan, 7);
        gpu.fault_buffer.set_injector(inj.take(InjectionPoint::FaultBufferOverflow));
        host.set_injector(inj.take(InjectionPoint::HostPopulateFailure));
        driver.set_injectors(&mut inj);
        (driver, gpu, host)
    }

    #[test]
    fn transient_copy_fault_retries_then_succeeds() -> Result<(), UvmError> {
        let plan = FaultPlan::none()
            .with(InjectionPoint::CopyEngineFault, PointPlan::scheduled(SimTime(0), 1));
        let (mut driver, mut gpu, mut host) = inject_setup(16, DriverPolicy::default(), &plan);
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        let rec = driver
            .service_batch(&[fault(alloc.page(0), 0, AccessKind::Read)], &mut gpu, &mut host, SimTime(0))?;
        assert_eq!(rec.injected_faults, 1);
        assert_eq!(rec.retries, 1);
        assert!(rec.t_backoff > SimDuration::ZERO, "retry charged backoff");
        assert_eq!(rec.degraded_blocks, 0);
        assert_eq!(rec.pages_migrated, 1, "migration succeeded on retry");
        assert!(gpu.is_resident(alloc.page(0)));
        Ok(())
    }

    #[test]
    fn exhausted_copy_retries_degrade_block_to_remote() -> Result<(), UvmError> {
        let plan = FaultPlan::none()
            .with(InjectionPoint::CopyEngineFault, PointPlan::with_probability(1.0));
        let (mut driver, mut gpu, mut host) =
            inject_setup(16, DriverPolicy::default().retries(2), &plan);
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        let id = alloc.va_blocks().next().expect("allocation spans a block");

        let rec = driver
            .service_batch(&[fault(alloc.page(0), 0, AccessKind::Read)], &mut gpu, &mut host, SimTime(0))
            ?
            .clone();
        assert_eq!(rec.injected_faults, 3, "initial attempt + 2 retries all failed");
        assert_eq!(rec.retries, 2);
        assert_eq!(rec.degraded_blocks, 1);
        assert_eq!(rec.pages_migrated, 0);
        assert_eq!(rec.remote_mapped_pages, 1, "faulted page served from sysmem");
        let state = driver.va_space.block(id);
        assert!(state.degraded, "degradation is sticky");
        assert!(!state.gpu_allocated);
        assert!(gpu.is_resident(alloc.page(0)), "remote mapping satisfies the access");

        // A later fault on the degraded block takes the remote path
        // directly: the (still always-failing) copy engine is never asked.
        let rec2 = driver
            .service_batch(&[fault(alloc.page(1), 0, AccessKind::Read)], &mut gpu, &mut host, SimTime(1_000_000))
            ?
            .clone();
        assert_eq!(rec2.injected_faults, 0, "degraded block bypasses the copy engine");
        assert_eq!(rec2.degraded_blocks, 0);
        assert_eq!(rec2.remote_mapped_pages, 1);
        assert_eq!(rec2.pages_migrated, 0);
        Ok(())
    }

    #[test]
    fn degraded_block_releases_its_device_memory() -> Result<(), UvmError> {
        // Migrate successfully first, then degrade on a later batch: the
        // resident pages must write back and the device chunk must free.
        let plan = FaultPlan::none()
            .with(InjectionPoint::CopyEngineFault, PointPlan::scheduled(SimTime(1_000_000), 100));
        let (mut driver, mut gpu, mut host) =
            inject_setup(16, DriverPolicy::default().retries(1), &plan);
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        for i in 0..8 {
            driver.cpu_touch(&mut host, alloc.page(i), 0, true);
        }
        driver
            .service_batch(&[fault(alloc.page(0), 0, AccessKind::Read)], &mut gpu, &mut host, SimTime(0))
            ?;
        assert_eq!(driver.memory().resident_blocks(), 1);

        let rec = driver
            .service_batch(&[fault(alloc.page(1), 0, AccessKind::Read)], &mut gpu, &mut host, SimTime(1_000_000))
            ?
            .clone();
        assert_eq!(rec.degraded_blocks, 1);
        assert!(rec.bytes_evicted > 0, "resident data written back");
        assert_eq!(driver.memory().resident_blocks(), 0, "device chunk freed");
        assert_eq!(driver.memory().evictions(), 0, "degradation is not an LRU eviction");
        // Both the previously-resident page and the new fault are remote.
        assert!(gpu.is_resident(alloc.page(0)));
        assert!(gpu.is_resident(alloc.page(1)));
        Ok(())
    }

    #[test]
    fn dma_map_failure_retries_then_succeeds() -> Result<(), UvmError> {
        let plan = FaultPlan::none()
            .with(InjectionPoint::DmaMapFailure, PointPlan::scheduled(SimTime(0), 2));
        let (mut driver, mut gpu, mut host) = inject_setup(16, DriverPolicy::default(), &plan);
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        let rec = driver
            .service_batch(&[fault(alloc.page(0), 0, AccessKind::Read)], &mut gpu, &mut host, SimTime(0))?;
        assert_eq!(rec.injected_faults, 2);
        assert_eq!(rec.retries, 2);
        assert_eq!(rec.new_va_blocks, 1, "mapping eventually succeeded");
        assert_eq!(rec.pages_migrated, 1);
        Ok(())
    }

    #[test]
    fn exhausted_dma_retries_fail_the_batch() {
        let plan = FaultPlan::none()
            .with(InjectionPoint::DmaMapFailure, PointPlan::with_probability(1.0));
        let (mut driver, mut gpu, mut host) =
            inject_setup(16, DriverPolicy::default().retries(1), &plan);
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        let id = alloc.va_blocks().next().expect("allocation spans a block");
        let err = driver
            .service_batch(&[fault(alloc.page(0), 0, AccessKind::Read)], &mut gpu, &mut host, SimTime(0))
            .expect_err("retries must exhaust");
        assert_eq!(err, UvmError::DmaMapFailed { block: id.0 });
    }

    #[test]
    fn host_unmap_failure_retries_then_succeeds() -> Result<(), UvmError> {
        let plan = FaultPlan::none()
            .with(InjectionPoint::HostPopulateFailure, PointPlan::scheduled(SimTime(0), 1));
        let (mut driver, mut gpu, mut host) = inject_setup(16, DriverPolicy::default(), &plan);
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        driver.cpu_touch(&mut host, alloc.page(0), 0, true);
        let rec = driver
            .service_batch(&[fault(alloc.page(0), 0, AccessKind::Read)], &mut gpu, &mut host, SimTime(0))?;
        assert_eq!(rec.injected_faults, 1);
        assert_eq!(rec.retries, 1);
        assert_eq!(rec.cpu_pages_unmapped, 1, "unmap succeeded on retry");
        Ok(())
    }

    #[test]
    fn exhausted_host_unmap_retries_fail_the_batch() {
        let plan = FaultPlan::none()
            .with(InjectionPoint::HostPopulateFailure, PointPlan::with_probability(1.0));
        let (mut driver, mut gpu, mut host) =
            inject_setup(16, DriverPolicy::default().retries(0), &plan);
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        driver.cpu_touch(&mut host, alloc.page(0), 0, true);
        let id = alloc.va_blocks().next().expect("allocation spans a block");
        let err = driver
            .service_batch(&[fault(alloc.page(0), 0, AccessKind::Read)], &mut gpu, &mut host, SimTime(0))
            .expect_err("retries must exhaust");
        assert_eq!(err, UvmError::HostPopulateFailed { block: id.0 });
    }

    #[test]
    fn fetch_stall_retries_within_budget_and_fails_beyond_it() -> Result<(), UvmError> {
        // Burst of 2 stalls with 3 retries allowed: recovers.
        let plan = FaultPlan::none()
            .with(InjectionPoint::BatchFetchStall, PointPlan::scheduled(SimTime(0), 2));
        let (mut driver, mut gpu, mut host) = inject_setup(16, DriverPolicy::default(), &plan);
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        let rec = driver
            .service_batch(&[fault(alloc.page(0), 0, AccessKind::Read)], &mut gpu, &mut host, SimTime(0))?;
        assert_eq!(rec.injected_faults, 2);
        assert_eq!(rec.retries, 2);
        assert_eq!(rec.pages_migrated, 1);

        // Burst larger than the retry budget: the batch is lost.
        let plan = FaultPlan::none()
            .with(InjectionPoint::BatchFetchStall, PointPlan::scheduled(SimTime(0), 10));
        let (mut driver, mut gpu, mut host) =
            inject_setup(16, DriverPolicy::default().retries(2), &plan);
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        let err = driver
            .service_batch(&[fault(alloc.page(0), 0, AccessKind::Read)], &mut gpu, &mut host, SimTime(0))
            .expect_err("retries must exhaust");
        assert_eq!(err, UvmError::BatchFetchStall { batch: 0 });
        Ok(())
    }

    // ---- sustained failure domains & health ----

    use crate::health::HealthState;

    #[test]
    fn sustained_pressure_forces_emergency_eviction_and_recovers() -> Result<(), UvmError> {
        // Pressure window spanning batches 1–2: capacity 16 shrinks by 12,
        // residency sheds to 4, and the window closing restores everything.
        let plan = FaultPlan::none().with(
            InjectionPoint::DeviceMemoryPressure,
            PointPlan::scheduled(SimTime(1_000_000), 2),
        );
        let policy = DriverPolicy::default().pressure_reserve(12);
        let (mut driver, mut gpu, mut host) = inject_setup(16, policy, &plan);
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(16 * VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        let blocks: Vec<VaBlockId> = alloc.va_blocks().collect();

        // Batch 0 (pre-window): fill all 16 blocks.
        let fill: Vec<_> =
            blocks.iter().map(|b| fault(b.first_page(), 0, AccessKind::Read)).collect();
        let r0 = driver.service_batch(&fill, &mut gpu, &mut host, SimTime(0))?.clone();
        assert_eq!(r0.health, HealthState::Healthy);
        assert_eq!(r0.emergency_evictions, 0);
        assert_eq!(driver.memory().resident_blocks(), 16);

        // Batch 1: the window opens. 12 blocks shed via full writeback.
        let r1 = driver
            .service_batch(
                &[fault(blocks[15].page_at(1), 0, AccessKind::Read)],
                &mut gpu,
                &mut host,
                SimTime(1_000_000),
            )?
            .clone();
        assert_eq!(r1.health, HealthState::Pressured);
        assert_eq!(r1.pressure_reserved, 12);
        assert_eq!(r1.emergency_evictions, 12);
        assert!(r1.bytes_evicted > 0, "shed blocks write their data back");
        assert!(r1.t_evict > SimDuration::ZERO);
        assert_eq!(driver.memory().resident_blocks(), 4);
        assert_eq!(driver.memory().effective_capacity(), 4);
        // LRU sheds the earliest blocks; the latest survive.
        assert!(!gpu.is_resident(blocks[0].first_page()));
        assert!(gpu.is_resident(blocks[15].first_page()));

        // Batch 2: window persists (burst 2); nothing more to shed.
        let r2 = driver
            .service_batch(
                &[fault(blocks[15].page_at(2), 0, AccessKind::Read)],
                &mut gpu,
                &mut host,
                SimTime(2_000_000),
            )?
            .clone();
        assert_eq!(r2.health, HealthState::Pressured);
        assert_eq!(r2.emergency_evictions, 0);

        // Batch 3: window closed. Capacity restores, health recovers.
        let r3 = driver
            .service_batch(
                &[fault(blocks[0].first_page(), 0, AccessKind::Read)],
                &mut gpu,
                &mut host,
                SimTime(3_000_000),
            )?
            .clone();
        assert_eq!(r3.health, HealthState::Healthy);
        assert_eq!(r3.pressure_reserved, 0);
        assert_eq!(driver.memory().effective_capacity(), 16);
        assert_eq!(r3.evictions, 0, "restored capacity allocates freely");
        assert_eq!(driver.health().transitions(), 2, "Healthy→Pressured→Healthy");
        assert_eq!(driver.health().batches_in(HealthState::Pressured), 2);
        Ok(())
    }

    #[test]
    fn gpu_reset_loses_buffer_state_and_health_recovers() -> Result<(), UvmError> {
        let plan = FaultPlan::none()
            .with(InjectionPoint::GpuReset, PointPlan::scheduled(SimTime(1_000_000), 1));
        let (mut driver, mut gpu, mut host) = inject_setup(16, DriverPolicy::default(), &plan);
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(VABLOCK_SIZE);
        driver.managed_alloc(alloc);

        let r0 = driver
            .service_batch(&[fault(alloc.page(0), 0, AccessKind::Read)], &mut gpu, &mut host, SimTime(0))?
            .clone();
        assert_eq!(r0.gpu_resets, 0);
        assert_eq!(r0.health, HealthState::Healthy);

        // Entries sitting in the hardware buffer when the reset hits are
        // destroyed and accounted to the absorbing batch.
        for i in 8..11u64 {
            gpu.fault_buffer.push(fault(alloc.page(i), 0, AccessKind::Read));
        }
        let r1 = driver
            .service_batch(
                &[fault(alloc.page(1), 0, AccessKind::Read)],
                &mut gpu,
                &mut host,
                SimTime(1_000_000),
            )?
            .clone();
        assert_eq!(r1.gpu_resets, 1);
        assert_eq!(r1.reset_lost_faults, 3, "buffered entries destroyed by the reset");
        assert_eq!(r1.health, HealthState::Resetting);
        assert_eq!(gpu.resets, 1);
        assert_eq!(gpu.fault_buffer.reset_losses(), 3);
        assert!(
            r1.t_fixed >= DriverPolicy::default().reset_reattach_cost,
            "re-attach cost charged"
        );
        // Driver-side state survived: the already-migrated page stays
        // resident and serviceable.
        assert!(gpu.is_resident(alloc.page(0)));

        let r2 = driver
            .service_batch(
                &[fault(alloc.page(2), 0, AccessKind::Read)],
                &mut gpu,
                &mut host,
                SimTime(2_000_000),
            )?
            .clone();
        assert_eq!(r2.health, HealthState::Healthy, "one-batch regime, then recovery");
        assert_eq!(r2.gpu_resets, 0);
        Ok(())
    }

    #[test]
    fn accumulated_degradations_escalate_health_and_gate_prefetch() -> Result<(), UvmError> {
        // One copy-engine failure with a zero retry budget degrades block
        // 0; threshold 1 escalates the driver to Degraded, which must
        // suppress speculative prefetch on later (healthy-path) batches.
        let plan = FaultPlan::none()
            .with(InjectionPoint::CopyEngineFault, PointPlan::scheduled(SimTime(0), 1));
        let policy = DriverPolicy::with_prefetch().retries(0).degraded_escalation(1);
        let (mut driver, mut gpu, mut host) = inject_setup(16, policy, &plan);
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(2 * VABLOCK_SIZE);
        driver.managed_alloc(alloc);

        let r0 = driver
            .service_batch(&[fault(alloc.page(0), 0, AccessKind::Read)], &mut gpu, &mut host, SimTime(0))?
            .clone();
        assert_eq!(r0.degraded_blocks, 1);
        assert_eq!(r0.health, HealthState::Healthy, "evidence is a batch-boundary view");

        // Dense faults on the healthy second block: 12 of the first 16
        // pages would prefetch the remaining 4 under TreeDensity — but the
        // driver is Degraded now.
        let faults: Vec<_> =
            (512..524).map(|i| fault(alloc.page(i), 0, AccessKind::Read)).collect();
        let r1 = driver
            .service_batch(&faults, &mut gpu, &mut host, SimTime(1_000_000))?
            .clone();
        assert_eq!(r1.health, HealthState::Degraded);
        assert_eq!(r1.prefetched_pages, 0, "degraded driver does not speculate");
        assert_eq!(r1.pages_migrated, 12, "demand servicing continues");

        // Degradation is sticky: with the threshold still crossed, the
        // state persists.
        let r2 = driver
            .service_batch(
                &[fault(alloc.page(524), 0, AccessKind::Read)],
                &mut gpu,
                &mut host,
                SimTime(2_000_000),
            )?
            .clone();
        assert_eq!(r2.health, HealthState::Degraded);
        Ok(())
    }

    #[test]
    fn sustained_injection_is_seed_deterministic() {
        // Stochastic pressure and reset points composed over a transient
        // plan: identical seeds must produce byte-identical record streams
        // (including health states and emergency-eviction accounting).
        let run = |seed: u64| {
            let plan = FaultPlan::uniform(0.1)
                .with(InjectionPoint::DeviceMemoryPressure, PointPlan::with_probability(0.3))
                .with(InjectionPoint::GpuReset, PointPlan::with_probability(0.15));
            let policy = DriverPolicy::default().pressure_reserve(2);
            let cost = CostModel::titan_v();
            let mut driver = UvmDriver::new(policy, cost.clone(), 4, seed);
            let mut gpu = Gpu::new(GpuSpec::small(4 * VABLOCK_SIZE), cost);
            let mut host = HostMemory::new();
            let mut inj = Injector::new(&plan, seed);
            gpu.fault_buffer.set_injector(inj.take(InjectionPoint::FaultBufferOverflow));
            host.set_injector(inj.take(InjectionPoint::HostPopulateFailure));
            driver.set_injectors(&mut inj);
            let mut asa = AddressSpaceAllocator::new();
            let alloc = asa.alloc(8 * VABLOCK_SIZE);
            driver.managed_alloc(alloc);
            for round in 0..20u64 {
                let faults: Vec<_> = (0..16)
                    .map(|i| fault(alloc.page((round * 97 + i * 31) % 4096), (i % 4) as u32, AccessKind::Read))
                    .collect();
                let _ = driver.service_batch(&faults, &mut gpu, &mut host, SimTime(round * 1_000_000));
            }
            serde_json::to_string(&driver.records).expect("records serialize")
        };
        assert_eq!(run(0x5C21), run(0x5C21), "same seed, byte-identical records");
        assert_ne!(run(0x5C21), run(0x1234), "different seed diverges");
    }

    #[test]
    fn buffer_overflow_drops_are_attributed_to_the_next_batch() -> Result<(), UvmError> {
        let (mut driver, mut gpu, mut host) = setup(16, DriverPolicy::default());
        let mut inj = Injector::new(
            &FaultPlan::none()
                .with(InjectionPoint::FaultBufferOverflow, PointPlan::scheduled(SimTime(5), 3)),
            7,
        );
        gpu.fault_buffer.set_injector(inj.take(InjectionPoint::FaultBufferOverflow));
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(VABLOCK_SIZE);
        driver.managed_alloc(alloc);

        // Push 6 faults; the injected storm at t=5 swallows 3 of them.
        for i in 0..6u64 {
            let mut f = fault(alloc.page(i), 0, AccessKind::Read);
            f.arrival = SimTime(5 + i);
            gpu.fault_buffer.push(f);
        }
        assert_eq!(gpu.fault_buffer.overflow_drops(), 3);
        let batch = gpu.fault_buffer.fetch(256, SimTime(100));
        let rec = driver.service_batch(&batch, &mut gpu, &mut host, SimTime(100))?.clone();
        assert_eq!(rec.raw_faults, 3, "survivors serviced");
        assert_eq!(rec.dropped_faults, 3, "storm drops attributed here");
        // The attribution is once-only.
        let rec2 = driver
            .service_batch(&[fault(alloc.page(10), 0, AccessKind::Read)], &mut gpu, &mut host, SimTime(200))
            ?;
        assert_eq!(rec2.dropped_faults, 0);
        Ok(())
    }

    #[test]
    fn identical_seeds_give_identical_record_streams_under_injection() {
        let run = |seed: u64| {
            let policy = DriverPolicy::default();
            let cost = CostModel::titan_v();
            let mut driver = UvmDriver::new(policy, cost.clone(), 4, seed);
            let mut gpu = Gpu::new(GpuSpec::small(4 * VABLOCK_SIZE), cost);
            let mut host = HostMemory::new();
            let mut inj = Injector::new(&FaultPlan::uniform(0.2), seed);
            gpu.fault_buffer.set_injector(inj.take(InjectionPoint::FaultBufferOverflow));
            host.set_injector(inj.take(InjectionPoint::HostPopulateFailure));
            driver.set_injectors(&mut inj);
            let mut asa = AddressSpaceAllocator::new();
            let alloc = asa.alloc(8 * VABLOCK_SIZE);
            driver.managed_alloc(alloc);
            for round in 0..20u64 {
                let faults: Vec<_> = (0..16)
                    .map(|i| fault(alloc.page((round * 97 + i * 31) % 4096), (i % 4) as u32, AccessKind::Read))
                    .collect();
                // Exhaustion under p=0.2 is possible in principle; ignore
                // failed batches — both runs must fail identically too.
                let _ = driver.service_batch(&faults, &mut gpu, &mut host, SimTime(round * 1_000_000));
            }
            serde_json::to_string(&driver.records).expect("records serialize")
        };
        assert_eq!(run(0x5C21), run(0x5C21), "same seed, byte-identical records");
        assert_ne!(run(0x5C21), run(0x1234), "different seed diverges");
    }

    #[test]
    fn disabled_injection_leaves_baseline_records_unchanged() -> Result<(), UvmError> {
        // Wiring a FaultPlan::none() injector must not perturb the RNG
        // stream or any recorded time.
        let run = |wire: bool| {
            let (mut driver, mut gpu, mut host) = setup(16, DriverPolicy::default());
            if wire {
                let mut inj = Injector::new(&FaultPlan::none(), 99);
                driver.set_injectors(&mut inj);
            }
            let mut asa = AddressSpaceAllocator::new();
            let alloc = asa.alloc(2 * VABLOCK_SIZE);
            driver.managed_alloc(alloc);
            for i in 0..100 {
                driver.cpu_touch(&mut host, alloc.page(i), 0, true);
            }
            for round in 0..5u64 {
                let faults: Vec<_> = (0..32)
                    .map(|i| fault(alloc.page(round * 100 + i), 0, AccessKind::Read))
                    .collect();
                driver.service_batch(&faults, &mut gpu, &mut host, SimTime(round * 1_000_000))?;
            }
            Ok::<_, UvmError>(serde_json::to_string(&driver.records).expect("records serialize"))
        };
        assert_eq!(run(false)?, run(true)?);
        Ok(())
    }

    #[test]
    fn batch_time_grows_with_data_moved() -> Result<(), UvmError> {
        // Fig. 6: average batch cost rises with migration size.
        let (mut driver, mut gpu, mut host) = setup(64, DriverPolicy::default());
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(8 * VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        for i in 0..alloc.num_pages() {
            driver.cpu_touch(&mut host, alloc.page(i), 0, true);
        }

        let small: Vec<_> = (0..8).map(|i| fault(alloc.page(i), 0, AccessKind::Read)).collect();
        let r_small = driver.service_batch(&small, &mut gpu, &mut host, SimTime(0))?.clone();
        let big: Vec<_> = (0..256)
            .map(|i| fault(alloc.page(512 + i), 0, AccessKind::Read))
            .collect();
        let r_big = driver.service_batch(&big, &mut gpu, &mut host, SimTime(10_000_000))?.clone();
        assert!(r_big.service_time() > r_small.service_time());
        assert!(r_big.bytes_migrated > r_small.bytes_migrated);
        Ok(())
    }

    #[test]
    fn more_vablocks_cost_more_at_same_size() -> Result<(), UvmError> {
        // Fig. 10: for equal migration size, more VABlocks → higher cost.
        let (mut driver, mut gpu, mut host) = setup(64, DriverPolicy::default());
        let mut asa = AddressSpaceAllocator::new();
        let alloc = asa.alloc(32 * VABLOCK_SIZE);
        driver.managed_alloc(alloc);
        // Pre-touch all blocks so neither batch pays first-touch DMA setup.
        let warmup: Vec<_> = (0..32)
            .map(|b| fault(alloc.page(b * 512 + 511), 0, AccessKind::Read))
            .collect();
        driver.service_batch(&warmup, &mut gpu, &mut host, SimTime(0))?;

        // 64 pages in 1 block vs 64 pages across 16 blocks.
        let concentrated: Vec<_> =
            (0..64).map(|i| fault(alloc.page(i), 0, AccessKind::Read)).collect();
        let rc = driver
            .service_batch(&concentrated, &mut gpu, &mut host, SimTime(100_000_000))?
            .clone();
        let spread: Vec<_> = (0..64)
            .map(|i| fault(alloc.page(512 + (i % 16) * 512 + 32 + i / 16), 0, AccessKind::Read))
            .collect();
        let rs = driver
            .service_batch(&spread, &mut gpu, &mut host, SimTime(200_000_000))?
            .clone();
        assert_eq!(rc.pages_migrated, rs.pages_migrated);
        assert!(rs.num_va_blocks > rc.num_va_blocks);
        assert!(
            rs.service_time() > rc.service_time(),
            "spread {} <= concentrated {}",
            rs.service_time(),
            rc.service_time()
        );
        Ok(())
    }
}
