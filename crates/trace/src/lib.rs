//! # uvm-trace — zero-perturbation structured tracing for the UVM stack
//!
//! The source paper's headline artifact is an instrumented `nvidia-uvm`
//! driver that timestamps every stage of the fault-servicing path. This
//! crate is the simulator's equivalent: a typed event vocabulary
//! ([`TraceEvent`]) covering fault generation, batch assembly, dedup,
//! per-VABlock servicing (DMA map, CPU unmap, eviction, population,
//! transfer, PTE updates), replays, and host-OS operations — plus
//! exporters that turn a recorded run into Chrome `trace_event` JSON
//! (loadable in Perfetto / `chrome://tracing`), CSV, and a per-batch
//! latency-breakdown table that reconciles exactly with the aggregate
//! `report.rs` service-time breakdown.
//!
//! ## Zero perturbation
//!
//! Instrumented call-sites go through [`emit_instant`] / [`emit_span`],
//! which take *closures*: when no tracer is installed (the default
//! [`NullTracer`] world) the only cost is one thread-local flag read, and
//! the event payload is never constructed. Tracers are pure observers —
//! they receive copies of event data and never touch simulation state or
//! RNG streams — so enabling a [`RingTracer`] cannot change simulated
//! results.
//!
//! ## Thread-local sink
//!
//! The simulator is single-threaded per run, so the installed tracer
//! lives in thread-local storage: [`install`] a backend, run the
//! workload, then [`uninstall`] it (or inspect in place via
//! [`with_ring`]). Tests running concurrently each get their own sink.
//!
//! ## Snapshot awareness
//!
//! [`snapshot_state`] / [`restore_state`] capture and reinstate the ring
//! buffer's contents and sequence counter, letting checkpointed runs
//! resume tracing without duplicating or dropping events.

#![warn(missing_docs)]

use std::cell::{Cell, RefCell};

pub mod event;
pub mod export;
pub mod tracer;

pub use event::{Phase, Subsystem, TraceAccess, TraceEvent, TraceRecord, COMPONENTS};
pub use export::{
    breakdown, breakdown_table, chrome_trace, csv, fault_lifetimes, totals, BatchBreakdown,
};
pub use tracer::{NullTracer, RingTracer, TraceFilter, TraceState, Tracer};

thread_local! {
    /// Fast-path flag mirroring whether the installed sink wants events.
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    /// The installed tracer backend, if any.
    static SINK: RefCell<Option<Box<dyn Tracer>>> = const { RefCell::new(None) };
}

/// Install a tracer backend for this thread, replacing (and returning)
/// any previous one.
pub fn install(tracer: Box<dyn Tracer>) -> Option<Box<dyn Tracer>> {
    ENABLED.with(|e| e.set(tracer.enabled()));
    SINK.with(|s| s.borrow_mut().replace(tracer))
}

/// Remove and return the installed tracer, reverting this thread to the
/// zero-cost disabled state.
pub fn uninstall() -> Option<Box<dyn Tracer>> {
    ENABLED.with(|e| e.set(false));
    SINK.with(|s| s.borrow_mut().take())
}

/// Whether an enabled tracer is installed on this thread. Call-sites may
/// use this to skip preparatory work beyond what the emit closures
/// already elide.
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Record an instant event at simulated time `at_ns`. The closure is
/// only invoked when an enabled tracer is installed.
pub fn emit_instant(at_ns: u64, event: impl FnOnce() -> TraceEvent) {
    if enabled() {
        record(at_ns, 0, event());
    }
}

/// Record a span of `dur_ns` starting at `at_ns`. The closure is only
/// invoked when an enabled tracer is installed.
pub fn emit_span(at_ns: u64, dur_ns: u64, event: impl FnOnce() -> TraceEvent) {
    if enabled() {
        record(at_ns, dur_ns, event());
    }
}

fn record(at_ns: u64, dur_ns: u64, event: TraceEvent) {
    SINK.with(|s| {
        if let Some(tracer) = s.borrow_mut().as_deref_mut() {
            tracer.record(at_ns, dur_ns, event);
        }
    });
}

/// Run `f` against the installed [`RingTracer`], if one is installed.
/// Returns `None` when no tracer is installed or the backend is not a
/// ring.
pub fn with_ring<R>(f: impl FnOnce(&mut RingTracer) -> R) -> Option<R> {
    SINK.with(|s| {
        s.borrow_mut()
            .as_deref_mut()
            .and_then(Tracer::as_ring_mut)
            .map(f)
    })
}

/// Capture the installed ring tracer's state for a checkpoint. `None`
/// when tracing is off (or the backend has no state to save).
pub fn snapshot_state() -> Option<TraceState> {
    SINK.with(|s| {
        s.borrow()
            .as_deref()
            .and_then(Tracer::as_ring)
            .map(RingTracer::state)
    })
}

/// Reinstate checkpointed tracer state into the installed ring tracer.
/// Returns `true` if a ring was installed and restored; `false` (state
/// discarded) when tracing is off — restoring a traced checkpoint with
/// tracing disabled is allowed and simply drops the buffered events.
pub fn restore_state(state: TraceState) -> bool {
    with_ring(|ring| ring.restore_state(state)).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_is_inert_without_a_tracer() {
        uninstall();
        let mut built = false;
        emit_instant(5, || {
            built = true;
            TraceEvent::Replay { seq: 1, woken: 0 }
        });
        assert!(!built, "payload closure must not run when tracing is off");
        assert!(!enabled());
        assert!(snapshot_state().is_none());
    }

    #[test]
    fn install_routes_events_to_the_ring() {
        install(Box::new(RingTracer::new(16)));
        emit_span(10, 3, || TraceEvent::Fixed { batch: 7 });
        emit_instant(13, || TraceEvent::Replay { seq: 1, woken: 2 });
        let recs = with_ring(|r| r.take_records()).expect("ring installed");
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].dur_ns, 3);
        assert_eq!(recs[1].at_ns, 13);
        let prev = uninstall();
        assert!(prev.is_some());
        assert!(!enabled());
    }

    #[test]
    fn snapshot_and_restore_round_trip_through_the_sink() {
        install(Box::new(RingTracer::new(16)));
        emit_instant(1, || TraceEvent::Replay { seq: 1, woken: 0 });
        let state = snapshot_state().expect("tracing on");
        emit_instant(2, || TraceEvent::Replay { seq: 2, woken: 0 });
        assert!(restore_state(state.clone()));
        let again = snapshot_state().expect("tracing on");
        assert_eq!(again, state, "restore must rewind to the captured state");
        uninstall();
        assert!(!restore_state(state), "no sink: state is discarded");
    }
}
